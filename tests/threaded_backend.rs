//! Integration tests of the threaded execution backend: worker threads for
//! the gather and CPU Adam lanes must reproduce the synchronous trainer's
//! loss/PSNR trajectory **bit-for-bit** across seeds and prefetch windows,
//! and must survive the tightest possible backpressure configuration —
//! end-to-end across `clm-runtime`, `clm-core`, `gs-optim` and the gs-*
//! crates.

use clm_repro::clm_core::{ground_truth_images, SystemKind, TrainConfig, Trainer};
use clm_repro::clm_runtime::{PrefetchPolicy, ThreadedBackend, ThreadedConfig};
use clm_repro::gs_scene::{
    generate_dataset, init_from_point_cloud, DatasetConfig, InitConfig, SceneKind, SceneSpec,
};

fn setup(
    seed: u64,
) -> (
    clm_repro::gs_scene::Dataset,
    Vec<clm_repro::gs_render::Image>,
    clm_repro::gs_core::GaussianModel,
) {
    let dataset = generate_dataset(
        &SceneSpec::of(SceneKind::Rubble),
        &DatasetConfig {
            num_gaussians: 400,
            num_views: 12,
            width: 40,
            height: 30,
            seed,
        },
    );
    let targets = ground_truth_images(&dataset);
    let init = init_from_point_cloud(
        &dataset.ground_truth,
        &InitConfig {
            num_gaussians: 150,
            seed: seed + 1,
            ..Default::default()
        },
    );
    (dataset, targets, init)
}

#[test]
fn threaded_backend_is_bit_identical_across_seeds_and_windows() {
    // Two epochs per configuration: every per-batch loss, the final
    // parameters and the evaluated PSNR must equal the synchronous
    // trainer's exactly, for 3 dataset seeds × prefetch windows {0, 1, 2}.
    for seed in [11u64, 42, 97] {
        let (dataset, targets, init) = setup(seed);
        let train = TrainConfig {
            system: SystemKind::Clm,
            batch_size: 4,
            seed,
            ..Default::default()
        };

        let mut sync = Trainer::new(init.clone(), train.clone());
        let mut reference = Vec::new();
        for _ in 0..2 {
            reference.extend(sync.train_epoch(&dataset, &targets));
        }

        for window in [0usize, 1, 2] {
            let mut threaded = ThreadedBackend::new(
                init.clone(),
                train.clone(),
                ThreadedConfig {
                    prefetch_window: window,
                    ..Default::default()
                },
            );
            let mut reports = Vec::new();
            for _ in 0..2 {
                reports.extend(threaded.run_epoch(&dataset, &targets));
            }
            assert_eq!(reference.len(), reports.len());
            for (r, t) in reference.iter().zip(&reports) {
                assert_eq!(
                    r, &t.batch,
                    "seed {seed}, window {window}: threaded batch must match the \
                     synchronous trainer"
                );
                assert_eq!(t.prefetch_window, window);
            }
            assert_eq!(
                threaded.trainer().model(),
                sync.model(),
                "seed {seed}, window {window}: final parameters must be identical"
            );
            assert_eq!(
                threaded.evaluate_psnr(&dataset.cameras, &targets),
                sync.evaluate_psnr(&dataset.cameras, &targets),
                "seed {seed}, window {window}: PSNR trajectory must be identical"
            );
        }
    }
}

#[test]
fn threaded_backend_survives_single_slot_backpressure() {
    // The tightest legal pool: capacity-1 queues everywhere and a
    // single-threaded CPU Adam lane.  Every handoff between the coordinator
    // and the workers exercises a full queue; the run must neither deadlock
    // nor change numerics, and the staging pool must stay within the
    // window's buffer budget.
    let (dataset, targets, init) = setup(7);
    let train = TrainConfig {
        system: SystemKind::Clm,
        batch_size: 6,
        ..Default::default()
    };
    let mut sync = Trainer::new(init.clone(), train.clone());
    let mut stressed = ThreadedBackend::new(
        init,
        train,
        ThreadedConfig {
            prefetch_window: 4,
            policy: PrefetchPolicy::Fixed,
            adam_threads: 1,
            channel_capacity: 1,
            compute_threads: 0,
            ..Default::default()
        },
    );
    for _ in 0..2 {
        let reference = sync.train_epoch(&dataset, &targets);
        let reports = stressed.run_epoch(&dataset, &targets);
        for (r, t) in reference.iter().zip(&reports) {
            assert_eq!(r, &t.batch, "backpressure must not change numerics");
        }
    }
    assert_eq!(stressed.trainer().model(), sync.model());
    let stats = stressed.pool_stats();
    assert_eq!(stats.outstanding, 0, "all staging buffers returned");
    assert!(
        stats.high_water_buffers <= 5,
        "window 4 must stay within its 5-buffer budget: {stats:?}"
    );
}

#[test]
fn threaded_adaptive_window_reports_choices_without_changing_numerics() {
    let (dataset, targets, init) = setup(23);
    let train = TrainConfig {
        system: SystemKind::Clm,
        batch_size: 4,
        ..Default::default()
    };
    let mut sync = Trainer::new(init.clone(), train.clone());
    let mut adaptive = ThreadedBackend::new(
        init,
        train,
        ThreadedConfig {
            prefetch_window: 2,
            policy: PrefetchPolicy::Adaptive { min: 1, max: 4 },
            ..Default::default()
        },
    );
    let reference = sync.train_epoch(&dataset, &targets);
    let reports = adaptive.run_epoch(&dataset, &targets);
    for (r, t) in reference.iter().zip(&reports) {
        assert_eq!(r, &t.batch, "adaptive window must not change numerics");
        assert!(
            (1..=4).contains(&t.prefetch_window),
            "chosen window {} out of the adaptive range",
            t.prefetch_window
        );
    }
    assert_eq!(
        reports[0].prefetch_window, 2,
        "first batch uses the configured seed window"
    );
    assert_eq!(adaptive.trainer().model(), sync.model());
}

// ---------------------------------------------------------------------------
// Densification conformance: this backend's leg of the shared cross-backend
// harness (`tests/conformance/`).
#[path = "conformance/harness.rs"]
mod harness;

#[test]
fn threaded_backend_passes_the_densifying_conformance_run() {
    // The worker lanes respawn against the resized store every batch.
    let scenario = harness::densifying_scenario();
    let reference = harness::run_reference(&scenario, harness::EPOCHS);
    harness::assert_densification_exercised(&reference);
    let mut backend = ThreadedBackend::new(
        scenario.init.clone(),
        scenario.train.clone(),
        ThreadedConfig {
            prefetch_window: 2,
            ..Default::default()
        },
    );
    let trajectory = harness::run_backend(&mut backend, &scenario, harness::EPOCHS);
    harness::assert_trajectories_match(&reference, &trajectory, "threaded");
    assert_eq!(backend.pool_stats().outstanding, 0);
    assert_eq!(
        backend.pool_stats().reprovisions,
        reference.resize_events() as u64
    );
}
