//! Cross-crate checks of the paper's headline claims, evaluated at paper
//! scale against the simulated testbeds and the paper-reference scene
//! profiles.

use clm_repro::clm_core::{
    max_trainable_gaussians, pinned_memory_required, simulate_batch, synthetic_microbatch_stats,
    SceneProfile, SystemKind,
};
use clm_repro::gs_scene::SceneKind;
use clm_repro::sim_device::{mean_gpu_utilization, DeviceProfile, GIB};

#[test]
fn claim_clm_trains_up_to_6x_larger_models_than_gpu_only() {
    // §6 highlight: "CLM enables 3DGS training of models up to 6.1x larger
    // through CPU offloading, compared to GPU-only training baselines."
    let mut best_ratio: f64 = 0.0;
    for device in [DeviceProfile::rtx2080ti(), DeviceProfile::rtx4090()] {
        for kind in SceneKind::ALL {
            let scene = SceneProfile::paper_reference(kind);
            let clm = max_trainable_gaussians(SystemKind::Clm, &device, &scene) as f64;
            let enhanced =
                max_trainable_gaussians(SystemKind::EnhancedBaseline, &device, &scene) as f64;
            assert!(clm > enhanced, "{kind}: CLM must always scale further");
            best_ratio = best_ratio.max(clm / enhanced);
        }
    }
    assert!(
        best_ratio > 4.0,
        "expected a severalfold max-model-size advantage somewhere, best ratio {best_ratio:.1}"
    );
}

#[test]
fn claim_bigcity_100m_gaussians_fit_on_a_4090_only_with_clm() {
    let device = DeviceProfile::rtx4090();
    let scene = SceneProfile::paper_reference(SceneKind::BigCity);
    let n = 102_200_000;
    assert!(clm_repro::clm_core::check_memory_fit(SystemKind::Clm, &device, &scene, n).is_ok());
    for system in [
        SystemKind::Baseline,
        SystemKind::EnhancedBaseline,
        SystemKind::NaiveOffload,
    ] {
        assert!(
            clm_repro::clm_core::check_memory_fit(system, &device, &scene, n).is_err(),
            "{system} should OOM at 102M Gaussians"
        );
    }
}

#[test]
fn claim_clm_is_1_4x_to_2x_faster_than_naive_offloading() {
    // §6 highlight: "Compared to naive offloading, CLM is 1.38 to 1.92
    // faster."  Allow a wider band for the calibrated simulator: every scene
    // must show a speedup, and the larger scenes must show a substantial one.
    for device in [DeviceProfile::rtx2080ti(), DeviceProfile::rtx4090()] {
        let mut best: f64 = 0.0;
        for kind in SceneKind::ALL {
            let scene = SceneProfile::paper_reference(kind);
            let n = max_trainable_gaussians(SystemKind::NaiveOffload, &device, &scene);
            let stats = synthetic_microbatch_stats(&scene, n, true);
            let clm = simulate_batch(SystemKind::Clm, &device, &scene, n, &stats);
            let naive = simulate_batch(SystemKind::NaiveOffload, &device, &scene, n, &stats);
            let speedup = clm.throughput / naive.throughput;
            assert!(
                (1.02..4.0).contains(&speedup),
                "{} / {kind}: speedup {speedup:.2} outside the expected band",
                device.name
            );
            best = best.max(speedup);
        }
        assert!(
            best > 1.35,
            "{}: expected at least one scene with a >1.35x speedup, best {best:.2}",
            device.name
        );
    }
}

#[test]
fn claim_clm_offloading_overhead_is_modest_vs_enhanced_baseline() {
    // §6: CLM reaches 86–97% of the enhanced baseline on the 2080 Ti and
    // 55–90% on the 4090; the slower GPU always hides overheads better.
    for kind in SceneKind::ALL {
        let scene = SceneProfile::paper_reference(kind);
        let mut fractions = Vec::new();
        for device in [DeviceProfile::rtx4090(), DeviceProfile::rtx2080ti()] {
            let n = max_trainable_gaussians(SystemKind::Baseline, &device, &scene);
            let stats = synthetic_microbatch_stats(&scene, n, true);
            let clm = simulate_batch(SystemKind::Clm, &device, &scene, n, &stats);
            let enhanced = simulate_batch(SystemKind::EnhancedBaseline, &device, &scene, n, &stats);
            let fraction = clm.throughput / enhanced.throughput;
            assert!(
                (0.4..=1.02).contains(&fraction),
                "{kind} on {}: CLM reaches {fraction:.2} of the enhanced baseline",
                device.name
            );
            fractions.push(fraction);
        }
        assert!(
            fractions[1] >= fractions[0] - 0.05,
            "{kind}: the slower GPU should hide offloading overheads at least as well \
             (4090 {:.2} vs 2080 Ti {:.2})",
            fractions[0],
            fractions[1]
        );
    }
}

#[test]
fn claim_clm_reduces_communication_volume_massively() {
    // Figure 14: CLM cuts CPU->GPU traffic by 37%–82% versus naive
    // offloading across the scenes.
    let device = DeviceProfile::rtx4090();
    for kind in SceneKind::ALL {
        let scene = SceneProfile::paper_reference(kind);
        let n = max_trainable_gaussians(SystemKind::NaiveOffload, &device, &scene);
        let stats = synthetic_microbatch_stats(&scene, n, true);
        let clm = simulate_batch(SystemKind::Clm, &device, &scene, n, &stats);
        let naive = simulate_batch(SystemKind::NaiveOffload, &device, &scene, n, &stats);
        let reduction = 1.0 - clm.bytes_loaded as f64 / naive.bytes_loaded as f64;
        assert!(
            reduction > 0.3,
            "{kind}: expected >30% traffic reduction, got {:.0}%",
            reduction * 100.0
        );
    }
}

#[test]
fn claim_clm_keeps_the_gpu_busier_than_naive_offloading() {
    // Figure 15: CLM's idle-rate CDF dominates naive offloading's.
    let device = DeviceProfile::rtx4090();
    for kind in SceneKind::ALL {
        let scene = SceneProfile::paper_reference(kind);
        let n = max_trainable_gaussians(SystemKind::NaiveOffload, &device, &scene);
        let stats = synthetic_microbatch_stats(&scene, n, true);
        let clm = simulate_batch(SystemKind::Clm, &device, &scene, n, &stats);
        let naive = simulate_batch(SystemKind::NaiveOffload, &device, &scene, n, &stats);
        let window = naive.timeline.makespan() / 200.0;
        let clm_util = mean_gpu_utilization(&clm.timeline, window);
        let naive_util = mean_gpu_utilization(&naive.timeline, window);
        assert!(
            clm_util > naive_util,
            "{kind}: CLM GPU utilisation {clm_util:.1}% should exceed naive {naive_util:.1}%"
        );
    }
}

#[test]
fn claim_pinned_memory_stays_well_below_host_capacity() {
    // Table 6: even for the largest models, pinned memory stays under ~30%
    // of host RAM.
    for device in [DeviceProfile::rtx2080ti(), DeviceProfile::rtx4090()] {
        for kind in SceneKind::ALL {
            let scene = SceneProfile::paper_reference(kind);
            let n = max_trainable_gaussians(SystemKind::Clm, &device, &scene);
            let pinned = pinned_memory_required(n);
            assert!(
                (pinned as f64) < 0.5 * device.host_memory_bytes as f64,
                "{kind} on {}: pinned {:.1} GB exceeds half of host memory",
                device.name,
                pinned as f64 / GIB as f64
            );
        }
    }
}
