//! Conformance leg for the multi-tenant service: eviction → `.clmckpt` →
//! resume must be bit-identical to an uninterrupted run, under contention
//! and across a densification boundary.
//!
//! The chaos suite proves kill/restore bit-identity for a single backend;
//! this leg proves the same invariant when the *service* drives the
//! checkpoint as a capacity policy — with a second tenant competing for the
//! timeline, the fairness scheduler interleaving batches, and the session's
//! granted window and staging budget re-applied on resume.

use clm_repro::clm_core::{DensifyConfig, DensifySchedule, SystemKind, TrainConfig};
use clm_repro::clm_serve::{
    ClmServe, SceneRegistry, ServeConfig, SessionId, SessionState, StepOutcome, TenantSpec,
};
use clm_repro::clm_trace::Checkpoint;
use clm_repro::gs_scene::{DatasetConfig, InitConfig, SceneKind};

const SERVE_SEED: u64 = 907;

fn serve_registry() -> SceneRegistry {
    let mut registry = SceneRegistry::new();
    registry.register(
        "conformance",
        SceneKind::Rubble,
        DatasetConfig {
            num_gaussians: 200,
            num_views: 6,
            width: 32,
            height: 24,
            seed: SERVE_SEED,
        },
    );
    registry
}

fn densifying_tenant(name: &str) -> TenantSpec {
    let mut spec = TenantSpec::new(
        name,
        "conformance",
        TrainConfig {
            system: SystemKind::Clm,
            batch_size: 3,
            seed: SERVE_SEED + 1,
            densify: Some(DensifySchedule {
                every_batches: 2,
                config: DensifyConfig {
                    grad_threshold: 1.0e-5,
                    prune_opacity: 0.305,
                    max_gaussians: 140,
                    seed: SERVE_SEED + 2,
                    ..Default::default()
                },
            }),
            ..Default::default()
        },
        InitConfig {
            num_gaussians: 100,
            initial_opacity: 0.3,
            seed: SERVE_SEED + 3,
            ..Default::default()
        },
    );
    spec.target_batches = 8;
    spec
}

fn competitor(name: &str) -> TenantSpec {
    let mut spec = TenantSpec::new(
        name,
        "conformance",
        TrainConfig {
            system: SystemKind::Clm,
            batch_size: 3,
            seed: SERVE_SEED + 10,
            ..Default::default()
        },
        InitConfig {
            num_gaussians: 60,
            initial_opacity: 0.3,
            seed: SERVE_SEED + 11,
            ..Default::default()
        },
    );
    spec.target_batches = 8;
    spec
}

/// Runs the victim tenant to completion alongside a competitor, evicting
/// and resuming the victim at the given batch counts.  Returns the victim's
/// final `.clmckpt` bytes.
fn run_with_evictions(evict_at: &[u64]) -> Vec<u8> {
    let mut serve = ClmServe::new(serve_registry(), ServeConfig::default());
    let victim: SessionId = serve.admit(densifying_tenant("victim")).unwrap().id();
    serve.admit(competitor("rival")).unwrap();

    let mut pending: Vec<u64> = evict_at.to_vec();
    let mut guard = 0;
    while !serve.all_done() {
        guard += 1;
        assert!(guard < 10_000, "conformance serve leg failed to drain");
        if serve.session(victim).map(|s| s.state) == Some(SessionState::Evicted) {
            serve.resume(victim).expect("slot is free after eviction");
        }
        match serve.step() {
            StepOutcome::Ran { .. } => {}
            StepOutcome::Idle => continue,
        }
        let batches = serve.session(victim).unwrap().stats.batches;
        if pending.first() == Some(&batches)
            && serve.session(victim).map(|s| s.state) == Some(SessionState::Active)
        {
            serve.evict(victim).expect("evict the victim");
            pending.remove(0);
        }
    }
    assert!(pending.is_empty(), "eviction triggers never fired");

    let session = serve.session(victim).unwrap();
    assert_eq!(session.state, SessionState::Completed);
    assert_eq!(session.stats.batches, 8);
    assert_eq!(session.stats.evictions, evict_at.len() as u64);
    assert_eq!(session.stats.resumes, evict_at.len() as u64);
    session
        .evicted
        .as_ref()
        .expect("completion checkpoint")
        .checkpoint
        .clone()
}

#[test]
fn service_evict_resume_is_bit_identical_across_a_densify_boundary() {
    // Reference: no evictions. Interrupted: evicted twice — once straddling
    // the densification cadence (after batch 3) and once right after a
    // boundary (after batch 6) — and resumed from `.clmckpt` each time.
    let uninterrupted = run_with_evictions(&[]);
    let interrupted = run_with_evictions(&[3, 6]);

    // The container itself is well-formed and reports the same trajectory.
    let a = Checkpoint::decode(&uninterrupted).expect("reference decodes");
    let b = Checkpoint::decode(&interrupted).expect("interrupted decodes");
    assert_eq!(a.batches_trained, 8);
    assert_eq!(b.batches_trained, 8);
    assert!(
        a.resize_events >= 2,
        "the leg must cross densify boundaries"
    );
    assert_eq!(a.resize_events, b.resize_events);

    // Bit-identity: byte-for-byte equal checkpoints (model, Adam moments,
    // gradient norms, offload counters, resize history).
    assert_eq!(
        uninterrupted, interrupted,
        "service evict/resume changed the numerics"
    );
}
