//! Chaos leg of the cross-backend conformance suite.
//!
//! The fault-injection contract mirrors the scheduling contract the rest of
//! the suite enforces: faults (and the retries, backoff and repartitioning
//! that recover from them) change *when and where* work runs, never *what*
//! is computed.  Three gates, all on the seeded densifying scenario:
//!
//! 1. A seeded [`FaultPlan`] of transient op failures plus a straggling lane,
//!    replayed through every backend, leaves the trajectory bit-identical to
//!    the fault-free reference.
//! 2. A run killed at a batch boundary, snapshotted to the `.clmckpt` byte
//!    format, decoded and restored into a fresh engine finishes the
//!    remaining batches bit-identically — through every backend.
//! 3. A [`ShardedEngine`] that permanently loses devices (4 → 2) mid-run
//!    drains at the boundary, repartitions onto the survivors and finishes
//!    bit-identical to the fault-free run (which is itself device-count
//!    invariant).

use clm_repro::clm_runtime::{
    ExecutionBackend, PipelinedEngine, RuntimeConfig, ShardedEngine, ThreadedBackend,
    ThreadedConfig,
};
use clm_repro::clm_trace::Checkpoint;
use clm_repro::sim_device::{FaultPlan, FaultSpec, Lane};

use crate::harness::*;

fn runtime_config(devices: usize) -> RuntimeConfig {
    RuntimeConfig {
        prefetch_window: 2,
        num_devices: devices,
        ..Default::default()
    }
}

fn threaded_config() -> ThreadedConfig {
    ThreadedConfig {
        prefetch_window: 2,
        ..Default::default()
    }
}

/// The seeded chaos schedule the matrix runs: a high transient rate on the
/// injectable op kinds plus a straggling communication lane.  Dialled up far
/// beyond anything realistic so every backend demonstrably recovers.
fn chaos_spec() -> FaultSpec {
    FaultSpec::new(0xC4A05)
        .with_transients(0.5, 32)
        .with_straggler(Lane::GpuComm, 3.0, 6)
}

#[test]
fn injected_faults_never_change_the_trajectory() {
    let scenario = densifying_scenario();
    let reference = run_reference(&scenario, EPOCHS);
    assert_densification_exercised(&reference);

    let plan = FaultPlan::new(chaos_spec());
    let mut pipelined = PipelinedEngine::new(
        scenario.init.clone(),
        scenario.train.clone(),
        runtime_config(1),
    );
    pipelined.install_fault_plan(plan.clone());
    let t = run_backend(&mut pipelined, &scenario, EPOCHS);
    assert_trajectories_match(&reference, &t, "pipelined+faults");
    let stats = plan.stats();
    assert!(stats.transients > 0, "plan injected nothing: {stats:?}");
    assert!(stats.straggled_ops > 0, "straggler never fired: {stats:?}");
    assert_eq!(stats.aborts, 0, "recovery must not abort: {stats:?}");

    let plan = FaultPlan::new(chaos_spec());
    let mut threaded = ThreadedBackend::new(
        scenario.init.clone(),
        scenario.train.clone(),
        threaded_config(),
    );
    threaded.install_fault_plan(plan.clone());
    let t = run_backend(&mut threaded, &scenario, EPOCHS);
    assert_trajectories_match(&reference, &t, "threaded+faults");
    let stats = plan.stats();
    assert!(stats.transients > 0, "plan injected nothing: {stats:?}");
    assert_eq!(stats.aborts, 0, "recovery must not abort: {stats:?}");

    for devices in conformance_devices() {
        let plan = FaultPlan::new(chaos_spec());
        let mut sharded = ShardedEngine::new(
            scenario.init.clone(),
            scenario.train.clone(),
            runtime_config(devices),
            &scenario.dataset.cameras,
        );
        sharded.install_fault_plan(plan.clone());
        let t = run_backend(&mut sharded, &scenario, EPOCHS);
        assert_trajectories_match(&reference, &t, &format!("sharded@{devices}+faults"));
        let stats = plan.stats();
        assert!(stats.transients > 0, "plan injected nothing: {stats:?}");
        assert_eq!(stats.aborts, 0, "recovery must not abort: {stats:?}");
    }
}

/// Runs `backend` over `slices[from..to]` (one flattened multi-epoch batch
/// sequence) and extends the trajectory capture in place.
fn run_slice_range<B: ExecutionBackend>(
    backend: &mut B,
    scenario: &Scenario,
    slices: &[std::ops::Range<usize>],
    from: usize,
    to: usize,
    trajectory: &mut Trajectory,
) {
    for range in &slices[from..to] {
        let report = backend.execute_batch(
            &scenario.dataset.cameras[range.clone()],
            &scenario.targets[range.clone()],
        );
        trajectory.resizes.push(report.resize);
        trajectory.reports.push(report.batch);
        trajectory.model_sizes.push(backend.trainer().model().len());
    }
}

/// All batch slices of the full acceptance run, in trajectory order.
fn all_slices(scenario: &Scenario) -> Vec<std::ops::Range<usize>> {
    let per_epoch = batch_slices(scenario.dataset.cameras.len(), scenario.train.batch_size);
    let mut slices = Vec::new();
    for _ in 0..EPOCHS {
        slices.extend(per_epoch.iter().cloned());
    }
    slices
}

#[test]
fn kill_and_restore_from_checkpoint_is_bit_identical() {
    let scenario = densifying_scenario();
    let reference = run_reference(&scenario, EPOCHS);
    assert_densification_exercised(&reference);
    let slices = all_slices(&scenario);
    // Kill past the first densify boundary so the snapshot carries a
    // non-trivial cursor, accumulated gradient norms and resize history.
    let kill_at = slices.len() / 2 + 1;
    assert!(
        kill_at < slices.len(),
        "the kill must leave batches to replay"
    );

    // Pipelined: train to the kill point, snapshot through the full byte
    // round-trip, restore into a fresh engine, finish.
    let mut first = PipelinedEngine::new(
        scenario.init.clone(),
        scenario.train.clone(),
        runtime_config(1),
    );
    let mut trajectory = Trajectory {
        reports: Vec::new(),
        model_sizes: Vec::new(),
        resizes: Vec::new(),
        final_model: clm_repro::gs_core::GaussianModel::new(),
    };
    run_slice_range(&mut first, &scenario, &slices, 0, kill_at, &mut trajectory);
    let ratio = first.window_selector().smoothed_ratio();
    let bytes = Checkpoint::capture(first.trainer(), ratio).encode();
    drop(first); // the "kill": nothing survives but the checkpoint bytes

    let decoded = Checkpoint::decode(&bytes).expect("checkpoint bytes round-trip");
    assert_eq!(decoded.batches_trained, kill_at as u64);
    let trainer = decoded
        .restore(scenario.train.clone())
        .expect("checkpoint restores against the run's config");
    let mut config = runtime_config(1);
    config.warm_start_ratio = decoded.warm_start_ratio;
    let mut resumed = PipelinedEngine::with_trainer(trainer, config);
    run_slice_range(
        &mut resumed,
        &scenario,
        &slices,
        kill_at,
        slices.len(),
        &mut trajectory,
    );
    trajectory.final_model = resumed.trainer().model().clone();
    assert_trajectories_match(&reference, &trajectory, "pipelined kill+restore");

    // Threaded and sharded: same snapshot protocol, restored into their own
    // backend kinds (the checkpoint is backend-agnostic trainer state).
    let mut first = ThreadedBackend::new(
        scenario.init.clone(),
        scenario.train.clone(),
        threaded_config(),
    );
    let mut trajectory = Trajectory {
        reports: Vec::new(),
        model_sizes: Vec::new(),
        resizes: Vec::new(),
        final_model: clm_repro::gs_core::GaussianModel::new(),
    };
    run_slice_range(&mut first, &scenario, &slices, 0, kill_at, &mut trajectory);
    let bytes = Checkpoint::capture(first.trainer(), None).encode();
    drop(first);
    let trainer = Checkpoint::decode(&bytes)
        .expect("checkpoint bytes round-trip")
        .restore(scenario.train.clone())
        .expect("checkpoint restores against the run's config");
    let mut resumed = ThreadedBackend::with_trainer(trainer, threaded_config());
    run_slice_range(
        &mut resumed,
        &scenario,
        &slices,
        kill_at,
        slices.len(),
        &mut trajectory,
    );
    trajectory.final_model = resumed.trainer().model().clone();
    assert_trajectories_match(&reference, &trajectory, "threaded kill+restore");

    let mut first = ShardedEngine::new(
        scenario.init.clone(),
        scenario.train.clone(),
        runtime_config(2),
        &scenario.dataset.cameras,
    );
    let mut trajectory = Trajectory {
        reports: Vec::new(),
        model_sizes: Vec::new(),
        resizes: Vec::new(),
        final_model: clm_repro::gs_core::GaussianModel::new(),
    };
    run_slice_range(&mut first, &scenario, &slices, 0, kill_at, &mut trajectory);
    let bytes = Checkpoint::capture(first.trainer(), None).encode();
    drop(first);
    let trainer = Checkpoint::decode(&bytes)
        .expect("checkpoint bytes round-trip")
        .restore(scenario.train.clone())
        .expect("checkpoint restores against the run's config");
    let mut resumed =
        ShardedEngine::with_trainer(trainer, runtime_config(2), &scenario.dataset.cameras);
    run_slice_range(
        &mut resumed,
        &scenario,
        &slices,
        kill_at,
        slices.len(),
        &mut trajectory,
    );
    trajectory.final_model = resumed.trainer().model().clone();
    assert_trajectories_match(&reference, &trajectory, "sharded kill+restore");
}

#[test]
fn device_loss_mid_run_finishes_bit_identically() {
    let scenario = densifying_scenario();
    let reference = run_reference(&scenario, EPOCHS);
    assert_densification_exercised(&reference);

    // Lose half the devices after the second batch; the survivors must
    // carry the run to the same final bits as the fault-free reference
    // (the trajectory is device-count invariant, so "same as D=2" and
    // "same as the reference" are the same gate).
    let plan = FaultPlan::new(FaultSpec::new(0xDEAD).with_device_loss(2, 2));
    let mut sharded = ShardedEngine::new(
        scenario.init.clone(),
        scenario.train.clone(),
        runtime_config(4),
        &scenario.dataset.cameras,
    );
    sharded.install_fault_plan(plan.clone());
    let t = run_backend(&mut sharded, &scenario, EPOCHS);
    assert_trajectories_match(&reference, &t, "sharded device-loss 4->2");
    assert_eq!(plan.stats().device_losses, 1, "the loss fires exactly once");
    assert_eq!(sharded.config().num_devices, 2);
    assert_eq!(sharded.partition().device_counts().len(), 2);
    assert_eq!(
        sharded.partition().device_counts().iter().sum::<usize>(),
        t.final_model.len(),
        "the post-loss repartition must cover the whole model"
    );
}
