//! Cross-backend conformance suite for densification under the runtime.
//!
//! Replays one seeded densifying run — two resize boundaries, net growth
//! and net prune both exercised — through all four trainers (`Trainer`,
//! `PipelinedEngine`, `ThreadedBackend`, `ShardedEngine` at devices
//! {1, 2, 4}) and asserts trajectory **bit-identity**, pinned-pool
//! accounting and report invariants.  CI runs this as
//! `cargo test --test conformance` in every leg of the shard matrix, with
//! `CONFORMANCE_DEVICES` narrowing the sharded legs to the matrix's device
//! count.

mod chaos;
mod harness;
mod serve;

use clm_repro::clm_core::SystemKind;
use clm_repro::clm_runtime::{
    ExecutionBackend, PipelinedEngine, PrefetchPolicy, RuntimeConfig, ShardedEngine,
    ThreadedBackend, ThreadedConfig, WarmStartCache,
};
use clm_repro::sim_device::{Lane, OpKind};
use harness::*;

fn runtime_config(devices: usize) -> RuntimeConfig {
    RuntimeConfig {
        prefetch_window: 2,
        num_devices: devices,
        ..Default::default()
    }
}

fn threaded_config() -> ThreadedConfig {
    ThreadedConfig {
        prefetch_window: 2,
        ..Default::default()
    }
}

#[test]
fn scenario_exercises_growth_and_prune_at_two_boundaries() {
    // The suite is only as strong as its workload: the seeded run must
    // actually cross two densification boundaries, one net-growing and one
    // net-pruning, or every bit-identity assertion below is vacuous.
    let scenario = densifying_scenario();
    let reference = run_reference(&scenario, EPOCHS);
    assert_densification_exercised(&reference);
    assert_eq!(reference.resize_events(), 2);
}

#[test]
fn densifying_run_is_bit_identical_across_all_backends_and_device_counts() {
    // The acceptance criterion: the same seeded densifying run, replayed
    // through every execution backend, produces the same trajectory bit for
    // bit — losses, orders, traffic, model sizes at every boundary and the
    // final parameters.
    let scenario = densifying_scenario();
    let reference = run_reference(&scenario, EPOCHS);
    assert_densification_exercised(&reference);

    let mut pipelined = PipelinedEngine::new(
        scenario.init.clone(),
        scenario.train.clone(),
        runtime_config(1),
    );
    let t = run_backend(&mut pipelined, &scenario, EPOCHS);
    assert_trajectories_match(&reference, &t, "pipelined");

    let mut threaded = ThreadedBackend::new(
        scenario.init.clone(),
        scenario.train.clone(),
        threaded_config(),
    );
    let t = run_backend(&mut threaded, &scenario, EPOCHS);
    assert_trajectories_match(&reference, &t, "threaded");

    for devices in conformance_devices() {
        let mut sharded = ShardedEngine::new(
            scenario.init.clone(),
            scenario.train.clone(),
            runtime_config(devices),
            &scenario.dataset.cameras,
        );
        let t = run_backend(&mut sharded, &scenario, EPOCHS);
        assert_trajectories_match(&reference, &t, &format!("sharded@{devices}"));
        // The boundary repartition covered the resized population: every
        // Gaussian of the final model has exactly one owner.
        assert_eq!(sharded.partition().len(), t.final_model.len());
        assert_eq!(
            sharded.partition().device_counts().iter().sum::<usize>(),
            t.final_model.len()
        );
    }
}

#[test]
fn pool_accounting_survives_resizes() {
    // The pinned staging pool must come out of a densifying run balanced:
    // no leaked buffers, one re-lease per boundary, and the high-water mark
    // still within the window's buffer budget.
    let scenario = densifying_scenario();

    let mut pipelined = PipelinedEngine::new(
        scenario.init.clone(),
        scenario.train.clone(),
        runtime_config(1),
    );
    let t = run_backend(&mut pipelined, &scenario, EPOCHS);
    let stats = pipelined.pool_stats();
    assert_eq!(stats.outstanding, 0, "pipelined leaked staging buffers");
    assert_eq!(
        stats.reprovisions,
        t.resize_events() as u64,
        "one pool re-lease per densify boundary"
    );
    assert_eq!(
        stats.high_water_buffers,
        2 + 1,
        "window 2 still needs exactly window+1 buffers across resizes"
    );

    let mut threaded = ThreadedBackend::new(
        scenario.init.clone(),
        scenario.train.clone(),
        threaded_config(),
    );
    let t = run_backend(&mut threaded, &scenario, EPOCHS);
    let stats = threaded.pool_stats();
    assert_eq!(stats.outstanding, 0, "threaded leaked staging buffers");
    assert_eq!(stats.reprovisions, t.resize_events() as u64);
    assert!(
        stats.high_water_buffers <= 2 + 1,
        "threaded must stay within the window+1 budget: {stats:?}"
    );
}

#[test]
fn report_invariants_hold_across_resizes() {
    // Per-iteration reports must stay coherent while the model resizes: the
    // timeline's communication volume equals the batch accounting, resize
    // ops appear exactly at boundaries, and the boundary cost lands on the
    // host scheduler lane.
    let scenario = densifying_scenario();
    let mut engine = PipelinedEngine::new(
        scenario.init.clone(),
        scenario.train.clone(),
        runtime_config(1),
    );
    for _ in 0..EPOCHS {
        for range in batch_slices(scenario.dataset.cameras.len(), scenario.train.batch_size) {
            let report = engine.run_batch(
                &scenario.dataset.cameras[range.clone()],
                &scenario.targets[range],
            );
            assert!(report.makespan() > 0.0);
            assert_eq!(report.comm_bytes_h2d(), report.batch.bytes_loaded);
            assert_eq!(report.comm_bytes_d2h(), report.batch.bytes_stored);
            let resize_time = report.timeline.time_by_kind(OpKind::Resize);
            match report.resize {
                Some(r) => {
                    assert!(
                        resize_time > 0.0,
                        "boundary batch must cost a Resize op: {r:?}"
                    );
                    assert!(report.lane(Lane::CpuScheduler).busy >= resize_time);
                }
                None => assert_eq!(resize_time, 0.0, "no Resize op off-boundary"),
            }
        }
    }
    assert_eq!(engine.trainer().resize_events(), 2);
}

#[test]
fn warm_start_ratio_survives_a_mid_epoch_resize() {
    // The EWMA prefetch state is scheduling state, not model state: a
    // densification boundary must not reset the tracked fetch/compute ratio
    // back to the seed window, and the trained ratio must still round-trip
    // through the WarmStartCache.
    let scenario = densifying_scenario();
    let config = RuntimeConfig {
        prefetch_window: 2,
        policy: PrefetchPolicy::Ewma {
            alpha: 0.3,
            min: 1,
            max: 8,
        },
        // Paper-scale costing keeps the run in the bandwidth-bound regime
        // where the adaptive window is non-trivial.
        cost_scale: 1000.0,
        ..Default::default()
    };
    let mut engine = PipelinedEngine::new(scenario.init.clone(), scenario.train.clone(), config);

    let slices = batch_slices(scenario.dataset.cameras.len(), scenario.train.batch_size);
    let mut ratio_before_boundary = None;
    let mut boundary_window = None;
    for _ in 0..EPOCHS {
        for range in &slices {
            let tracked = engine.window_selector().smoothed_ratio();
            let report = engine.run_batch(
                &scenario.dataset.cameras[range.clone()],
                &scenario.targets[range.clone()],
            );
            if report.resize.is_some() && ratio_before_boundary.is_none() {
                ratio_before_boundary = tracked;
                boundary_window = Some(report.prefetch_window);
            }
        }
    }
    let ratio = ratio_before_boundary
        .expect("the run crosses a boundary after at least one observed batch");
    // The boundary batch chose its window from the ratio tracked *before*
    // the resize — the selector survived, it did not reset to the seed.
    let expected = PrefetchPolicy::Ewma {
        alpha: 0.3,
        min: 1,
        max: 8,
    }
    .choose_window(2, Some(ratio));
    assert_eq!(boundary_window, Some(expected));
    // And the post-run smoothed ratio still records into the per-scene
    // cache for future warm starts.
    let mut cache = WarmStartCache::new();
    assert!(cache.record("conformance-rubble", engine.window_selector()));
    assert!(cache.ratio("conformance-rubble").is_some());
}

#[test]
fn non_clm_systems_densify_identically_too() {
    // Densification is planned from the shared gradient trajectory, so the
    // comparison systems must resize at the same boundaries with the same
    // row sets — through the runtime as well as the synchronous trainer.
    let scenario = densifying_scenario();
    for system in [SystemKind::EnhancedBaseline, SystemKind::NaiveOffload] {
        let mut train = scenario.train.clone();
        train.system = system;
        let sys_scenario = Scenario {
            dataset: scenario.dataset.clone(),
            targets: scenario.targets.clone(),
            init: scenario.init.clone(),
            train,
        };
        let reference = run_reference(&sys_scenario, 1);
        let mut engine = PipelinedEngine::new(
            sys_scenario.init.clone(),
            sys_scenario.train.clone(),
            runtime_config(1),
        );
        let t = run_backend(&mut engine, &sys_scenario, 1);
        assert_trajectories_match(&reference, &t, &format!("{system}"));
        assert!(t.resize_events() >= 1, "{system}: run never densified");
    }
}

#[test]
fn execute_epoch_reports_carry_the_resize_boundaries() {
    // The epoch-level driver (what the benchmark harness uses) must surface
    // the same boundaries the batch-level driver sees.
    let scenario = densifying_scenario();
    let mut threaded = ThreadedBackend::new(
        scenario.init.clone(),
        scenario.train.clone(),
        threaded_config(),
    );
    let mut boundaries = 0;
    for _ in 0..EPOCHS {
        let reports = threaded.execute_epoch(&scenario.dataset, &scenario.targets);
        boundaries += reports.iter().filter(|r| r.resize.is_some()).count();
        for r in &reports {
            assert!(r.wall_seconds > 0.0);
            assert!(r.lanes.compute > 0.0);
        }
    }
    assert_eq!(boundaries, 2);
    assert_eq!(threaded.trainer().resize_events(), 2);
}
