//! Shared cross-backend conformance harness for densifying training runs.
//!
//! Every execution backend in this workspace — the synchronous
//! `clm_core::Trainer`, the simulated `PipelinedEngine`, the
//! `ThreadedBackend` and the multi-device `ShardedEngine` — claims the same
//! contract: scheduling changes *when and where* work runs, never *what* is
//! computed.  Mid-epoch densification is the hardest case of that contract,
//! because the model, the optimiser state, the offloaded host store and the
//! pinned staging pool all resize while training is under way.  This module
//! is the one shared definition of the test: a seeded densifying scenario
//! (at least two resize boundaries; net growth and net prune both
//! exercised), a [`Trajectory`] capture, and the bit-identity assertions.
//!
//! It is included via `#[path]` from `tests/conformance/main.rs` (the
//! cross-backend suite CI runs as `cargo test --test conformance`) **and**
//! from each backend's own integration test, so a new backend cannot land
//! without replaying the same lifecycle.

#![allow(dead_code)]

use clm_repro::clm_core::{
    ground_truth_images, BatchReport, DensifyConfig, DensifyReport, DensifySchedule, SystemKind,
    TrainConfig, Trainer,
};
use clm_repro::clm_runtime::ExecutionBackend;
use clm_repro::gs_core::GaussianModel;
use clm_repro::gs_render::Image;
use clm_repro::gs_scene::{
    generate_dataset, init_from_point_cloud, Dataset, DatasetConfig, InitConfig, SceneKind,
    SceneSpec,
};

/// Canonical seed of the acceptance scenario.
pub const SEED: u64 = 7;

/// Epochs the acceptance run trains (enough for two densify boundaries).
pub const EPOCHS: usize = 2;

/// Device counts the cross-backend suite replays the run at, unless the
/// `CONFORMANCE_DEVICES` environment variable (a comma-separated list, set
/// by CI's shard matrix) narrows it.
pub const DEFAULT_DEVICES: [usize; 3] = [1, 2, 4];

/// Gaussians the trained model starts with.
pub const INIT_GAUSSIANS: usize = 150;

/// Hard cap on the model size (keeps the run bounded if the scenario's
/// growth dynamics ever shift).
pub const MAX_GAUSSIANS: usize = INIT_GAUSSIANS + 40;

/// The device counts to run the sharded conformance legs at.
pub fn conformance_devices() -> Vec<usize> {
    std::env::var("CONFORMANCE_DEVICES")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse::<usize>().ok())
                .filter(|&d| d >= 1)
                .collect::<Vec<_>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| DEFAULT_DEVICES.to_vec())
}

/// One seeded densifying workload: dataset, ground truth, initial model and
/// the training configuration (densify cadence included).
pub struct Scenario {
    pub dataset: Dataset,
    pub targets: Vec<Image>,
    pub init: GaussianModel,
    pub train: TrainConfig,
}

/// The acceptance scenario: a Rubble-like scene whose run densifies at two
/// mid-epoch boundaries.  The first boundary is a **net prune**: the splats
/// no view has touched yet sit at their initial opacity, just under the
/// prune threshold, so the prune phase removes far more rows than the
/// densify phase splits.  The second boundary is **net growth**: every
/// survivor has trained its opacity above the threshold, so nothing prunes
/// while the high-gradient splats keep splitting.
pub fn densifying_scenario() -> Scenario {
    scenario_with_cadence(2)
}

/// The acceptance scenario at an explicit densify cadence (per-backend
/// hooks use cadence 1 so a single epoch still crosses two boundaries).
pub fn scenario_with_cadence(every_batches: usize) -> Scenario {
    let dataset = generate_dataset(
        &SceneSpec::of(SceneKind::Rubble),
        &DatasetConfig {
            num_gaussians: 400,
            num_views: 12,
            width: 40,
            height: 30,
            seed: SEED,
        },
    );
    let targets = ground_truth_images(&dataset);
    let init = init_from_point_cloud(
        &dataset.ground_truth,
        &InitConfig {
            num_gaussians: INIT_GAUSSIANS,
            initial_opacity: 0.3,
            seed: SEED + 1,
            ..Default::default()
        },
    );
    let train = TrainConfig {
        system: SystemKind::Clm,
        batch_size: 4,
        seed: SEED,
        densify: Some(DensifySchedule {
            every_batches,
            config: DensifyConfig {
                grad_threshold: GRAD_THRESHOLD,
                prune_opacity: PRUNE_OPACITY,
                max_gaussians: MAX_GAUSSIANS,
                seed: SEED + 2,
                ..Default::default()
            },
        }),
        ..Default::default()
    };
    Scenario {
        dataset,
        targets,
        init,
        train,
    }
}

/// Densification criterion: accumulated positional-gradient norm above which
/// a Gaussian clones/splits (low enough that every touched splat qualifies,
/// so both boundaries densify).
pub const GRAD_THRESHOLD: f32 = 1.0e-5;

/// Opacity below which a Gaussian is pruned.  Set just **above** the
/// initial opacity (0.3): splats still untouched at a boundary sit exactly
/// at the initial value and prune, while trained splats have pushed their
/// opacity upwards and survive — which makes the first boundary a heavy net
/// prune and the second a net growth, deterministically.
pub const PRUNE_OPACITY: f32 = 0.305;

/// Everything a densifying run commits to, captured batch by batch.  Two
/// backends executed the same trajectory iff their captures are equal —
/// `BatchReport` carries the exact loss, order and traffic, `model_sizes`
/// the resize dynamics, `resizes` the boundary reports, and `final_model`
/// every trained parameter bit.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    pub reports: Vec<BatchReport>,
    pub model_sizes: Vec<usize>,
    pub resizes: Vec<Option<DensifyReport>>,
    pub final_model: GaussianModel,
}

impl Trajectory {
    /// Number of applied resize boundaries.
    pub fn resize_events(&self) -> usize {
        self.resizes.iter().flatten().count()
    }
}

/// The view ranges of one epoch, in trajectory order.
pub fn batch_slices(num_views: usize, batch_size: usize) -> Vec<std::ops::Range<usize>> {
    let batch = batch_size.max(1);
    let mut slices = Vec::new();
    let mut start = 0;
    while start < num_views {
        let end = (start + batch).min(num_views);
        slices.push(start..end);
        start = end;
    }
    slices
}

/// Replays the scenario through the synchronous reference trainer.
pub fn run_reference(scenario: &Scenario, epochs: usize) -> Trajectory {
    let mut trainer = Trainer::new(scenario.init.clone(), scenario.train.clone());
    let mut trajectory = Trajectory {
        reports: Vec::new(),
        model_sizes: Vec::new(),
        resizes: Vec::new(),
        final_model: GaussianModel::new(),
    };
    for _ in 0..epochs {
        for range in batch_slices(scenario.dataset.cameras.len(), scenario.train.batch_size) {
            let resize = trainer.pending_resize().map(|e| e.report());
            let report = trainer.train_batch(
                &scenario.dataset.cameras[range.clone()],
                &scenario.targets[range],
            );
            trajectory.resizes.push(resize);
            trajectory.reports.push(report);
            trajectory.model_sizes.push(trainer.model().len());
        }
    }
    trajectory.final_model = trainer.model().clone();
    trajectory
}

/// Replays the scenario through an execution backend, batch by batch (so the
/// model size can be captured at every boundary).
pub fn run_backend<B: ExecutionBackend>(
    backend: &mut B,
    scenario: &Scenario,
    epochs: usize,
) -> Trajectory {
    let mut trajectory = Trajectory {
        reports: Vec::new(),
        model_sizes: Vec::new(),
        resizes: Vec::new(),
        final_model: GaussianModel::new(),
    };
    for _ in 0..epochs {
        for range in batch_slices(scenario.dataset.cameras.len(), scenario.train.batch_size) {
            let report = backend.execute_batch(
                &scenario.dataset.cameras[range.clone()],
                &scenario.targets[range],
            );
            trajectory.resizes.push(report.resize);
            trajectory.reports.push(report.batch);
            trajectory.model_sizes.push(backend.trainer().model().len());
        }
    }
    trajectory.final_model = backend.trainer().model().clone();
    trajectory
}

/// Asserts two trajectories are **bit-identical**: same per-batch losses,
/// orders and traffic, same model sizes after every batch, same resize
/// boundaries, same final parameters.
pub fn assert_trajectories_match(reference: &Trajectory, other: &Trajectory, label: &str) {
    assert_eq!(
        reference.reports, other.reports,
        "{label}: per-batch reports diverged"
    );
    assert_eq!(
        reference.model_sizes, other.model_sizes,
        "{label}: model-size trajectory diverged"
    );
    assert_eq!(
        reference.resizes, other.resizes,
        "{label}: resize boundaries diverged"
    );
    assert_eq!(
        &reference.final_model, &other.final_model,
        "{label}: final model parameters diverged"
    );
}

/// Asserts the scenario actually exercised the densification lifecycle the
/// suite exists for: at least two boundaries, with net growth and net prune
/// both represented.
pub fn assert_densification_exercised(trajectory: &Trajectory) {
    let applied: Vec<&DensifyReport> = trajectory.resizes.iter().flatten().collect();
    assert!(
        applied.len() >= 2,
        "need at least two densify boundaries, got {}: {applied:?}",
        applied.len()
    );
    assert!(
        applied.iter().any(|r| r.net_growth() > 0),
        "no boundary produced net growth: {applied:?}"
    );
    assert!(
        applied.iter().any(|r| r.net_growth() < 0),
        "no boundary produced net prune: {applied:?}"
    );
    // Model sizes must reflect the boundaries (a resize before batch i shows
    // up as a size change relative to batch i-1).
    let mut size = trajectory.model_sizes[0];
    for (i, (&after, resize)) in trajectory
        .model_sizes
        .iter()
        .zip(&trajectory.resizes)
        .enumerate()
        .skip(1)
    {
        if let Some(report) = resize {
            assert_eq!(
                after as isize,
                size as isize + report.net_growth(),
                "batch {i}: size change does not match the boundary report"
            );
        } else {
            assert_eq!(after, size, "batch {i}: size changed without a boundary");
        }
        size = after;
    }
}
