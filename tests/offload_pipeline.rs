//! Integration tests of the offloading data path: frustum culling, the
//! attribute-wise offloaded store, cache planning and finalisation analysis
//! must agree with what the renderer actually touches.

use clm_repro::clm_core::{
    microbatch_stats_from_sets, CachePlan, FinalizationPlan, OffloadedModel,
};
use clm_repro::gs_core::{cull_frustum, VisibilitySet};
use clm_repro::gs_render::{l1_loss, render, render_backward, Image, RenderOptions};
use clm_repro::gs_scene::{generate_dataset, DatasetConfig, SceneKind, SceneSpec};

fn dataset() -> clm_repro::gs_scene::Dataset {
    generate_dataset(
        &SceneSpec::of(SceneKind::Rubble),
        &DatasetConfig {
            num_gaussians: 500,
            num_views: 12,
            width: 40,
            height: 30,
            seed: 33,
        },
    )
}

#[test]
fn culling_is_conservative_for_the_renderer() {
    // Every Gaussian that receives a gradient from rendering a view must be
    // in that view's culled visibility set — otherwise CLM would fail to
    // load a needed Gaussian.
    let ds = dataset();
    let model = &ds.ground_truth;
    for camera in ds.cameras.iter().take(6) {
        let visible = cull_frustum(model, camera);
        let out = render(model, camera, &RenderOptions::default());
        let target = Image::filled(40, 30, [0.1, 0.1, 0.1]);
        let loss = l1_loss(&out.image, &target);
        let grads = render_backward(model, camera, &out.aux, &loss.d_image);
        for (index, _) in grads.iter() {
            assert!(
                visible.contains(*index),
                "gaussian {index} got a gradient but was frustum-culled"
            );
        }
    }
}

#[test]
fn rendering_from_the_culled_set_matches_full_rendering() {
    // Pre-rendering frustum culling (§5.1) must not change the image.
    let ds = dataset();
    let model = &ds.ground_truth;
    for camera in ds.cameras.iter().take(4) {
        let visible = cull_frustum(model, camera);
        let full = render(model, camera, &RenderOptions::default());
        let culled = render(
            model,
            camera,
            &RenderOptions {
                background: [0.0; 3],
                visible: Some(visible.indices().to_vec()),
                ..RenderOptions::default()
            },
        );
        assert_eq!(full.image, culled.image);
    }
}

#[test]
fn offloaded_store_serves_exactly_the_working_set() {
    let ds = dataset();
    let model = &ds.ground_truth;
    let mut store = OffloadedModel::from_model(model);
    let sets: Vec<VisibilitySet> = ds
        .cameras
        .iter()
        .take(4)
        .map(|cam| cull_frustum(model, cam))
        .collect();

    let mut prev = VisibilitySet::new();
    for set in &sets {
        let plan = CachePlan::new(&prev, set);
        assert!(plan.is_consistent_with(&prev, set));
        // Gather only what the plan says must come over PCIe and verify the
        // rows match the dense model exactly.
        let rows = store.gather_non_critical(plan.fetched.indices());
        for (row, &idx) in rows.iter().zip(plan.fetched.indices()) {
            assert_eq!(*row, model.non_critical_row(idx as usize));
        }
        prev = set.clone();
    }
    // Traffic counters reflect exactly the fetched Gaussians.
    let plans: Vec<CachePlan> = {
        let mut prev = VisibilitySet::new();
        let mut out = Vec::new();
        for s in &sets {
            out.push(CachePlan::new(&prev, s));
            prev = s.clone();
        }
        out
    };
    let expected: u64 = plans.iter().map(|p| p.fetch_bytes()).sum();
    assert_eq!(store.bytes_gathered(), expected);
}

#[test]
fn microbatch_stats_agree_with_cache_and_finalization_plans() {
    let ds = dataset();
    let model = &ds.ground_truth;
    let sets: Vec<VisibilitySet> = ds
        .cameras
        .iter()
        .take(6)
        .map(|cam| cull_frustum(model, cam))
        .collect();
    let stats = microbatch_stats_from_sets(&sets);
    assert_eq!(stats.len(), sets.len());
    let finalization = FinalizationPlan::new(&sets);
    for (i, s) in stats.iter().enumerate() {
        assert_eq!(s.working_set as usize, sets[i].len());
        assert!(s.fetched <= s.working_set);
        assert_eq!(s.finalized as usize, finalization.finalized_by(i).len());
    }
    // Everything fetched across the batch covers the union exactly once.
    let total_fetched: u64 = stats.iter().map(|s| s.fetched).sum();
    let mut union = VisibilitySet::new();
    for s in &sets {
        union = union.union(s);
    }
    assert!(total_fetched >= union.len() as u64);
}
