//! Integration tests of multi-device sharded training: the `ShardedEngine`
//! (and the threaded backend's device rounds, and the trainer's own
//! `num_devices` waves) must reproduce the 1-device trainer's trajectory
//! **bit-for-bit** for device counts {1, 2, 4} across seeds — the shard-count
//! invariance CI's `shard-matrix` job gates at the benchmark level — while
//! the visibility-aware partitioner keeps the per-device footprint load
//! balanced and the per-device lane groups actually share the work.

use clm_repro::clm_core::{ground_truth_images, SystemKind, TrainConfig, Trainer};
use clm_repro::clm_runtime::{
    ExecutionBackend, RuntimeConfig, ShardedEngine, ThreadedBackend, ThreadedConfig,
};
use clm_repro::gs_scene::{
    generate_dataset, init_from_point_cloud, partition_by_footprint, DatasetConfig, InitConfig,
    SceneKind, SceneSpec,
};
use clm_repro::sim_device::{Lane, OpKind};

const DEVICE_COUNTS: [usize; 3] = [1, 2, 4];
const SEEDS: [u64; 3] = [11, 42, 97];

fn setup(
    seed: u64,
) -> (
    clm_repro::gs_scene::Dataset,
    Vec<clm_repro::gs_render::Image>,
    clm_repro::gs_core::GaussianModel,
) {
    let dataset = generate_dataset(
        &SceneSpec::of(SceneKind::Rubble),
        &DatasetConfig {
            num_gaussians: 400,
            num_views: 12,
            width: 40,
            height: 30,
            seed,
        },
    );
    let targets = ground_truth_images(&dataset);
    let init = init_from_point_cloud(
        &dataset.ground_truth,
        &InitConfig {
            num_gaussians: 150,
            seed: seed + 1,
            ..Default::default()
        },
    );
    (dataset, targets, init)
}

fn train_config(seed: u64) -> TrainConfig {
    TrainConfig {
        system: SystemKind::Clm,
        batch_size: 4,
        seed,
        ..Default::default()
    }
}

#[test]
fn sharded_engine_is_bit_identical_across_device_counts_and_seeds() {
    // The acceptance gate: two epochs per configuration; every per-batch
    // loss, the final parameters and the evaluated PSNR must equal the
    // synchronous 1-device trainer's exactly, for 3 seeds × device counts
    // {1, 2, 4}.
    for seed in SEEDS {
        let (dataset, targets, init) = setup(seed);
        let train = train_config(seed);

        let mut sync = Trainer::new(init.clone(), train.clone());
        let mut reference = Vec::new();
        for _ in 0..2 {
            reference.extend(sync.train_epoch(&dataset, &targets));
        }

        for devices in DEVICE_COUNTS {
            let mut sharded = ShardedEngine::new(
                init.clone(),
                train.clone(),
                RuntimeConfig {
                    num_devices: devices,
                    ..Default::default()
                },
                &dataset.cameras,
            );
            let mut reports = Vec::new();
            for _ in 0..2 {
                reports.extend(sharded.run_epoch(&dataset, &targets));
            }
            assert_eq!(reference.len(), reports.len());
            for (r, s) in reference.iter().zip(&reports) {
                assert_eq!(
                    r, &s.batch,
                    "seed {seed}, {devices} devices: sharded batch must match the \
                     synchronous trainer"
                );
            }
            assert_eq!(
                sharded.trainer().model(),
                sync.model(),
                "seed {seed}, {devices} devices: final parameters must be identical"
            );
            assert_eq!(
                sharded.evaluate_psnr(&dataset.cameras, &targets),
                sync.evaluate_psnr(&dataset.cameras, &targets),
                "seed {seed}, {devices} devices: PSNR trajectory must be identical"
            );
        }
    }
}

#[test]
fn threaded_device_rounds_are_bit_identical_across_device_counts() {
    for seed in [11u64, 42] {
        let (dataset, targets, init) = setup(seed);
        let train = train_config(seed);
        let mut sync = Trainer::new(init.clone(), train.clone());
        let reference = sync.train_epoch(&dataset, &targets);
        for devices in DEVICE_COUNTS {
            let mut threaded = ThreadedBackend::new(
                init.clone(),
                train.clone(),
                ThreadedConfig {
                    num_devices: devices,
                    ..Default::default()
                },
            );
            let reports = threaded.run_epoch(&dataset, &targets);
            for (r, t) in reference.iter().zip(&reports) {
                assert_eq!(r, &t.batch, "seed {seed}, {devices} devices");
            }
            assert_eq!(
                threaded.trainer().model(),
                sync.model(),
                "seed {seed}, {devices} devices"
            );
        }
    }
}

#[test]
fn trainer_num_devices_waves_are_bit_identical() {
    let (dataset, targets, init) = setup(7);
    let mut serial = Trainer::new(init.clone(), train_config(7));
    let reference = serial.train_epoch(&dataset, &targets);
    for devices in [2usize, 4] {
        let mut sharded = Trainer::new(
            init.clone(),
            TrainConfig {
                num_devices: devices,
                ..train_config(7)
            },
        );
        let reports = sharded.train_epoch(&dataset, &targets);
        assert_eq!(reference, reports, "{devices} devices");
        assert_eq!(serial.model(), sharded.model(), "{devices} devices");
    }
}

#[test]
fn partitioner_balances_projected_footprint_load() {
    // The partition the sharded engine runs on must spread the
    // projected-footprint load: max/min device load bounded, no empty
    // devices, every Gaussian owned exactly once.
    let (dataset, _, init) = setup(42);
    for devices in [2usize, 4] {
        let partition = partition_by_footprint(&init, &dataset.cameras, devices);
        assert_eq!(partition.num_devices(), devices);
        assert_eq!(partition.len(), init.len());
        assert_eq!(partition.device_counts().iter().sum::<usize>(), init.len());
        assert!(
            partition.device_counts().iter().all(|&c| c > 0),
            "{devices} devices: no device may be empty: {:?}",
            partition.device_counts()
        );
        let imbalance = partition.load_imbalance();
        assert!(
            imbalance < 1.5,
            "{devices} devices: footprint imbalance {imbalance} (loads {:?})",
            partition.device_footprints()
        );
    }
}

#[test]
fn sharded_schedule_uses_every_device_lane_group() {
    let (dataset, targets, init) = setup(11);
    let devices = 4;
    let mut sharded = ShardedEngine::new(
        init,
        TrainConfig {
            batch_size: 8,
            ..train_config(11)
        },
        RuntimeConfig {
            num_devices: devices,
            ..Default::default()
        },
        &dataset.cameras,
    );
    let report = sharded.execute_batch(&dataset.cameras[..8], &targets[..8]);
    assert_eq!(report.device_lanes.len(), devices);
    for (dev, lanes) in report.device_lanes.iter().enumerate() {
        assert!(lanes.compute > 0.0, "device {dev} compute lane idle");
        assert!(lanes.comm > 0.0, "device {dev} comm lane idle");
        assert!(lanes.adam > 0.0, "device {dev} adam lane idle");
    }
    // The summed lanes are exactly the per-device breakdown.
    let total: f64 = report.device_lanes.iter().map(|l| l.compute).sum();
    assert!((report.lanes.compute - total).abs() < 1e-12);
    assert!(report.sim_makespan.is_some());
    assert_eq!(report.views, 8);
}

#[test]
fn sharded_allreduce_and_traffic_accounting_hold() {
    let (dataset, targets, init) = setup(42);
    let mut sharded = ShardedEngine::new(
        init,
        train_config(42),
        RuntimeConfig {
            num_devices: 2,
            ..Default::default()
        },
        &dataset.cameras,
    );
    let report = sharded.run_batch(&dataset.cameras[..4], &targets[..4]);
    // Parameter/gradient traffic on the timeline still matches the batch
    // accounting (the per-device split never invents or loses bytes)…
    assert_eq!(report.comm_bytes_h2d(), report.batch.bytes_loaded);
    assert_eq!(report.comm_bytes_d2h(), report.batch.bytes_stored);
    // …and the fixed-order reduction actually appears on the comm lanes.
    assert!(report.timeline.bytes_by_kind(OpKind::AllReduce) > 0);
    assert!(report.timeline.time_by_kind(OpKind::AllReduce) > 0.0);
    // With two shards of one scene, some staged rows cross shards.
    assert!(sharded.cross_shard_rows() > 0);
    assert!(sharded.local_rows() > 0);
    let staged = sharded.local_rows() + sharded.cross_shard_rows();
    assert_eq!(
        staged,
        sharded.trainer().offloaded().bytes_gathered()
            / clm_repro::clm_core::NON_CRITICAL_BYTES as u64,
        "every staged row is either local or cross-shard"
    );
}

#[test]
fn sharded_pool_high_water_scales_with_device_lanes() {
    // Each device lane group keeps its own prefetch frontier in the shared
    // pinned pool: with D devices and window W the high-water mark is
    // D × (W + 1) buffers (capped by each device's local sequence length),
    // and everything is returned by batch end.
    let (dataset, targets, init) = setup(97);
    for (devices, window, expected) in [(1usize, 1usize, 2usize), (2, 1, 4), (4, 0, 4)] {
        let mut sharded = ShardedEngine::new(
            init.clone(),
            TrainConfig {
                batch_size: 8,
                ..train_config(97)
            },
            RuntimeConfig {
                num_devices: devices,
                prefetch_window: window,
                ..Default::default()
            },
            &dataset.cameras,
        );
        sharded.run_batch(&dataset.cameras[..8], &targets[..8]);
        sharded.run_batch(&dataset.cameras[..8], &targets[..8]);
        let stats = sharded.pool_stats();
        assert_eq!(stats.outstanding, 0, "all buffers returned");
        assert_eq!(
            stats.high_water_buffers, expected,
            "{devices} devices, window {window}: {stats:?}"
        );
        assert!(
            stats.recycled >= 8,
            "second batch runs from recycled buffers: {stats:?}"
        );
    }
}

#[test]
fn sharded_engine_runs_the_comparison_systems_on_device_zero() {
    // The no-overlap comparison systems are not sharded; they must still
    // execute (and match the synchronous trainer) under a multi-device
    // config, landing on device 0's classic lanes.
    let (dataset, targets, init) = setup(11);
    for system in [SystemKind::NaiveOffload, SystemKind::EnhancedBaseline] {
        let train = TrainConfig {
            system,
            ..train_config(11)
        };
        let mut sharded = ShardedEngine::new(
            init.clone(),
            train.clone(),
            RuntimeConfig {
                num_devices: 2,
                ..Default::default()
            },
            &dataset.cameras,
        );
        let mut sync = Trainer::new(init.clone(), train);
        let s = sharded.run_batch(&dataset.cameras[..4], &targets[..4]);
        let r = sync.train_batch(&dataset.cameras[..4], &targets[..4]);
        assert_eq!(s.batch, r, "{system}");
        assert_eq!(sharded.trainer().model(), sync.model(), "{system}");
        assert!(s.timeline.busy_time(Lane::GpuCompute) > 0.0, "{system}");
        assert_eq!(
            s.timeline.busy_time(Lane::DeviceCompute(1)),
            0.0,
            "{system}: baselines stay on device 0"
        );
    }
}

// ---------------------------------------------------------------------------
// Densification conformance: this backend's leg of the shared cross-backend
// harness (`tests/conformance/`).
#[path = "conformance/harness.rs"]
mod harness;

#[test]
fn sharded_engine_passes_the_densifying_conformance_run_at_every_device_count() {
    // Every boundary re-runs the footprint partition over the resized
    // population before the next batch's lanes are laid out.
    let scenario = harness::densifying_scenario();
    let reference = harness::run_reference(&scenario, harness::EPOCHS);
    harness::assert_densification_exercised(&reference);
    for devices in DEVICE_COUNTS {
        let mut sharded = ShardedEngine::new(
            scenario.init.clone(),
            scenario.train.clone(),
            RuntimeConfig {
                prefetch_window: 2,
                num_devices: devices,
                ..Default::default()
            },
            &scenario.dataset.cameras,
        );
        let trajectory = harness::run_backend(&mut sharded, &scenario, harness::EPOCHS);
        harness::assert_trajectories_match(&reference, &trajectory, &format!("sharded@{devices}"));
        // The post-resize partition stays total and balanced over the new
        // population.
        assert_eq!(sharded.partition().len(), trajectory.final_model.len());
        assert!(sharded.partition().device_counts().iter().all(|&c| c > 0));
    }
}
