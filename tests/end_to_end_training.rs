//! End-to-end integration tests: dataset generation → point-cloud
//! initialisation → CLM training → evaluation, spanning every crate in the
//! workspace.

use clm_repro::clm_core::{
    ground_truth_images, OrderingStrategy, SystemKind, TrainConfig, Trainer,
};
use clm_repro::gs_render::psnr;
use clm_repro::gs_scene::{
    densify_and_prune, generate_dataset, init_from_point_cloud, DatasetConfig, DensifyConfig,
    InitConfig, SceneKind, SceneSpec,
};

fn small_dataset(kind: SceneKind) -> clm_repro::gs_scene::Dataset {
    generate_dataset(
        &SceneSpec::of(kind),
        &DatasetConfig {
            num_gaussians: 400,
            num_views: 16,
            width: 40,
            height: 30,
            seed: 21,
        },
    )
}

#[test]
fn clm_training_improves_reconstruction_quality() {
    let dataset = small_dataset(SceneKind::Bicycle);
    let targets = ground_truth_images(&dataset);
    let init = init_from_point_cloud(
        &dataset.ground_truth,
        &InitConfig {
            num_gaussians: 160,
            ..Default::default()
        },
    );
    let mut trainer = Trainer::new(
        init,
        TrainConfig {
            system: SystemKind::Clm,
            ordering: OrderingStrategy::Tsp,
            batch_size: 4,
            ..Default::default()
        },
    );
    let before = trainer.evaluate_psnr(&dataset.cameras, &targets);
    for _ in 0..6 {
        trainer.train_epoch(&dataset, &targets);
    }
    let after = trainer.evaluate_psnr(&dataset.cameras, &targets);
    assert!(
        after > before + 0.5,
        "expected at least +0.5 dB PSNR from training, got {before:.2} -> {after:.2}"
    );
}

#[test]
fn all_four_systems_follow_the_same_training_trajectory() {
    // The offloading strategy must never change the numerics; only the data
    // movement.  Train one batch per system in the same order and compare
    // the resulting renderings.
    let dataset = small_dataset(SceneKind::Rubble);
    let targets = ground_truth_images(&dataset);
    let init = init_from_point_cloud(
        &dataset.ground_truth,
        &InitConfig {
            num_gaussians: 120,
            ..Default::default()
        },
    );

    let mut rendered = Vec::new();
    for system in [
        SystemKind::EnhancedBaseline,
        SystemKind::NaiveOffload,
        SystemKind::Clm,
    ] {
        let mut trainer = Trainer::new(
            init.clone(),
            TrainConfig {
                system,
                ordering: OrderingStrategy::Camera,
                batch_size: 1, // identical micro-batch order for all systems
                ..Default::default()
            },
        );
        for i in 0..6 {
            trainer.train_batch(&dataset.cameras[i..i + 1], &targets[i..i + 1]);
        }
        let out = clm_repro::gs_render::render(
            trainer.model(),
            &dataset.cameras[0],
            &clm_repro::gs_render::RenderOptions::default(),
        );
        rendered.push(out.image);
    }
    for other in &rendered[1..] {
        let fidelity = psnr(other, &rendered[0]);
        assert!(
            fidelity > 55.0,
            "systems diverged: PSNR between trained models only {fidelity:.1} dB"
        );
    }
}

#[test]
fn densification_grows_the_model_and_training_continues() {
    let dataset = small_dataset(SceneKind::Alameda);
    let targets = ground_truth_images(&dataset);
    let init = init_from_point_cloud(
        &dataset.ground_truth,
        &InitConfig {
            num_gaussians: 80,
            ..Default::default()
        },
    );
    let mut trainer = Trainer::new(
        init,
        TrainConfig {
            system: SystemKind::Clm,
            batch_size: 4,
            ..Default::default()
        },
    );
    trainer.train_epoch(&dataset, &targets);

    // Densify the trained model using a uniform pseudo-gradient signal,
    // then keep training on the larger model via a fresh trainer.
    let mut model = trainer.model().clone();
    let before = model.len();
    let norms = vec![1.0f32; model.len()];
    let report = densify_and_prune(
        &mut model,
        &norms,
        &DensifyConfig {
            grad_threshold: 0.5,
            max_gaussians: before + 40,
            ..Default::default()
        },
    );
    assert!(report.cloned + report.split > 0);
    assert!(model.len() > before);

    let mut grown = Trainer::new(
        model,
        TrainConfig {
            system: SystemKind::Clm,
            batch_size: 4,
            ..Default::default()
        },
    );
    let reports = grown.train_epoch(&dataset, &targets);
    assert!(reports.iter().all(|r| r.loss.is_finite()));
}

#[test]
fn every_scene_kind_supports_the_full_pipeline() {
    for kind in SceneKind::ALL {
        let dataset = generate_dataset(
            &SceneSpec::of(kind),
            &DatasetConfig {
                num_gaussians: 250,
                num_views: 8,
                width: 32,
                height: 24,
                seed: 4,
            },
        );
        let targets = ground_truth_images(&dataset);
        let init = init_from_point_cloud(
            &dataset.ground_truth,
            &InitConfig {
                num_gaussians: 60,
                ..Default::default()
            },
        );
        let mut trainer = Trainer::new(
            init,
            TrainConfig {
                system: SystemKind::Clm,
                batch_size: 4,
                ..Default::default()
            },
        );
        let reports = trainer.train_epoch(&dataset, &targets);
        assert!(!reports.is_empty(), "{kind}: no batches trained");
        assert!(
            reports.iter().all(|r| r.loss.is_finite() && r.touched > 0),
            "{kind}: degenerate training batch"
        );
    }
}
