//! Integration tests of the pipelined execution engine: the runtime must
//! reproduce the synchronous CLM trainer's loss/PSNR trajectory **exactly**
//! while keeping the GPU compute lane strictly less idle than the
//! no-overlap schedule — the paper's core performance claim, demonstrated
//! end-to-end across `clm-runtime`, `clm-core`, `sim-device` and the
//! gs-* crates.

use clm_repro::clm_core::{ground_truth_images, SystemKind, TrainConfig, Trainer};
use clm_repro::clm_runtime::{PipelinedEngine, RuntimeConfig};
use clm_repro::gs_scene::{
    generate_dataset, init_from_point_cloud, DatasetConfig, InitConfig, SceneKind, SceneSpec,
};
use clm_repro::sim_device::Lane;

fn setup() -> (
    clm_repro::gs_scene::Dataset,
    Vec<clm_repro::gs_render::Image>,
    clm_repro::gs_core::GaussianModel,
) {
    let dataset = generate_dataset(
        &SceneSpec::of(SceneKind::Rubble),
        &DatasetConfig {
            num_gaussians: 450,
            num_views: 16,
            width: 40,
            height: 30,
            seed: 97,
        },
    );
    let targets = ground_truth_images(&dataset);
    let init = init_from_point_cloud(
        &dataset.ground_truth,
        &InitConfig {
            num_gaussians: 170,
            ..Default::default()
        },
    );
    (dataset, targets, init)
}

#[test]
fn pipelined_runtime_reproduces_synchronous_loss_trajectory_exactly() {
    // Train three epochs with the synchronous trainer and with the
    // pipelined engine: every per-batch loss and the final parameters must
    // be bit-identical, and so must the evaluated PSNR.
    let (dataset, targets, init) = setup();
    let train = TrainConfig {
        system: SystemKind::Clm,
        batch_size: 4,
        ..Default::default()
    };
    let mut sync = Trainer::new(init.clone(), train.clone());
    let mut engine = PipelinedEngine::new(
        init,
        train,
        RuntimeConfig {
            prefetch_window: 2,
            ..Default::default()
        },
    );

    for epoch in 0..3 {
        let reference = sync.train_epoch(&dataset, &targets);
        let piped = engine.run_epoch(&dataset, &targets);
        assert_eq!(reference.len(), piped.len());
        for (r, p) in reference.iter().zip(&piped) {
            assert_eq!(
                r, &p.batch,
                "epoch {epoch}: pipelined batch must match the synchronous trainer"
            );
        }
    }
    assert_eq!(
        engine.trainer().model(),
        sync.model(),
        "final parameters must be identical"
    );

    let sync_psnr = sync.evaluate_psnr(&dataset.cameras, &targets);
    let piped_psnr = engine.evaluate_psnr(&dataset.cameras, &targets);
    assert_eq!(sync_psnr, piped_psnr, "PSNR trajectory must be identical");
}

#[test]
fn pipelined_schedule_idles_the_gpu_strictly_less_than_no_overlap() {
    // The same batch executed with prefetch lookahead must leave the GPU
    // compute lane strictly less idle than the window-0 (synchronous)
    // schedule, and no slower overall.
    let (dataset, targets, init) = setup();
    let cams = &dataset.cameras[..8];
    let tgts = &targets[..8];
    let run = |window: usize| {
        let mut engine = PipelinedEngine::new(
            init.clone(),
            TrainConfig::default(),
            RuntimeConfig {
                prefetch_window: window,
                ..Default::default()
            },
        );
        engine.run_batch(cams, tgts)
    };
    let no_overlap = run(0);
    let pipelined = run(2);

    assert!(
        pipelined.gpu_idle_fraction() < no_overlap.gpu_idle_fraction(),
        "pipelined idle {} must be strictly below no-overlap idle {}",
        pipelined.gpu_idle_fraction(),
        no_overlap.gpu_idle_fraction()
    );
    assert!(
        pipelined.makespan() < no_overlap.makespan(),
        "hiding gathers must shorten the iteration"
    );
    // Identical numerics despite the different schedules.
    assert_eq!(pipelined.batch, no_overlap.batch);
}

#[test]
fn runtime_reports_cover_all_lanes_and_traffic() {
    let (dataset, targets, init) = setup();
    let mut engine = PipelinedEngine::new(
        init,
        TrainConfig {
            batch_size: 8,
            ..Default::default()
        },
        RuntimeConfig::default(),
    );
    let report = engine.run_batch(&dataset.cameras[..8], &targets[..8]);

    // Per-iteration makespan, per-lane busy/idle time and communication
    // volume — the runtime's contract.
    assert!(report.makespan() > 0.0);
    let lanes = report.lanes();
    assert_eq!(lanes.len(), 4);
    for lane in &lanes {
        assert!(lane.busy >= 0.0 && lane.idle >= 0.0);
        assert!((lane.busy + lane.idle - report.makespan()).abs() < 1e-9);
    }
    assert!(report.lane(Lane::GpuCompute).busy > 0.0);
    assert!(report.lane(Lane::GpuComm).busy > 0.0);
    assert!(report.lane(Lane::CpuAdam).busy > 0.0);
    assert_eq!(report.comm_bytes_h2d(), report.batch.bytes_loaded);
    assert_eq!(report.comm_bytes_d2h(), report.batch.bytes_stored);

    // The pinned staging pool recycled across micro-batches and never held
    // more than window+1 buffers.
    let stats = engine.pool_stats();
    assert_eq!(stats.outstanding, 0);
    assert!(stats.high_water_buffers <= engine.config().prefetch_window + 1);
    assert!(stats.acquires > 0);
}

// ---------------------------------------------------------------------------
// Densification conformance: this backend's leg of the shared cross-backend
// harness (`tests/conformance/`).  The full suite replays the same run
// through every backend; this hook keeps the pipelined engine's conformance
// failure local to its own test file.
#[path = "conformance/harness.rs"]
mod harness;

#[test]
fn pipelined_engine_passes_the_densifying_conformance_run() {
    let scenario = harness::densifying_scenario();
    let reference = harness::run_reference(&scenario, harness::EPOCHS);
    harness::assert_densification_exercised(&reference);
    let mut engine = PipelinedEngine::new(
        scenario.init.clone(),
        scenario.train.clone(),
        RuntimeConfig {
            prefetch_window: 2,
            ..Default::default()
        },
    );
    let trajectory = harness::run_backend(&mut engine, &scenario, harness::EPOCHS);
    harness::assert_trajectories_match(&reference, &trajectory, "pipelined");
    assert_eq!(engine.trainer().resize_events(), reference.resize_events());
}
