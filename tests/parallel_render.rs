//! Integration tests of the tile-parallel compute lane: the banded render
//! forward/backward must be **bit-identical** to the serial path for every
//! thread count — rendered image, loss and per-Gaussian gradients — across
//! band heights and dataset seeds, and the parallelism must compose with
//! the trainers and execution backends without perturbing a single bit.

use clm_repro::clm_core::{ground_truth_images, SystemKind, TrainConfig, Trainer};
use clm_repro::clm_runtime::{ThreadedBackend, ThreadedConfig};
use clm_repro::gs_render::{l1_loss, render, render_backward, RenderOptions};
use clm_repro::gs_scene::{
    generate_dataset, init_from_point_cloud, DatasetConfig, InitConfig, SceneKind, SceneSpec,
};

/// Thread counts every configuration is checked against (1 is the
/// reference; the others must reproduce it exactly).
const THREADS: [usize; 3] = [1, 2, 4];

/// Two distinct band geometries: sub-tile bands and whole-tile-row bands.
const BAND_HEIGHTS: [u32; 2] = [8, 16];

const SEEDS: [u64; 3] = [5, 19, 73];

#[test]
fn render_forward_backward_bit_identical_across_thread_counts() {
    for seed in SEEDS {
        let dataset = generate_dataset(
            &SceneSpec::of(SceneKind::Rubble),
            &DatasetConfig {
                num_gaussians: 300,
                num_views: 2,
                width: 64,
                height: 48,
                seed,
            },
        );
        let model = &dataset.ground_truth;
        let cam = &dataset.cameras[0];
        // A structured target (the scene from the *other* camera) so the
        // loss gradient is dense and sign-varied.
        let target = render(model, &dataset.cameras[1], &RenderOptions::default()).image;

        for band_height in BAND_HEIGHTS {
            let opts = |threads: usize| RenderOptions {
                compute_threads: threads,
                band_height,
                ..RenderOptions::default()
            };
            let reference = render(model, cam, &opts(1));
            let ref_loss = l1_loss(&reference.image, &target);
            let ref_grads = render_backward(model, cam, &reference.aux, &ref_loss.d_image);
            assert!(
                !ref_grads.is_empty(),
                "seed {seed}: the scene must produce gradients"
            );

            for threads in THREADS {
                let out = render(model, cam, &opts(threads));
                assert_eq!(
                    out.image, reference.image,
                    "seed {seed}, band {band_height}, threads {threads}: image"
                );
                let loss = l1_loss(&out.image, &target);
                assert_eq!(
                    loss.value.to_bits(),
                    ref_loss.value.to_bits(),
                    "seed {seed}, band {band_height}, threads {threads}: loss"
                );
                let grads = render_backward(model, cam, &out.aux, &loss.d_image);
                assert_eq!(
                    grads, ref_grads,
                    "seed {seed}, band {band_height}, threads {threads}: gradients"
                );
            }
        }
    }
}

#[test]
fn band_geometry_is_thread_count_independent_by_construction() {
    // A non-dividing band height (the image height is not a multiple) with
    // more threads than bands: the ragged tail band and idle workers must
    // change nothing.
    let dataset = generate_dataset(
        &SceneSpec::of(SceneKind::Bicycle),
        &DatasetConfig {
            num_gaussians: 200,
            num_views: 1,
            width: 40,
            height: 30,
            seed: 7,
        },
    );
    let model = &dataset.ground_truth;
    let cam = &dataset.cameras[0];
    let opts = |threads: usize| RenderOptions {
        compute_threads: threads,
        band_height: 13,
        ..RenderOptions::default()
    };
    let reference = render(model, cam, &opts(1));
    let d_image = vec![[0.3f32, -1.1, 0.7]; reference.image.pixel_count()];
    let ref_grads = render_backward(model, cam, &reference.aux, &d_image);
    for threads in [2usize, 8, 32] {
        let out = render(model, cam, &opts(threads));
        assert_eq!(out.image, reference.image, "threads {threads}");
        let grads = render_backward(model, cam, &out.aux, &d_image);
        assert_eq!(grads, ref_grads, "threads {threads}");
    }
}

#[test]
fn training_trajectories_bit_identical_across_compute_threads() {
    // End-to-end across clm-core and the gs-* crates: the full training
    // loop (losses, PSNR, final parameters) must not move by one bit when
    // the compute lane fans out — banded, view-parallel, or both via the
    // threaded backend.
    for seed in SEEDS {
        let dataset = generate_dataset(
            &SceneSpec::of(SceneKind::Rubble),
            &DatasetConfig {
                num_gaussians: 300,
                num_views: 8,
                width: 40,
                height: 30,
                seed,
            },
        );
        let targets = ground_truth_images(&dataset);
        let init = init_from_point_cloud(
            &dataset.ground_truth,
            &InitConfig {
                num_gaussians: 120,
                seed: seed + 1,
                ..Default::default()
            },
        );
        let train = |compute_threads: usize, view_parallel: bool| TrainConfig {
            system: SystemKind::Clm,
            batch_size: 4,
            seed,
            compute_threads,
            view_parallel,
            ..Default::default()
        };

        let mut reference = Trainer::new(init.clone(), train(1, false));
        let ref_reports = reference.train_epoch(&dataset, &targets);
        let ref_psnr = reference.evaluate_psnr(&dataset.cameras, &targets);

        for threads in THREADS {
            let mut banded = Trainer::new(init.clone(), train(threads, false));
            assert_eq!(
                banded.train_epoch(&dataset, &targets),
                ref_reports,
                "seed {seed}, threads {threads}: banded reports"
            );
            assert_eq!(
                banded.model(),
                reference.model(),
                "seed {seed}, threads {threads}: banded model"
            );
            assert_eq!(
                banded.evaluate_psnr(&dataset.cameras, &targets).to_bits(),
                ref_psnr.to_bits(),
                "seed {seed}, threads {threads}: banded PSNR"
            );

            let mut views = Trainer::new(init.clone(), train(threads, true));
            assert_eq!(
                views.train_epoch(&dataset, &targets),
                ref_reports,
                "seed {seed}, threads {threads}: view-parallel reports"
            );
            assert_eq!(
                views.model(),
                reference.model(),
                "seed {seed}, threads {threads}: view-parallel model"
            );

            let mut threaded = ThreadedBackend::new(
                init.clone(),
                train(1, false),
                ThreadedConfig {
                    prefetch_window: 2,
                    compute_threads: threads,
                    ..Default::default()
                },
            );
            let thr_losses: Vec<f32> = threaded
                .run_epoch(&dataset, &targets)
                .into_iter()
                .map(|r| r.batch.loss)
                .collect();
            let ref_losses: Vec<f32> = ref_reports.iter().map(|r| r.loss).collect();
            assert_eq!(
                thr_losses, ref_losses,
                "seed {seed}, threads {threads}: threaded losses"
            );
            assert_eq!(
                threaded.trainer().model(),
                reference.model(),
                "seed {seed}, threads {threads}: threaded model"
            );
        }
    }
}
