//! Quickstart: train a small synthetic scene with CLM's offloading trainer
//! and watch loss, PSNR and PCIe traffic.
//!
//! Run with `cargo run --release --example quickstart`.

use clm_repro::clm_core::{ground_truth_images, SystemKind, TrainConfig, Trainer};
use clm_repro::gs_scene::{
    generate_dataset, init_from_point_cloud, DatasetConfig, InitConfig, SceneKind, SceneSpec,
};

fn main() {
    // 1. Generate a small Bicycle-like synthetic dataset (the stand-in for a
    //    captured posed-image dataset) and render its ground-truth images.
    let spec = SceneSpec::of(SceneKind::Bicycle);
    let dataset = generate_dataset(
        &spec,
        &DatasetConfig {
            num_gaussians: 600,
            num_views: 24,
            width: 48,
            height: 36,
            seed: 1,
        },
    );
    let targets = ground_truth_images(&dataset);
    println!(
        "dataset: {} ground-truth Gaussians, {} views at {}x{}",
        dataset.ground_truth.len(),
        dataset.num_views(),
        dataset.config.width,
        dataset.config.height
    );

    // 2. Initialise a training model from the synthetic point cloud.
    let init = init_from_point_cloud(
        &dataset.ground_truth,
        &InitConfig {
            num_gaussians: 200,
            ..Default::default()
        },
    );

    // 3. Train with the full CLM strategy: attribute-wise offload, TSP
    //    micro-batch ordering, Gaussian caching and overlapped CPU Adam.
    let mut trainer = Trainer::new(
        init,
        TrainConfig {
            system: SystemKind::Clm,
            batch_size: 8,
            ..Default::default()
        },
    );

    let initial_psnr = trainer.evaluate_psnr(&dataset.cameras, &targets);
    println!("initial PSNR: {initial_psnr:.2} dB");

    for epoch in 0..8 {
        let reports = trainer.train_epoch(&dataset, &targets);
        let loss: f32 = reports.iter().map(|r| r.loss).sum::<f32>() / reports.len() as f32;
        let loaded: u64 = reports.iter().map(|r| r.bytes_loaded).sum();
        println!(
            "epoch {epoch}: mean L1 loss {loss:.4}, parameters fetched over PCIe {:.2} MB",
            loaded as f64 / 1e6
        );
    }

    let final_psnr = trainer.evaluate_psnr(&dataset.cameras, &targets);
    println!(
        "final PSNR: {final_psnr:.2} dB (improved by {:.2} dB)",
        final_psnr - initial_psnr
    );
    println!(
        "GPU-resident selection-critical bytes: {} | pinned host bytes: {}",
        trainer.offloaded().gpu_resident_bytes(),
        trainer.offloaded().pinned_bytes()
    );
}
