//! Memory-budget planner: given a GPU memory budget, report how many
//! Gaussians each offloading strategy could train for every evaluation scene
//! and where the memory goes — the planning question a practitioner would
//! ask before picking a strategy.
//!
//! Run with `cargo run --release --example memory_budget [gpu_gib]`
//! (default 24 GiB, i.e. an RTX 4090).

use clm_repro::clm_core::{gpu_memory_required, max_trainable_gaussians, SceneProfile, SystemKind};
use clm_repro::gs_scene::SceneKind;
use clm_repro::sim_device::{DeviceProfile, GIB};

fn main() {
    let gpu_gib: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(24.0);
    let mut device = DeviceProfile::rtx4090();
    device.gpu_memory_bytes = (gpu_gib * GIB as f64) as u64;
    device.name = format!("{gpu_gib:.0} GiB GPU");
    println!(
        "planning for a {} (fragmentation-adjusted usable: {:.1} GiB)\n",
        device.name,
        device.usable_gpu_memory() as f64 / GIB as f64
    );

    for kind in SceneKind::ALL {
        let scene = SceneProfile::paper_reference(kind);
        println!(
            "scene {kind} ({}x{}, batch {}):",
            scene.resolution.0, scene.resolution.1, scene.batch_size
        );
        for system in SystemKind::ALL {
            let n = max_trainable_gaussians(system, &device, &scene);
            let est = gpu_memory_required(system, n, &scene);
            println!(
                "  {:<18} up to {:>7.1} M Gaussians  (model state {:>5.1} GB + others {:>5.1} GB)",
                system.to_string(),
                n as f64 / 1e6,
                est.model_state as f64 / GIB as f64,
                est.others() as f64 / GIB as f64
            );
        }
        let clm = max_trainable_gaussians(SystemKind::Clm, &device, &scene) as f64;
        let enhanced =
            max_trainable_gaussians(SystemKind::EnhancedBaseline, &device, &scene) as f64;
        println!(
            "  -> CLM trains a {:.1}x larger model than the best GPU-only configuration\n",
            clm / enhanced
        );
    }
}
