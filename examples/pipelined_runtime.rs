//! Pipelined runtime demo: train a small synthetic scene with the
//! discrete-event execution engine and watch how the prefetch lookahead
//! window trades GPU idle time for pinned staging memory — at identical
//! numerics.
//!
//! Run with `cargo run --release --example pipelined_runtime`.

use clm_repro::clm_core::{ground_truth_images, TrainConfig};
use clm_repro::clm_runtime::{PipelinedEngine, RuntimeConfig};
use clm_repro::gs_scene::{
    generate_dataset, init_from_point_cloud, DatasetConfig, InitConfig, SceneKind, SceneSpec,
};
use clm_repro::sim_device::Lane;

fn main() {
    let spec = SceneSpec::of(SceneKind::Rubble);
    let dataset = generate_dataset(
        &spec,
        &DatasetConfig {
            num_gaussians: 600,
            num_views: 16,
            width: 48,
            height: 36,
            seed: 5,
        },
    );
    let targets = ground_truth_images(&dataset);
    let init = init_from_point_cloud(
        &dataset.ground_truth,
        &InitConfig {
            num_gaussians: 220,
            initial_sigma: spec.extent * 0.03,
            initial_opacity: 0.4,
            seed: 9,
            ..Default::default()
        },
    );

    println!("window  makespan(ms)  gpu-idle  comm-busy(ms)  pinned-bufs  loss");
    for window in [0usize, 1, 2, 4, 16] {
        let mut engine = PipelinedEngine::new(
            init.clone(),
            TrainConfig {
                batch_size: 8,
                ..Default::default()
            },
            RuntimeConfig {
                prefetch_window: window,
                ..Default::default()
            },
        );
        let reports = engine.run_epoch(&dataset, &targets);
        let makespan: f64 = reports.iter().map(|r| r.makespan()).sum();
        let idle: f64 =
            reports.iter().map(|r| r.gpu_idle_fraction()).sum::<f64>() / reports.len() as f64;
        let comm: f64 = reports.iter().map(|r| r.lane(Lane::GpuComm).busy).sum();
        let loss: f32 = reports.iter().map(|r| r.batch.loss).sum::<f32>() / reports.len() as f32;
        println!(
            "{window:>6}  {:>12.3}  {:>8.1}%  {:>13.3}  {:>11}  {loss:.5}",
            makespan * 1e3,
            idle * 100.0,
            comm * 1e3,
            engine.pool_stats().high_water_buffers,
        );
    }
    println!("\nnote: the loss column is identical across windows — pipelining changes the");
    println!("schedule, never the numerics (the paper's equivalence claim).");
}
