//! City-scale offloading: reproduce the paper's headline scenario — training
//! a MatrixCity-BigCity-sized model (≈100 M Gaussians) on a single 24 GB
//! RTX 4090 — against the simulated device substrate.
//!
//! Run with `cargo run --release --example city_scale_offloading`.

use clm_repro::clm_core::{
    gpu_memory_required, max_trainable_gaussians, pinned_memory_required, simulate_batch,
    synthetic_microbatch_stats, SceneProfile, SystemKind,
};
use clm_repro::gs_scene::SceneKind;
use clm_repro::sim_device::{DeviceProfile, GIB};

fn main() {
    let device = DeviceProfile::rtx4090();
    let scene = SceneProfile::paper_reference(SceneKind::BigCity);
    println!(
        "scene {} at {}x{}, batch size {}, mean sparsity rho = {:.4}",
        scene.name, scene.resolution.0, scene.resolution.1, scene.batch_size, scene.rho_mean
    );
    println!(
        "device: {} with {:.0} GB GPU memory\n",
        device.name,
        device.gpu_memory_bytes as f64 / GIB as f64
    );

    // 1. How far can each system scale before OOM?
    println!("maximum trainable model size before OOM:");
    for system in SystemKind::ALL {
        let n = max_trainable_gaussians(system, &device, &scene);
        let est = gpu_memory_required(system, n, &scene);
        println!(
            "  {:<18} {:>7.1} M Gaussians  (model state {:>5.1} GB, others {:>5.1} GB)",
            system.to_string(),
            n as f64 / 1e6,
            est.model_state as f64 / GIB as f64,
            est.others() as f64 / GIB as f64
        );
    }

    // 2. The 102 M-Gaussian configuration the paper trains with CLM.
    let n = 102_200_000u64;
    let est = gpu_memory_required(SystemKind::Clm, n, &scene);
    println!(
        "\nCLM at 102.2 M Gaussians: {:.1} GB GPU memory, {:.1} GB pinned host memory",
        est.total() as f64 / GIB as f64,
        pinned_memory_required(n) as f64 / GIB as f64
    );
    for system in [
        SystemKind::Baseline,
        SystemKind::EnhancedBaseline,
        SystemKind::NaiveOffload,
    ] {
        let needed = gpu_memory_required(system, n, &scene).total();
        println!(
            "  {:<18} would need {:>6.1} GB -> {}",
            system.to_string(),
            needed as f64 / GIB as f64,
            if needed > device.usable_gpu_memory() {
                "OOM"
            } else {
                "fits"
            }
        );
    }

    // 3. Throughput at the largest size naive offloading can handle.
    let n_naive = max_trainable_gaussians(SystemKind::NaiveOffload, &device, &scene);
    println!(
        "\nthroughput at {:.1} M Gaussians (largest size naive offloading supports):",
        n_naive as f64 / 1e6
    );
    for system in [SystemKind::NaiveOffload, SystemKind::Clm] {
        let stats = synthetic_microbatch_stats(&scene, n_naive, system == SystemKind::Clm);
        let sim = simulate_batch(system, &device, &scene, n_naive, &stats);
        println!(
            "  {:<18} {:>6.1} images/s   (loaded {:>5.1} GB/batch, stored {:>5.1} GB/batch)",
            system.to_string(),
            sim.throughput,
            sim.bytes_loaded as f64 / GIB as f64,
            sim.bytes_stored as f64 / GIB as f64
        );
    }
}
