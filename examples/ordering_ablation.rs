//! Ordering ablation: how the micro-batch processing order affects the
//! communication volume and the CPU-Adam overlap of a CLM training batch
//! (the paper's Table 4 / Table 5 / Figure 14 ablation), measured on a
//! synthetic street-drive scene.
//!
//! Run with `cargo run --release --example ordering_ablation`.

use clm_repro::clm_core::{
    batch_fetch_bytes_no_cache, order_batch, ordered_fetch_bytes, FinalizationPlan,
    OrderingStrategy,
};
use clm_repro::gs_core::VisibilitySet;
use clm_repro::gs_scene::{generate_dataset, DatasetConfig, SceneKind, SceneSpec};

fn main() {
    // A street-drive scene has strong spatial locality along the trajectory,
    // which is exactly what the ordering strategies try to exploit.
    let spec = SceneSpec::of(SceneKind::Ithaca);
    let dataset = generate_dataset(
        &spec,
        &DatasetConfig {
            num_gaussians: 5_000,
            num_views: 64,
            width: 48,
            height: 36,
            seed: 9,
        },
    );
    let sets = dataset.visibility_sets(&dataset.ground_truth);
    let batch = spec.batch_size;
    println!(
        "scene {}: {} Gaussians, {} views, batch size {}\n",
        spec.kind,
        dataset.ground_truth.len(),
        dataset.num_views(),
        batch
    );

    println!(
        "{:<18} {:>14} {:>14} {:>12}",
        "ordering", "fetched (MB)", "saved vs none", "overlappable"
    );
    for strategy in OrderingStrategy::ALL {
        let mut fetched = 0u64;
        let mut no_cache = 0u64;
        let mut overlappable = 0usize;
        let mut touched = 0usize;
        for (b_idx, chunk) in sets.chunks(batch).enumerate() {
            if chunk.len() < 2 {
                continue;
            }
            let cams = &dataset.cameras[b_idx * batch..b_idx * batch + chunk.len()];
            let order = order_batch(strategy, cams, chunk, 11 + b_idx as u64);
            fetched += ordered_fetch_bytes(chunk, &order);
            no_cache += batch_fetch_bytes_no_cache(chunk);
            let ordered: Vec<VisibilitySet> = order.iter().map(|&i| chunk[i].clone()).collect();
            let plan = FinalizationPlan::new(&ordered);
            overlappable += plan.overlappable();
            touched += plan.total_touched();
        }
        println!(
            "{:<18} {:>14.2} {:>13.1}% {:>11.1}%",
            strategy.to_string(),
            fetched as f64 / 1e6,
            100.0 * (1.0 - fetched as f64 / no_cache as f64),
            100.0 * overlappable as f64 / touched.max(1) as f64
        );
    }
    println!(
        "\n'saved vs none' is the parameter traffic eliminated by Gaussian caching under that order;\n\
         'overlappable' is the share of touched Gaussians whose CPU Adam update can hide behind GPU work."
    );
}
