//! Property tests for the `.clmckpt` container, mirroring the `.clmtrace`
//! format tests: arbitrary snapshots must round-trip encode→decode
//! bit-identically, re-encode canonically, and reject schema-version or
//! checksum tampering.

use clm_trace::{Checkpoint, CkptError, CKPT_VERSION};
use gs_core::math::Vec3;
use gs_core::{Gaussian, GaussianModel, PARAMS_PER_GAUSSIAN};
use gs_optim::AdamRowState;
use proptest::prelude::*;

/// Builds a checkpoint from sampled raw material: `rows` become the model's
/// parameter rows (and, transformed, the gradient norms and Adam moments),
/// so every byte of the container varies across cases.
fn checkpoint_from(
    seed: u64,
    batches: u64,
    warm: Option<f64>,
    rows: &[Vec<f32>],
    adam_rows: usize,
) -> Checkpoint {
    let n = rows.len();
    let mut model: GaussianModel = (0..n)
        .map(|_| Gaussian::isotropic(Vec3::ZERO, 0.1, [0.5; 3], 0.5))
        .collect();
    for (i, row) in rows.iter().enumerate() {
        let mut arr = [0.0f32; PARAMS_PER_GAUSSIAN];
        arr.copy_from_slice(row);
        model.set_param_row(i, &arr);
    }
    let grad_norms: Vec<f32> = rows.iter().map(|r| r[1].abs()).collect();
    let adam: Vec<AdamRowState> = rows
        .iter()
        .take(adam_rows.min(n))
        .enumerate()
        .map(|(i, r)| {
            let mut m = [0.0f32; PARAMS_PER_GAUSSIAN];
            let mut v = [0.0f32; PARAMS_PER_GAUSSIAN];
            m.copy_from_slice(r);
            for (k, x) in v.iter_mut().enumerate() {
                *x = r[PARAMS_PER_GAUSSIAN - 1 - k] * r[PARAMS_PER_GAUSSIAN - 1 - k];
            }
            AdamRowState {
                m,
                v,
                step: i as u64 * 3 + 1,
            }
        })
        .collect();
    Checkpoint {
        seed,
        batches_trained: batches,
        resize_events: batches / 10,
        last_resize_batch: if batches > 0 { Some(batches - 1) } else { None },
        warm_start_ratio: warm,
        bytes_gathered: batches.wrapping_mul(59 * 4),
        bytes_scattered: batches.wrapping_mul(31),
        model,
        grad_norms,
        adam,
    }
}

proptest! {
    #[test]
    fn encode_decode_round_trips_bit_exactly(
        seed in 0u64..u64::MAX,
        batches in 0u64..100_000,
        warm_raw in 0.0f64..1.0,
        rows in proptest::collection::vec(
            proptest::collection::vec(-8.0f32..8.0, PARAMS_PER_GAUSSIAN..PARAMS_PER_GAUSSIAN + 1),
            0..10,
        ),
        adam_rows in 0usize..10,
        with_warm in 0u8..2,
    ) {
        let warm = (with_warm == 1).then_some(warm_raw);
        let ckpt = checkpoint_from(seed, batches, warm, &rows, adam_rows);
        let bytes = ckpt.encode();
        let decoded = Checkpoint::decode(&bytes).unwrap();
        prop_assert_eq!(&decoded, &ckpt);
        // Canonical: the decode re-encodes to the identical byte string.
        prop_assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn foreign_schema_versions_are_rejected(
        version in 0u32..1000,
        rows in proptest::collection::vec(
            proptest::collection::vec(-1.0f32..1.0, PARAMS_PER_GAUSSIAN..PARAMS_PER_GAUSSIAN + 1),
            1..4,
        ),
    ) {
        prop_assume!(version != CKPT_VERSION);
        let mut bytes = checkpoint_from(7, 3, None, &rows, 1).encode();
        bytes[8..12].copy_from_slice(&version.to_le_bytes());
        prop_assert_eq!(
            Checkpoint::decode(&bytes),
            Err(CkptError::UnsupportedVersion(version))
        );
    }

    #[test]
    fn payload_bit_flips_never_decode_silently(
        flip in 20usize..4096,
        rows in proptest::collection::vec(
            proptest::collection::vec(-2.0f32..2.0, PARAMS_PER_GAUSSIAN..PARAMS_PER_GAUSSIAN + 1),
            1..6,
        ),
    ) {
        let ckpt = checkpoint_from(11, 9, Some(0.5), &rows, 2);
        let mut bytes = ckpt.encode();
        let idx = 20 + flip % (bytes.len() - 20);
        bytes[idx] ^= 0x40;
        // A flipped payload byte must fail the checksum; it must never
        // produce a "successfully decoded" different checkpoint.
        prop_assert_eq!(Checkpoint::decode(&bytes), Err(CkptError::ChecksumMismatch));
    }

    #[test]
    fn truncation_at_any_point_errors(
        cut in 0usize..4096,
        rows in proptest::collection::vec(
            proptest::collection::vec(-2.0f32..2.0, PARAMS_PER_GAUSSIAN..PARAMS_PER_GAUSSIAN + 1),
            1..5,
        ),
    ) {
        let bytes = checkpoint_from(3, 5, None, &rows, 1).encode();
        let cut = cut % bytes.len();
        prop_assert!(Checkpoint::decode(&bytes[..cut]).is_err());
    }
}
