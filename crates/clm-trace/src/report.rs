//! Performance reports over recorded traces.
//!
//! A [`TraceReport`] aggregates a trace into the quantities the paper's
//! evaluation leans on: per-lane utilisation against the summed batch
//! makespans, a per-device rollup for sharded schedules, per-op-kind
//! duration histograms (count / total / p50 / p99 / bytes) and — for
//! replayable traces — the critical-path decomposition.  Reports serialise
//! to the workspace's hand-rolled single-line JSON, and the raw schedule
//! exports to Chrome-trace JSON loadable in Perfetto / `chrome://tracing`.

use crate::format::Trace;
use crate::replay::{critical_path, replay_exact};
use sim_device::{Lane, OpKind, Timeline};

/// Busy/utilisation summary for one lane.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneStat {
    /// The lane.
    pub lane: Lane,
    /// Ops that ran on the lane.
    pub ops: usize,
    /// Total busy seconds across all batches.
    pub busy_s: f64,
    /// `busy_s` over the summed batch makespans, in `[0, 1]`.
    pub utilization: f64,
}

/// Per-device rollup of the three lane classes.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceStat {
    /// Simulated device index.
    pub device: usize,
    /// Busy seconds on the device's compute lane.
    pub compute_s: f64,
    /// Busy seconds on the device's communication lane.
    pub comm_s: f64,
    /// Busy seconds on the device's CPU Adam lane.
    pub adam_s: f64,
    /// Compute-lane utilisation against the summed batch makespans.
    pub compute_utilization: f64,
}

/// Duration histogram for one op kind.
#[derive(Debug, Clone, PartialEq)]
pub struct KindStat {
    /// The op kind.
    pub kind: OpKind,
    /// Number of ops of this kind.
    pub count: usize,
    /// Total seconds across all ops of this kind.
    pub total_s: f64,
    /// Median single-op duration (nearest-rank).
    pub p50_s: f64,
    /// 99th-percentile single-op duration (nearest-rank).
    pub p99_s: f64,
    /// Total bytes moved by ops of this kind.
    pub bytes: u64,
}

/// Critical-path summary of a replayable trace.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalSummary {
    /// Summed critical-path length across batches (equals the summed
    /// makespans by construction).
    pub length_s: f64,
    /// Ops on the path across all batches.
    pub ops: usize,
    /// Path seconds attributed to each op kind (zero entries omitted).
    pub time_by_kind: Vec<(OpKind, f64)>,
}

/// Aggregated performance report over one trace.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Backend that produced the trace.
    pub backend: String,
    /// Scene the run trained.
    pub scene: String,
    /// Simulated device count of the recording.
    pub devices: u32,
    /// Prefetch window of the recording.
    pub prefetch_window: u32,
    /// Batches in the trace.
    pub batches: usize,
    /// Events in the trace.
    pub events: usize,
    /// Sum of per-batch makespans — the report's utilisation denominator.
    pub total_makespan_s: f64,
    /// Per-lane stats, lane-code order.
    pub lanes: Vec<LaneStat>,
    /// Per-device rollup, device order (scheduler lane excluded: it is
    /// shared by every device).
    pub device_stats: Vec<DeviceStat>,
    /// Per-kind histograms, wire-code order, kinds with zero ops omitted.
    pub kinds: Vec<KindStat>,
    /// Critical-path decomposition; `None` for measured traces (no
    /// dependency edges to walk).
    pub critical: Option<CriticalSummary>,
}

impl TraceReport {
    /// Builds the report.  Replayable traces are reconstructed through the
    /// scheduler (so makespans and the critical path are the schedule's,
    /// bit for bit); measured traces are laid out from their recorded
    /// spans.
    pub fn build(trace: &Trace) -> TraceReport {
        let timelines: Vec<(u64, u64, Timeline)> = match replay_exact(trace) {
            Ok(replays) => replays
                .into_iter()
                .map(|r| (r.epoch, r.batch, r.timeline))
                .collect(),
            Err(_) => trace
                .batches()
                .into_iter()
                .map(|(epoch, batch, events)| {
                    let mut t = Timeline::new();
                    for e in events {
                        t.push_span(
                            e.kind,
                            e.lane,
                            e.start,
                            e.end(),
                            e.bytes,
                            e.rows,
                            e.microbatch,
                        );
                    }
                    (epoch, batch, t)
                })
                .collect(),
        };
        let replayable = trace.has_deps() && !trace.events.is_empty();
        let total_makespan_s: f64 = timelines.iter().map(|(_, _, t)| t.makespan()).sum();

        // Every lane that carries at least one op, in wire-code order.
        let mut lane_codes: Vec<u32> = trace.events.iter().map(|e| e.lane.code()).collect();
        lane_codes.sort_unstable();
        lane_codes.dedup();
        let lanes: Vec<LaneStat> = lane_codes
            .iter()
            .map(|&code| {
                let lane = Lane::from_code(code).expect("recorded lanes decode");
                let busy_s: f64 = timelines.iter().map(|(_, _, t)| t.busy_time(lane)).sum();
                let ops = trace.events.iter().filter(|e| e.lane == lane).count();
                LaneStat {
                    lane,
                    ops,
                    busy_s,
                    utilization: fraction(busy_s, total_makespan_s),
                }
            })
            .collect();

        let max_device = lanes
            .iter()
            .filter_map(|l| l.lane.device())
            .max()
            .unwrap_or(0);
        let lane_busy = |lane: Lane| -> f64 {
            lanes
                .iter()
                .find(|l| l.lane == lane)
                .map_or(0.0, |l| l.busy_s)
        };
        let device_stats: Vec<DeviceStat> = (0..=max_device)
            .map(|d| {
                let compute_s = lane_busy(Lane::compute_of(d));
                DeviceStat {
                    device: d,
                    compute_s,
                    comm_s: lane_busy(Lane::comm_of(d)),
                    adam_s: lane_busy(Lane::adam_of(d)),
                    compute_utilization: fraction(compute_s, total_makespan_s),
                }
            })
            .collect();

        let kinds: Vec<KindStat> = OpKind::ALL
            .iter()
            .filter_map(|&kind| {
                let mut durs: Vec<f64> = trace
                    .events
                    .iter()
                    .filter(|e| e.kind == kind)
                    .map(|e| e.dur)
                    .collect();
                if durs.is_empty() {
                    return None;
                }
                durs.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let bytes = trace
                    .events
                    .iter()
                    .filter(|e| e.kind == kind)
                    .map(|e| e.bytes)
                    .sum();
                Some(KindStat {
                    kind,
                    count: durs.len(),
                    total_s: durs.iter().sum(),
                    p50_s: percentile(&durs, 0.50),
                    p99_s: percentile(&durs, 0.99),
                    bytes,
                })
            })
            .collect();

        let critical = replayable.then(|| {
            let mut length_s = 0.0;
            let mut ops = 0usize;
            let mut by_kind = [0.0f64; OpKind::ALL.len()];
            for (_, _, t) in &timelines {
                let cp = critical_path(t);
                length_s += cp.length_s;
                ops += cp.ops;
                for (kind, s) in cp.time_by_kind {
                    by_kind[kind.code() as usize] += s;
                }
            }
            CriticalSummary {
                length_s,
                ops,
                time_by_kind: OpKind::ALL
                    .iter()
                    .filter(|k| by_kind[k.code() as usize] > 0.0)
                    .map(|&k| (k, by_kind[k.code() as usize]))
                    .collect(),
            }
        });

        TraceReport {
            backend: trace.meta.backend.clone(),
            scene: trace.meta.scene.clone(),
            devices: trace.meta.devices,
            prefetch_window: trace.meta.prefetch_window,
            batches: timelines.len(),
            events: trace.events.len(),
            total_makespan_s,
            lanes,
            device_stats,
            kinds,
            critical,
        }
    }

    /// Serialises the report as single-line JSON in the workspace's
    /// hand-rolled house style.
    pub fn to_json(&self) -> String {
        let lanes = self
            .lanes
            .iter()
            .map(|l| {
                format!(
                    "{{\"lane\":\"{}\",\"ops\":{},\"busy_s\":{:.9},\"utilization\":{:.6}}}",
                    lane_label(l.lane),
                    l.ops,
                    l.busy_s,
                    l.utilization
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let devices = self
            .device_stats
            .iter()
            .map(|d| {
                format!(
                    "{{\"device\":{},\"compute_s\":{:.9},\"comm_s\":{:.9},\"adam_s\":{:.9},\"compute_utilization\":{:.6}}}",
                    d.device, d.compute_s, d.comm_s, d.adam_s, d.compute_utilization
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let kinds = self
            .kinds
            .iter()
            .map(|k| {
                format!(
                    "{{\"kind\":\"{}\",\"count\":{},\"total_s\":{:.9},\"p50_s\":{:.9},\"p99_s\":{:.9},\"bytes\":{}}}",
                    k.kind.name(),
                    k.count,
                    k.total_s,
                    k.p50_s,
                    k.p99_s,
                    k.bytes
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let critical = match &self.critical {
            None => "null".to_string(),
            Some(c) => {
                let by_kind = c
                    .time_by_kind
                    .iter()
                    .map(|(k, s)| format!("\"{}\":{:.9}", k.name(), s))
                    .collect::<Vec<_>>()
                    .join(",");
                format!(
                    "{{\"length_s\":{:.9},\"ops\":{},\"time_by_kind\":{{{}}}}}",
                    c.length_s, c.ops, by_kind
                )
            }
        };
        format!(
            "{{\"schema\":\"clm_trace_report_v1\",\"backend\":\"{}\",\"scene\":\"{}\",\"devices\":{},\"prefetch_window\":{},\"batches\":{},\"events\":{},\"total_makespan_s\":{:.9},\"lanes\":[{}],\"device_stats\":[{}],\"kinds\":[{}],\"critical_path\":{}}}",
            self.backend,
            self.scene,
            self.devices,
            self.prefetch_window,
            self.batches,
            self.events,
            self.total_makespan_s,
            lanes,
            devices,
            kinds,
            critical
        )
    }
}

/// Cheap structural check for report JSON, mirroring the wallclock bench's
/// `looks_like_bench_json`: CI validates artefact shape without a JSON
/// parser in the dependency tree.
pub fn looks_like_report_json(s: &str) -> bool {
    let s = s.trim();
    s.starts_with('{')
        && s.ends_with('}')
        && s.contains("\"schema\":\"clm_trace_report_v1\"")
        && s.contains("\"backend\":")
        && s.contains("\"total_makespan_s\":")
        && s.contains("\"lanes\":[")
        && s.contains("\"device_stats\":[")
        && s.contains("\"kinds\":[")
        && s.contains("\"critical_path\":")
}

/// Exports the raw schedule as Chrome-trace JSON (the `traceEvents` array
/// format Perfetto and `chrome://tracing` load).  Batches are laid end to
/// end on the time axis — batch `n` is offset by the summed makespans of
/// batches before it — `pid` is the simulated device (scheduler work on
/// its own track), `tid` the lane wire code, timestamps in microseconds.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut offset_s = 0.0f64;
    let mut first = true;
    for (epoch, batch, events) in trace.batches() {
        let makespan = events.iter().map(|e| e.end()).fold(0.0f64, f64::max);
        for e in events {
            if !first {
                out.push(',');
            }
            first = false;
            let pid = e.lane.device().map_or(9999, |d| d);
            let mb = e.microbatch.map_or("null".to_string(), |mb| mb.to_string());
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"epoch\":{},\"batch\":{},\"microbatch\":{},\"rows\":{},\"bytes\":{}}}}}",
                e.kind.name(),
                lane_label(e.lane),
                pid,
                e.lane.code(),
                (offset_s + e.start) * 1e6,
                e.dur * 1e6,
                epoch,
                batch,
                mb,
                e.rows,
                e.bytes
            ));
        }
        offset_s += makespan;
    }
    out.push_str("]}");
    out
}

/// Stable human-readable label for a lane.
pub fn lane_label(lane: Lane) -> String {
    match lane {
        Lane::GpuCompute => "gpu_compute".to_string(),
        Lane::GpuComm => "gpu_comm".to_string(),
        Lane::CpuAdam => "cpu_adam".to_string(),
        Lane::CpuScheduler => "cpu_scheduler".to_string(),
        Lane::DeviceCompute(d) => format!("dev{d}_compute"),
        Lane::DeviceComm(d) => format!("dev{d}_comm"),
        Lane::DeviceAdam(d) => format!("dev{d}_adam"),
    }
}

fn fraction(num: f64, den: f64) -> f64 {
    if den <= 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{CostParams, TraceMeta, TraceWriter};
    use sim_device::Timeline;

    fn meta() -> TraceMeta {
        TraceMeta {
            backend: "simulated".into(),
            scene: "unit".into(),
            devices: 1,
            prefetch_window: 1,
            seed: 0,
            cost: CostParams::default(),
        }
    }

    fn two_batch_trace() -> Trace {
        let mut w = TraceWriter::new(meta());
        for batch in 0..2u64 {
            let mut t = Timeline::new();
            let load = t.push_traced(
                OpKind::LoadParams,
                Lane::GpuComm,
                1.0,
                800,
                10,
                Some(0),
                &[],
            );
            let fwd = t.push_traced(
                OpKind::Forward,
                Lane::GpuCompute,
                2.0,
                0,
                10,
                Some(0),
                &[load],
            );
            t.push_traced(
                OpKind::Backward,
                Lane::GpuCompute,
                3.0,
                0,
                10,
                Some(0),
                &[fwd],
            );
            w.record_timeline(0, batch, &t);
        }
        w.finish()
    }

    #[test]
    fn report_totals_and_utilisation_add_up() {
        let report = TraceReport::build(&two_batch_trace());
        assert_eq!(report.batches, 2);
        assert_eq!(report.events, 6);
        // Each batch's makespan is 1 + 2 + 3 = 6.
        assert_eq!(report.total_makespan_s, 12.0);
        let compute = report
            .lanes
            .iter()
            .find(|l| l.lane == Lane::GpuCompute)
            .unwrap();
        assert_eq!(compute.busy_s, 10.0);
        assert!((compute.utilization - 10.0 / 12.0).abs() < 1e-12);
        let comm = report
            .lanes
            .iter()
            .find(|l| l.lane == Lane::GpuComm)
            .unwrap();
        assert_eq!(comm.ops, 2);
        assert_eq!(report.device_stats.len(), 1);
        assert_eq!(report.device_stats[0].compute_s, 10.0);
    }

    #[test]
    fn kind_histograms_count_and_rank() {
        let report = TraceReport::build(&two_batch_trace());
        let fwd = report
            .kinds
            .iter()
            .find(|k| k.kind == OpKind::Forward)
            .unwrap();
        assert_eq!(fwd.count, 2);
        assert_eq!(fwd.total_s, 4.0);
        assert_eq!(fwd.p50_s, 2.0);
        assert_eq!(fwd.p99_s, 2.0);
        let load = report
            .kinds
            .iter()
            .find(|k| k.kind == OpKind::LoadParams)
            .unwrap();
        assert_eq!(load.bytes, 1600);
        // Kinds that never ran are omitted, not zero-filled.
        assert!(report.kinds.iter().all(|k| k.kind != OpKind::AllReduce));
    }

    #[test]
    fn critical_path_spans_the_makespan_of_replayable_traces() {
        let report = TraceReport::build(&two_batch_trace());
        let critical = report.critical.expect("dep-bearing trace is replayable");
        assert_eq!(critical.length_s, report.total_makespan_s);
        let path_total: f64 = critical.time_by_kind.iter().map(|(_, s)| s).sum();
        assert_eq!(path_total, critical.length_s);
    }

    #[test]
    fn measured_trace_reports_without_critical_path() {
        let mut t = Timeline::new();
        t.push_span(OpKind::Forward, Lane::GpuCompute, 0.0, 2.0, 0, 10, Some(0));
        t.push_span(OpKind::CpuAdamUpdate, Lane::CpuAdam, 0.5, 1.5, 0, 10, None);
        let mut w = TraceWriter::new(meta());
        w.record_timeline(0, 0, &t);
        let report = TraceReport::build(&w.finish());
        assert!(report.critical.is_none());
        assert_eq!(report.total_makespan_s, 2.0);
        let adam = report
            .lanes
            .iter()
            .find(|l| l.lane == Lane::CpuAdam)
            .unwrap();
        assert_eq!(adam.busy_s, 1.0);
    }

    #[test]
    fn report_json_shape_is_recognised() {
        let json = TraceReport::build(&two_batch_trace()).to_json();
        assert!(looks_like_report_json(&json), "{json}");
        assert!(!looks_like_report_json("{}"));
        assert!(!looks_like_report_json(&json[1..]));
    }

    #[test]
    fn chrome_trace_offsets_batches_end_to_end() {
        let json = chrome_trace_json(&two_batch_trace());
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        // Batch 1's first load starts at the 6-second offset (6e6 µs).
        assert!(json.contains("\"ts\":6000000.000"), "{json}");
        assert_eq!(json.matches("\"name\":\"Forward\"").count(), 2);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&sorted, 0.50), 2.0);
        assert_eq!(percentile(&sorted, 0.99), 4.0);
        assert_eq!(percentile(&sorted, 0.01), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
