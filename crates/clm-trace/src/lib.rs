//! Compact op-trace capture, deterministic offline replay and performance
//! reports for the CLM runtime.
//!
//! Every backend in this workspace schedules (or measures) its work through
//! [`sim_device::Timeline`]; this crate turns those schedules into a
//! portable artefact and back:
//!
//! * [`mod@format`] — the `.clmtrace` container: a versioned header carrying
//!   run metadata and the cost-model constants, followed by
//!   delta/varint-encoded events whose f64 times are stored as exact bit
//!   patterns (replay determinism forbids quantisation).  [`TraceWriter`]
//!   implements [`sim_device::TraceSink`], so recording is a one-line hook
//!   on any backend.
//! * [`replay`] — reconstructs schedules offline.  Exact replay re-pushes
//!   the recorded graph and reproduces every start/end, per-lane busy
//!   total and the critical path bit for bit; knob replay rebuilds the CLM
//!   pipeline under an altered prefetch window, device count or cost
//!   scaling without re-running any numerics.
//! * [`report`] — aggregates a trace into per-lane utilisation, per-device
//!   rollups, per-kind duration histograms and a critical-path summary;
//!   exports Chrome-trace JSON for Perfetto.
//! * [`mod@checkpoint`] — the `.clmckpt` container: a versioned, checksummed
//!   batch-boundary snapshot of training state (model rows, full Adam
//!   moments, offload counters, warm-start ratio and the batch cursor)
//!   whose restore continues training bit-identically to the uninterrupted
//!   run.
//!
//! The `clm-bench` binaries `trace_record`, `trace_replay` and
//! `trace_report` drive these modules from the command line.
#![warn(missing_docs)]

pub mod checkpoint;
pub mod format;
pub mod replay;
pub mod report;
pub mod varint;

pub use checkpoint::{Checkpoint, CkptError, CKPT_MAGIC, CKPT_VERSION};
pub use format::{
    CostParams, Trace, TraceError, TraceEvent, TraceMeta, TraceWriter, FORMAT_VERSION,
};
pub use replay::{
    critical_path, replay_exact, replay_with_knobs, verify_exact, BatchReplay, CriticalPath,
    KindScale, ReplayError, ReplayKnobs,
};
pub use report::{chrome_trace_json, lane_label, looks_like_report_json, TraceReport};
