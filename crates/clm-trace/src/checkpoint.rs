//! The `.clmckpt` container: a versioned, checksummed snapshot of training
//! state at a batch boundary, and its restore path.
//!
//! # Layout
//!
//! ```text
//! magic      8  bytes  b"CLMCKPT\0"
//! version    4  bytes  u32 LE (currently 1)
//! checksum   8  bytes  FNV-1a 64 of the payload, LE
//! payload:
//!   seed               varint   workload seed (restore sanity check)
//!   batches_trained    varint   the RNG/batch cursor
//!   resize_events      varint
//!   last_resize_batch  varint   0 = none, else value + 1
//!   warm flag          1 byte   0/1; if 1: warm-start window ratio, f64 LE
//!   bytes_gathered     varint   offloaded-store traffic counters
//!   bytes_scattered    varint
//!   n                  varint   model length
//!   model rows         n × 59 f32 LE (param_row layout)
//!   grad norms         n × f32 LE
//!   adam rows          varint count (≤ n), each 59 f32 m + 59 f32 v,
//!                      both LE, then the step counter as a varint
//! ```
//!
//! Why a batch boundary: every backend drains its lanes there (the same
//! property densification relies on), `Trainer::finish_batch` has synced
//! the offloaded host store back to the model, and the only cursors live
//! training state needs are `batches_trained` (all plan/densify seeds
//! derive from it) and the resize boundary marker.  Snapshotting those plus
//! the model rows, the full Adam moment state and the warm-start window
//! ratio therefore makes restore + replay of the remaining batches
//! bit-identical to the uninterrupted run — the invariant the conformance
//! suite's chaos leg asserts per backend.

use crate::format::{fnv1a, TraceError};
use crate::varint;
use clm_core::{TrainConfig, Trainer};
use gs_core::math::Vec3;
use gs_core::{Gaussian, GaussianModel, PARAMS_PER_GAUSSIAN};
use gs_optim::{AdamRowState, GaussianAdam};

/// File magic of a `.clmckpt`.
pub const CKPT_MAGIC: [u8; 8] = *b"CLMCKPT\0";

/// Current checkpoint schema version; decoding rejects anything else.
pub const CKPT_VERSION: u32 = 1;

/// Errors decoding or restoring a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum CkptError {
    /// The buffer does not start with [`CKPT_MAGIC`].
    BadMagic,
    /// The header's version is not [`CKPT_VERSION`].
    UnsupportedVersion(u32),
    /// The buffer ended mid-field.
    Truncated,
    /// The payload does not match the header checksum.
    ChecksumMismatch,
    /// A structurally invalid field.
    Malformed(&'static str),
    /// The checkpoint does not belong to the configuration it is being
    /// restored under.
    ConfigMismatch(&'static str),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::BadMagic => write!(f, "not a .clmckpt file (bad magic)"),
            CkptError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint version {v} (expected {CKPT_VERSION})"
                )
            }
            CkptError::Truncated => write!(f, "checkpoint truncated mid-field"),
            CkptError::ChecksumMismatch => write!(f, "checkpoint payload checksum mismatch"),
            CkptError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
            CkptError::ConfigMismatch(what) => {
                write!(f, "checkpoint does not match the run config: {what}")
            }
        }
    }
}

impl std::error::Error for CkptError {}

impl From<TraceError> for CkptError {
    fn from(e: TraceError) -> Self {
        match e {
            TraceError::Truncated => CkptError::Truncated,
            TraceError::Malformed(what) => CkptError::Malformed(what),
            // The varint layer only raises the two variants above; anything
            // else would be a header error that cannot reach here.
            TraceError::BadMagic => CkptError::BadMagic,
            TraceError::UnsupportedVersion(v) => CkptError::UnsupportedVersion(v),
            TraceError::ChecksumMismatch => CkptError::ChecksumMismatch,
        }
    }
}

/// A decoded (or freshly captured) training snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Workload seed of the run the snapshot belongs to.
    pub seed: u64,
    /// Batches trained when the snapshot was taken — the cursor every
    /// plan-ordering and densification seed derives from.
    pub batches_trained: u64,
    /// Densification resizes applied so far.
    pub resize_events: u64,
    /// `batches_trained` value of the last applied resize, if any.
    pub last_resize_batch: Option<u64>,
    /// Warm-start ratio of the adaptive prefetch-window selector, if the
    /// run had observed one.
    pub warm_start_ratio: Option<f64>,
    /// Cumulative CPU→GPU gather traffic of the offloaded store.
    pub bytes_gathered: u64,
    /// Cumulative GPU→CPU scatter traffic.
    pub bytes_scattered: u64,
    /// The model at the boundary.
    pub model: GaussianModel,
    /// Per-Gaussian positional-gradient norms accumulated since the last
    /// densification boundary.
    pub grad_norms: Vec<f32>,
    /// The optimiser's full moment state.
    pub adam: Vec<AdamRowState>,
}

impl Checkpoint {
    /// Captures the trainer's state at the current batch boundary.
    /// `warm_start_ratio` carries the engine's adaptive prefetch-window
    /// observation, when it has one.
    pub fn capture(trainer: &Trainer, warm_start_ratio: Option<f64>) -> Self {
        Checkpoint {
            seed: trainer.config().seed,
            batches_trained: trainer.batches_trained() as u64,
            resize_events: trainer.resize_events() as u64,
            last_resize_batch: trainer.last_resize_batch().map(|b| b as u64),
            warm_start_ratio,
            bytes_gathered: trainer.offloaded().bytes_gathered(),
            bytes_scattered: trainer.offloaded().bytes_scattered(),
            model: trainer.model().clone(),
            grad_norms: trainer.grad_norm_accum().to_vec(),
            adam: trainer.optimizer().export_rows(),
        }
    }

    /// Rebuilds a trainer from the snapshot.  `config` must be the run's
    /// training configuration (a checkpoint carries state, not policy);
    /// its seed is checked against the snapshot's.
    pub fn restore(&self, config: TrainConfig) -> Result<Trainer, CkptError> {
        if config.seed != self.seed {
            return Err(CkptError::ConfigMismatch("workload seed differs"));
        }
        if self.grad_norms.len() != self.model.len() {
            return Err(CkptError::Malformed("gradient norms do not match model"));
        }
        if self.adam.len() > self.model.len() {
            return Err(CkptError::Malformed("more optimiser rows than model rows"));
        }
        let optimizer = GaussianAdam::from_rows(config.adam.clone(), self.adam.clone());
        Ok(Trainer::from_checkpoint(
            self.model.clone(),
            optimizer,
            config,
            self.batches_trained as usize,
            self.grad_norms.clone(),
            self.resize_events as usize,
            self.last_resize_batch.map(|b| b as usize),
            self.bytes_gathered,
            self.bytes_scattered,
        ))
    }

    /// Serialises the snapshot to the `.clmckpt` byte format.
    pub fn encode(&self) -> Vec<u8> {
        let n = self.model.len();
        let mut payload = Vec::with_capacity(n * PARAMS_PER_GAUSSIAN * 4 + 64);
        varint::write_u64(&mut payload, self.seed);
        varint::write_u64(&mut payload, self.batches_trained);
        varint::write_u64(&mut payload, self.resize_events);
        varint::write_u64(
            &mut payload,
            self.last_resize_batch.map(|b| b + 1).unwrap_or(0),
        );
        match self.warm_start_ratio {
            Some(r) => {
                payload.push(1);
                payload.extend_from_slice(&r.to_le_bytes());
            }
            None => payload.push(0),
        }
        varint::write_u64(&mut payload, self.bytes_gathered);
        varint::write_u64(&mut payload, self.bytes_scattered);
        varint::write_u64(&mut payload, n as u64);
        for i in 0..n {
            for x in self.model.param_row(i) {
                payload.extend_from_slice(&x.to_le_bytes());
            }
        }
        for &g in &self.grad_norms {
            payload.extend_from_slice(&g.to_le_bytes());
        }
        varint::write_u64(&mut payload, self.adam.len() as u64);
        for row in &self.adam {
            for x in row.m {
                payload.extend_from_slice(&x.to_le_bytes());
            }
            for x in row.v {
                payload.extend_from_slice(&x.to_le_bytes());
            }
            varint::write_u64(&mut payload, row.step);
        }

        let mut out = Vec::with_capacity(payload.len() + 20);
        out.extend_from_slice(&CKPT_MAGIC);
        out.extend_from_slice(&CKPT_VERSION.to_le_bytes());
        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes a `.clmckpt` byte buffer, validating magic, version and
    /// payload checksum.
    pub fn decode(data: &[u8]) -> Result<Checkpoint, CkptError> {
        if data.len() < CKPT_MAGIC.len() + 4 + 8 {
            return Err(CkptError::Truncated);
        }
        if data[..CKPT_MAGIC.len()] != CKPT_MAGIC {
            return Err(CkptError::BadMagic);
        }
        let mut pos = CKPT_MAGIC.len();
        let version = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
        pos += 4;
        if version != CKPT_VERSION {
            return Err(CkptError::UnsupportedVersion(version));
        }
        let checksum = u64::from_le_bytes(data[pos..pos + 8].try_into().unwrap());
        pos += 8;
        let payload = &data[pos..];
        if fnv1a(payload) != checksum {
            return Err(CkptError::ChecksumMismatch);
        }

        let mut pos = 0usize;
        let seed = varint::read_u64(payload, &mut pos)?;
        let batches_trained = varint::read_u64(payload, &mut pos)?;
        let resize_events = varint::read_u64(payload, &mut pos)?;
        let last_resize_raw = varint::read_u64(payload, &mut pos)?;
        let last_resize_batch = last_resize_raw.checked_sub(1);
        let warm_flag = *payload.get(pos).ok_or(CkptError::Truncated)?;
        pos += 1;
        let warm_start_ratio = match warm_flag {
            0 => None,
            1 => {
                let bytes = payload.get(pos..pos + 8).ok_or(CkptError::Truncated)?;
                pos += 8;
                Some(f64::from_le_bytes(bytes.try_into().unwrap()))
            }
            _ => return Err(CkptError::Malformed("bad warm-start flag")),
        };
        let bytes_gathered = varint::read_u64(payload, &mut pos)?;
        let bytes_scattered = varint::read_u64(payload, &mut pos)?;
        let n = varint::read_u64(payload, &mut pos)? as usize;

        let mut model: GaussianModel = (0..n)
            .map(|_| Gaussian::isotropic(Vec3::ZERO, 0.1, [0.5; 3], 0.5))
            .collect();
        for i in 0..n {
            let mut row = [0.0f32; PARAMS_PER_GAUSSIAN];
            for x in row.iter_mut() {
                *x = read_f32_le(payload, &mut pos)?;
            }
            model.set_param_row(i, &row);
        }
        let mut grad_norms = Vec::with_capacity(n);
        for _ in 0..n {
            grad_norms.push(read_f32_le(payload, &mut pos)?);
        }
        let rows = varint::read_u64(payload, &mut pos)? as usize;
        if rows > n {
            return Err(CkptError::Malformed("more optimiser rows than model rows"));
        }
        let mut adam = Vec::with_capacity(rows);
        for _ in 0..rows {
            let mut m = [0.0f32; PARAMS_PER_GAUSSIAN];
            let mut v = [0.0f32; PARAMS_PER_GAUSSIAN];
            for x in m.iter_mut() {
                *x = read_f32_le(payload, &mut pos)?;
            }
            for x in v.iter_mut() {
                *x = read_f32_le(payload, &mut pos)?;
            }
            let step = varint::read_u64(payload, &mut pos)?;
            adam.push(AdamRowState { m, v, step });
        }
        if pos != payload.len() {
            return Err(CkptError::Malformed("trailing bytes after optimiser rows"));
        }
        Ok(Checkpoint {
            seed,
            batches_trained,
            resize_events,
            last_resize_batch,
            warm_start_ratio,
            bytes_gathered,
            bytes_scattered,
            model,
            grad_norms,
            adam,
        })
    }
}

fn read_f32_le(data: &[u8], pos: &mut usize) -> Result<f32, CkptError> {
    let bytes = data.get(*pos..*pos + 4).ok_or(CkptError::Truncated)?;
    *pos += 4;
    Ok(f32::from_le_bytes(bytes.try_into().unwrap()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_core::math::Vec3;

    fn sample_trainer() -> Trainer {
        let model: GaussianModel = (0..7)
            .map(|i| {
                Gaussian::isotropic(
                    Vec3::new(i as f32 * 0.37, -(i as f32), 5.0 + i as f32),
                    0.2 + 0.01 * i as f32,
                    [0.2, 0.5, 0.8],
                    0.6,
                )
            })
            .collect();
        let config = TrainConfig {
            seed: 123,
            ..Default::default()
        };
        Trainer::new(model, config)
    }

    fn sample_checkpoint() -> Checkpoint {
        let trainer = sample_trainer();
        let mut ckpt = Checkpoint::capture(&trainer, Some(0.75));
        // Exercise the non-trivial fields.
        ckpt.batches_trained = 42;
        ckpt.resize_events = 2;
        ckpt.last_resize_batch = Some(40);
        ckpt.bytes_gathered = 1 << 33;
        ckpt.bytes_scattered = 12345;
        for (i, g) in ckpt.grad_norms.iter_mut().enumerate() {
            *g = i as f32 * 0.125;
        }
        for (i, row) in ckpt.adam.iter_mut().enumerate() {
            row.step = i as u64;
            row.m[0] = 0.5 * i as f32;
            row.v[58] = 0.25;
        }
        ckpt
    }

    #[test]
    fn encode_decode_round_trips_bit_exactly() {
        let ckpt = sample_checkpoint();
        let bytes = ckpt.encode();
        let decoded = Checkpoint::decode(&bytes).unwrap();
        assert_eq!(decoded, ckpt);
        // Canonical encoding: re-encoding the decode is byte-identical.
        assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn capture_restore_rebuilds_the_trainer_state() {
        let trainer = sample_trainer();
        let ckpt = Checkpoint::capture(&trainer, None);
        let restored = ckpt.restore(trainer.config().clone()).unwrap();
        assert_eq!(restored.model(), trainer.model());
        assert_eq!(restored.batches_trained(), trainer.batches_trained());
        assert_eq!(restored.resize_events(), trainer.resize_events());
        assert_eq!(restored.last_resize_batch(), trainer.last_resize_batch());
        assert_eq!(restored.grad_norm_accum(), trainer.grad_norm_accum());
        assert_eq!(
            restored.optimizer().export_rows(),
            trainer.optimizer().export_rows()
        );
        assert_eq!(
            restored.offloaded().bytes_gathered(),
            trainer.offloaded().bytes_gathered()
        );
    }

    #[test]
    fn restore_rejects_a_mismatched_seed() {
        let trainer = sample_trainer();
        let ckpt = Checkpoint::capture(&trainer, None);
        let other = TrainConfig {
            seed: 999,
            ..trainer.config().clone()
        };
        assert_eq!(
            ckpt.restore(other).unwrap_err(),
            CkptError::ConfigMismatch("workload seed differs")
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample_checkpoint().encode();
        bytes[0] ^= 0xff;
        assert_eq!(Checkpoint::decode(&bytes), Err(CkptError::BadMagic));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = sample_checkpoint().encode();
        bytes[8..12].copy_from_slice(&(CKPT_VERSION + 1).to_le_bytes());
        assert_eq!(
            Checkpoint::decode(&bytes),
            Err(CkptError::UnsupportedVersion(CKPT_VERSION + 1))
        );
    }

    #[test]
    fn corrupted_payload_fails_the_checksum() {
        let mut bytes = sample_checkpoint().encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert_eq!(Checkpoint::decode(&bytes), Err(CkptError::ChecksumMismatch));
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample_checkpoint().encode();
        assert!(Checkpoint::decode(&bytes[..4]).is_err());
        assert!(Checkpoint::decode(&bytes[..bytes.len() - 5]).is_err());
    }

    #[test]
    fn warm_start_flag_round_trips_both_ways() {
        let mut ckpt = sample_checkpoint();
        ckpt.warm_start_ratio = None;
        let decoded = Checkpoint::decode(&ckpt.encode()).unwrap();
        assert_eq!(decoded.warm_start_ratio, None);
        ckpt.warm_start_ratio = Some(0.125);
        let decoded = Checkpoint::decode(&ckpt.encode()).unwrap();
        assert_eq!(decoded.warm_start_ratio, Some(0.125));
    }
}
