//! Deterministic offline replay of recorded schedules.
//!
//! Two replay modes, both running entirely through
//! [`sim_device::Timeline`] with **no numerics**:
//!
//! * **Exact replay** ([`replay_exact`] / [`verify_exact`]): every batch's
//!   ops are re-pushed in recorded submission order with their recorded
//!   durations, lanes and dependency edges.  The timeline's ASAP scheduler
//!   is deterministic over f64 `max`/`+`, so the reconstructed schedule —
//!   every start, every end, the per-lane busy totals and the critical
//!   path — matches the recording *bit for bit*.  This is the invariant CI
//!   exercises: a trace is a faithful, re-simulatable record, not a lossy
//!   log.
//! * **Knob replay** ([`replay_with_knobs`]): the CLM pipeline structure is
//!   rebuilt from the per-micro-batch costs in the trace under altered
//!   knobs — a different prefetch window, a different simulated device
//!   count, or per-kind cost multipliers — mirroring the runtime engines'
//!   op-emission order.  Replaying with the *recorded* knobs reproduces the
//!   recorded schedule exactly; altered knobs answer "what if" questions
//!   (how much overlap does window 0 lose? what does a 4-way shard buy?)
//!   without re-running training.
//!
//! Measured wall-clock traces (the synchronous and threaded backends)
//! carry no dependency edges — their ordering lives in the measured start
//! times — so they support reporting but not replay; both entry points
//! reject them with [`ReplayError::MeasuredTrace`].

use crate::format::{Trace, TraceEvent};
use sim_device::{Lane, OpId, OpKind, Timeline};

/// Why a trace could not be replayed.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// The trace has no dependency edges (measured wall-clock spans).
    MeasuredTrace,
    /// The trace's structure does not support the requested knobs (e.g.
    /// re-sharding a trace that was already recorded multi-device).
    UnsupportedSource(&'static str),
    /// Device-count replay needs the header's cost-model constants, which
    /// this trace does not carry.
    MissingCostModel,
    /// A batch does not look like a CLM pipeline schedule.
    BadStructure(&'static str),
    /// Exact verification found a divergence.
    Mismatch(String),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::MeasuredTrace => write!(
                f,
                "trace carries measured spans without dependency edges; it can be reported but not replayed"
            ),
            ReplayError::UnsupportedSource(what) => write!(f, "unsupported replay source: {what}"),
            ReplayError::MissingCostModel => {
                write!(f, "device-count replay needs the trace's cost-model header")
            }
            ReplayError::BadStructure(what) => write!(f, "not a CLM pipeline trace: {what}"),
            ReplayError::Mismatch(what) => write!(f, "replay diverged from recording: {what}"),
        }
    }
}

impl std::error::Error for ReplayError {}

/// One batch's reconstructed schedule.
#[derive(Debug, Clone)]
pub struct BatchReplay {
    /// Epoch of the recorded batch.
    pub epoch: u64,
    /// Batch index of the recorded batch.
    pub batch: u64,
    /// The reconstructed timeline.
    pub timeline: Timeline,
}

/// Per-kind duration multipliers for what-if cost scaling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KindScale {
    /// Forward/backward/GPU-Adam (compute-lane) multiplier.
    pub compute: f64,
    /// Load/store/all-reduce/cache-copy (communication) multiplier.
    pub comm: f64,
    /// CPU Adam multiplier.
    pub adam: f64,
    /// Scheduling/resize (host) multiplier.
    pub scheduling: f64,
}

impl Default for KindScale {
    fn default() -> Self {
        KindScale {
            compute: 1.0,
            comm: 1.0,
            adam: 1.0,
            scheduling: 1.0,
        }
    }
}

impl KindScale {
    /// Whether every multiplier is exactly 1 (scaling disabled).
    pub fn is_identity(&self) -> bool {
        *self == KindScale::default()
    }

    /// The multiplier applied to ops of `kind`.
    pub fn for_kind(&self, kind: OpKind) -> f64 {
        match kind {
            OpKind::Forward | OpKind::Backward | OpKind::GpuAdamUpdate => self.compute,
            OpKind::LoadParams | OpKind::StoreGrads | OpKind::AllReduce | OpKind::CacheCopy => {
                self.comm
            }
            OpKind::CpuAdamUpdate => self.adam,
            OpKind::Scheduling | OpKind::Resize => self.scheduling,
            OpKind::Other => 1.0,
        }
    }

    fn apply(&self, kind: OpKind, dur: f64) -> f64 {
        let s = self.for_kind(kind);
        if s == 1.0 {
            dur // exact: never round-trip through a multiply at identity
        } else {
            dur * s
        }
    }
}

/// The replay knobs: leave everything `None`/identity to reproduce the
/// recorded schedule exactly.
#[derive(Debug, Clone, Default)]
pub struct ReplayKnobs {
    /// Override the prefetch window (rebuilds the CLM pipeline).
    pub window: Option<usize>,
    /// Re-shard across this many simulated devices (rebuilds the CLM
    /// pipeline; source must be a single-device trace with cost-model
    /// metadata).
    pub devices: Option<usize>,
    /// Per-kind duration multipliers.
    pub scale: KindScale,
}

/// Re-pushes every batch through a fresh timeline with recorded durations,
/// lanes and dependencies — the bit-exact reconstruction.
pub fn replay_exact(trace: &Trace) -> Result<Vec<BatchReplay>, ReplayError> {
    if !trace.has_deps() {
        return Err(ReplayError::MeasuredTrace);
    }
    let mut out = Vec::new();
    for (epoch, batch, events) in trace.batches() {
        let mut timeline = Timeline::new();
        let mut ids: Vec<OpId> = Vec::with_capacity(events.len());
        for e in events {
            let deps: Vec<OpId> = e.deps.iter().map(|&d| ids[d as usize]).collect();
            ids.push(timeline.push_traced(
                e.kind,
                e.lane,
                e.dur,
                e.bytes,
                e.rows,
                e.microbatch,
                &deps,
            ));
        }
        out.push(BatchReplay {
            epoch,
            batch,
            timeline,
        });
    }
    Ok(out)
}

/// Replays the trace exactly and checks, op for op, that every
/// reconstructed start and end matches the recording bit for bit — and
/// therefore that makespans, per-lane busy totals and the critical path do
/// too.
pub fn verify_exact(trace: &Trace) -> Result<Vec<BatchReplay>, ReplayError> {
    let replays = replay_exact(trace)?;
    let batches = trace.batches();
    for (replay, (_, _, events)) in replays.iter().zip(&batches) {
        let ops = replay.timeline.ops();
        if ops.len() != events.len() {
            return Err(ReplayError::Mismatch(format!(
                "batch {}: {} replayed ops vs {} recorded",
                replay.batch,
                ops.len(),
                events.len()
            )));
        }
        for (op, e) in ops.iter().zip(events.iter()) {
            if op.start.to_bits() != e.start.to_bits() || op.end.to_bits() != e.end().to_bits() {
                return Err(ReplayError::Mismatch(format!(
                    "batch {} op {} ({:?} on {:?}): replayed [{}, {}] vs recorded [{}, {}]",
                    replay.batch,
                    op.id.index(),
                    op.kind,
                    op.lane,
                    op.start,
                    op.end,
                    e.start,
                    e.end(),
                )));
            }
        }
    }
    Ok(replays)
}

/// Replays under altered knobs.  With no window/device override this is a
/// structural replay (recorded dependency graph, scaled durations); with
/// one, the CLM pipeline is rebuilt from per-micro-batch costs mirroring
/// the engines' emission order.
pub fn replay_with_knobs(
    trace: &Trace,
    knobs: &ReplayKnobs,
) -> Result<Vec<BatchReplay>, ReplayError> {
    if knobs.window.is_none() && knobs.devices.is_none() {
        return replay_scaled(trace, &knobs.scale);
    }
    if trace.meta.devices > 1 {
        return Err(ReplayError::UnsupportedSource(
            "window/device replay requires a single-device recording",
        ));
    }
    let devices = knobs.devices.unwrap_or(1).max(1);
    if devices > 1 && !trace.meta.cost.usable() {
        return Err(ReplayError::MissingCostModel);
    }
    if !trace.has_deps() {
        return Err(ReplayError::MeasuredTrace);
    }
    let window = knobs.window.unwrap_or(trace.meta.prefetch_window as usize);
    let mut out = Vec::new();
    for (epoch, batch, events) in trace.batches() {
        let parsed = ClmBatch::parse(events)?;
        let timeline = if devices == 1 {
            parsed.rebuild_single(window, &knobs.scale)
        } else {
            parsed.rebuild_sharded(window, devices, trace, &knobs.scale)
        };
        out.push(BatchReplay {
            epoch,
            batch,
            timeline,
        });
    }
    Ok(out)
}

/// Structural replay: recorded graph, per-kind scaled durations.
fn replay_scaled(trace: &Trace, scale: &KindScale) -> Result<Vec<BatchReplay>, ReplayError> {
    if !trace.has_deps() {
        return Err(ReplayError::MeasuredTrace);
    }
    let mut out = Vec::new();
    for (epoch, batch, events) in trace.batches() {
        let mut timeline = Timeline::new();
        let mut ids: Vec<OpId> = Vec::with_capacity(events.len());
        for e in events {
            let deps: Vec<OpId> = e.deps.iter().map(|&d| ids[d as usize]).collect();
            ids.push(timeline.push_traced(
                e.kind,
                e.lane,
                scale.apply(e.kind, e.dur),
                e.bytes,
                e.rows,
                e.microbatch,
                &deps,
            ));
        }
        out.push(BatchReplay {
            epoch,
            batch,
            timeline,
        });
    }
    Ok(out)
}

/// Recorded cost of one op (duration plus its accounting annotations).
#[derive(Debug, Clone, Copy, Default)]
struct OpCost {
    dur: f64,
    bytes: u64,
    rows: u64,
}

impl OpCost {
    fn of(e: &TraceEvent) -> OpCost {
        OpCost {
            dur: e.dur,
            bytes: e.bytes,
            rows: e.rows,
        }
    }
}

/// One micro-batch's recorded costs.
#[derive(Debug, Clone, Copy, Default)]
struct MbCost {
    gather: OpCost,
    forward: OpCost,
    backward: OpCost,
    store: OpCost,
    /// Early-finalised CPU Adam (overlapped CLM only).
    adam: Option<OpCost>,
}

/// A recorded single-device CLM batch decomposed into the costs the
/// rebuild re-schedules.
#[derive(Debug, Clone)]
struct ClmBatch {
    resize: Option<OpCost>,
    sched: OpCost,
    /// F0 Adam over the batch-untouched set (overlapped CLM only).
    f0_adam: Option<OpCost>,
    mbs: Vec<MbCost>,
    /// Batch-end dense Adam (non-overlapped CLM only).
    dense_adam: Option<OpCost>,
}

impl ClmBatch {
    fn parse(events: &[TraceEvent]) -> Result<ClmBatch, ReplayError> {
        for e in events {
            if matches!(e.kind, OpKind::AllReduce | OpKind::GpuAdamUpdate) {
                return Err(ReplayError::BadStructure(
                    "contains all-reduce/GPU-Adam ops (not a single-device CLM batch)",
                ));
            }
        }
        let m = events
            .iter()
            .filter_map(|e| e.microbatch)
            .max()
            .map(|mb| mb as usize + 1)
            .ok_or(ReplayError::BadStructure("no per-micro-batch ops"))?;
        let overlapped = events
            .iter()
            .any(|e| e.kind == OpKind::CpuAdamUpdate && e.microbatch.is_some());

        let mut parsed = ClmBatch {
            resize: None,
            sched: OpCost::default(),
            f0_adam: None,
            mbs: vec![MbCost::default(); m],
            dense_adam: None,
        };
        let mut seen_sched = false;
        let mut seen = vec![[false; 5]; m];
        for e in events {
            match (e.kind, e.microbatch) {
                (OpKind::Resize, None) => parsed.resize = Some(OpCost::of(e)),
                (OpKind::Scheduling, None) => {
                    parsed.sched = OpCost::of(e);
                    seen_sched = true;
                }
                (OpKind::CpuAdamUpdate, None) => {
                    // Overlapped batches front-load F0; non-overlapped ones
                    // end with the dense pass.
                    if overlapped {
                        parsed.f0_adam = Some(OpCost::of(e));
                    } else {
                        parsed.dense_adam = Some(OpCost::of(e));
                    }
                }
                (kind, Some(mb)) => {
                    let mb = mb as usize;
                    let slot = &mut parsed.mbs[mb];
                    let (field, idx): (&mut OpCost, usize) = match kind {
                        OpKind::LoadParams => (&mut slot.gather, 0),
                        OpKind::Forward => (&mut slot.forward, 1),
                        OpKind::Backward => (&mut slot.backward, 2),
                        OpKind::StoreGrads => (&mut slot.store, 3),
                        OpKind::CpuAdamUpdate => {
                            slot.adam = Some(OpCost::of(e));
                            seen[mb][4] = true;
                            continue;
                        }
                        _ => {
                            return Err(ReplayError::BadStructure(
                                "unexpected per-micro-batch op kind",
                            ))
                        }
                    };
                    if seen[mb][idx] {
                        return Err(ReplayError::BadStructure("duplicate per-micro-batch op"));
                    }
                    *field = OpCost::of(e);
                    seen[mb][idx] = true;
                }
                _ => {
                    return Err(ReplayError::BadStructure("unexpected batch-level op kind"));
                }
            }
        }
        if !seen_sched {
            return Err(ReplayError::BadStructure("no scheduling op"));
        }
        for (mb, flags) in seen.iter().enumerate() {
            if !flags[..4].iter().all(|&s| s) || (overlapped && !flags[4]) {
                let _ = mb;
                return Err(ReplayError::BadStructure(
                    "micro-batch missing gather/forward/backward/store ops",
                ));
            }
        }
        Ok(parsed)
    }

    /// Mirrors `PipelinedEngine::run_clm_batch`'s emission order with the
    /// recorded costs under prefetch window `w`.
    fn rebuild_single(&self, w: usize, scale: &KindScale) -> Timeline {
        let m = self.mbs.len();
        let win = Window { w, m };
        let mut t = Timeline::new();

        let mut sched_deps = Vec::new();
        if let Some(r) = &self.resize {
            sched_deps.push(push_cost(
                &mut t,
                OpKind::Resize,
                Lane::CpuScheduler,
                r,
                None,
                &[],
                scale,
            ));
        }
        let sched = push_cost(
            &mut t,
            OpKind::Scheduling,
            Lane::CpuScheduler,
            &self.sched,
            None,
            &sched_deps,
            scale,
        );
        if let Some(f0) = &self.f0_adam {
            push_cost(
                &mut t,
                OpKind::CpuAdamUpdate,
                Lane::CpuAdam,
                f0,
                None,
                &[sched],
                scale,
            );
        }

        let mut gathers: Vec<Option<OpId>> = vec![None; m];
        let mut backwards: Vec<Option<OpId>> = vec![None; m];
        for i in win.initial() {
            gathers[i] = Some(self.push_gather(&mut t, i, &win, &backwards, sched, scale));
        }
        let mut last_store = sched;
        for i in 0..m {
            let fwd = push_cost(
                &mut t,
                OpKind::Forward,
                Lane::GpuCompute,
                &self.mbs[i].forward,
                Some(i as u32),
                &[gathers[i].expect("gather issued before compute")],
                scale,
            );
            let bwd = push_cost(
                &mut t,
                OpKind::Backward,
                Lane::GpuCompute,
                &self.mbs[i].backward,
                Some(i as u32),
                &[fwd],
                scale,
            );
            backwards[i] = Some(bwd);
            let store = push_cost(
                &mut t,
                OpKind::StoreGrads,
                Lane::GpuComm,
                &self.mbs[i].store,
                Some(i as u32),
                &[bwd],
                scale,
            );
            last_store = store;
            if let Some(adam) = &self.mbs[i].adam {
                push_cost(
                    &mut t,
                    OpKind::CpuAdamUpdate,
                    Lane::CpuAdam,
                    adam,
                    Some(i as u32),
                    &[store],
                    scale,
                );
            }
            for j in win.after(i) {
                gathers[j] = Some(self.push_gather(&mut t, j, &win, &backwards, sched, scale));
            }
        }
        if let Some(dense) = &self.dense_adam {
            push_cost(
                &mut t,
                OpKind::CpuAdamUpdate,
                Lane::CpuAdam,
                dense,
                None,
                &[last_store],
                scale,
            );
        }
        t
    }

    fn push_gather(
        &self,
        t: &mut Timeline,
        i: usize,
        win: &Window,
        backwards: &[Option<OpId>],
        sched: OpId,
        scale: &KindScale,
    ) -> OpId {
        let mut deps = vec![sched];
        if let Some(k) = win.compute_dep(i) {
            deps.push(backwards[k].expect("window dependencies point at completed compute"));
        }
        push_cost(
            t,
            OpKind::LoadParams,
            Lane::GpuComm,
            &self.mbs[i].gather,
            Some(i as u32),
            &deps,
            scale,
        )
    }

    /// Mirrors `ShardedEngine::run_clm_sharded`'s emission order across
    /// `devices` simulated lane groups.  Re-sharding a single-device
    /// recording has no ownership partition to consult, so the rebuild
    /// approximates uniform sharding: `1/D` of every fetch is local, Adam
    /// groups split evenly across owners — the cost-model constants from
    /// the trace header price the peer hops and all-reduce chains.
    fn rebuild_sharded(
        &self,
        w: usize,
        devices: usize,
        trace: &Trace,
        scale: &KindScale,
    ) -> Timeline {
        let cost = &trace.meta.cost;
        let m = self.mbs.len();
        let local_len = |d: usize| (m + devices - 1 - d) / devices;
        let wins: Vec<Window> = (0..devices)
            .map(|d| Window { w, m: local_len(d) })
            .collect();
        let mut t = Timeline::new();

        let mut sched_deps = Vec::new();
        if let Some(r) = &self.resize {
            sched_deps.push(push_cost(
                &mut t,
                OpKind::Resize,
                Lane::CpuScheduler,
                r,
                None,
                &[],
                scale,
            ));
        }
        let sched = push_cost(
            &mut t,
            OpKind::Scheduling,
            Lane::CpuScheduler,
            &self.sched,
            None,
            &sched_deps,
            scale,
        );
        if let Some(f0) = &self.f0_adam {
            for (dev, rows) in split_rows(f0.rows, devices).into_iter().enumerate() {
                let dur = prorate(f0.dur, rows, f0.rows);
                t.push_traced(
                    OpKind::CpuAdamUpdate,
                    Lane::adam_of(dev),
                    scale.apply(OpKind::CpuAdamUpdate, dur),
                    0,
                    rows,
                    None,
                    &[sched],
                );
            }
        }

        let mut gathers: Vec<Option<OpId>> = vec![None; m];
        let mut backwards: Vec<Option<OpId>> = vec![None; m];
        let mut last_store: Vec<Option<OpId>> = vec![None; devices];
        let mut last_allreduce: Option<OpId> = None;

        let sharded_gather = |t: &mut Timeline, backwards: &[Option<OpId>], i: usize| -> OpId {
            let dev = i % devices;
            let k = i / devices;
            let mut deps = vec![sched];
            if let Some(k_dep) = wins[dev].compute_dep(k) {
                deps.push(
                    backwards[k_dep * devices + dev]
                        .expect("window dependencies point at completed compute"),
                );
            }
            // Uniform-ownership approximation: 1/D of the fetch is local.
            let g = &self.mbs[i].gather;
            let local_bytes = g.bytes / devices as u64;
            let remote_bytes = g.bytes - local_bytes;
            let dur = cost.transfer_time(local_bytes)
                + cost.peer_hop_factor * cost.transfer_time(remote_bytes);
            t.push_traced(
                OpKind::LoadParams,
                Lane::comm_of(dev),
                scale.apply(OpKind::LoadParams, dur),
                g.bytes,
                g.rows,
                Some(i as u32),
                &deps,
            )
        };

        for dev in 0..devices {
            for k in wins[dev].initial() {
                let i = k * devices + dev;
                gathers[i] = Some(sharded_gather(&mut t, &backwards, i));
            }
        }
        for i in 0..m {
            let dev = i % devices;
            let k = i / devices;
            let fwd = push_cost(
                &mut t,
                OpKind::Forward,
                Lane::compute_of(dev),
                &self.mbs[i].forward,
                Some(i as u32),
                &[gathers[i].expect("gather issued before compute")],
                scale,
            );
            let bwd = push_cost(
                &mut t,
                OpKind::Backward,
                Lane::compute_of(dev),
                &self.mbs[i].backward,
                Some(i as u32),
                &[fwd],
                scale,
            );
            backwards[i] = Some(bwd);
            let store = push_cost(
                &mut t,
                OpKind::StoreGrads,
                Lane::comm_of(dev),
                &self.mbs[i].store,
                Some(i as u32),
                &[bwd],
                scale,
            );
            last_store[dev] = Some(store);

            if let Some(adam) = &self.mbs[i].adam {
                let adam_dep = push_allreduce(
                    &mut t,
                    cost,
                    devices,
                    adam.rows,
                    Some(i as u32),
                    &last_store,
                    &mut last_allreduce,
                    sched,
                    scale,
                );
                for (dev2, rows) in split_rows(adam.rows, devices).into_iter().enumerate() {
                    let dur = prorate(adam.dur, rows, adam.rows);
                    t.push_traced(
                        OpKind::CpuAdamUpdate,
                        Lane::adam_of(dev2),
                        scale.apply(OpKind::CpuAdamUpdate, dur),
                        0,
                        rows,
                        Some(i as u32),
                        &[adam_dep],
                    );
                }
            }
            for k2 in wins[dev].after(k) {
                let j = k2 * devices + dev;
                gathers[j] = Some(sharded_gather(&mut t, &backwards, j));
            }
        }
        if let Some(dense) = &self.dense_adam {
            let adam_dep = push_allreduce(
                &mut t,
                cost,
                devices,
                dense.rows,
                None,
                &last_store,
                &mut last_allreduce,
                sched,
                scale,
            );
            for (dev, rows) in split_rows(dense.rows, devices).into_iter().enumerate() {
                let dur = prorate(dense.dur, rows, dense.rows);
                t.push_traced(
                    OpKind::CpuAdamUpdate,
                    Lane::adam_of(dev),
                    scale.apply(OpKind::CpuAdamUpdate, dur),
                    0,
                    rows,
                    None,
                    &[adam_dep],
                );
            }
        }
        t
    }
}

/// Mirrors the sharded engine's fixed-device-order all-reduce chain,
/// priced by the trace header's cost model.
#[allow(clippy::too_many_arguments)]
fn push_allreduce(
    t: &mut Timeline,
    cost: &crate::format::CostParams,
    devices: usize,
    group_rows: u64,
    microbatch: Option<u32>,
    last_store: &[Option<OpId>],
    last_allreduce: &mut Option<OpId>,
    sched: OpId,
    scale: &KindScale,
) -> OpId {
    if devices == 1 {
        return last_store[0].unwrap_or(sched);
    }
    let total_bytes =
        (group_rows as f64 * cost.gradient_bytes as f64 * cost.cost_scale).round() as u64;
    let per_device = (total_bytes as f64 * (devices - 1) as f64 / devices as f64).round() as u64;
    let mut base_deps: Vec<OpId> = last_store.iter().flatten().copied().collect();
    if base_deps.is_empty() {
        base_deps.push(sched);
    }
    if let Some(prev) = *last_allreduce {
        base_deps.push(prev);
    }
    let mut tail: Option<OpId> = None;
    for dev in 0..devices {
        let mut deps = base_deps.clone();
        if let Some(prev) = tail {
            deps.push(prev);
        }
        tail = Some(t.push_traced(
            OpKind::AllReduce,
            Lane::comm_of(dev),
            scale.apply(OpKind::AllReduce, cost.transfer_time(per_device)),
            per_device,
            group_rows,
            microbatch,
            &deps,
        ));
    }
    *last_allreduce = tail;
    tail.expect("devices >= 2 pushed at least one op")
}

fn push_cost(
    t: &mut Timeline,
    kind: OpKind,
    lane: Lane,
    cost: &OpCost,
    microbatch: Option<u32>,
    deps: &[OpId],
    scale: &KindScale,
) -> OpId {
    t.push_traced(
        kind,
        lane,
        scale.apply(kind, cost.dur),
        cost.bytes,
        cost.rows,
        microbatch,
        deps,
    )
}

/// `rows` split as evenly as possible across `devices` (remainder on the
/// lowest device indices) — the rebuild's stand-in for the footprint
/// partition's `split_counts`.
fn split_rows(rows: u64, devices: usize) -> Vec<u64> {
    let d = devices as u64;
    (0..d).map(|i| rows / d + u64::from(i < rows % d)).collect()
}

/// `dur * part / whole` (0 when the whole is empty).
fn prorate(dur: f64, part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        dur * part as f64 / whole as f64
    }
}

/// The prefetch-window arithmetic of `clm_runtime::PrefetchWindow`,
/// restated minimally so the trace crate does not depend on the runtime.
#[derive(Debug, Clone, Copy)]
struct Window {
    w: usize,
    m: usize,
}

impl Window {
    /// Initial frontier: micro-batches gathered before any compute.
    fn initial(&self) -> std::ops::Range<usize> {
        0..(self.w + 1).min(self.m)
    }

    /// Slots freed by the completion of micro-batch `k`.
    fn after(&self, k: usize) -> std::ops::Range<usize> {
        (k + self.w + 1).min(self.m)..(k + self.w + 2).min(self.m)
    }

    /// The compute op gather `i` must wait for (none inside the frontier).
    fn compute_dep(&self, i: usize) -> Option<usize> {
        i.checked_sub(self.w + 1)
    }
}

/// The critical path of a schedule: the dependency-or-lane-contiguous
/// chain of ops ending at the makespan, walked backwards through exact
/// end-time equalities (exact f64 comparisons are sound here — every
/// start is a `max` over candidate end times, so the binding predecessor's
/// end *equals* the start bit for bit).
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// End-to-end length in seconds (the makespan).
    pub length_s: f64,
    /// Ops on the path.
    pub ops: usize,
    /// Seconds on the path attributed to each op kind (kind-code order,
    /// zero-kind entries omitted).
    pub time_by_kind: Vec<(OpKind, f64)>,
}

/// Walks the critical path of a reconstructed timeline.  Ties (several
/// predecessors ending exactly at a start) break towards the earliest
/// submitted op, so the walk is deterministic.
pub fn critical_path(timeline: &Timeline) -> CriticalPath {
    let ops = timeline.ops();
    let mut by_kind = [0.0f64; OpKind::ALL.len()];
    let mut count = 0usize;
    let mut cur = ops
        .iter()
        .enumerate()
        .max_by(|(ai, a), (bi, b)| {
            a.end
                .partial_cmp(&b.end)
                .unwrap()
                // On equal ends prefer the *earlier* op deterministically.
                .then(bi.cmp(ai))
        })
        .map(|(i, _)| i);
    while let Some(i) = cur {
        let op = &ops[i];
        by_kind[op.kind.code() as usize] += op.dur;
        count += 1;
        if op.start == 0.0 {
            break;
        }
        // Candidate predecessors: the op's explicit dependencies, plus the
        // previous op on the same lane (the lane-serialisation edge).
        let mut next: Option<usize> = None;
        let mut consider = |j: usize| {
            if ops[j].end.to_bits() == op.start.to_bits() && next.is_none_or(|n| j < n) {
                next = Some(j);
            }
        };
        for d in &op.deps {
            consider(d.index());
        }
        if let Some(prev_on_lane) = ops[..i].iter().rposition(|o| o.lane == op.lane) {
            consider(prev_on_lane);
        }
        cur = next;
        if cur.is_none() {
            // Measured spans can start at arbitrary offsets with no equal
            // predecessor; stop rather than loop.
            break;
        }
    }
    CriticalPath {
        length_s: timeline.makespan(),
        ops: count,
        time_by_kind: OpKind::ALL
            .iter()
            .filter(|k| by_kind[k.code() as usize] > 0.0)
            .map(|&k| (k, by_kind[k.code() as usize]))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{CostParams, TraceMeta, TraceWriter};

    fn meta(devices: u32, window: u32) -> TraceMeta {
        TraceMeta {
            backend: "simulated".into(),
            scene: "unit".into(),
            devices,
            prefetch_window: window,
            seed: 0,
            cost: CostParams {
                pcie_latency_s: 1.0e-5,
                pcie_bandwidth: 25.0e9,
                cost_scale: 1.0,
                peer_hop_factor: 2.0,
                gradient_bytes: 96,
            },
        }
    }

    /// A hand-built 3-micro-batch overlapped CLM batch, window 1.
    fn clm_timeline() -> Timeline {
        let mut t = Timeline::new();
        let sched = t.push_traced(
            OpKind::Scheduling,
            Lane::CpuScheduler,
            1e-4,
            0,
            100,
            None,
            &[],
        );
        t.push_traced(
            OpKind::CpuAdamUpdate,
            Lane::CpuAdam,
            2e-4,
            0,
            40,
            None,
            &[sched],
        );
        let mut gathers = Vec::new();
        let mut backwards: Vec<OpId> = Vec::new();
        let w = 1usize;
        let m = 3usize;
        for i in 0..(w + 1).min(m) {
            gathers.push(t.push_traced(
                OpKind::LoadParams,
                Lane::GpuComm,
                3e-4,
                6400,
                10,
                Some(i as u32),
                &[sched],
            ));
        }
        for i in 0..m {
            let fwd = t.push_traced(
                OpKind::Forward,
                Lane::GpuCompute,
                4e-4,
                0,
                10,
                Some(i as u32),
                &[gathers[i]],
            );
            let bwd = t.push_traced(
                OpKind::Backward,
                Lane::GpuCompute,
                8e-4,
                0,
                10,
                Some(i as u32),
                &[fwd],
            );
            backwards.push(bwd);
            let store = t.push_traced(
                OpKind::StoreGrads,
                Lane::GpuComm,
                1e-4,
                960,
                5,
                Some(i as u32),
                &[bwd],
            );
            t.push_traced(
                OpKind::CpuAdamUpdate,
                Lane::CpuAdam,
                1.5e-4,
                0,
                5,
                Some(i as u32),
                &[store],
            );
            for j in (i + w + 1).min(m)..(i + w + 2).min(m) {
                let mut deps = vec![sched];
                if let Some(k) = j.checked_sub(w + 1) {
                    deps.push(backwards[k]);
                }
                gathers.push(t.push_traced(
                    OpKind::LoadParams,
                    Lane::GpuComm,
                    3e-4,
                    6400,
                    10,
                    Some(j as u32),
                    &deps,
                ));
            }
        }
        t
    }

    fn clm_trace() -> Trace {
        let mut w = TraceWriter::new(meta(1, 1));
        w.record_timeline(0, 0, &clm_timeline());
        w.finish()
    }

    #[test]
    fn exact_replay_reproduces_the_recording_bit_for_bit() {
        let trace = clm_trace();
        let replays = verify_exact(&trace).unwrap();
        assert_eq!(replays.len(), 1);
        let t = clm_timeline();
        assert_eq!(
            replays[0].timeline.makespan().to_bits(),
            t.makespan().to_bits()
        );
        for lane in Lane::ALL {
            assert_eq!(
                replays[0].timeline.busy_time(lane).to_bits(),
                t.busy_time(lane).to_bits(),
                "{lane:?}"
            );
        }
    }

    #[test]
    fn rebuild_at_recorded_window_is_exact() {
        let trace = clm_trace();
        let knobs = ReplayKnobs {
            window: Some(1),
            ..Default::default()
        };
        let rebuilt = replay_with_knobs(&trace, &knobs).unwrap();
        let recorded = clm_timeline();
        assert_eq!(rebuilt[0].timeline.ops().len(), recorded.ops().len());
        for (a, b) in rebuilt[0].timeline.ops().iter().zip(recorded.ops()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn window_zero_removes_overlap_and_extends_the_makespan() {
        let trace = clm_trace();
        let w0 = replay_with_knobs(
            &trace,
            &ReplayKnobs {
                window: Some(0),
                ..Default::default()
            },
        )
        .unwrap();
        let recorded = clm_timeline();
        assert!(
            w0[0].timeline.makespan() >= recorded.makespan(),
            "shrinking the window cannot speed the schedule up"
        );
    }

    #[test]
    fn device_replay_spreads_compute_across_lane_groups() {
        let trace = clm_trace();
        let sharded = replay_with_knobs(
            &trace,
            &ReplayKnobs {
                devices: Some(2),
                ..Default::default()
            },
        )
        .unwrap();
        let t = &sharded[0].timeline;
        assert!(t.busy_time(Lane::compute_of(0)) > 0.0);
        assert!(t.busy_time(Lane::compute_of(1)) > 0.0);
        assert!(t.time_by_kind(OpKind::AllReduce) > 0.0);
    }

    #[test]
    fn device_replay_without_cost_model_is_refused() {
        let mut trace = clm_trace();
        trace.meta.cost = CostParams::default();
        let err = replay_with_knobs(
            &trace,
            &ReplayKnobs {
                devices: Some(2),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, ReplayError::MissingCostModel);
    }

    #[test]
    fn scaled_replay_stretches_only_the_chosen_kind_class() {
        let trace = clm_trace();
        let scaled = replay_with_knobs(
            &trace,
            &ReplayKnobs {
                scale: KindScale {
                    comm: 2.0,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        let recorded = clm_timeline();
        let t = &scaled[0].timeline;
        assert!(
            (t.time_by_kind(OpKind::LoadParams) - 2.0 * recorded.time_by_kind(OpKind::LoadParams))
                .abs()
                < 1e-15
        );
        assert_eq!(
            t.time_by_kind(OpKind::Forward).to_bits(),
            recorded.time_by_kind(OpKind::Forward).to_bits(),
            "identity-scaled kinds must not be perturbed"
        );
    }

    #[test]
    fn measured_traces_are_rejected() {
        let mut t = Timeline::new();
        t.push_span(OpKind::Forward, Lane::GpuCompute, 0.0, 1.0, 0, 1, Some(0));
        let mut w = TraceWriter::new(meta(1, 0));
        w.record_timeline(0, 0, &t);
        let trace = w.finish();
        assert_eq!(
            replay_exact(&trace).unwrap_err(),
            ReplayError::MeasuredTrace
        );
        assert_eq!(
            replay_with_knobs(
                &trace,
                &ReplayKnobs {
                    window: Some(2),
                    ..Default::default()
                }
            )
            .unwrap_err(),
            ReplayError::MeasuredTrace
        );
    }

    #[test]
    fn critical_path_walks_the_binding_chain() {
        let mut t = Timeline::new();
        let load = t.push_traced(OpKind::LoadParams, Lane::GpuComm, 2.0, 0, 0, None, &[]);
        let fwd = t.push_traced(OpKind::Forward, Lane::GpuCompute, 1.0, 0, 0, None, &[load]);
        // A short op on an idle lane that is NOT on the path.
        t.push_traced(OpKind::Scheduling, Lane::CpuScheduler, 0.5, 0, 0, None, &[]);
        t.push_traced(OpKind::Backward, Lane::GpuCompute, 3.0, 0, 0, None, &[fwd]);
        let cp = critical_path(&t);
        assert_eq!(cp.length_s, 6.0);
        assert_eq!(cp.ops, 3);
        let kinds: Vec<OpKind> = cp.time_by_kind.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            kinds,
            vec![OpKind::Forward, OpKind::Backward, OpKind::LoadParams]
        );
        let total: f64 = cp.time_by_kind.iter().map(|(_, s)| s).sum();
        assert_eq!(total, 6.0);
    }

    #[test]
    fn critical_path_of_empty_timeline_is_zero() {
        let cp = critical_path(&Timeline::new());
        assert_eq!(cp.length_s, 0.0);
        assert_eq!(cp.ops, 0);
        assert!(cp.time_by_kind.is_empty());
    }
}
