//! The `.clmtrace` container: a versioned header, a run-level metadata
//! block, and a delta/varint-packed stream of [`TraceEvent`]s.
//!
//! # Layout
//!
//! ```text
//! magic      8  bytes  b"CLMTRACE"
//! version    4  bytes  u32 LE (currently 1)
//! meta       varint-packed: backend, scene, devices, prefetch window,
//!            seed, and the cost-model constants replay-under-altered-
//!            device-counts needs (PCIe latency/bandwidth, cost scale,
//!            peer-hop factor, gradient bytes)
//! count      varint   number of events
//! checksum   8  bytes  FNV-1a 64 of the event payload, LE
//! events     packed    see below
//! ```
//!
//! Each event packs, in order: epoch, batch, lane code, op-kind code,
//! micro-batch (+1, 0 = none), rows, bytes — all varints — then the start
//! time XOR-predicted against the previous event's start and the duration
//! XOR-predicted against the previous duration *of the same kind* (exact
//! f64 bit patterns either way; see [`crate::varint`]), and finally the
//! dependency list as backward distances within the batch.  Timelines are
//! per-batch, so dependency indices reset at every batch boundary.

use crate::varint;
use sim_device::{Lane, OpKind, ScheduledOp, Timeline, TraceSink};

/// File magic of a `.clmtrace`.
pub const MAGIC: [u8; 8] = *b"CLMTRACE";

/// Current format version; decoding rejects anything else.
pub const FORMAT_VERSION: u32 = 1;

/// Errors decoding (or structurally validating) a trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// The buffer does not start with [`MAGIC`].
    BadMagic,
    /// The header's version is not [`FORMAT_VERSION`].
    UnsupportedVersion(u32),
    /// The buffer ended mid-field.
    Truncated,
    /// The event payload does not match the header checksum.
    ChecksumMismatch,
    /// A structurally invalid field (unknown lane/kind code, forward
    /// dependency, non-UTF-8 string, …).
    Malformed(&'static str),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not a .clmtrace file (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace format version {v} (expected {FORMAT_VERSION})"
                )
            }
            TraceError::Truncated => write!(f, "trace truncated mid-field"),
            TraceError::ChecksumMismatch => write!(f, "event payload checksum mismatch"),
            TraceError::Malformed(what) => write!(f, "malformed trace: {what}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// The cost-model constants a replay needs to re-cost communication when
/// the device count is changed (all-reduce chains, peer-hop gathers).
/// Zeroed when unknown — replays that need them then refuse rather than
/// guess.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Fixed per-transfer PCIe latency in seconds.
    pub pcie_latency_s: f64,
    /// PCIe bandwidth in bytes per second (one direction).
    pub pcie_bandwidth: f64,
    /// The run's `RuntimeConfig::cost_scale` (row/byte multiplier).
    pub cost_scale: f64,
    /// Extra-hop multiplier for cross-shard gathers.
    pub peer_hop_factor: f64,
    /// Bytes per Gaussian of all-reduced gradient state.
    pub gradient_bytes: u64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            pcie_latency_s: 0.0,
            pcie_bandwidth: 0.0,
            cost_scale: 0.0,
            peer_hop_factor: 0.0,
            gradient_bytes: 0,
        }
    }
}

impl CostParams {
    /// Whether the parameters are populated enough to re-cost transfers.
    pub fn usable(&self) -> bool {
        self.pcie_bandwidth > 0.0 && self.cost_scale > 0.0
    }

    /// PCIe transfer time for `bytes` — mirrors
    /// `DeviceProfile::transfer_time`.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            0.0
        } else {
            self.pcie_latency_s + bytes as f64 / self.pcie_bandwidth
        }
    }
}

/// Run-level metadata stored in the trace header.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMeta {
    /// Backend that produced the trace (`synchronous` / `simulated` /
    /// `threaded` / `sharded`).
    pub backend: String,
    /// Scene / workload label.
    pub scene: String,
    /// Devices the recorded run used.
    pub devices: u32,
    /// Configured prefetch window of the recorded run.
    pub prefetch_window: u32,
    /// Workload seed.
    pub seed: u64,
    /// Cost-model constants for device-count replays.
    pub cost: CostParams,
}

/// One recorded operation.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Epoch of the batch the op belongs to.
    pub epoch: u64,
    /// Batch (within the run) the op belongs to.
    pub batch: u64,
    /// Lane the op ran on.
    pub lane: Lane,
    /// Work classification.
    pub kind: OpKind,
    /// Micro-batch within the batch, when the op belongs to one.
    pub microbatch: Option<u32>,
    /// Gaussian rows touched.
    pub rows: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Start time in seconds (batch-relative for simulated schedules,
    /// wall-clock offsets for measured spans).
    pub start: f64,
    /// Duration in seconds, exactly as scheduled/measured.
    pub dur: f64,
    /// Within-batch indices of the ops this one waited on (empty for
    /// measured spans).
    pub deps: Vec<u32>,
}

impl TraceEvent {
    /// End time, rounded exactly as the scheduler rounds it.
    pub fn end(&self) -> f64 {
        self.start + self.dur
    }
}

/// A decoded trace: run metadata plus the full event stream in recorded
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Run-level metadata.
    pub meta: TraceMeta,
    /// Every recorded op, grouped by batch in recording order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Consecutive per-batch runs of the event stream, as
    /// `(epoch, batch, events)`.
    pub fn batches(&self) -> Vec<(u64, u64, &[TraceEvent])> {
        let mut out = Vec::new();
        let mut start = 0;
        for i in 1..=self.events.len() {
            let boundary = i == self.events.len() || {
                let (a, b) = (&self.events[i - 1], &self.events[i]);
                (a.epoch, a.batch) != (b.epoch, b.batch)
            };
            if boundary && i > start {
                let e = &self.events[start];
                out.push((e.epoch, e.batch, &self.events[start..i]));
                start = i;
            }
        }
        out
    }

    /// Whether the trace carries dependency structure (simulated
    /// schedules do; measured wall-clock spans do not).
    pub fn has_deps(&self) -> bool {
        self.events.iter().any(|e| !e.deps.is_empty())
    }

    /// Serialises the trace to the `.clmtrace` byte format.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(self.events.len() * 12);
        let mut last_start_bits = 0u64;
        let mut last_dur_bits = [0u64; OpKind::ALL.len()];
        let mut batch_key: Option<(u64, u64)> = None;
        let mut index_in_batch: u64 = 0;
        for e in &self.events {
            if batch_key != Some((e.epoch, e.batch)) {
                batch_key = Some((e.epoch, e.batch));
                index_in_batch = 0;
            }
            varint::write_u64(&mut payload, e.epoch);
            varint::write_u64(&mut payload, e.batch);
            varint::write_u64(&mut payload, u64::from(e.lane.code()));
            varint::write_u64(&mut payload, u64::from(e.kind.code()));
            varint::write_u64(
                &mut payload,
                e.microbatch.map(|m| u64::from(m) + 1).unwrap_or(0),
            );
            varint::write_u64(&mut payload, e.rows);
            varint::write_u64(&mut payload, e.bytes);
            last_start_bits = varint::write_f64_xor(&mut payload, e.start, last_start_bits);
            let slot = e.kind.code() as usize;
            last_dur_bits[slot] = varint::write_f64_xor(&mut payload, e.dur, last_dur_bits[slot]);
            varint::write_u64(&mut payload, e.deps.len() as u64);
            for &d in &e.deps {
                debug_assert!(u64::from(d) < index_in_batch, "forward dependency");
                varint::write_u64(&mut payload, index_in_batch - u64::from(d));
            }
            index_in_batch += 1;
        }

        let mut out = Vec::with_capacity(payload.len() + 64);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        write_str(&mut out, &self.meta.backend);
        write_str(&mut out, &self.meta.scene);
        varint::write_u64(&mut out, u64::from(self.meta.devices));
        varint::write_u64(&mut out, u64::from(self.meta.prefetch_window));
        varint::write_u64(&mut out, self.meta.seed);
        out.extend_from_slice(&self.meta.cost.pcie_latency_s.to_le_bytes());
        out.extend_from_slice(&self.meta.cost.pcie_bandwidth.to_le_bytes());
        out.extend_from_slice(&self.meta.cost.cost_scale.to_le_bytes());
        out.extend_from_slice(&self.meta.cost.peer_hop_factor.to_le_bytes());
        varint::write_u64(&mut out, self.meta.cost.gradient_bytes);
        varint::write_u64(&mut out, self.events.len() as u64);
        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes a `.clmtrace` byte buffer, validating magic, version and
    /// payload checksum.
    pub fn decode(data: &[u8]) -> Result<Trace, TraceError> {
        if data.len() < MAGIC.len() + 4 {
            return Err(TraceError::Truncated);
        }
        if data[..MAGIC.len()] != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let mut pos = MAGIC.len();
        let version = u32::from_le_bytes(
            data[pos..pos + 4]
                .try_into()
                .map_err(|_| TraceError::Truncated)?,
        );
        pos += 4;
        if version != FORMAT_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let backend = read_str(data, &mut pos)?;
        let scene = read_str(data, &mut pos)?;
        let devices = narrow_u32(varint::read_u64(data, &mut pos)?, "devices")?;
        let prefetch_window = narrow_u32(varint::read_u64(data, &mut pos)?, "prefetch window")?;
        let seed = varint::read_u64(data, &mut pos)?;
        let pcie_latency_s = read_f64_le(data, &mut pos)?;
        let pcie_bandwidth = read_f64_le(data, &mut pos)?;
        let cost_scale = read_f64_le(data, &mut pos)?;
        let peer_hop_factor = read_f64_le(data, &mut pos)?;
        let gradient_bytes = varint::read_u64(data, &mut pos)?;
        let count = varint::read_u64(data, &mut pos)? as usize;
        let checksum = u64::from_le_bytes(
            data.get(pos..pos + 8)
                .ok_or(TraceError::Truncated)?
                .try_into()
                .map_err(|_| TraceError::Truncated)?,
        );
        pos += 8;
        let payload = &data[pos..];
        if fnv1a(payload) != checksum {
            return Err(TraceError::ChecksumMismatch);
        }

        let mut events = Vec::with_capacity(count);
        let mut pos = 0usize;
        let mut last_start_bits = 0u64;
        let mut last_dur_bits = [0u64; OpKind::ALL.len()];
        let mut batch_key: Option<(u64, u64)> = None;
        let mut index_in_batch: u64 = 0;
        for _ in 0..count {
            let epoch = varint::read_u64(payload, &mut pos)?;
            let batch = varint::read_u64(payload, &mut pos)?;
            if batch_key != Some((epoch, batch)) {
                batch_key = Some((epoch, batch));
                index_in_batch = 0;
            }
            let lane_code = narrow_u32(varint::read_u64(payload, &mut pos)?, "lane code")?;
            let lane =
                Lane::from_code(lane_code).ok_or(TraceError::Malformed("unknown lane code"))?;
            let kind_code = narrow_u32(varint::read_u64(payload, &mut pos)?, "op-kind code")?;
            let kind = OpKind::from_code(kind_code)
                .ok_or(TraceError::Malformed("unknown op-kind code"))?;
            let mb_raw = varint::read_u64(payload, &mut pos)?;
            let microbatch = if mb_raw == 0 {
                None
            } else {
                Some(narrow_u32(mb_raw - 1, "microbatch")?)
            };
            let rows = varint::read_u64(payload, &mut pos)?;
            let bytes = varint::read_u64(payload, &mut pos)?;
            let (start, sb) = varint::read_f64_xor(payload, &mut pos, last_start_bits)?;
            last_start_bits = sb;
            let slot = kind.code() as usize;
            let (dur, db) = varint::read_f64_xor(payload, &mut pos, last_dur_bits[slot])?;
            last_dur_bits[slot] = db;
            let dep_count = varint::read_u64(payload, &mut pos)? as usize;
            let mut deps = Vec::with_capacity(dep_count);
            for _ in 0..dep_count {
                let back = varint::read_u64(payload, &mut pos)?;
                if back == 0 || back > index_in_batch {
                    return Err(TraceError::Malformed("dependency outside the batch prefix"));
                }
                deps.push(narrow_u32(index_in_batch - back, "dependency index")?);
            }
            events.push(TraceEvent {
                epoch,
                batch,
                lane,
                kind,
                microbatch,
                rows,
                bytes,
                start,
                dur,
                deps,
            });
            index_in_batch += 1;
        }
        if pos != payload.len() {
            return Err(TraceError::Malformed("trailing bytes after last event"));
        }
        Ok(Trace {
            meta: TraceMeta {
                backend,
                scene,
                devices,
                prefetch_window,
                seed,
                cost: CostParams {
                    pcie_latency_s,
                    pcie_bandwidth,
                    cost_scale,
                    peer_hop_factor,
                    gradient_bytes,
                },
            },
            events,
        })
    }
}

/// Collects scheduled ops into a [`Trace`], one batch-scoped timeline at a
/// time; the [`TraceSink`] implementation every backend records through.
#[derive(Debug)]
pub struct TraceWriter {
    meta: TraceMeta,
    events: Vec<TraceEvent>,
}

impl TraceWriter {
    /// Creates a writer for a run described by `meta`.
    pub fn new(meta: TraceMeta) -> Self {
        TraceWriter {
            meta,
            events: Vec::new(),
        }
    }

    /// Flushes every op of a batch-scoped timeline into the trace.
    pub fn record_timeline(&mut self, epoch: u64, batch: u64, timeline: &Timeline) {
        timeline.flush_trace(epoch, batch, self);
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Finalises the writer into a [`Trace`].
    pub fn finish(self) -> Trace {
        Trace {
            meta: self.meta,
            events: self.events,
        }
    }
}

impl TraceSink for TraceWriter {
    fn record_op(&mut self, epoch: u64, batch: u64, op: &ScheduledOp) {
        self.events.push(TraceEvent {
            epoch,
            batch,
            lane: op.lane,
            kind: op.kind,
            microbatch: op.microbatch,
            rows: op.rows,
            bytes: op.bytes,
            start: op.start,
            dur: op.dur,
            deps: op.deps.iter().map(|d| d.index() as u32).collect(),
        });
    }
}

fn write_str(buf: &mut Vec<u8>, s: &str) {
    varint::write_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn read_str(data: &[u8], pos: &mut usize) -> Result<String, TraceError> {
    let len = varint::read_u64(data, pos)? as usize;
    let bytes = data.get(*pos..*pos + len).ok_or(TraceError::Truncated)?;
    *pos += len;
    String::from_utf8(bytes.to_vec()).map_err(|_| TraceError::Malformed("non-UTF-8 string"))
}

fn read_f64_le(data: &[u8], pos: &mut usize) -> Result<f64, TraceError> {
    let bytes = data.get(*pos..*pos + 8).ok_or(TraceError::Truncated)?;
    *pos += 8;
    Ok(f64::from_le_bytes(bytes.try_into().unwrap()))
}

fn narrow_u32(v: u64, what: &'static str) -> Result<u32, TraceError> {
    u32::try_from(v).map_err(|_| {
        // The field name is reported through the generic message — keeping
        // TraceError allocation-free matters more than per-field detail.
        let _ = what;
        TraceError::Malformed("field exceeds u32 range")
    })
}

/// FNV-1a 64-bit hash.
pub(crate) fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_meta() -> TraceMeta {
        TraceMeta {
            backend: "simulated".into(),
            scene: "smoke".into(),
            devices: 1,
            prefetch_window: 2,
            seed: 29,
            cost: CostParams {
                pcie_latency_s: 10.0e-6,
                pcie_bandwidth: 25.0e9,
                cost_scale: 107_619.047,
                peer_hop_factor: 2.0,
                gradient_bytes: 96,
            },
        }
    }

    fn sample_trace() -> Trace {
        let mut t = Timeline::new();
        let load = t.push_traced(
            OpKind::LoadParams,
            Lane::GpuComm,
            1.5e-3,
            640,
            10,
            Some(0),
            &[],
        );
        let fwd = t.push_traced(
            OpKind::Forward,
            Lane::GpuCompute,
            2.5e-3,
            0,
            10,
            Some(0),
            &[load],
        );
        t.push_traced(
            OpKind::Backward,
            Lane::GpuCompute,
            5.0e-3,
            0,
            10,
            Some(0),
            &[fwd],
        );
        let mut w = TraceWriter::new(sample_meta());
        w.record_timeline(0, 0, &t);
        let mut t2 = Timeline::new();
        t2.push_traced(
            OpKind::Scheduling,
            Lane::CpuScheduler,
            1.0e-4,
            0,
            90,
            None,
            &[],
        );
        w.record_timeline(0, 1, &t2);
        w.finish()
    }

    #[test]
    fn encode_decode_round_trips_bit_exactly() {
        let trace = sample_trace();
        let bytes = trace.encode();
        let decoded = Trace::decode(&bytes).unwrap();
        assert_eq!(decoded, trace);
        // Re-encoding the decode is byte-identical (canonical encoding).
        assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn batches_groups_consecutive_runs() {
        let trace = sample_trace();
        let batches = trace.batches();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].2.len(), 3);
        assert_eq!(batches[1].2.len(), 1);
        assert_eq!((batches[1].0, batches[1].1), (0, 1));
        assert!(trace.has_deps());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample_trace().encode();
        bytes[0] ^= 0xff;
        assert_eq!(Trace::decode(&bytes), Err(TraceError::BadMagic));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = sample_trace().encode();
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        assert_eq!(
            Trace::decode(&bytes),
            Err(TraceError::UnsupportedVersion(FORMAT_VERSION + 1))
        );
    }

    #[test]
    fn corrupted_payload_fails_the_checksum() {
        let mut bytes = sample_trace().encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert_eq!(Trace::decode(&bytes), Err(TraceError::ChecksumMismatch));
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample_trace().encode();
        assert!(Trace::decode(&bytes[..4]).is_err());
        // A cut anywhere in the payload breaks the checksum (or truncates).
        assert!(Trace::decode(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn measured_spans_round_trip_without_deps() {
        let mut t = Timeline::new();
        t.push_span(OpKind::Forward, Lane::GpuCompute, 0.25, 0.5, 0, 42, Some(0));
        let mut w = TraceWriter::new(sample_meta());
        w.record_timeline(0, 0, &t);
        let trace = w.finish();
        assert!(!trace.has_deps());
        let decoded = Trace::decode(&trace.encode()).unwrap();
        assert_eq!(decoded.events[0].start, 0.25);
        assert_eq!(decoded.events[0].dur, 0.25);
        assert_eq!(decoded.events[0].rows, 42);
    }
}
