//! LEB128 variable-length integers and the f64 packing the trace format
//! is built on.
//!
//! Integer fields (counts, codes, byte volumes, dependency distances) are
//! plain unsigned varints; monotone fields (epoch, batch) are stored as
//! deltas before encoding.  Times are exact f64 **bit patterns** — never
//! quantised ticks, since deterministic replay requires re-pushing the very
//! same durations — XORed against a running predictor so repeated values
//! (identical per-micro-batch costs, zero-length ops) collapse to one byte.
//! The XOR residue is byte-swapped before the varint so the frequently-zero
//! low mantissa bytes land in the varint's high positions and drop off.

use crate::format::TraceError;

/// Appends `v` to `buf` as an unsigned LEB128 varint.
pub fn write_u64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint from `data` at `*pos`, advancing it.
pub fn read_u64(data: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*pos).ok_or(TraceError::Truncated)?;
        *pos += 1;
        if shift >= 64 {
            return Err(TraceError::Malformed("varint longer than 64 bits"));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Appends an f64 as `swap_bytes(bits ^ prev)` varint and returns its bits
/// as the next predictor value.
pub fn write_f64_xor(buf: &mut Vec<u8>, v: f64, prev_bits: u64) -> u64 {
    let bits = v.to_bits();
    write_u64(buf, (bits ^ prev_bits).swap_bytes());
    bits
}

/// Inverse of [`write_f64_xor`]: reads the residue, unswaps, XORs against
/// the predictor and returns `(value, bits)`.
pub fn read_f64_xor(
    data: &[u8],
    pos: &mut usize,
    prev_bits: u64,
) -> Result<(f64, u64), TraceError> {
    let residue = read_u64(data, pos)?.swap_bytes();
    let bits = residue ^ prev_bits;
    Ok((f64::from_bits(bits), bits))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trips_at_the_boundaries() {
        let mut buf = Vec::new();
        let values = [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        for v in values {
            write_u64(&mut buf, v);
        }
        let mut pos = 0;
        for v in values {
            assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn small_values_are_one_byte() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 42);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn truncated_varint_errors() {
        let mut pos = 0;
        assert!(matches!(
            read_u64(&[0x80], &mut pos),
            Err(TraceError::Truncated)
        ));
    }

    #[test]
    fn overlong_varint_errors() {
        let mut pos = 0;
        let data = [0x80u8; 11];
        assert!(matches!(
            read_u64(&data, &mut pos),
            Err(TraceError::Malformed(_))
        ));
    }

    #[test]
    fn f64_xor_round_trips_bit_exactly() {
        let values = [
            0.0,
            1.0,
            -1.5,
            1.0e-12,
            std::f64::consts::PI,
            f64::MAX,
            f64::MIN_POSITIVE,
            0.1 + 0.2,
        ];
        let mut buf = Vec::new();
        let mut prev = 0u64;
        for v in values {
            prev = write_f64_xor(&mut buf, v, prev);
        }
        let mut pos = 0;
        let mut prev = 0u64;
        for v in values {
            let (got, bits) = read_f64_xor(&buf, &mut pos, prev).unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
            prev = bits;
        }
    }

    #[test]
    fn repeated_f64_collapses_to_one_byte() {
        let mut buf = Vec::new();
        let prev = write_f64_xor(&mut buf, 0.123456789, 0);
        let before = buf.len();
        write_f64_xor(&mut buf, 0.123456789, prev);
        assert_eq!(buf.len() - before, 1, "XOR predictor must cancel");
    }
}
