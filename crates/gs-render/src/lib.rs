//! Differentiable CPU renderer for 3D Gaussian Splatting.
//!
//! This crate is the reproduction's stand-in for the gsplat CUDA kernels
//! used by the CLM paper: a tile-based EWA splatting rasteriser with a full
//! analytic backward pass, plus the losses and image-quality metrics used
//! during training and evaluation.
//!
//! The typical training-step flow is:
//!
//! 1. [`rasterize::render`] an image for one view (optionally restricted to
//!    the in-frustum Gaussians computed by `gs_core::cull_frustum`);
//! 2. compute a loss against the ground-truth image with [`loss::l1_loss`];
//! 3. run [`rasterize::render_backward`] to obtain per-Gaussian gradients;
//! 4. hand the gradients to an optimiser (see the `gs-optim` crate).
//!
//! # Example
//!
//! ```
//! use gs_core::{Camera, CameraIntrinsics, Gaussian, GaussianModel};
//! use gs_core::math::Vec3;
//! use gs_render::{render, render_backward, RenderOptions, l1_loss, psnr};
//!
//! let mut model = GaussianModel::new();
//! model.push(Gaussian::isotropic(Vec3::new(0.0, 0.0, 4.0), 0.4, [0.8, 0.1, 0.1], 0.9));
//! let camera = Camera::look_at(Vec3::ZERO, Vec3::Z, Vec3::Y,
//!                              CameraIntrinsics::simple(32, 32, 1.0));
//!
//! let out = render(&model, &camera, &RenderOptions::default());
//! let target = out.image.clone();
//! let loss = l1_loss(&out.image, &target);
//! assert_eq!(loss.value, 0.0);
//! assert!(psnr(&out.image, &target).is_infinite());
//! let grads = render_backward(&model, &camera, &out.aux, &loss.d_image);
//! assert!(grads.is_empty());
//! ```

pub mod image;
pub mod loss;
pub mod parallel;
pub mod projection;
pub mod rasterize;

pub use image::{l1_error, mse, psnr, ssim, Image};
pub use loss::{l1_loss, l2_loss, LossOutput};
pub use parallel::{parallel_for_each, parallel_map};
pub use projection::{
    project_gaussian, project_gaussian_backward, GaussianGradients, ProjectedGaussian,
    ScreenGradients,
};
pub use rasterize::{
    render, render_backward, RenderAux, RenderGradients, RenderOptions, RenderOutput,
    DEFAULT_BAND_HEIGHT, TILE_SIZE,
};
