//! Training losses for 3DGS.
//!
//! The reference 3DGS recipe uses `0.8·L1 + 0.2·(1 − SSIM)`.  In this
//! reproduction the differentiable part of the loss is L1 (whose gradient is
//! trivial and exact); SSIM and PSNR are exposed as evaluation metrics in
//! [`crate::image`].  The training dynamics relevant to CLM (which Gaussians
//! receive gradients, and how large those gradients are) are unaffected by
//! this simplification because the gradient *sparsity pattern* is identical.

use crate::image::Image;

/// Result of a differentiable loss evaluation.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Scalar loss value.
    pub value: f32,
    /// Gradient of the loss with respect to every rendered pixel
    /// (row-major, same layout as [`Image::pixels`]).
    pub d_image: Vec<[f32; 3]>,
}

/// Mean absolute error loss with its gradient.
///
/// # Panics
/// Panics if the images have different dimensions.
pub fn l1_loss(rendered: &Image, ground_truth: &Image) -> LossOutput {
    assert!(
        rendered.width() == ground_truth.width() && rendered.height() == ground_truth.height(),
        "image size mismatch"
    );
    let n = (rendered.pixel_count() * 3) as f32;
    let mut value = 0.0;
    let mut d_image = vec![[0.0f32; 3]; rendered.pixel_count()];
    for (i, (pr, pg)) in rendered
        .pixels()
        .iter()
        .zip(ground_truth.pixels())
        .enumerate()
    {
        for c in 0..3 {
            let diff = pr[c] - pg[c];
            value += diff.abs();
            d_image[i][c] = if diff > 0.0 {
                1.0 / n
            } else if diff < 0.0 {
                -1.0 / n
            } else {
                0.0
            };
        }
    }
    LossOutput {
        value: value / n,
        d_image,
    }
}

/// Mean squared error loss with its gradient.
///
/// # Panics
/// Panics if the images have different dimensions.
pub fn l2_loss(rendered: &Image, ground_truth: &Image) -> LossOutput {
    assert!(
        rendered.width() == ground_truth.width() && rendered.height() == ground_truth.height(),
        "image size mismatch"
    );
    let n = (rendered.pixel_count() * 3) as f32;
    let mut value = 0.0;
    let mut d_image = vec![[0.0f32; 3]; rendered.pixel_count()];
    for (i, (pr, pg)) in rendered
        .pixels()
        .iter()
        .zip(ground_truth.pixels())
        .enumerate()
    {
        for c in 0..3 {
            let diff = pr[c] - pg[c];
            value += diff * diff;
            d_image[i][c] = 2.0 * diff / n;
        }
    }
    LossOutput {
        value: value / n,
        d_image,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_loss_of_identical_images_is_zero() {
        let img = Image::filled(8, 8, [0.4, 0.5, 0.6]);
        let out = l1_loss(&img, &img);
        assert_eq!(out.value, 0.0);
        assert!(out.d_image.iter().all(|p| *p == [0.0; 3]));
    }

    #[test]
    fn l1_loss_value_and_gradient() {
        let a = Image::filled(2, 2, [0.6; 3]);
        let b = Image::filled(2, 2, [0.5; 3]);
        let out = l1_loss(&a, &b);
        assert!((out.value - 0.1).abs() < 1e-6);
        // Gradient of mean |a-b| wrt a is sign/N with N = 4 pixels × 3 channels.
        for p in &out.d_image {
            for c in 0..3 {
                assert!((p[c] - 1.0 / 12.0).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn l2_loss_gradient_matches_finite_difference() {
        let mut a = Image::new(3, 2);
        let mut b = Image::new(3, 2);
        for (i, p) in a.pixels_mut().iter_mut().enumerate() {
            *p = [(i as f32) * 0.1, 0.3, 0.9 - i as f32 * 0.05];
        }
        for (i, p) in b.pixels_mut().iter_mut().enumerate() {
            *p = [0.5, (i as f32) * 0.07, 0.2];
        }
        let out = l2_loss(&a, &b);
        let eps = 1e-3;
        for (pix, chan) in [(0usize, 0usize), (3, 1), (5, 2)] {
            let mut plus = a.clone();
            plus.pixels_mut()[pix][chan] += eps;
            let mut minus = a.clone();
            minus.pixels_mut()[pix][chan] -= eps;
            let fd = (l2_loss(&plus, &b).value - l2_loss(&minus, &b).value) / (2.0 * eps);
            assert!(
                (fd - out.d_image[pix][chan]).abs() < 1e-4,
                "pixel {pix} chan {chan}: {fd} vs {}",
                out.d_image[pix][chan]
            );
        }
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn loss_rejects_mismatched_sizes() {
        let a = Image::new(2, 2);
        let b = Image::new(3, 2);
        let _ = l1_loss(&a, &b);
    }
}
