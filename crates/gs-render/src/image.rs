//! RGB float images and image-quality metrics (PSNR, SSIM, L1/L2 error).

/// A dense RGB image with `f32` channels in `[0, 1]` (values outside the
/// range are permitted but clipped by the metrics where appropriate).
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    width: u32,
    height: u32,
    pixels: Vec<[f32; 3]>,
}

impl Image {
    /// Creates a black image.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        Self::filled(width, height, [0.0; 3])
    }

    /// Creates an image filled with a constant colour.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn filled(width: u32, height: u32, color: [f32; 3]) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        Image {
            width,
            height,
            pixels: vec![color; width as usize * height as usize],
        }
    }

    /// Creates an image from raw pixel data in row-major order.
    ///
    /// # Panics
    /// Panics if `pixels.len() != width * height`.
    pub fn from_pixels(width: u32, height: u32, pixels: Vec<[f32; 3]>) -> Self {
        assert_eq!(
            pixels.len(),
            width as usize * height as usize,
            "pixel buffer size must match dimensions"
        );
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        Image {
            width,
            height,
            pixels,
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total number of pixels.
    pub fn pixel_count(&self) -> usize {
        self.pixels.len()
    }

    /// Row-major pixel slice.
    pub fn pixels(&self) -> &[[f32; 3]] {
        &self.pixels
    }

    /// Mutable row-major pixel slice.
    pub fn pixels_mut(&mut self) -> &mut [[f32; 3]] {
        &mut self.pixels
    }

    /// Returns the pixel at `(x, y)`.
    ///
    /// # Panics
    /// Panics if the coordinates are out of bounds.
    pub fn pixel(&self, x: u32, y: u32) -> [f32; 3] {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.pixels[(y * self.width + x) as usize]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    /// Panics if the coordinates are out of bounds.
    pub fn set_pixel(&mut self, x: u32, y: u32, value: [f32; 3]) {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.pixels[(y * self.width + x) as usize] = value;
    }

    /// Mean value of every channel of every pixel.
    pub fn mean(&self) -> f32 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        let sum: f32 = self.pixels.iter().map(|p| p[0] + p[1] + p[2]).sum();
        sum / (self.pixels.len() as f32 * 3.0)
    }

    /// Per-channel luminance (simple average of R, G, B) at pixel index `i`.
    fn luma(&self, i: usize) -> f32 {
        let p = self.pixels[i];
        (p[0] + p[1] + p[2]) / 3.0
    }

    /// Approximate memory footprint of the pixel buffer in bytes.
    pub fn byte_size(&self) -> usize {
        self.pixels.len() * 3 * std::mem::size_of::<f32>()
    }
}

/// Mean absolute error between two images.
///
/// # Panics
/// Panics if the images have different dimensions.
pub fn l1_error(a: &Image, b: &Image) -> f32 {
    assert_same_size(a, b);
    let mut sum = 0.0;
    for (pa, pb) in a.pixels().iter().zip(b.pixels()) {
        for c in 0..3 {
            sum += (pa[c] - pb[c]).abs();
        }
    }
    sum / (a.pixel_count() as f32 * 3.0)
}

/// Mean squared error between two images.
///
/// # Panics
/// Panics if the images have different dimensions.
pub fn mse(a: &Image, b: &Image) -> f32 {
    assert_same_size(a, b);
    let mut sum = 0.0;
    for (pa, pb) in a.pixels().iter().zip(b.pixels()) {
        for c in 0..3 {
            let d = pa[c] - pb[c];
            sum += d * d;
        }
    }
    sum / (a.pixel_count() as f32 * 3.0)
}

/// Peak signal-to-noise ratio in dB between a rendered image and the ground
/// truth, assuming a peak value of 1.0.  Identical images yield
/// `f32::INFINITY`.
///
/// # Panics
/// Panics if the images have different dimensions.
pub fn psnr(rendered: &Image, ground_truth: &Image) -> f32 {
    let err = mse(rendered, ground_truth);
    if err <= 0.0 {
        f32::INFINITY
    } else {
        -10.0 * err.log10()
    }
}

/// Structural similarity (SSIM) between two images, computed on the
/// per-pixel luminance with an 8×8 box window (a light-weight variant of the
/// standard 11×11 Gaussian-window SSIM; adequate as a *metric*).
///
/// Returns a value in `[-1, 1]` where 1 means identical.
///
/// # Panics
/// Panics if the images have different dimensions.
pub fn ssim(a: &Image, b: &Image) -> f32 {
    assert_same_size(a, b);
    const C1: f32 = 0.01 * 0.01;
    const C2: f32 = 0.03 * 0.03;
    let window: u32 = 8;
    let w = a.width();
    let h = a.height();
    let mut total = 0.0;
    let mut windows = 0usize;
    let mut by = 0;
    while by < h {
        let mut bx = 0;
        while bx < w {
            let x_end = (bx + window).min(w);
            let y_end = (by + window).min(h);
            let n = ((x_end - bx) * (y_end - by)) as f32;
            let (mut ma, mut mb) = (0.0f32, 0.0f32);
            for y in by..y_end {
                for x in bx..x_end {
                    let idx = (y * w + x) as usize;
                    ma += a.luma(idx);
                    mb += b.luma(idx);
                }
            }
            ma /= n;
            mb /= n;
            let (mut va, mut vb, mut cov) = (0.0f32, 0.0f32, 0.0f32);
            for y in by..y_end {
                for x in bx..x_end {
                    let idx = (y * w + x) as usize;
                    let da = a.luma(idx) - ma;
                    let db = b.luma(idx) - mb;
                    va += da * da;
                    vb += db * db;
                    cov += da * db;
                }
            }
            va /= n;
            vb /= n;
            cov /= n;
            let s = ((2.0 * ma * mb + C1) * (2.0 * cov + C2))
                / ((ma * ma + mb * mb + C1) * (va + vb + C2));
            total += s;
            windows += 1;
            bx += window;
        }
        by += window;
    }
    if windows == 0 {
        1.0
    } else {
        total / windows as f32
    }
}

fn assert_same_size(a: &Image, b: &Image) {
    assert!(
        a.width() == b.width() && a.height() == b.height(),
        "image size mismatch: {}x{} vs {}x{}",
        a.width(),
        a.height(),
        b.width(),
        b.height()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let mut img = Image::new(4, 3);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert_eq!(img.pixel_count(), 12);
        assert_eq!(img.pixel(0, 0), [0.0; 3]);
        img.set_pixel(2, 1, [0.5, 0.25, 1.0]);
        assert_eq!(img.pixel(2, 1), [0.5, 0.25, 1.0]);
        assert_eq!(img.byte_size(), 12 * 12);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn pixel_out_of_bounds_panics() {
        let img = Image::new(2, 2);
        let _ = img.pixel(2, 0);
    }

    #[test]
    #[should_panic(expected = "must match dimensions")]
    fn from_pixels_checks_length() {
        let _ = Image::from_pixels(2, 2, vec![[0.0; 3]; 3]);
    }

    #[test]
    fn identical_images_have_zero_error_and_infinite_psnr() {
        let img = Image::filled(8, 8, [0.3, 0.6, 0.9]);
        assert_eq!(l1_error(&img, &img), 0.0);
        assert_eq!(mse(&img, &img), 0.0);
        assert_eq!(psnr(&img, &img), f32::INFINITY);
        assert!((ssim(&img, &img) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn psnr_of_known_error() {
        let a = Image::filled(8, 8, [0.0; 3]);
        let b = Image::filled(8, 8, [0.1; 3]);
        // MSE = 0.01, PSNR = -10 log10(0.01) = 20 dB.
        assert!((psnr(&a, &b) - 20.0).abs() < 1e-3);
        assert!((l1_error(&a, &b) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn psnr_decreases_with_larger_error() {
        let gt = Image::filled(8, 8, [0.5; 3]);
        let close = Image::filled(8, 8, [0.52; 3]);
        let far = Image::filled(8, 8, [0.8; 3]);
        assert!(psnr(&close, &gt) > psnr(&far, &gt));
    }

    #[test]
    fn ssim_detects_structural_differences() {
        let mut a = Image::new(16, 16);
        let mut b = Image::new(16, 16);
        for y in 0..16 {
            for x in 0..16 {
                let v = if (x + y) % 2 == 0 { 1.0 } else { 0.0 };
                a.set_pixel(x, y, [v; 3]);
                // b is the inverted checkerboard.
                b.set_pixel(x, y, [1.0 - v; 3]);
            }
        }
        assert!(
            ssim(&a, &b) < 0.1,
            "inverted structure should have low SSIM"
        );
        assert!(ssim(&a, &a) > 0.99);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn metrics_reject_size_mismatch() {
        let a = Image::new(4, 4);
        let b = Image::new(5, 4);
        let _ = psnr(&a, &b);
    }

    #[test]
    fn mean_of_filled_image() {
        let img = Image::filled(3, 3, [0.2, 0.4, 0.6]);
        assert!((img.mean() - 0.4).abs() < 1e-6);
    }
}
