//! Tile-based alpha-compositing rasteriser (forward and backward).
//!
//! The forward pass mirrors the reference 3DGS renderer: projected splats
//! are depth-sorted, binned into 16×16 pixel tiles, and composited
//! front-to-back per pixel with early termination once transmittance drops
//! below a threshold.  The backward pass walks each pixel's splat list in
//! reverse, reconstructing per-splat alpha to produce gradients with respect
//! to the screen-space quantities, which are then chained through
//! [`crate::projection`] back to the Gaussian parameters.
//!
//! # Banded parallelism, deterministic by construction
//!
//! Both passes are organised around fixed-size **horizontal pixel bands**
//! ([`RenderOptions::band_height`] rows each).  Band geometry depends only
//! on the image size and the configured band height — **never** on the
//! thread count — and the bands are the unit of work handed to the scoped
//! compute pool ([`crate::parallel`]):
//!
//! * **forward**: each band composites its own pixels into a disjoint slice
//!   of the output image.  Every pixel is a pure function of the projected
//!   splats, so the image is bit-identical for any `compute_threads`.
//! * **backward**: each band accumulates its pixels' contributions into its
//!   own sparse screen-space gradient accumulator; the per-band accumulators
//!   are then merged **in fixed band order** on the calling thread.  The
//!   floating-point accumulation order is therefore a function of the band
//!   geometry alone, and the gradients are bit-identical for any thread
//!   count.  (The per-slot chain through [`crate::projection`] is pure, so
//!   it parallelises over slots with no ordering concern at all.)
//!
//! `compute_threads = 1` runs exactly the same banded code path, so "the
//! serial path" and "the parallel path at width 1" are one and the same.
//!
//! # Lane-staged tiles (SoA inner loops)
//!
//! After binning, each tile's splats are staged into a `TileSoa` (private): one
//! `f32` array per screen-space attribute (means, conic, opacity, colour),
//! zero-padded to a multiple of [`LANES`].  The per-pixel alpha evaluation
//! then runs over fixed-width lane blocks (`TileSoa::lane_alphas`) whose
//! inner loops the autovectoriser lowers to SIMD — only `exp` stays a
//! scalar libm call per lane.  This changes *scheduling only*: every lane
//! evaluates exactly the expressions the scalar `splat_alpha` evaluated
//! (`power > 0 → skip` becomes the sentinel alpha `0.0 < MIN_ALPHA`), and
//! the compositing walk over the results is unchanged, so images and
//! gradients stay bit-identical.  Zero padding is inert by construction: a
//! zero lane yields `power = -0.0 → alpha = 0.0 → skipped`.
//!
//! The prologue (projection, tile binning, SoA staging) is also
//! band/tile-parallel on the same pool.  Projection preserves candidate
//! order via an index-ordered map; binning assigns each *tile row* to one
//! job that scans the depth-sorted splats in slot order, reproducing the
//! serial per-tile list order exactly.

use crate::image::Image;
use crate::parallel::{parallel_for_each, parallel_map, resolve_compute_threads};
use crate::projection::{
    project_gaussian, project_gaussian_backward, GaussianGradients, ProjectedGaussian,
    ProjectionContext, ScreenGradients, MAX_ALPHA, MIN_ALPHA,
};
use gs_core::camera::Camera;
use gs_core::gaussian::GaussianModel;
use gs_core::math::Sym2;
use gs_core::soa::LANE_WIDTH as LANES;

/// Tile edge length in pixels.
pub const TILE_SIZE: u32 = 16;

/// Transmittance below which compositing terminates early.
pub const TRANSMITTANCE_EPS: f32 = 1e-4;

/// Default height of the horizontal accumulation bands (one tile row).
pub const DEFAULT_BAND_HEIGHT: u32 = TILE_SIZE;

/// Options controlling a render call.
#[derive(Debug, Clone)]
pub struct RenderOptions {
    /// Background colour composited behind the splats.
    pub background: [f32; 3],
    /// When set, only these Gaussian indices are rasterised (the
    /// "pre-rendering frustum culling" path, §5.1).  When `None`, every
    /// Gaussian in the model is considered (the fused-culling baseline).
    pub visible: Option<Vec<u32>>,
    /// Worker threads for the banded forward/backward kernels.  `0` means
    /// *inherit*: resolve through the process-wide default width
    /// ([`crate::parallel::default_compute_threads`], which the runtime's
    /// autotuner sizes to the host's effective cores) rather than silently
    /// running serial; `1` runs everything on the calling thread.  Pure
    /// scheduling: the rendered image and the gradients are bit-identical
    /// for every value, and [`RenderAux`] reports the resolved count, not
    /// the sentinel.
    pub compute_threads: usize,
    /// Height in pixels of the horizontal accumulation bands (clamped to at
    /// least 1).  This **is** part of the numeric contract: it fixes the
    /// floating-point accumulation grouping of the backward pass, so runs
    /// that must be bit-comparable need the same band height.  It must
    /// depend only on the workload, never on the thread count.
    pub band_height: u32,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            background: [0.0; 3],
            visible: None,
            compute_threads: 1,
            band_height: DEFAULT_BAND_HEIGHT,
        }
    }
}

/// Per-pixel state saved by the forward pass for the backward pass.
#[derive(Debug, Clone, Copy, Default)]
struct PixelState {
    /// Transmittance remaining after compositing.
    final_t: f32,
    /// Number of tile-list entries examined before termination (exclusive
    /// upper bound for the backward traversal).
    last_index: u32,
}

/// Saved forward-pass state required by [`render_backward`].
#[derive(Debug, Clone)]
pub struct RenderAux {
    projected: Vec<ProjectedGaussian>,
    contexts: Vec<ProjectionContext>,
    tile_lists: Vec<Vec<u32>>,
    /// Lane-staged copies of each tile's splat attributes, built once in the
    /// forward prologue and reused by the backward pass.
    tile_soas: Vec<TileSoa>,
    pixel_states: Vec<PixelState>,
    tiles_x: u32,
    width: u32,
    height: u32,
    background: [f32; 3],
    /// Band geometry the forward pass used; the backward pass reuses it so
    /// both passes share one accumulation grouping.
    band_height: u32,
    /// Thread-count hint carried over from the forward options (scheduling
    /// only — never affects the gradients).
    compute_threads: usize,
}

impl RenderAux {
    /// Number of splats that survived projection.
    pub fn projected_count(&self) -> usize {
        self.projected.len()
    }

    /// The projected splats (depth-sorted).
    pub fn projected(&self) -> &[ProjectedGaussian] {
        &self.projected
    }

    /// Band geometry the forward pass used (part of the numeric contract;
    /// the backward pass reuses it).
    pub fn band_height(&self) -> u32 {
        self.band_height
    }

    /// The compute width the forward pass actually ran with — the resolved
    /// value, never the `compute_threads = 0` "inherit" sentinel.
    pub fn compute_threads(&self) -> usize {
        self.compute_threads
    }
}

/// Result of a forward render.
#[derive(Debug, Clone)]
pub struct RenderOutput {
    /// The rendered image.
    pub image: Image,
    /// Saved state for the backward pass.
    pub aux: RenderAux,
}

/// Renders `model` from `camera`.
///
/// `options.visible` restricts rasterisation to the given Gaussian indices;
/// this is how CLM (and the enhanced baseline) skip out-of-frustum Gaussians
/// entirely.
///
/// # Panics
/// Panics if `options.visible` contains an index outside the model.
pub fn render(model: &GaussianModel, camera: &Camera, options: &RenderOptions) -> RenderOutput {
    let width = camera.intrinsics.width;
    let height = camera.intrinsics.height;
    let compute_threads = resolve_compute_threads(options.compute_threads);

    // 1. Project candidate Gaussians in parallel.  Indices are validated
    //    up front (deterministic panics), then an index-ordered map keeps
    //    the surviving splats in candidate order — exactly the serial order.
    let all_indices: Vec<u32>;
    let candidates: &[u32] = match &options.visible {
        Some(indices) => {
            for &idx in indices {
                assert!(
                    (idx as usize) < model.len(),
                    "visible index {idx} out of bounds for model of length {}",
                    model.len()
                );
            }
            indices
        }
        None => {
            all_indices = (0..model.len() as u32).collect();
            &all_indices
        }
    };
    let mut projected: Vec<ProjectedGaussian> = Vec::new();
    let mut contexts: Vec<ProjectionContext> = Vec::new();
    let projections = parallel_map(compute_threads, candidates.len(), |k| {
        let idx = candidates[k];
        project_gaussian(&model.get(idx as usize), idx, camera)
    });
    for (p, ctx) in projections.into_iter().flatten() {
        projected.push(p);
        contexts.push(ctx);
    }

    // 2. Depth sort (front to back).
    let mut order: Vec<u32> = (0..projected.len() as u32).collect();
    order.sort_by(|&a, &b| {
        projected[a as usize]
            .depth
            .partial_cmp(&projected[b as usize].depth)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let projected: Vec<ProjectedGaussian> = order
        .iter()
        .map(|&i| projected[i as usize].clone())
        .collect();
    let contexts: Vec<ProjectionContext> = order
        .iter()
        .map(|&i| contexts[i as usize].clone())
        .collect();

    // 3. Bin splats into tiles (kept in depth order by construction).  One
    //    job per tile row: each job owns that row's lists and scans the
    //    splats in slot order, so every list is filled in exactly the order
    //    a serial pass over the splats would produce.
    let tiles_x = width.div_ceil(TILE_SIZE);
    let tiles_y = height.div_ceil(TILE_SIZE);
    let mut tile_lists: Vec<Vec<u32>> = vec![Vec::new(); (tiles_x * tiles_y) as usize];
    {
        let jobs: Vec<(u32, &mut [Vec<u32>])> = tile_lists
            .chunks_mut(tiles_x as usize)
            .enumerate()
            .map(|(ty, row)| (ty as u32, row))
            .collect();
        let projected = &projected;
        parallel_for_each(compute_threads.min(tiles_y as usize), jobs, |(ty, row)| {
            bin_tile_row(projected, width, height, ty, row);
        });
    }

    // 4. Stage each tile's splats into lane-padded SoA arrays (pure copies;
    //    one independent job per tile).
    let tile_soas: Vec<TileSoa> = {
        let (projected, tile_lists) = (&projected, &tile_lists);
        parallel_map(compute_threads, tile_lists.len(), |t| {
            TileSoa::build(&tile_lists[t], projected)
        })
    };

    // 5. Per-pixel front-to-back compositing, one job per horizontal band.
    //    Each band owns a disjoint slice of the image and the pixel-state
    //    buffer, so the pool can run bands in any order on any thread.
    let band_height = options.band_height.max(1);
    let mut image = Image::new(width, height);
    let mut pixel_states = vec![PixelState::default(); (width * height) as usize];
    {
        let band_pixels = (band_height * width) as usize;
        let jobs: Vec<(u32, &mut [[f32; 3]], &mut [PixelState])> = image
            .pixels_mut()
            .chunks_mut(band_pixels)
            .zip(pixel_states.chunks_mut(band_pixels))
            .enumerate()
            .map(|(b, (img, states))| (b as u32 * band_height, img, states))
            .collect();
        let tile_soas = &tile_soas;
        let background = options.background;
        parallel_for_each(compute_threads, jobs, |(y0, img_band, state_band)| {
            composite_band(
                tile_soas,
                tiles_x,
                width,
                height,
                band_height,
                background,
                y0,
                img_band,
                state_band,
            );
        });
    }

    RenderOutput {
        image,
        aux: RenderAux {
            projected,
            contexts,
            tile_lists,
            tile_soas,
            pixel_states,
            tiles_x,
            width,
            height,
            background: options.background,
            band_height,
            compute_threads,
        },
    }
}

/// Bins every splat that overlaps tile row `ty` into that row's lists,
/// replicating the serial binning expressions (including the offscreen skip)
/// exactly.  Scanning the splats in slot order fills each list in the same
/// order a serial pass over all tiles would.
fn bin_tile_row(
    projected: &[ProjectedGaussian],
    width: u32,
    height: u32,
    ty: u32,
    row: &mut [Vec<u32>],
) {
    for (slot, p) in projected.iter().enumerate() {
        let min_x = ((p.mean2d.x - p.radius).floor().max(0.0)) as u32;
        let max_x = ((p.mean2d.x + p.radius).ceil().min(width as f32 - 1.0)) as u32;
        let min_y = ((p.mean2d.y - p.radius).floor().max(0.0)) as u32;
        let max_y = ((p.mean2d.y + p.radius).ceil().min(height as f32 - 1.0)) as u32;
        if p.mean2d.x + p.radius < 0.0
            || p.mean2d.y + p.radius < 0.0
            || p.mean2d.x - p.radius > width as f32
            || p.mean2d.y - p.radius > height as f32
        {
            continue;
        }
        if ty < min_y / TILE_SIZE || ty > max_y / TILE_SIZE {
            continue;
        }
        let t_min_x = min_x / TILE_SIZE;
        let t_max_x = max_x / TILE_SIZE;
        for tx in t_min_x..=t_max_x {
            row[tx as usize].push(slot as u32);
        }
    }
}

/// One tile's splats in structure-of-arrays form: one `f32` array per
/// screen-space attribute, **zero-padded** to a multiple of [`LANES`] so the
/// lane kernels always process full fixed-width blocks.  Entry `pos`
/// corresponds to `tile_lists[tile][pos]`.
///
/// Zero padding is inert through the alpha kernel: a zero lane gives
/// `power = -0.5 * 0 = -0.0` (not `> 0`), `alpha = 0 * exp(-0) = 0`, and
/// `0 < MIN_ALPHA` means the compositing walk skips it — the same sentinel
/// used for "splat does not cover this pixel".
#[derive(Debug, Clone, Default)]
struct TileSoa {
    /// Real (unpadded) entry count — equals the tile list's length.
    len: usize,
    mean_x: Vec<f32>,
    mean_y: Vec<f32>,
    conic_a: Vec<f32>,
    conic_b: Vec<f32>,
    conic_c: Vec<f32>,
    opacity: Vec<f32>,
    color_r: Vec<f32>,
    color_g: Vec<f32>,
    color_b: Vec<f32>,
}

impl TileSoa {
    /// Stages the splats of one tile list (pure copies of the projected
    /// attributes, in list order).
    fn build(list: &[u32], projected: &[ProjectedGaussian]) -> TileSoa {
        let len = list.len();
        let padded = len.next_multiple_of(LANES);
        let mut soa = TileSoa {
            len,
            mean_x: vec![0.0; padded],
            mean_y: vec![0.0; padded],
            conic_a: vec![0.0; padded],
            conic_b: vec![0.0; padded],
            conic_c: vec![0.0; padded],
            opacity: vec![0.0; padded],
            color_r: vec![0.0; padded],
            color_g: vec![0.0; padded],
            color_b: vec![0.0; padded],
        };
        for (pos, &slot) in list.iter().enumerate() {
            let p = &projected[slot as usize];
            soa.mean_x[pos] = p.mean2d.x;
            soa.mean_y[pos] = p.mean2d.y;
            soa.conic_a[pos] = p.conic.a;
            soa.conic_b[pos] = p.conic.b;
            soa.conic_c[pos] = p.conic.c;
            soa.opacity[pos] = p.opacity;
            soa.color_r[pos] = p.color[0];
            soa.color_g[pos] = p.color[1];
            soa.color_b[pos] = p.color[2];
        }
        soa
    }

    /// Evaluates the Gaussian exponent for the [`LANES`] splats starting at
    /// `base` against the pixel centre `(cx, cy)` — elementwise identical to
    /// the scalar path: `power = -0.5 * conic.quadratic_form(dx, dy)` with
    /// `dx = cx - mean_x`.  The fixed-width loop over array slices is the
    /// SIMD-friendly shape (pure mul/add; no branches, no calls).
    #[inline]
    fn lane_powers(&self, base: usize, cx: f32, cy: f32, powers: &mut [f32; LANES]) {
        let mx: &[f32; LANES] = self.mean_x[base..base + LANES].try_into().unwrap();
        let my: &[f32; LANES] = self.mean_y[base..base + LANES].try_into().unwrap();
        let ca: &[f32; LANES] = self.conic_a[base..base + LANES].try_into().unwrap();
        let cb: &[f32; LANES] = self.conic_b[base..base + LANES].try_into().unwrap();
        let cc: &[f32; LANES] = self.conic_c[base..base + LANES].try_into().unwrap();
        for l in 0..LANES {
            let dx = cx - mx[l];
            let dy = cy - my[l];
            powers[l] = -0.5 * (ca[l] * dx * dx + 2.0 * cb[l] * dx * dy + cc[l] * dy * dy);
        }
    }

    /// Evaluates the alpha of the [`LANES`] splats starting at `base` at
    /// pixel centre `(cx, cy)`.  `alphas[l] = 0.0` encodes "skipped"
    /// (outside the effective footprint or below [`MIN_ALPHA`]), exactly the
    /// cases where the scalar path returned `None`.
    #[inline]
    fn lane_alphas(&self, base: usize, cx: f32, cy: f32, alphas: &mut [f32; LANES]) {
        let mut powers = [0.0f32; LANES];
        self.lane_powers(base, cx, cy, &mut powers);
        let op: &[f32; LANES] = self.opacity[base..base + LANES].try_into().unwrap();
        for l in 0..LANES {
            alphas[l] = if powers[l] > 0.0 {
                0.0
            } else {
                (op[l] * powers[l].exp()).min(MAX_ALPHA)
            };
        }
    }

    /// Like [`lane_alphas`](Self::lane_alphas) but also exports the raw
    /// Gaussian factor `exp(power)` per lane, which the backward pass chains
    /// through the opacity gradient.  One `exp` per lane serves both — the
    /// scalar backward path used to evaluate it twice.
    #[inline]
    fn lane_alphas_gauss(
        &self,
        base: usize,
        cx: f32,
        cy: f32,
        alphas: &mut [f32; LANES],
        gauss: &mut [f32; LANES],
    ) {
        let mut powers = [0.0f32; LANES];
        self.lane_powers(base, cx, cy, &mut powers);
        let op: &[f32; LANES] = self.opacity[base..base + LANES].try_into().unwrap();
        for l in 0..LANES {
            let e = powers[l].exp();
            gauss[l] = e;
            alphas[l] = if powers[l] > 0.0 {
                0.0
            } else {
                (op[l] * e).min(MAX_ALPHA)
            };
        }
    }
}

/// Composites every pixel of the band starting at row `y0` into the band's
/// slice of the image/state buffers.  Pure per pixel: identical output
/// regardless of which thread runs it.
///
/// The splat walk processes each tile list in [`LANES`]-wide blocks: alphas
/// for a block are evaluated by the lane kernel, then composited serially in
/// list order with the same early-termination rule as before — termination
/// mid-block wastes at most `LANES - 1` lane evaluations.
#[allow(clippy::too_many_arguments)]
fn composite_band(
    tile_soas: &[TileSoa],
    tiles_x: u32,
    width: u32,
    height: u32,
    band_height: u32,
    background: [f32; 3],
    y0: u32,
    img_band: &mut [[f32; 3]],
    state_band: &mut [PixelState],
) {
    let mut alphas = [0.0f32; LANES];
    let y_end = (y0 + band_height).min(height);
    for ty in y0 / TILE_SIZE..=(y_end - 1) / TILE_SIZE {
        let py_start = (ty * TILE_SIZE).max(y0);
        let py_end = ((ty + 1) * TILE_SIZE).min(y_end);
        for tx in 0..tiles_x {
            let soa = &tile_soas[(ty * tiles_x + tx) as usize];
            let x_end = ((tx + 1) * TILE_SIZE).min(width);
            for py in py_start..py_end {
                let cy = py as f32 + 0.5;
                for px in tx * TILE_SIZE..x_end {
                    let cx = px as f32 + 0.5;
                    let mut t = 1.0f32;
                    let mut color = [0.0f32; 3];
                    let mut last_index = 0u32;
                    'blocks: for base in (0..soa.len).step_by(LANES) {
                        soa.lane_alphas(base, cx, cy, &mut alphas);
                        for pos in base..(base + LANES).min(soa.len) {
                            let alpha = alphas[pos - base];
                            last_index = pos as u32 + 1;
                            if alpha < MIN_ALPHA {
                                continue;
                            }
                            let next_t = t * (1.0 - alpha);
                            if next_t < TRANSMITTANCE_EPS {
                                break 'blocks;
                            }
                            color[0] += soa.color_r[pos] * alpha * t;
                            color[1] += soa.color_g[pos] * alpha * t;
                            color[2] += soa.color_b[pos] * alpha * t;
                            t = next_t;
                        }
                    }
                    for c in 0..3 {
                        color[c] += t * background[c];
                    }
                    let idx = ((py - y0) * width + px) as usize;
                    img_band[idx] = color;
                    state_band[idx] = PixelState {
                        final_t: t,
                        last_index,
                    };
                }
            }
        }
    }
}

/// Gradients produced by [`render_backward`]: one entry per Gaussian that
/// received a non-zero gradient, keyed by its global index.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RenderGradients {
    entries: Vec<(u32, GaussianGradients)>,
}

impl RenderGradients {
    /// The gradient entries, sorted by Gaussian index.
    pub fn entries(&self) -> &[(u32, GaussianGradients)] {
        &self.entries
    }

    /// Number of Gaussians with gradients.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no Gaussian received a gradient.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the gradient of Gaussian `index`, if any.
    pub fn get(&self, index: u32) -> Option<&GaussianGradients> {
        self.entries
            .binary_search_by_key(&index, |(i, _)| *i)
            .ok()
            .map(|pos| &self.entries[pos].1)
    }

    /// Iterates over `(gaussian index, gradients)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = &(u32, GaussianGradients)> {
        self.entries.iter()
    }
}

/// Backward pass: given the gradient of the loss with respect to every
/// pixel (`d_image`, row-major, one `[f32; 3]` per pixel), computes the
/// gradient with respect to every contributing Gaussian's parameters.
///
/// Runs band-parallel on up to `aux`'s `compute_threads` workers: each band
/// accumulates its pixels' screen-space gradients independently, the
/// per-band sparse accumulators are merged in fixed band order, and the
/// per-splat chain through [`crate::projection`] fans out over slots.  The
/// result is bit-identical for every thread count (see the module docs).
///
/// # Panics
/// Panics if `d_image.len()` does not match the rendered resolution.
pub fn render_backward(
    model: &GaussianModel,
    camera: &Camera,
    aux: &RenderAux,
    d_image: &[[f32; 3]],
) -> RenderGradients {
    assert_eq!(
        d_image.len(),
        (aux.width * aux.height) as usize,
        "d_image size must match the rendered resolution"
    );

    let band_height = aux.band_height.max(1);
    let threads = aux.compute_threads.max(1);
    let bands = aux.height.div_ceil(band_height) as usize;

    // 1. Per-band sparse screen-space accumulators, computed independently.
    let partials: Vec<Vec<(u32, ScreenGradients)>> = parallel_map(threads, bands, |b| {
        backward_band(aux, d_image, b as u32 * band_height)
    });

    // 2. Merge in fixed band order.  This is the only order-sensitive
    //    floating-point reduction in the pass, and it runs on the calling
    //    thread over the index-ordered partials, so the accumulation order
    //    depends only on the band geometry.
    let mut screen_grads: Vec<ScreenGradients> =
        vec![ScreenGradients::default(); aux.projected.len()];
    for band in &partials {
        for (slot, g) in band {
            screen_grads[*slot as usize].accumulate(g);
        }
    }

    // 3. Chain screen-space gradients back to the 59 Gaussian parameters —
    //    pure per slot, so it parallelises freely; the output vector is
    //    keyed by slot order either way.
    let contributing: Vec<u32> = (0..screen_grads.len() as u32)
        .filter(|&slot| !screen_grads[slot as usize].is_zero())
        .collect();
    let entries: Vec<(u32, GaussianGradients)> = parallel_map(threads, contributing.len(), |k| {
        let slot = contributing[k] as usize;
        let p = &aux.projected[slot];
        let g = model.get(p.index as usize);
        let grads = project_gaussian_backward(&g, camera, &aux.contexts[slot], &screen_grads[slot]);
        (p.index, grads)
    });

    let mut entries = entries;
    entries.sort_by_key(|(i, _)| *i);
    // Merge duplicates (a Gaussian only appears once per render, but keep
    // the invariant explicit).
    let mut merged: Vec<(u32, GaussianGradients)> = Vec::with_capacity(entries.len());
    for (idx, grad) in entries {
        match merged.last_mut() {
            Some((last_idx, last_grad)) if *last_idx == idx => last_grad.accumulate(&grad),
            _ => merged.push((idx, grad)),
        }
    }
    RenderGradients { entries: merged }
}

/// Reusable per-worker scratch for [`backward_band`].
#[derive(Default)]
struct BandScratch {
    /// Dense per-slot accumulator.  Invariant: all entries are zero between
    /// bands — each band resets exactly the slots it touched — so reuse
    /// costs O(touched) instead of re-zeroing O(projected) once per band.
    dense: Vec<ScreenGradients>,
    /// Per-pixel lane-kernel outputs for positions `0..last_index` (padded
    /// to whole blocks), overwritten for every pixel.
    alphas: Vec<f32>,
    gauss: Vec<f32>,
}

std::thread_local! {
    /// Per-worker scratch for [`backward_band`], reused across every band
    /// the worker drains (and across calls, on the calling thread).
    static BAND_SCRATCH: std::cell::RefCell<BandScratch> =
        std::cell::RefCell::new(BandScratch::default());
}

/// Accumulates the screen-space gradients of every pixel in the band
/// starting at row `y0`, returning them as a sparse, slot-ordered list.
/// Pure: depends only on `aux`, `d_image` and the band geometry — the
/// thread-local scratch is an allocation cache, never carried state.
fn backward_band(aux: &RenderAux, d_image: &[[f32; 3]], y0: u32) -> Vec<(u32, ScreenGradients)> {
    BAND_SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        if scratch.dense.len() < aux.projected.len() {
            scratch
                .dense
                .resize(aux.projected.len(), ScreenGradients::default());
        }
        backward_band_with_scratch(aux, d_image, y0, &mut scratch)
    })
}

/// The body of [`backward_band`] over a caller-provided scratch whose dense
/// accumulator's first `aux.projected.len()` entries are all zero; restores
/// that invariant before returning.
fn backward_band_with_scratch(
    aux: &RenderAux,
    d_image: &[[f32; 3]],
    y0: u32,
    scratch: &mut BandScratch,
) -> Vec<(u32, ScreenGradients)> {
    let BandScratch {
        dense,
        alphas,
        gauss,
    } = scratch;
    // Slots this band wrote to, pushed on first touch (a touched entry that
    // cancels back to exact zero may be pushed again — dedup below).
    let mut touched: Vec<u32> = Vec::new();
    let y_end = (y0 + aux.band_height.max(1)).min(aux.height);
    for ty in y0 / TILE_SIZE..=(y_end - 1) / TILE_SIZE {
        let py_start = (ty * TILE_SIZE).max(y0);
        let py_end = ((ty + 1) * TILE_SIZE).min(y_end);
        for tx in 0..aux.tiles_x {
            let tile = (ty * aux.tiles_x + tx) as usize;
            let list = &aux.tile_lists[tile];
            if list.is_empty() {
                continue;
            }
            let soa = &aux.tile_soas[tile];
            let x_end = ((tx + 1) * TILE_SIZE).min(aux.width);
            for py in py_start..py_end {
                let cy = py as f32 + 0.5;
                for px in tx * TILE_SIZE..x_end {
                    let state = aux.pixel_states[(py * aux.width + px) as usize];
                    let d_pix = d_image[(py * aux.width + px) as usize];
                    if d_pix == [0.0; 3] || state.last_index == 0 {
                        continue;
                    }
                    let cx = px as f32 + 0.5;
                    // Evaluate alpha and the Gaussian factor for every
                    // position the forward pass examined, one lane block at
                    // a time.  One `exp` per position serves the whole
                    // reverse walk (the scalar path paid two).
                    let last = state.last_index as usize;
                    let padded = last.next_multiple_of(LANES);
                    alphas.resize(padded, 0.0);
                    gauss.resize(padded, 0.0);
                    for base in (0..last).step_by(LANES) {
                        soa.lane_alphas_gauss(
                            base,
                            cx,
                            cy,
                            (&mut alphas[base..base + LANES]).try_into().unwrap(),
                            (&mut gauss[base..base + LANES]).try_into().unwrap(),
                        );
                    }
                    let mut t = state.final_t;
                    // Accumulated contribution *behind* the splat currently
                    // being processed (starts as background).
                    let mut behind = [
                        aux.background[0] * state.final_t,
                        aux.background[1] * state.final_t,
                        aux.background[2] * state.final_t,
                    ];
                    for pos in (0..last).rev() {
                        let alpha = alphas[pos];
                        if alpha < MIN_ALPHA {
                            continue;
                        }
                        let slot = list[pos] as usize;
                        // Transmittance in front of this splat.
                        t /= 1.0 - alpha;
                        if dense[slot].is_zero() {
                            touched.push(slot as u32);
                        }
                        let g = &mut dense[slot];
                        let color = [soa.color_r[pos], soa.color_g[pos], soa.color_b[pos]];

                        // Colour gradient.
                        for c in 0..3 {
                            g.d_color[c] += alpha * t * d_pix[c];
                        }
                        // Alpha gradient.
                        let mut d_alpha = 0.0;
                        for c in 0..3 {
                            let dc_dalpha = color[c] * t - behind[c] / (1.0 - alpha);
                            d_alpha += d_pix[c] * dc_dalpha;
                        }
                        // Update the "behind" accumulator for the next splat
                        // (the one in front of this one).
                        for c in 0..3 {
                            behind[c] += color[c] * alpha * t;
                        }

                        // Chain through alpha = min(0.99, opacity * exp(power)).
                        let (dx, dy) = (cx - soa.mean_x[pos], cy - soa.mean_y[pos]);
                        let gauss_pos = gauss[pos];
                        if soa.opacity[pos] * gauss_pos >= MAX_ALPHA {
                            continue; // clamped: no gradient through opacity/geometry
                        }
                        g.d_opacity += gauss_pos * d_alpha;
                        let d_power = d_alpha * alpha;
                        g.d_conic = Sym2::new(
                            g.d_conic.a - 0.5 * dx * dx * d_power,
                            g.d_conic.b - dx * dy * d_power,
                            g.d_conic.c - 0.5 * dy * dy * d_power,
                        );
                        let (ca, cb, cc) = (soa.conic_a[pos], soa.conic_b[pos], soa.conic_c[pos]);
                        g.d_mean2d.x += (ca * dx + cb * dy) * d_power;
                        g.d_mean2d.y += (cb * dx + cc * dy) * d_power;
                    }
                }
            }
        }
    }
    // Compress the touched slots to a sparse, slot-ordered list (so the
    // merge step visits contributing splats in a fixed order) while
    // resetting exactly those scratch entries for the next band.
    touched.sort_unstable();
    touched.dedup();
    let mut out: Vec<(u32, ScreenGradients)> = Vec::with_capacity(touched.len());
    for &slot in &touched {
        let g = std::mem::take(&mut dense[slot as usize]);
        if !g.is_zero() {
            out.push((slot, g));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_core::camera::CameraIntrinsics;
    use gs_core::gaussian::Gaussian;
    use gs_core::math::Vec3;

    fn camera(px: u32) -> Camera {
        Camera::look_at(
            Vec3::ZERO,
            Vec3::Z,
            Vec3::Y,
            CameraIntrinsics::simple(px, px, 60.0_f32.to_radians()),
        )
        .with_clip(0.1, 100.0)
    }

    fn single_gaussian_scene() -> GaussianModel {
        let mut model = GaussianModel::new();
        model.push(Gaussian::isotropic(
            Vec3::new(0.0, 0.0, 5.0),
            0.5,
            [0.9, 0.2, 0.1],
            0.95,
        ));
        model
    }

    #[test]
    fn empty_scene_renders_background() {
        let model = GaussianModel::new();
        let out = render(
            &model,
            &camera(16),
            &RenderOptions {
                background: [0.1, 0.2, 0.3],
                visible: None,
                ..RenderOptions::default()
            },
        );
        for p in out.image.pixels() {
            assert_eq!(*p, [0.1, 0.2, 0.3]);
        }
        assert_eq!(out.aux.projected_count(), 0);
    }

    #[test]
    fn single_gaussian_colors_center_pixel() {
        let model = single_gaussian_scene();
        let cam = camera(32);
        let out = render(&model, &cam, &RenderOptions::default());
        let center = out.image.pixel(16, 16);
        // Red-dominant colour shows up at the centre.
        assert!(center[0] > 0.5, "center {center:?}");
        assert!(center[0] > center[1] && center[0] > center[2]);
        // Corner remains (nearly) background.
        let corner = out.image.pixel(0, 0);
        assert!(corner[0] < 0.2);
    }

    #[test]
    fn visible_subset_restricts_rendering() {
        let mut model = single_gaussian_scene();
        // Second, green Gaussian slightly off to the side.
        model.push(Gaussian::isotropic(
            Vec3::new(1.0, 0.0, 5.0),
            0.5,
            [0.1, 0.9, 0.1],
            0.95,
        ));
        let cam = camera(32);
        let all = render(&model, &cam, &RenderOptions::default());
        let only_first = render(
            &model,
            &cam,
            &RenderOptions {
                background: [0.0; 3],
                visible: Some(vec![0]),
                ..RenderOptions::default()
            },
        );
        assert_ne!(all.image, only_first.image);
        assert_eq!(only_first.aux.projected_count(), 1);
    }

    #[test]
    fn rendering_with_full_visibility_matches_unrestricted() {
        let mut model = single_gaussian_scene();
        model.push(Gaussian::isotropic(
            Vec3::new(0.5, 0.3, 7.0),
            0.4,
            [0.2, 0.3, 0.9],
            0.8,
        ));
        let cam = camera(32);
        let unrestricted = render(&model, &cam, &RenderOptions::default());
        let explicit = render(
            &model,
            &cam,
            &RenderOptions {
                background: [0.0; 3],
                visible: Some(vec![0, 1]),
                ..RenderOptions::default()
            },
        );
        assert_eq!(unrestricted.image, explicit.image);
    }

    #[test]
    fn nearer_gaussian_occludes_farther() {
        let mut model = GaussianModel::new();
        // Opaque red Gaussian in front.
        model.push(Gaussian::isotropic(
            Vec3::new(0.0, 0.0, 3.0),
            0.5,
            [1.0, 0.0, 0.0],
            0.99,
        ));
        // Opaque green Gaussian behind.
        model.push(Gaussian::isotropic(
            Vec3::new(0.0, 0.0, 8.0),
            0.5,
            [0.0, 1.0, 0.0],
            0.99,
        ));
        let out = render(&model, &camera(32), &RenderOptions::default());
        let center = out.image.pixel(16, 16);
        assert!(center[0] > 0.6, "front splat should dominate: {center:?}");
        assert!(center[1] < 0.4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn invalid_visible_index_panics() {
        let model = single_gaussian_scene();
        let _ = render(
            &model,
            &camera(16),
            &RenderOptions {
                background: [0.0; 3],
                visible: Some(vec![7]),
                ..RenderOptions::default()
            },
        );
    }

    /// Finite-difference check of the full render backward: perturb a
    /// parameter, recompute a scalar loss, compare with the analytic
    /// gradient.
    #[test]
    fn backward_matches_finite_difference_on_scalar_loss() {
        let mut model = GaussianModel::new();
        model.push(Gaussian::isotropic(
            Vec3::new(0.1, -0.2, 4.0),
            0.4,
            [0.6, 0.3, 0.8],
            0.7,
        ));
        model.push(Gaussian::isotropic(
            Vec3::new(-0.3, 0.1, 6.0),
            0.5,
            [0.2, 0.7, 0.4],
            0.6,
        ));
        let cam = camera(24);

        // Loss = sum of all pixel channels (so dL/dpixel = 1 everywhere).
        let loss = |m: &GaussianModel| -> f32 {
            let out = render(m, &cam, &RenderOptions::default());
            out.image.pixels().iter().map(|p| p[0] + p[1] + p[2]).sum()
        };

        let out = render(&model, &cam, &RenderOptions::default());
        let d_image = vec![[1.0f32; 3]; out.image.pixel_count()];
        let grads = render_backward(&model, &cam, &out.aux, &d_image);
        assert!(!grads.is_empty());

        let eps = 2e-3;
        let checks: Vec<(&str, Box<dyn Fn(&mut GaussianModel, f32)>, f32)> = vec![
            (
                "g0 position.x",
                Box::new(|m: &mut GaussianModel, e: f32| m.positions_mut()[0].x += e),
                grads.get(0).unwrap().d_position.x,
            ),
            (
                "g0 opacity_logit",
                Box::new(|m: &mut GaussianModel, e: f32| m.opacity_logits_mut()[0] += e),
                grads.get(0).unwrap().d_opacity_logit,
            ),
            (
                "g1 log_scale.y",
                Box::new(|m: &mut GaussianModel, e: f32| m.log_scales_mut()[1].y += e),
                grads.get(1).unwrap().d_log_scale.y,
            ),
            (
                "g1 sh dc (red)",
                Box::new(|m: &mut GaussianModel, e: f32| m.sh_mut()[48] += e),
                grads.get(1).unwrap().d_sh[0],
            ),
        ];
        for (label, mutate, analytic) in checks {
            let mut plus = model.clone();
            mutate(&mut plus, eps);
            let mut minus = model.clone();
            mutate(&mut minus, -eps);
            let fd = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            let scale = 1.0f32.max(fd.abs()).max(analytic.abs());
            assert!(
                (fd - analytic).abs() / scale < 0.08,
                "{label}: finite diff {fd} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn banded_render_is_bit_identical_for_any_thread_count() {
        // The tentpole determinism contract at the crate level: with band
        // geometry fixed, the thread count is pure scheduling — image,
        // pixel states and gradients are bit-identical.
        let mut model = GaussianModel::new();
        model.push(Gaussian::isotropic(
            Vec3::new(0.1, -0.4, 4.0),
            0.6,
            [0.6, 0.3, 0.8],
            0.7,
        ));
        model.push(Gaussian::isotropic(
            Vec3::new(-0.3, 0.5, 6.0),
            0.8,
            [0.2, 0.7, 0.4],
            0.6,
        ));
        model.push(Gaussian::isotropic(
            Vec3::new(0.0, 0.0, 3.0),
            0.2,
            [0.9, 0.9, 0.1],
            0.9,
        ));
        let cam = camera(48);
        for band_height in [4u32, 16] {
            let opts = |threads: usize| RenderOptions {
                compute_threads: threads,
                band_height,
                ..RenderOptions::default()
            };
            let reference = render(&model, &cam, &opts(1));
            let d_image = vec![[0.7f32, -0.2, 1.3]; reference.image.pixel_count()];
            let ref_grads = render_backward(&model, &cam, &reference.aux, &d_image);
            assert!(!ref_grads.is_empty());
            for threads in [2usize, 3, 8] {
                let out = render(&model, &cam, &opts(threads));
                assert_eq!(
                    out.image, reference.image,
                    "band {band_height}, threads {threads}"
                );
                let grads = render_backward(&model, &cam, &out.aux, &d_image);
                assert_eq!(
                    grads, ref_grads,
                    "band {band_height}, threads {threads}: gradients must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn zero_compute_threads_inherits_the_pool_default_and_reports_it() {
        // The documented "0 = inherit" contract: the sentinel resolves
        // through the process-wide default width instead of silently
        // serialising, the aux reports the resolved value, and the output
        // stays bit-identical to the serial render.
        let model = single_gaussian_scene();
        let cam = camera(32);
        let serial = render(
            &model,
            &cam,
            &RenderOptions {
                compute_threads: 1,
                ..RenderOptions::default()
            },
        );
        let inherited = render(
            &model,
            &cam,
            &RenderOptions {
                compute_threads: 0,
                ..RenderOptions::default()
            },
        );
        let expected = crate::parallel::default_compute_threads();
        assert!(expected >= 1);
        assert_eq!(
            inherited.aux.compute_threads(),
            expected,
            "aux must report the resolved width, not the 0 sentinel"
        );
        assert_eq!(inherited.image, serial.image);
        assert_eq!(serial.aux.compute_threads(), 1);
        assert_eq!(serial.aux.band_height(), DEFAULT_BAND_HEIGHT);
        // An explicitly-set default is what 0 resolves to from then on.
        crate::parallel::set_default_compute_threads(3);
        let tuned = render(
            &model,
            &cam,
            &RenderOptions {
                compute_threads: 0,
                ..RenderOptions::default()
            },
        );
        assert_eq!(tuned.aux.compute_threads(), 3);
        assert_eq!(tuned.image, serial.image);
        crate::parallel::set_default_compute_threads(0);
        assert_eq!(crate::parallel::default_compute_threads(), expected);
    }

    #[test]
    fn zero_image_gradient_produces_no_gaussian_gradients() {
        let model = single_gaussian_scene();
        let cam = camera(16);
        let out = render(&model, &cam, &RenderOptions::default());
        let d_image = vec![[0.0f32; 3]; out.image.pixel_count()];
        let grads = render_backward(&model, &cam, &out.aux, &d_image);
        assert!(grads.is_empty());
    }

    #[test]
    fn gradients_only_for_contributing_gaussians() {
        let mut model = single_gaussian_scene();
        // A Gaussian far outside the view contributes nothing.
        model.push(Gaussian::isotropic(
            Vec3::new(500.0, 0.0, 5.0),
            0.5,
            [1.0, 1.0, 1.0],
            0.9,
        ));
        let cam = camera(24);
        let out = render(&model, &cam, &RenderOptions::default());
        let d_image = vec![[1.0f32; 3]; out.image.pixel_count()];
        let grads = render_backward(&model, &cam, &out.aux, &d_image);
        assert!(grads.get(0).is_some());
        assert!(grads.get(1).is_none());
    }
}
