//! Projection of 3D Gaussians into screen space (EWA splatting) and the
//! corresponding analytic backward pass.
//!
//! The forward path follows the reference 3DGS / gsplat formulation:
//!
//! 1. transform the centre to camera space, `p_cam = W·p + t`;
//! 2. project to pixel coordinates through the pinhole intrinsics;
//! 3. build the 3D covariance `Σ = R S Sᵀ Rᵀ` from log-scales and the
//!    rotation quaternion;
//! 4. project it with the local affine (Jacobian) approximation,
//!    `Σ' = J W Σ Wᵀ Jᵀ`, add a small low-pass term, and invert to obtain
//!    the *conic*;
//! 5. evaluate the view-dependent colour from the SH coefficients and the
//!    opacity from its logit.
//!
//! The backward path maps gradients with respect to the 2D mean, conic,
//! colour and opacity back onto all 59 learnable parameters.

use gs_core::camera::Camera;
use gs_core::gaussian::{Gaussian, SH_FLOATS};
use gs_core::math::{sigmoid, Mat3, Quat, Sym2, Vec2, Vec3};
use gs_core::sh::{eval_sh_color, eval_sh_color_backward};

/// Low-pass filter added to the diagonal of the projected 2D covariance so
/// every splat covers at least ~1 pixel (same constant as the reference
/// implementation).
pub const COV2D_LOW_PASS: f32 = 0.3;

/// Opacity values below this threshold are treated as fully transparent.
pub const MIN_ALPHA: f32 = 1.0 / 255.0;

/// Maximum alpha a single splat may contribute (matches the reference).
pub const MAX_ALPHA: f32 = 0.99;

/// SH degree used for colour evaluation.
pub const SH_DEGREE: usize = 3;

/// A Gaussian after projection into a specific camera, ready to rasterise.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectedGaussian {
    /// Index of the source Gaussian in the model (global index).
    pub index: u32,
    /// Pixel-space centre.
    pub mean2d: Vec2,
    /// Camera-space depth (used for sorting).
    pub depth: f32,
    /// Inverse of the 2D covariance (the "conic").
    pub conic: Sym2,
    /// Screen-space radius in pixels (3σ of the largest eigenvalue).
    pub radius: f32,
    /// View-dependent RGB colour.
    pub color: [f32; 3],
    /// Effective opacity in `[0, 1]`.
    pub opacity: f32,
}

/// Factor by which the camera-space point used for the projection Jacobian
/// may exceed the field of view before being clamped.  Without this clamp a
/// Gaussian far outside the frustum but close to the image plane gets an
/// exploding screen-space covariance that smears it across the whole image
/// (the reference CUDA implementation applies the same 1.3× limit).
pub const JACOBIAN_FOV_CLAMP: f32 = 1.3;

/// Intermediate values saved by [`project_gaussian`] that the backward pass
/// needs to avoid recomputation.
#[derive(Debug, Clone)]
pub struct ProjectionContext {
    p_cam: Vec3,
    /// Camera-space point after the field-of-view clamp, used for the
    /// Jacobian (equals `p_cam` for in-frustum Gaussians).
    p_jacobian: Vec3,
    /// Whether the x / y components were clamped (their positional gradient
    /// through the Jacobian is zero in that case).
    clamped: (bool, bool),
    view_dir: Vec3,
    cov2d: Sym2,
    rot_world_to_cam: Mat3,
}

/// Gradients of the loss with respect to one projected (screen-space)
/// Gaussian, as produced by the rasteriser backward pass.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ScreenGradients {
    /// d loss / d mean2d.
    pub d_mean2d: Vec2,
    /// d loss / d conic (a, b, c parametrisation).
    pub d_conic: Sym2,
    /// d loss / d colour.
    pub d_color: [f32; 3],
    /// d loss / d effective opacity.
    pub d_opacity: f32,
}

impl ScreenGradients {
    /// Returns true when every component is exactly zero.
    pub fn is_zero(&self) -> bool {
        *self == ScreenGradients::default()
    }

    /// Component-wise accumulation of another gradient (used to merge the
    /// rasteriser's per-band accumulators in fixed band order).
    pub fn accumulate(&mut self, other: &ScreenGradients) {
        self.d_mean2d.x += other.d_mean2d.x;
        self.d_mean2d.y += other.d_mean2d.y;
        self.d_conic = Sym2::new(
            self.d_conic.a + other.d_conic.a,
            self.d_conic.b + other.d_conic.b,
            self.d_conic.c + other.d_conic.c,
        );
        for c in 0..3 {
            self.d_color[c] += other.d_color[c];
        }
        self.d_opacity += other.d_opacity;
    }
}

/// Gradients of the loss with respect to one Gaussian's 59 parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianGradients {
    /// d loss / d position.
    pub d_position: Vec3,
    /// d loss / d log-scale.
    pub d_log_scale: Vec3,
    /// d loss / d rotation quaternion (w, x, y, z), already projected onto
    /// the tangent space of the normalisation.
    pub d_rotation: [f32; 4],
    /// d loss / d SH coefficients (48 floats).
    pub d_sh: [f32; SH_FLOATS],
    /// d loss / d opacity logit.
    pub d_opacity_logit: f32,
}

impl Default for GaussianGradients {
    fn default() -> Self {
        GaussianGradients {
            d_position: Vec3::ZERO,
            d_log_scale: Vec3::ZERO,
            d_rotation: [0.0; 4],
            d_sh: [0.0; SH_FLOATS],
            d_opacity_logit: 0.0,
        }
    }
}

impl GaussianGradients {
    /// Adds another gradient into this one.
    pub fn accumulate(&mut self, other: &GaussianGradients) {
        self.d_position += other.d_position;
        self.d_log_scale += other.d_log_scale;
        for k in 0..4 {
            self.d_rotation[k] += other.d_rotation[k];
        }
        for k in 0..SH_FLOATS {
            self.d_sh[k] += other.d_sh[k];
        }
        self.d_opacity_logit += other.d_opacity_logit;
    }

    /// L2 norm over all 59 components (useful for densification heuristics
    /// and tests).
    pub fn norm(&self) -> f32 {
        let mut acc = self.d_position.length_squared()
            + self.d_log_scale.length_squared()
            + self.d_opacity_logit * self.d_opacity_logit;
        for v in self.d_rotation {
            acc += v * v;
        }
        for v in self.d_sh {
            acc += v * v;
        }
        acc.sqrt()
    }
}

/// Projects Gaussian `g` (with global index `index`) into `camera`.
///
/// Returns `None` when the Gaussian is behind the near plane, projects to a
/// degenerate covariance, or is effectively transparent — such splats
/// contribute nothing to the image.
pub fn project_gaussian(
    g: &Gaussian,
    index: u32,
    camera: &Camera,
) -> Option<(ProjectedGaussian, ProjectionContext)> {
    let p_cam = camera.world_to_camera(g.position);
    if p_cam.z < camera.near || p_cam.z > camera.far {
        return None;
    }
    let (mx, my) = camera.project_camera_space(p_cam)?;

    let opacity = sigmoid(g.opacity_logit);
    if opacity < MIN_ALPHA {
        return None;
    }

    let w = camera.extrinsics.rotation;
    let cov3d = g.covariance();
    let v = w * cov3d * w.transpose();

    let (fx, fy) = (camera.intrinsics.fx, camera.intrinsics.fy);
    let z = p_cam.z;
    // Clamp the point used for the Jacobian to slightly beyond the field of
    // view, as the reference implementation does, so that off-frustum
    // Gaussians close to the image plane do not produce a degenerate
    // screen-space covariance.
    let lim_x = JACOBIAN_FOV_CLAMP * (camera.intrinsics.fov_x() * 0.5).tan();
    let lim_y = JACOBIAN_FOV_CLAMP * (camera.intrinsics.fov_y() * 0.5).tan();
    let ratio_x = p_cam.x / z;
    let ratio_y = p_cam.y / z;
    let clamped = (ratio_x.abs() > lim_x, ratio_y.abs() > lim_y);
    let x = ratio_x.clamp(-lim_x, lim_x) * z;
    let y = ratio_y.clamp(-lim_y, lim_y) * z;
    let p_jacobian = Vec3::new(x, y, z);
    // Jacobian of the perspective projection at the (clamped) point (2x3).
    let j = [
        [fx / z, 0.0, -fx * x / (z * z)],
        [0.0, fy / z, -fy * y / (z * z)],
    ];
    let cov2d = project_cov(&j, &v);
    let cov2d = Sym2::new(cov2d.a + COV2D_LOW_PASS, cov2d.b, cov2d.c + COV2D_LOW_PASS);
    let conic = cov2d.inverse()?;
    let radius = 3.0 * cov2d.max_eigenvalue().max(0.0).sqrt();
    if radius <= 0.0 {
        return None;
    }

    let view_dir = g.position - camera.center();
    let color = eval_sh_color(SH_DEGREE, &g.sh, view_dir);

    Some((
        ProjectedGaussian {
            index,
            mean2d: Vec2::new(mx, my),
            depth: z,
            conic,
            radius,
            color,
            opacity,
        },
        ProjectionContext {
            p_cam,
            p_jacobian,
            clamped,
            view_dir,
            cov2d,
            rot_world_to_cam: w,
        },
    ))
}

/// Backward pass of [`project_gaussian`]: maps screen-space gradients back
/// to the Gaussian's 59 parameters.
pub fn project_gaussian_backward(
    g: &Gaussian,
    camera: &Camera,
    ctx: &ProjectionContext,
    screen: &ScreenGradients,
) -> GaussianGradients {
    let mut out = GaussianGradients::default();
    let (fx, fy) = (camera.intrinsics.fx, camera.intrinsics.fy);
    // The Jacobian (and therefore the covariance chain) uses the clamped
    // camera-space point; the mean2d chain uses the true point.
    let (x, y, z) = (ctx.p_jacobian.x, ctx.p_jacobian.y, ctx.p_jacobian.z);
    let w = ctx.rot_world_to_cam;

    // --- opacity -----------------------------------------------------------
    let o = sigmoid(g.opacity_logit);
    out.d_opacity_logit = screen.d_opacity * o * (1.0 - o);

    // --- colour → SH -------------------------------------------------------
    eval_sh_color_backward(
        SH_DEGREE,
        &g.sh,
        ctx.view_dir,
        screen.d_color,
        &mut out.d_sh,
    );

    // --- mean2d → camera-space position ------------------------------------
    let mut d_p_cam = Vec3::new(
        screen.d_mean2d.x * fx / z,
        screen.d_mean2d.y * fy / z,
        -screen.d_mean2d.x * fx * ctx.p_cam.x / (z * z)
            - screen.d_mean2d.y * fy * ctx.p_cam.y / (z * z),
    );

    // --- conic → 2D covariance ---------------------------------------------
    // conic = cov2d^{-1}; with G = dL/dconic as a full symmetric matrix,
    // dL/dcov2d = -conic * G * conic.
    let conic = ctx.cov2d.inverse().unwrap_or(Sym2::new(0.0, 0.0, 0.0));
    let g_full = [
        [screen.d_conic.a, screen.d_conic.b * 0.5],
        [screen.d_conic.b * 0.5, screen.d_conic.c],
    ];
    let conic_full = [[conic.a, conic.b], [conic.b, conic.c]];
    let tmp = mat2_mul(&conic_full, &g_full);
    let d_cov2d_full = mat2_scale(&mat2_mul(&tmp, &conic_full), -1.0);

    // --- 2D covariance → camera-space 3D covariance and Jacobian -----------
    let j = [
        [fx / z, 0.0, -fx * x / (z * z)],
        [0.0, fy / z, -fy * y / (z * z)],
    ];
    let cov3d = g.covariance();
    let v = w * cov3d * w.transpose();

    // dL/dV = J^T dΣ' J       (3x3, symmetric)
    let mut d_v = Mat3::zero();
    for a in 0..3 {
        for b in 0..3 {
            let mut acc = 0.0;
            for r in 0..2 {
                for c in 0..2 {
                    acc += j[r][a] * d_cov2d_full[r][c] * j[c][b];
                }
            }
            d_v.m[a][b] = acc;
        }
    }

    // dL/dJ = 2 dΣ' J V       (2x3)
    let mut d_j = [[0.0f32; 3]; 2];
    for r in 0..2 {
        for a in 0..3 {
            let mut acc = 0.0;
            for c in 0..2 {
                for b in 0..3 {
                    acc += 2.0 * d_cov2d_full[r][c] * j[c][b] * v.m[b][a];
                }
            }
            d_j[r][a] = acc;
        }
    }

    // dL/dJ → dL/dp_cam (J depends on x, y, z).  When the Jacobian point was
    // clamped the corresponding positional derivative is zero.
    let z2 = z * z;
    let z3 = z2 * z;
    if !ctx.clamped.0 {
        d_p_cam.x += d_j[0][2] * (-fx / z2);
    }
    if !ctx.clamped.1 {
        d_p_cam.y += d_j[1][2] * (-fy / z2);
    }
    d_p_cam.z += d_j[0][0] * (-fx / z2)
        + d_j[1][1] * (-fy / z2)
        + d_j[0][2] * (2.0 * fx * x / z3)
        + d_j[1][2] * (2.0 * fy * y / z3);

    // camera-space position → world-space position.
    out.d_position = w.transpose() * d_p_cam;

    // --- V → world-space 3D covariance --------------------------------------
    // V = W Σ Wᵀ  =>  dL/dΣ = Wᵀ dL/dV W.
    let d_cov3d = w.transpose() * d_v * w;

    // --- Σ = (RS)(RS)ᵀ → scale and rotation ---------------------------------
    let r = g.rotation.to_rotation_matrix();
    let scale = g.scale();
    let s = Mat3::from_diagonal(scale);
    let m = r * s;
    // dL/dM = (dΣ + dΣᵀ) M = 2 sym(dΣ) M; dΣ is already symmetric here.
    let d_sym = Mat3 {
        m: [
            [
                d_cov3d.m[0][0],
                0.5 * (d_cov3d.m[0][1] + d_cov3d.m[1][0]),
                0.5 * (d_cov3d.m[0][2] + d_cov3d.m[2][0]),
            ],
            [
                0.5 * (d_cov3d.m[0][1] + d_cov3d.m[1][0]),
                d_cov3d.m[1][1],
                0.5 * (d_cov3d.m[1][2] + d_cov3d.m[2][1]),
            ],
            [
                0.5 * (d_cov3d.m[0][2] + d_cov3d.m[2][0]),
                0.5 * (d_cov3d.m[1][2] + d_cov3d.m[2][1]),
                d_cov3d.m[2][2],
            ],
        ],
    };
    let d_m = (d_sym * m) * 2.0;

    // dL/dS (diagonal): dS = Rᵀ dM, take the diagonal; chain to log-scale.
    let rt_dm = r.transpose() * d_m;
    out.d_log_scale = Vec3::new(
        rt_dm.m[0][0] * scale.x,
        rt_dm.m[1][1] * scale.y,
        rt_dm.m[2][2] * scale.z,
    );

    // dL/dR = dM Sᵀ = dM S (S diagonal).
    let d_r = d_m * s;
    out.d_rotation = rotation_matrix_backward(g.rotation, &d_r);

    out
}

/// Derivative of the (normalised-quaternion → rotation matrix) map,
/// projected back through the normalisation onto the raw quaternion.
fn rotation_matrix_backward(q_raw: Quat, d_r: &Mat3) -> [f32; 4] {
    let n = q_raw.norm();
    let q = q_raw.normalized();
    let (w, x, y, z) = (q.w, q.x, q.y, q.z);

    // dR/dq for the unit quaternion.
    let dr_dw = Mat3 {
        m: [[0.0, -z, y], [z, 0.0, -x], [-y, x, 0.0]],
    } * 2.0;
    let dr_dx = Mat3 {
        m: [[0.0, y, z], [y, -2.0 * x, -w], [z, w, -2.0 * x]],
    } * 2.0;
    let dr_dy = Mat3 {
        m: [[-2.0 * y, x, w], [x, 0.0, z], [-w, z, -2.0 * y]],
    } * 2.0;
    let dr_dz = Mat3 {
        m: [[-2.0 * z, -w, x], [w, -2.0 * z, y], [x, y, 0.0]],
    } * 2.0;

    let contract = |d: &Mat3| -> f32 {
        let mut acc = 0.0;
        for r in 0..3 {
            for c in 0..3 {
                acc += d_r.m[r][c] * d.m[r][c];
            }
        }
        acc
    };
    let d_unit = [
        contract(&dr_dw),
        contract(&dr_dx),
        contract(&dr_dy),
        contract(&dr_dz),
    ];

    // Backward through normalisation q_unit = q_raw / |q_raw|:
    // dL/dq_raw = (dL/dq_unit - q_unit * <dL/dq_unit, q_unit>) / |q_raw|.
    let q_arr = [w, x, y, z];
    let dot: f32 = d_unit.iter().zip(q_arr.iter()).map(|(a, b)| a * b).sum();
    let denom = if n > 1e-12 { n } else { 1.0 };
    let mut out = [0.0f32; 4];
    for k in 0..4 {
        out[k] = (d_unit[k] - q_arr[k] * dot) / denom;
    }
    out
}

fn project_cov(j: &[[f32; 3]; 2], v: &Mat3) -> Sym2 {
    // Σ' = J V Jᵀ
    let mut jv = [[0.0f32; 3]; 2];
    for r in 0..2 {
        for c in 0..3 {
            let mut acc = 0.0;
            for k in 0..3 {
                acc += j[r][k] * v.m[k][c];
            }
            jv[r][c] = acc;
        }
    }
    let mut out = [[0.0f32; 2]; 2];
    for r in 0..2 {
        for c in 0..2 {
            let mut acc = 0.0;
            for k in 0..3 {
                acc += jv[r][k] * j[c][k];
            }
            out[r][c] = acc;
        }
    }
    Sym2::new(out[0][0], 0.5 * (out[0][1] + out[1][0]), out[1][1])
}

fn mat2_mul(a: &[[f32; 2]; 2], b: &[[f32; 2]; 2]) -> [[f32; 2]; 2] {
    let mut out = [[0.0f32; 2]; 2];
    for r in 0..2 {
        for c in 0..2 {
            out[r][c] = a[r][0] * b[0][c] + a[r][1] * b[1][c];
        }
    }
    out
}

fn mat2_scale(a: &[[f32; 2]; 2], s: f32) -> [[f32; 2]; 2] {
    [[a[0][0] * s, a[0][1] * s], [a[1][0] * s, a[1][1] * s]]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_core::camera::CameraIntrinsics;

    fn test_camera() -> Camera {
        Camera::look_at(
            Vec3::ZERO,
            Vec3::Z,
            Vec3::Y,
            CameraIntrinsics::simple(64, 64, 60.0_f32.to_radians()),
        )
        .with_clip(0.1, 100.0)
    }

    fn test_gaussian() -> Gaussian {
        let mut g = Gaussian::isotropic(Vec3::new(0.4, -0.3, 6.0), 0.3, [0.7, 0.4, 0.2], 0.8);
        g.log_scale = Vec3::new(-1.2, -0.9, -1.5);
        g.rotation = Quat::from_axis_angle(Vec3::new(0.3, 1.0, -0.2), 0.7);
        g
    }

    #[test]
    fn center_gaussian_projects_to_image_center() {
        let cam = test_camera();
        let g = Gaussian::isotropic(Vec3::new(0.0, 0.0, 10.0), 0.2, [0.5; 3], 0.9);
        let (p, _) = project_gaussian(&g, 0, &cam).expect("should project");
        assert!((p.mean2d.x - 32.0).abs() < 1e-3);
        assert!((p.mean2d.y - 32.0).abs() < 1e-3);
        assert!((p.depth - 10.0).abs() < 1e-4);
        assert!(p.radius > 0.0);
        assert!((p.opacity - 0.9).abs() < 1e-5);
    }

    #[test]
    fn gaussian_behind_camera_does_not_project() {
        let cam = test_camera();
        let g = Gaussian::isotropic(Vec3::new(0.0, 0.0, -5.0), 0.2, [0.5; 3], 0.9);
        assert!(project_gaussian(&g, 0, &cam).is_none());
    }

    #[test]
    fn transparent_gaussian_is_skipped() {
        let cam = test_camera();
        let g = Gaussian::isotropic(Vec3::new(0.0, 0.0, 5.0), 0.2, [0.5; 3], 0.001);
        assert!(project_gaussian(&g, 0, &cam).is_none());
    }

    #[test]
    fn closer_gaussian_has_larger_screen_radius() {
        let cam = test_camera();
        let near = Gaussian::isotropic(Vec3::new(0.0, 0.0, 2.0), 0.2, [0.5; 3], 0.9);
        let far = Gaussian::isotropic(Vec3::new(0.0, 0.0, 20.0), 0.2, [0.5; 3], 0.9);
        let (pn, _) = project_gaussian(&near, 0, &cam).unwrap();
        let (pf, _) = project_gaussian(&far, 1, &cam).unwrap();
        assert!(pn.radius > pf.radius);
    }

    /// Scalar objective used for finite-difference checks: a fixed linear
    /// functional of all projected outputs.
    fn objective(g: &Gaussian, cam: &Camera) -> f32 {
        let (p, _) = project_gaussian(g, 0, cam).expect("projects");
        0.7 * p.mean2d.x - 0.4 * p.mean2d.y + 1.3 * p.conic.a + 0.8 * p.conic.b - 0.6 * p.conic.c
            + 2.0 * p.color[0]
            - 1.0 * p.color[1]
            + 0.5 * p.color[2]
            + 1.7 * p.opacity
    }

    fn analytic_gradients(g: &Gaussian, cam: &Camera) -> GaussianGradients {
        let (_, ctx) = project_gaussian(g, 0, cam).unwrap();
        let screen = ScreenGradients {
            d_mean2d: Vec2::new(0.7, -0.4),
            d_conic: Sym2::new(1.3, 0.8, -0.6),
            d_color: [2.0, -1.0, 0.5],
            d_opacity: 1.7,
        };
        project_gaussian_backward(g, cam, &ctx, &screen)
    }

    fn finite_diff(
        g: &Gaussian,
        cam: &Camera,
        mutate: impl Fn(&mut Gaussian, f32),
        eps: f32,
    ) -> f32 {
        let mut plus = g.clone();
        mutate(&mut plus, eps);
        let mut minus = g.clone();
        mutate(&mut minus, -eps);
        (objective(&plus, cam) - objective(&minus, cam)) / (2.0 * eps)
    }

    fn assert_grad_close(analytic: f32, fd: f32, label: &str) {
        let scale = 1.0_f32.max(analytic.abs()).max(fd.abs());
        assert!(
            (analytic - fd).abs() / scale < 0.05,
            "{label}: analytic {analytic} vs finite-diff {fd}"
        );
    }

    #[test]
    fn position_gradient_matches_finite_difference() {
        let g = test_gaussian();
        let cam = test_camera();
        let grads = analytic_gradients(&g, &cam);
        let eps = 1e-3;
        assert_grad_close(
            grads.d_position.x,
            finite_diff(&g, &cam, |g, e| g.position.x += e, eps),
            "d_position.x",
        );
        assert_grad_close(
            grads.d_position.y,
            finite_diff(&g, &cam, |g, e| g.position.y += e, eps),
            "d_position.y",
        );
        assert_grad_close(
            grads.d_position.z,
            finite_diff(&g, &cam, |g, e| g.position.z += e, eps),
            "d_position.z",
        );
    }

    #[test]
    fn scale_gradient_matches_finite_difference() {
        let g = test_gaussian();
        let cam = test_camera();
        let grads = analytic_gradients(&g, &cam);
        let eps = 1e-3;
        assert_grad_close(
            grads.d_log_scale.x,
            finite_diff(&g, &cam, |g, e| g.log_scale.x += e, eps),
            "d_log_scale.x",
        );
        assert_grad_close(
            grads.d_log_scale.y,
            finite_diff(&g, &cam, |g, e| g.log_scale.y += e, eps),
            "d_log_scale.y",
        );
        assert_grad_close(
            grads.d_log_scale.z,
            finite_diff(&g, &cam, |g, e| g.log_scale.z += e, eps),
            "d_log_scale.z",
        );
    }

    #[test]
    fn rotation_gradient_matches_finite_difference() {
        let g = test_gaussian();
        let cam = test_camera();
        let grads = analytic_gradients(&g, &cam);
        let eps = 1e-3;
        let mutators: [fn(&mut Gaussian, f32); 4] = [
            |g, e| g.rotation.w += e,
            |g, e| g.rotation.x += e,
            |g, e| g.rotation.y += e,
            |g, e| g.rotation.z += e,
        ];
        for (k, mutate) in mutators.iter().enumerate() {
            assert_grad_close(
                grads.d_rotation[k],
                finite_diff(&g, &cam, mutate, eps),
                &format!("d_rotation[{k}]"),
            );
        }
    }

    #[test]
    fn opacity_and_sh_gradients_match_finite_difference() {
        let g = test_gaussian();
        let cam = test_camera();
        let grads = analytic_gradients(&g, &cam);
        let eps = 1e-3;
        assert_grad_close(
            grads.d_opacity_logit,
            finite_diff(&g, &cam, |g, e| g.opacity_logit += e, eps),
            "d_opacity_logit",
        );
        for idx in [0usize, 7, 16, 30, 47] {
            assert_grad_close(
                grads.d_sh[idx],
                finite_diff(&g, &cam, |g, e| g.sh[idx] += e, eps),
                &format!("d_sh[{idx}]"),
            );
        }
    }

    #[test]
    fn gradient_accumulate_and_norm() {
        let mut a = GaussianGradients::default();
        let mut b = GaussianGradients::default();
        a.d_position = Vec3::new(3.0, 0.0, 0.0);
        b.d_position = Vec3::new(0.0, 4.0, 0.0);
        a.accumulate(&b);
        assert_eq!(a.d_position, Vec3::new(3.0, 4.0, 0.0));
        assert!((a.norm() - 5.0).abs() < 1e-6);
        assert!(GaussianGradients::default().norm() == 0.0);
    }

    #[test]
    fn screen_gradients_zero_check() {
        assert!(ScreenGradients::default().is_zero());
        let nz = ScreenGradients {
            d_opacity: 0.1,
            ..Default::default()
        };
        assert!(!nz.is_zero());
    }
}
