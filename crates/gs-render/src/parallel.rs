//! Persistent hand-rolled compute pool for the rasteriser's banded kernels.
//!
//! The build is network-free, so instead of rayon this module provides the
//! minimum the render forward/backward passes need on top of `std` only: a
//! work-stealing `parallel_for_each` over a vector of owned jobs plus an
//! index-preserving `parallel_map` built on it, both executed by a
//! **persistent** pool of worker threads ([`ComputePool`]).  Earlier
//! revisions spawned scoped threads per call; at band granularity (a few
//! hundred microseconds of work per region) the per-call spawn/join cost was
//! measurable, so workers are now spawned lazily on first use, parked on a
//! condvar between regions, and joined when the pool is dropped.  The
//! process-wide [`ComputePool::global`] instance is shared by the rasterise
//! bands, the projection/binning prologue, and the chunked Adam driver.
//!
//! # Determinism contract
//!
//! The pool **never** influences what is computed — only *where*.  Two
//! properties make every caller bit-deterministic for any thread count:
//!
//! 1. each job is a pure function of its own inputs (jobs share data only
//!    through `&`-borrows), so the values a job produces cannot depend on
//!    which worker ran it or when;
//! 2. results are keyed by job index ([`parallel_map`]) or written to
//!    disjoint `&mut` regions owned by the job itself, so nothing depends on
//!    completion order.
//!
//! Any order-sensitive reduction (e.g. floating-point accumulation across
//! bands) must therefore happen *outside* the pool, over the
//! index-ordered results — which is exactly how
//! [`crate::rasterize::render_backward`] merges its per-band gradient
//! accumulators.
//!
//! # How non-`'static` jobs stay sound
//!
//! Jobs borrow the caller's stack (image bands, per-band accumulators) with
//! no `Arc` plumbing, exactly as the old scoped version allowed.  Soundness
//! rests on a strict rendezvous: a region hands workers a lifetime-erased
//! reference to the caller's closure, and the private `ComputePool::run_region` does
//! not return — not even on panic — until every participating worker has
//! reported completion and the shared job slot is cleared.  The borrow
//! therefore never outlives the caller's frame.
//!
//! Regions are serialised through the pool's region lock.  If a *worker*
//! thread itself enters a parallel region (nested parallelism), that inner
//! region degrades to a plain serial loop on the worker — waiting for the
//! region lock from inside a region would deadlock, and at band granularity
//! nested splitting has nothing left to win.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Upper bound on persistent workers; callers asking for more parallelism
/// simply share these (the calling thread always participates too).
const MAX_WORKERS: usize = 64;

/// Process-wide default compute width used when a caller passes the
/// `compute_threads = 0` "inherit" sentinel.  0 = not configured yet, in
/// which case [`default_compute_threads`] falls back to the host's
/// available parallelism.
static DEFAULT_COMPUTE_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default compute width that
/// `compute_threads = 0` resolves to.  The runtime's autotuner calls this
/// once with the host's effective (cgroup-quota-aware) core count; callers
/// that pass an explicit thread count are unaffected.  `threads = 0`
/// clears the default back to the `available_parallelism` fallback.
///
/// Pure scheduling: the resolved width decides how many pool workers share
/// the banded kernels, never what they compute.
pub fn set_default_compute_threads(threads: usize) {
    DEFAULT_COMPUTE_THREADS.store(threads.min(MAX_WORKERS + 1), Ordering::Relaxed);
}

/// The width `compute_threads = 0` currently resolves to: the value set by
/// [`set_default_compute_threads`], or the host's available parallelism
/// when none was set.  Always at least 1.
pub fn default_compute_threads() -> usize {
    match DEFAULT_COMPUTE_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
    .max(1)
}

/// Resolves a requested compute width: explicit counts pass through, the
/// `0` "inherit" sentinel becomes [`default_compute_threads`].  Callers
/// that report their thread count must report this resolved value, never
/// the sentinel.
pub fn resolve_compute_threads(requested: usize) -> usize {
    if requested == 0 {
        default_compute_threads()
    } else {
        requested
    }
}

thread_local! {
    /// Set for the lifetime of every pool worker thread; nested parallel
    /// regions detect it and fall back to serial execution.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Lifetime-erased region job.  Only ever dereferenced between region start
/// and the completion rendezvous, while the caller's frame is pinned.
type Job = &'static (dyn Fn() + Sync);

struct PoolState {
    /// Bumped once per region; workers use it to participate at most once.
    epoch: u64,
    /// The active region's job, present only while the region runs.
    job: Option<Job>,
    /// Worker participation slots remaining in the active region.
    slots: usize,
    /// Workers currently inside the job.
    running: usize,
    /// A worker's job call panicked during the active region.
    panicked: bool,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers park here between regions.
    work_cv: Condvar,
    /// The region caller parks here until `slots == 0 && running == 0`.
    done_cv: Condvar,
}

/// A persistent compute pool: workers are spawned lazily up to the demanded
/// width, parked between regions, and joined on drop.
pub struct ComputePool {
    shared: Arc<PoolShared>,
    /// Doubles as the region lock: held for the whole of `run_region`, so
    /// regions are serialised and worker growth is race-free.
    inner: Mutex<PoolInner>,
}

struct PoolInner {
    workers: Vec<JoinHandle<()>>,
}

impl Default for ComputePool {
    fn default() -> Self {
        Self::new()
    }
}

impl ComputePool {
    /// Creates an empty pool; workers are spawned on first demand.
    pub fn new() -> Self {
        ComputePool {
            shared: Arc::new(PoolShared {
                state: Mutex::new(PoolState {
                    epoch: 0,
                    job: None,
                    slots: 0,
                    running: 0,
                    panicked: false,
                    shutdown: false,
                }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
            }),
            inner: Mutex::new(PoolInner {
                workers: Vec::new(),
            }),
        }
    }

    /// The process-wide pool shared by rasterise bands, the
    /// projection/binning prologue, and the chunked Adam driver.  Never
    /// dropped; its workers park on a condvar while idle.
    pub fn global() -> &'static ComputePool {
        static POOL: OnceLock<ComputePool> = OnceLock::new();
        POOL.get_or_init(ComputePool::new)
    }

    /// Number of worker threads spawned so far (test/diagnostic hook).
    pub fn spawned_workers(&self) -> usize {
        self.inner
            .lock()
            .expect("compute pool inner poisoned")
            .workers
            .len()
    }

    /// Runs `f` over every job in `jobs` across up to `threads` pool
    /// threads (the calling thread participates, so `threads = 4` means at
    /// most 3 workers).  Jobs are handed out through a shared queue in an
    /// unspecified order; see the module docs for why callers stay
    /// deterministic anyway.
    ///
    /// `threads <= 1`, fewer than two jobs, or a call from inside a pool
    /// worker (nested region) degenerates to a plain serial loop, so the
    /// serial path *is* the parallel path at width 1 — there is no separate
    /// code path to diverge from.
    pub fn for_each<J, F>(&self, threads: usize, jobs: Vec<J>, f: F)
    where
        J: Send,
        F: Fn(J) + Sync,
    {
        let width = threads.max(1).min(jobs.len());
        if width <= 1 || IN_WORKER.get() {
            for job in jobs {
                f(job);
            }
            return;
        }
        let queue = Mutex::new(jobs.into_iter());
        let body = || drain(&queue, &f);
        self.run_region((width - 1).min(MAX_WORKERS), &body);
    }

    /// Runs one parallel region: `extra` workers plus the calling thread
    /// all invoke `job` once (the job drains a shared queue internally).
    /// Returns only after every participant has finished, even on panic —
    /// the soundness rendezvous for the lifetime-erased borrow.
    fn run_region(&self, extra: usize, job: &(dyn Fn() + Sync)) {
        let mut inner = self.inner.lock().expect("compute pool inner poisoned");
        while inner.workers.len() < extra {
            let shared = Arc::clone(&self.shared);
            let name = format!("clm-compute-{}", inner.workers.len());
            inner.workers.push(
                std::thread::Builder::new()
                    .name(name)
                    .spawn(move || worker_loop(shared))
                    .expect("failed to spawn compute pool worker"),
            );
        }
        // SAFETY: the erased reference is only dereferenced by workers
        // between here and the completion wait below; we do not return
        // (even unwinding is deferred) until `slots == 0 && running == 0`
        // and the job slot is cleared, so the borrow cannot escape the
        // caller's frame.
        let erased: Job =
            unsafe { std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(job) };
        {
            let mut st = self
                .shared
                .state
                .lock()
                .expect("compute pool state poisoned");
            st.epoch += 1;
            st.job = Some(erased);
            st.slots = extra;
            st.running = 0;
            st.panicked = false;
            self.shared.work_cv.notify_all();
        }
        // The calling thread is always a participant.
        let caller = catch_unwind(AssertUnwindSafe(job));
        let worker_panicked = {
            let mut st = self
                .shared
                .state
                .lock()
                .expect("compute pool state poisoned");
            while st.slots != 0 || st.running != 0 {
                st = self
                    .shared
                    .done_cv
                    .wait(st)
                    .expect("compute pool state poisoned");
            }
            st.job = None;
            std::mem::take(&mut st.panicked)
        };
        drop(inner);
        if let Err(payload) = caller {
            resume_unwind(payload);
        }
        if worker_panicked {
            panic!("compute pool worker panicked while running a parallel region");
        }
    }
}

impl Drop for ComputePool {
    fn drop(&mut self) {
        let mut inner = self.inner.lock().expect("compute pool inner poisoned");
        {
            let mut st = self
                .shared
                .state
                .lock()
                .expect("compute pool state poisoned");
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in inner.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Worker body: park until a region has participation slots left, run the
/// region job once, report completion, repeat until shutdown.
fn worker_loop(shared: Arc<PoolShared>) {
    IN_WORKER.set(true);
    // Participate in any epoch newer than the last one seen; starting at 0
    // means a freshly spawned worker may join the region that spawned it.
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("compute pool state poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    if st.slots > 0 {
                        break;
                    }
                    // Region is fully subscribed; skip this epoch.
                    seen = st.epoch;
                }
                st = shared
                    .work_cv
                    .wait(st)
                    .expect("compute pool state poisoned");
            }
            seen = st.epoch;
            st.slots -= 1;
            st.running += 1;
            st.job.expect("region with slots but no job")
        };
        let outcome = catch_unwind(AssertUnwindSafe(job));
        let mut st = shared.state.lock().expect("compute pool state poisoned");
        st.running -= 1;
        if outcome.is_err() {
            st.panicked = true;
        }
        if st.slots == 0 && st.running == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// Runs `f` over every job in `jobs` across up to `threads` threads of the
/// [global pool](ComputePool::global).  See [`ComputePool::for_each`].
pub fn parallel_for_each<J, F>(threads: usize, jobs: Vec<J>, f: F)
where
    J: Send,
    F: Fn(J) + Sync,
{
    ComputePool::global().for_each(threads, jobs, f);
}

/// Worker loop: pop the next job (holding the queue lock only for the pop),
/// run it, repeat until the queue is empty.
fn drain<J, F: Fn(J)>(queue: &Mutex<std::vec::IntoIter<J>>, f: &F) {
    loop {
        let job = queue.lock().expect("compute pool queue poisoned").next();
        match job {
            Some(job) => f(job),
            None => return,
        }
    }
}

/// Computes `f(0), f(1), …, f(count - 1)` across up to `threads` workers and
/// returns the results **in index order**, independent of which worker
/// computed what.
pub fn parallel_map<R, F>(threads: usize, count: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut results: Vec<Option<R>> = (0..count).map(|_| None).collect();
    {
        let jobs: Vec<(usize, &mut Option<R>)> = results.iter_mut().enumerate().collect();
        parallel_for_each(threads, jobs, |(i, slot)| *slot = Some(f(i)));
    }
    results
        .into_iter()
        .map(|r| r.expect("every indexed job runs exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_index_order_for_any_thread_count() {
        let expected: Vec<usize> = (0..100).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = parallel_map(threads, 100, |i| i * i);
            assert_eq!(got, expected, "threads {threads}");
        }
    }

    #[test]
    fn for_each_runs_every_job_exactly_once() {
        for threads in [1, 2, 5] {
            let counter = AtomicUsize::new(0);
            let jobs: Vec<usize> = (0..37).collect();
            parallel_for_each(threads, jobs, |i| {
                counter.fetch_add(i + 1, Ordering::Relaxed);
            });
            assert_eq!(counter.load(Ordering::Relaxed), (1..=37).sum::<usize>());
        }
    }

    #[test]
    fn jobs_may_own_disjoint_mutable_borrows() {
        // The forward pass's usage pattern: each job owns a `&mut` band of
        // one output buffer.
        let mut buf = vec![0u32; 64];
        {
            let jobs: Vec<(usize, &mut [u32])> = buf.chunks_mut(16).enumerate().collect();
            parallel_for_each(4, jobs, |(b, band)| {
                for (i, v) in band.iter_mut().enumerate() {
                    *v = (b * 100 + i) as u32;
                }
            });
        }
        for (i, v) in buf.iter().enumerate() {
            assert_eq!(*v, ((i / 16) * 100 + i % 16) as u32);
        }
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let got = parallel_map(32, 3, |i| i + 1);
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn empty_and_single_job_degenerate_to_serial() {
        let got: Vec<usize> = parallel_map(8, 0, |i| i);
        assert!(got.is_empty());
        assert_eq!(parallel_map(8, 1, |i| i + 41), vec![41]);
    }

    #[test]
    fn pool_reuses_workers_across_regions() {
        let pool = ComputePool::new();
        assert_eq!(pool.spawned_workers(), 0, "workers are spawned lazily");
        let sum = AtomicUsize::new(0);
        pool.for_each(4, (0..32).collect(), |i: usize| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        let after_first = pool.spawned_workers();
        assert_eq!(after_first, 3, "threads=4 spawns 3 workers + caller");
        for _ in 0..10 {
            pool.for_each(4, (0..32).collect(), |i: usize| {
                sum.fetch_add(i, Ordering::Relaxed);
            });
        }
        assert_eq!(
            pool.spawned_workers(),
            after_first,
            "subsequent same-width regions reuse the parked workers"
        );
        assert_eq!(sum.load(Ordering::Relaxed), 11 * (0..32).sum::<usize>());
        // Wider demand grows the pool instead of respawning.
        pool.for_each(6, (0..32).collect(), |_: usize| {});
        assert_eq!(pool.spawned_workers(), 5);
    }

    #[test]
    fn drop_joins_idle_workers() {
        let pool = ComputePool::new();
        let hits = AtomicUsize::new(0);
        pool.for_each(8, (0..64).collect(), |_: usize| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64);
        drop(pool); // must not hang; joins the 7 parked workers
    }

    #[test]
    fn nested_regions_fall_back_to_serial() {
        // A job that itself calls parallel_for_each: on a worker thread the
        // inner region must run inline rather than deadlocking on the
        // region lock.
        let counter = AtomicUsize::new(0);
        parallel_for_each(4, (0..8).collect(), |_: usize| {
            parallel_for_each(4, (0..8).collect(), |_: usize| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn concurrent_callers_serialise_through_the_region_lock() {
        let pool = std::sync::Arc::new(ComputePool::new());
        let total = std::sync::Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = std::sync::Arc::clone(&pool);
                let total = std::sync::Arc::clone(&total);
                std::thread::spawn(move || {
                    for _ in 0..16 {
                        pool.for_each(3, (0..10).collect(), |i: usize| {
                            total.fetch_add(i + 1, Ordering::Relaxed);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            total.load(Ordering::Relaxed),
            4 * 16 * (1..=10).sum::<usize>()
        );
    }

    #[test]
    fn worker_panic_propagates_to_the_caller() {
        let pool = ComputePool::new();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.for_each(4, (0..64).collect(), |i: usize| {
                if i == 13 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "panic must cross the region boundary");
        // The pool stays usable afterwards.
        let count = AtomicUsize::new(0);
        pool.for_each(4, (0..16).collect(), |_: usize| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 16);
    }
}
