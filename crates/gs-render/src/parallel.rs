//! Hand-rolled scoped compute pool for the rasteriser's banded kernels.
//!
//! The build is network-free, so instead of rayon this module provides the
//! minimum the render forward/backward passes need on top of `std` only: a
//! work-stealing `parallel_for_each` over a vector of owned jobs, executed
//! by scoped worker threads (`std::thread::scope`), plus an index-preserving
//! `parallel_map` built on it.
//!
//! # Determinism contract
//!
//! The pool **never** influences what is computed — only *where*.  Two
//! properties make every caller bit-deterministic for any thread count:
//!
//! 1. each job is a pure function of its own inputs (jobs share data only
//!    through `&`-borrows), so the values a job produces cannot depend on
//!    which worker ran it or when;
//! 2. results are keyed by job index ([`parallel_map`]) or written to
//!    disjoint `&mut` regions owned by the job itself, so nothing depends on
//!    completion order.
//!
//! Any order-sensitive reduction (e.g. floating-point accumulation across
//! bands) must therefore happen *outside* the pool, over the
//! index-ordered results — which is exactly how
//! [`crate::rasterize::render_backward`] merges its per-band gradient
//! accumulators.
//!
//! Scoped threads (rather than a long-lived pool) are deliberate: they let
//! jobs borrow the caller's stack-local buffers (image bands, per-band
//! accumulators) directly, with no `Arc` plumbing and no `'static` bound,
//! and they make the pool's lifetime exactly one parallel region — there is
//! no shared global state to configure or poison across calls.

use std::sync::Mutex;

/// Runs `f` over every job in `jobs` across up to `threads` scoped worker
/// threads (the calling thread participates, so `threads = 4` means at most
/// 3 spawned workers).  Jobs are handed out through a shared queue in an
/// unspecified order; see the module docs for why callers stay
/// deterministic anyway.
///
/// `threads <= 1` (or fewer than two jobs) degenerates to a plain serial
/// loop with no thread spawn at all, so the serial path *is* the parallel
/// path at width 1 — there is no separate code path to diverge from.
pub fn parallel_for_each<J, F>(threads: usize, jobs: Vec<J>, f: F)
where
    J: Send,
    F: Fn(J) + Sync,
{
    let workers = threads.max(1).min(jobs.len());
    if workers <= 1 {
        for job in jobs {
            f(job);
        }
        return;
    }
    let queue = Mutex::new(jobs.into_iter());
    let (queue, f) = (&queue, &f);
    std::thread::scope(|scope| {
        for _ in 1..workers {
            scope.spawn(move || drain(queue, f));
        }
        drain(queue, f);
    });
}

/// Worker loop: pop the next job (holding the queue lock only for the pop),
/// run it, repeat until the queue is empty.
fn drain<J, F: Fn(J)>(queue: &Mutex<std::vec::IntoIter<J>>, f: &F) {
    loop {
        let job = queue.lock().expect("compute pool queue poisoned").next();
        match job {
            Some(job) => f(job),
            None => return,
        }
    }
}

/// Computes `f(0), f(1), …, f(count - 1)` across up to `threads` workers and
/// returns the results **in index order**, independent of which worker
/// computed what.
pub fn parallel_map<R, F>(threads: usize, count: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut results: Vec<Option<R>> = (0..count).map(|_| None).collect();
    {
        let jobs: Vec<(usize, &mut Option<R>)> = results.iter_mut().enumerate().collect();
        parallel_for_each(threads, jobs, |(i, slot)| *slot = Some(f(i)));
    }
    results
        .into_iter()
        .map(|r| r.expect("every indexed job runs exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_index_order_for_any_thread_count() {
        let expected: Vec<usize> = (0..100).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = parallel_map(threads, 100, |i| i * i);
            assert_eq!(got, expected, "threads {threads}");
        }
    }

    #[test]
    fn for_each_runs_every_job_exactly_once() {
        for threads in [1, 2, 5] {
            let counter = AtomicUsize::new(0);
            let jobs: Vec<usize> = (0..37).collect();
            parallel_for_each(threads, jobs, |i| {
                counter.fetch_add(i + 1, Ordering::Relaxed);
            });
            assert_eq!(counter.load(Ordering::Relaxed), (1..=37).sum::<usize>());
        }
    }

    #[test]
    fn jobs_may_own_disjoint_mutable_borrows() {
        // The forward pass's usage pattern: each job owns a `&mut` band of
        // one output buffer.
        let mut buf = vec![0u32; 64];
        {
            let jobs: Vec<(usize, &mut [u32])> = buf.chunks_mut(16).enumerate().collect();
            parallel_for_each(4, jobs, |(b, band)| {
                for (i, v) in band.iter_mut().enumerate() {
                    *v = (b * 100 + i) as u32;
                }
            });
        }
        for (i, v) in buf.iter().enumerate() {
            assert_eq!(*v, ((i / 16) * 100 + i % 16) as u32);
        }
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let got = parallel_map(32, 3, |i| i + 1);
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn empty_and_single_job_degenerate_to_serial() {
        let got: Vec<usize> = parallel_map(8, 0, |i| i);
        assert!(got.is_empty());
        assert_eq!(parallel_map(8, 1, |i| i + 41), vec![41]);
    }
}
