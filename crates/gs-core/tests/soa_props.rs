//! Property tests for the lane-chunked (AoSoA) parameter store.
//!
//! `SoaParams` sits between the row-oriented compatibility seam
//! (`param_row`/`set_param_row`, which checkpoints and traces round-trip
//! through) and the lane kernels, so its conversions must be *pure copies*:
//! bit-identical per attribute, for arbitrary row counts (chunk-boundary
//! cases included), arbitrary values (negative zero included), and across
//! the densification resize that renumbers rows mid-epoch.  A single
//! miscopied lane would silently corrupt training state, so these
//! properties are checked bit-for-bit, not approximately.

use gs_core::gaussian::{Gaussian, GaussianModel};
use gs_core::math::Vec3;
use gs_core::{SoaParams, LANE_WIDTH, PARAMS_PER_GAUSSIAN};
use proptest::prelude::*;

/// Expands per-row seeds into a full 59-float row.  The expansion mixes the
/// two sampled seeds with the parameter index so every attribute of every
/// row is distinct, and flips a few entries to `-0.0` so bit-level identity
/// (not just numeric equality) is exercised.
fn rows_from_seeds(seeds: &[(f32, f32)]) -> Vec<[f32; PARAMS_PER_GAUSSIAN]> {
    seeds
        .iter()
        .enumerate()
        .map(|(i, &(a, b))| {
            let mut row = [0.0f32; PARAMS_PER_GAUSSIAN];
            for (k, p) in row.iter_mut().enumerate() {
                *p = a + b * (k as f32 + 1.0) - 0.125 * (i as f32);
                if (i + k) % 17 == 0 {
                    *p = -0.0;
                }
            }
            row
        })
        .collect()
}

/// Bit-level row equality: catches sign-of-zero changes `==` would miss.
fn same_bits(a: &[f32; PARAMS_PER_GAUSSIAN], b: &[f32; PARAMS_PER_GAUSSIAN]) -> bool {
    a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Builds a model of `rows.len()` Gaussians carrying exactly `rows` through
/// the `set_param_row` seam.
fn model_from_rows(rows: &[[f32; PARAMS_PER_GAUSSIAN]]) -> GaussianModel {
    let mut model: GaussianModel = rows
        .iter()
        .map(|_| Gaussian::isotropic(Vec3::ZERO, 0.1, [0.5; 3], 0.5))
        .collect();
    for (i, row) in rows.iter().enumerate() {
        model.set_param_row(i, row);
    }
    model
}

proptest! {
    #[test]
    fn rows_round_trip_bit_identically(
        seeds in proptest::collection::vec((-4.0f32..4.0, -2.0f32..2.0), 1..70),
    ) {
        let rows = rows_from_seeds(&seeds);
        let store = SoaParams::from_rows(rows.iter());
        prop_assert_eq!(store.len(), rows.len());
        prop_assert_eq!(store.num_chunks(), rows.len().div_ceil(LANE_WIDTH));
        for (i, row) in rows.iter().enumerate() {
            prop_assert!(same_bits(&store.row(i), row), "row {i} changed bits");
        }
        // Padding lanes of the last chunk hold exact zeros.
        let last = store.num_chunks() - 1;
        for lane in store.lanes_in_chunk(last)..LANE_WIDTH {
            for k in 0..PARAMS_PER_GAUSSIAN {
                prop_assert_eq!(store.chunk(last)[k][lane].to_bits(), 0u32);
            }
        }
    }

    #[test]
    fn model_conversion_round_trips_bit_identically(
        seeds in proptest::collection::vec((-4.0f32..4.0, -2.0f32..2.0), 1..40),
    ) {
        let rows = rows_from_seeds(&seeds);
        let model = model_from_rows(&rows);
        let store = SoaParams::from_model(&model);
        for i in 0..model.len() {
            prop_assert!(
                same_bits(&store.row(i), &model.param_row(i)),
                "store/model row {i} disagree"
            );
        }
        // Writing back through the seam restores every attribute exactly.
        let mut back = model_from_rows(&rows_from_seeds(
            &seeds.iter().map(|&(a, b)| (a + 1.0, b - 0.5)).collect::<Vec<_>>(),
        ));
        store.write_to_model(&mut back);
        for i in 0..model.len() {
            prop_assert!(same_bits(&back.param_row(i), &model.param_row(i)));
        }
    }

    #[test]
    fn apply_resize_matches_filter_reference(
        seeds in proptest::collection::vec((-4.0f32..4.0, -2.0f32..2.0), 1..50),
        prune_picks in proptest::collection::vec(0usize..50, 0..12),
        grow in 0usize..20,
    ) {
        // Densification boundary: prune a random index set (possibly with
        // duplicates, in arbitrary order), then grow for the split/clone
        // appends.  The survivors must slide down in order, bit-identical,
        // and appended rows must be exact zeros.
        let rows = rows_from_seeds(&seeds);
        let mut store = SoaParams::from_rows(rows.iter());
        let pruned: Vec<u32> = prune_picks
            .iter()
            .map(|&p| (p % rows.len()) as u32)
            .collect();
        let survivors: Vec<&[f32; PARAMS_PER_GAUSSIAN]> = rows
            .iter()
            .enumerate()
            .filter(|(i, _)| !pruned.contains(&(*i as u32)))
            .map(|(_, row)| row)
            .collect();
        let new_len = survivors.len() + grow;
        store.apply_resize(&pruned, new_len);

        prop_assert_eq!(store.len(), new_len);
        for (new_i, row) in survivors.iter().enumerate() {
            prop_assert!(same_bits(&store.row(new_i), row), "survivor {new_i}");
        }
        for i in survivors.len()..new_len {
            prop_assert!(
                store.row(i).iter().all(|x| x.to_bits() == 0),
                "appended row {i} not zero"
            );
        }
        // The padding invariant survives the resize: trailing lanes of the
        // last chunk (if any) are exact zeros.
        if store.num_chunks() > 0 {
            let last = store.num_chunks() - 1;
            for lane in store.lanes_in_chunk(last)..LANE_WIDTH {
                for k in 0..PARAMS_PER_GAUSSIAN {
                    prop_assert_eq!(store.chunk(last)[k][lane].to_bits(), 0u32);
                }
            }
        }
    }

    #[test]
    fn gather_scatter_preserves_bits_at_any_offset(
        seeds in proptest::collection::vec((-4.0f32..4.0, -2.0f32..2.0), 1..30),
        pick in 0usize..30,
        lane in 0usize..8,
    ) {
        // Lane staging is how non-chunk-aligned subsets reach the kernels;
        // a gather/scatter through any (row, lane) pairing must be a pure
        // copy.
        let rows = rows_from_seeds(&seeds);
        let mut store = SoaParams::from_rows(rows.iter());
        let i = pick % rows.len();
        let mut block = gs_core::zero_lane_block();
        store.gather_lane(i, lane, &mut block);
        for k in 0..PARAMS_PER_GAUSSIAN {
            prop_assert_eq!(block[k][lane].to_bits(), rows[i][k].to_bits());
        }
        store.scatter_lane(i, lane, &block);
        prop_assert!(same_bits(&store.row(i), &rows[i]));
    }
}
