//! Frustum culling: computing the visibility set `S_i` of a view.
//!
//! The paper's key observation (§3) is that 3DGS computation is *sparse*:
//! rendering one view only touches the Gaussians whose 3σ ellipsoid
//! intersects the camera frustum, which for large scenes is well under 1% of
//! the model.  Crucially, the test only needs the *selection-critical*
//! attributes (position, scale, rotation), which is what makes CLM's
//! attribute-wise offload possible: culling runs entirely against GPU-resident
//! data, and the result tells the loader exactly which non-critical rows to
//! fetch from CPU memory.

use crate::camera::Camera;
use crate::gaussian::GaussianModel;
use crate::visibility::VisibilitySet;

/// Number of standard deviations used for the ellipsoid-frustum
/// intersection test, matching standard 3DGS practice (§4.1).
pub const CULL_SIGMA: f32 = 3.0;

/// Field-of-view widening applied to the culling frustum so that splats
/// whose screen footprint is slightly inflated by the rasteriser's low-pass
/// filter are never culled away (the reference implementation applies the
/// same kind of conservative margin).
pub const CULL_FOV_MARGIN: f32 = 1.15;

/// Extra standard deviations added to [`CULL_SIGMA`] for the bounding-sphere
/// radius.  The rasteriser only drops a splat's contribution once its alpha
/// falls below 1/255, which for a fully opaque Gaussian happens at
/// `sqrt(2·ln 255) ≈ 3.33σ`; the slack keeps culling strictly conservative
/// with respect to the renderer.
pub const CULL_SIGMA_SLACK: f32 = 0.5;

/// Summary statistics of one culling pass.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CullStats {
    /// Total Gaussians tested.
    pub total: usize,
    /// Gaussians found in-frustum.
    pub in_frustum: usize,
}

impl CullStats {
    /// Sparsity ρ = in_frustum / total (0 when the model is empty).
    pub fn sparsity(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.in_frustum as f64 / self.total as f64
        }
    }
}

/// Computes the set of in-frustum Gaussians for `camera`.
///
/// A Gaussian is kept when a sphere of radius `3σ_max` around its centre
/// intersects the view frustum.  Bounding the anisotropic ellipsoid by a
/// sphere makes the test conservative: no Gaussian that could contribute to
/// the rendered image is ever culled.
///
/// ```
/// use gs_core::{GaussianModel, Gaussian, Camera, CameraIntrinsics, cull_frustum};
/// use gs_core::math::Vec3;
/// let mut model = GaussianModel::new();
/// model.push(Gaussian::isotropic(Vec3::new(0.0, 0.0, 5.0), 0.2, [0.5; 3], 0.9));
/// let cam = Camera::look_at(Vec3::ZERO, Vec3::Z, Vec3::Y,
///                           CameraIntrinsics::simple(32, 32, 1.0));
/// assert_eq!(cull_frustum(&model, &cam).len(), 1);
/// ```
pub fn cull_frustum(model: &GaussianModel, camera: &Camera) -> VisibilitySet {
    VisibilitySet::from_sorted(cull_frustum_indices(model, camera))
}

/// Like [`cull_frustum`] but returns the raw sorted index vector.
pub fn cull_frustum_indices(model: &GaussianModel, camera: &Camera) -> Vec<u32> {
    let frustum = camera.frustum_with_margin(CULL_FOV_MARGIN);
    let positions = model.positions();
    let scales = model.log_scales();
    let mut indices = Vec::new();
    for i in 0..model.len() {
        let radius = (CULL_SIGMA + CULL_SIGMA_SLACK) * scales[i].map(f32::exp).max_component();
        if frustum.intersects_sphere(positions[i], radius) {
            indices.push(i as u32);
        }
    }
    indices
}

/// Computes [`CullStats`] (total vs. in-frustum counts) for one view.
pub fn cull_stats(model: &GaussianModel, camera: &Camera) -> CullStats {
    CullStats {
        total: model.len(),
        in_frustum: cull_frustum_indices(model, camera).len(),
    }
}

/// Sparsity ρ_i = |S_i| / N for one view, the quantity plotted in Figure 5.
pub fn sparsity(model: &GaussianModel, camera: &Camera) -> f64 {
    cull_stats(model, camera).sparsity()
}

/// Computes visibility sets for a whole batch of views.
pub fn cull_batch(model: &GaussianModel, cameras: &[Camera]) -> Vec<VisibilitySet> {
    cameras.iter().map(|cam| cull_frustum(model, cam)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::CameraIntrinsics;
    use crate::gaussian::Gaussian;
    use crate::math::Vec3;

    fn forward_camera() -> Camera {
        Camera::look_at(
            Vec3::ZERO,
            Vec3::Z,
            Vec3::Y,
            CameraIntrinsics::simple(64, 64, 60.0_f32.to_radians()),
        )
        .with_clip(0.1, 100.0)
    }

    #[test]
    fn gaussian_in_front_is_visible_behind_is_not() {
        let mut model = GaussianModel::new();
        model.push(Gaussian::isotropic(
            Vec3::new(0.0, 0.0, 10.0),
            0.1,
            [0.5; 3],
            0.9,
        ));
        model.push(Gaussian::isotropic(
            Vec3::new(0.0, 0.0, -10.0),
            0.1,
            [0.5; 3],
            0.9,
        ));
        let set = cull_frustum(&model, &forward_camera());
        assert_eq!(set.indices(), &[0]);
    }

    #[test]
    fn large_gaussian_near_edge_is_kept() {
        let mut model = GaussianModel::new();
        // Centre outside the frustum, but its 3-sigma sphere crosses the edge.
        model.push(Gaussian::isotropic(
            Vec3::new(7.0, 0.0, 10.0),
            1.0,
            [0.5; 3],
            0.9,
        ));
        // Small Gaussian at the same centre is culled.
        model.push(Gaussian::isotropic(
            Vec3::new(7.0, 0.0, 10.0),
            0.01,
            [0.5; 3],
            0.9,
        ));
        let set = cull_frustum(&model, &forward_camera());
        assert!(set.contains(0));
        assert!(!set.contains(1));
    }

    #[test]
    fn beyond_far_plane_is_culled() {
        let mut model = GaussianModel::new();
        model.push(Gaussian::isotropic(
            Vec3::new(0.0, 0.0, 500.0),
            0.1,
            [0.5; 3],
            0.9,
        ));
        assert!(cull_frustum(&model, &forward_camera()).is_empty());
    }

    #[test]
    fn sparsity_decreases_with_scene_extent() {
        // Gaussians concentrated in front of the camera => high rho;
        // Gaussians spread over a huge volume => low rho.
        let cam = forward_camera();
        let make_scene = |extent: f32| -> GaussianModel {
            let mut model = GaussianModel::new();
            let n = 20;
            for i in 0..n {
                for j in 0..n {
                    let x = (i as f32 / n as f32 - 0.5) * extent;
                    let y = (j as f32 / n as f32 - 0.5) * extent;
                    model.push(Gaussian::isotropic(
                        Vec3::new(x, y, 10.0),
                        0.05,
                        [0.5; 3],
                        0.9,
                    ));
                }
            }
            model
        };
        let dense = sparsity(&make_scene(5.0), &cam);
        let sparse = sparsity(&make_scene(500.0), &cam);
        assert!(
            dense > 0.9,
            "dense scene should be almost fully visible, rho={dense}"
        );
        assert!(sparse < 0.05, "huge scene should be sparse, rho={sparse}");
    }

    #[test]
    fn cull_stats_consistency() {
        let mut model = GaussianModel::new();
        for i in 0..10 {
            model.push(Gaussian::isotropic(
                Vec3::new(0.0, 0.0, 5.0 + i as f32),
                0.1,
                [0.5; 3],
                0.9,
            ));
        }
        let cam = forward_camera();
        let stats = cull_stats(&model, &cam);
        assert_eq!(stats.total, 10);
        assert_eq!(stats.in_frustum, cull_frustum(&model, &cam).len());
        assert!((stats.sparsity() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cull_batch_matches_per_view_culling() {
        let mut model = GaussianModel::new();
        for i in 0..50 {
            let angle = i as f32 * 0.3;
            model.push(Gaussian::isotropic(
                Vec3::new(10.0 * angle.cos(), 0.0, 10.0 * angle.sin()),
                0.2,
                [0.5; 3],
                0.9,
            ));
        }
        let cams: Vec<Camera> = (0..4)
            .map(|i| {
                let angle = i as f32 * std::f32::consts::FRAC_PI_2;
                Camera::look_at(
                    Vec3::ZERO,
                    Vec3::new(angle.cos(), 0.0, angle.sin()),
                    Vec3::Y,
                    CameraIntrinsics::simple(32, 32, 1.0),
                )
            })
            .collect();
        let batch = cull_batch(&model, &cams);
        assert_eq!(batch.len(), 4);
        for (cam, set) in cams.iter().zip(&batch) {
            assert_eq!(set, &cull_frustum(&model, cam));
        }
        // Different viewing directions see different subsets.
        assert_ne!(batch[0], batch[2]);
    }

    #[test]
    fn empty_model_has_zero_sparsity() {
        let model = GaussianModel::new();
        let cam = forward_camera();
        assert_eq!(sparsity(&model, &cam), 0.0);
        assert!(cull_frustum(&model, &cam).is_empty());
    }
}
