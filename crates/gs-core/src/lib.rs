//! Core data model for 3D Gaussian Splatting (3DGS).
//!
//! This crate provides the scene representation used throughout the CLM
//! reproduction: small linear-algebra types, spherical-harmonics colour
//! evaluation, the structure-of-arrays Gaussian model with its 59 learnable
//! parameters per Gaussian, pinhole cameras with view frusta, frustum
//! culling, and [`VisibilitySet`]s describing which Gaussians each view
//! touches.
//!
//! The split between *selection-critical* attributes (position, scale,
//! rotation — the 10 floats frustum culling needs) and *non-critical*
//! attributes (spherical harmonics and opacity — the remaining 49 floats) is
//! defined here because it is the foundation of CLM's attribute-wise
//! offloading strategy.
//!
//! # Example
//!
//! ```
//! use gs_core::{GaussianModel, Gaussian, Camera, cull_frustum};
//! use gs_core::math::Vec3;
//!
//! let mut model = GaussianModel::new();
//! model.push(Gaussian::isotropic(Vec3::new(0.0, 0.0, 5.0), 0.1, [0.8, 0.2, 0.2], 0.9));
//! model.push(Gaussian::isotropic(Vec3::new(100.0, 0.0, 5.0), 0.1, [0.2, 0.8, 0.2], 0.9));
//!
//! let camera = Camera::look_at(
//!     Vec3::new(0.0, 0.0, 0.0),
//!     Vec3::new(0.0, 0.0, 1.0),
//!     Vec3::new(0.0, 1.0, 0.0),
//!     gs_core::CameraIntrinsics::simple(64, 64, 60.0_f32.to_radians()),
//! );
//! let visible = cull_frustum(&model, &camera);
//! assert_eq!(visible.indices(), &[0]);
//! ```
#![warn(missing_docs)]

pub mod camera;
pub mod culling;
pub mod error;
pub mod gaussian;
pub mod math;
pub mod sh;
pub mod soa;
pub mod visibility;

pub use camera::{Camera, CameraExtrinsics, CameraIntrinsics, Frustum, Plane};
pub use culling::{cull_frustum, cull_frustum_indices, sparsity, CullStats};
pub use error::GsError;
pub use gaussian::{
    AttributeKind, Gaussian, GaussianModel, NON_CRITICAL_FLOATS, PARAMS_PER_GAUSSIAN,
    SELECTION_CRITICAL_FLOATS, SH_COEFFS_PER_CHANNEL, SH_FLOATS, TRAINING_STATE_COPIES,
};
pub use soa::{zero_lane_block, LaneBlock, SoaParams, LANE_WIDTH};
pub use visibility::VisibilitySet;

/// Bytes occupied by one `f32` parameter.
pub const BYTES_PER_PARAM: usize = 4;

/// Bytes of *model state* (parameter + gradient + two Adam moments) that one
/// Gaussian occupies during training, as defined in §2.2 of the paper:
/// `59 parameters × 4 copies × 4 bytes`.
pub const fn training_bytes_per_gaussian() -> usize {
    PARAMS_PER_GAUSSIAN * TRAINING_STATE_COPIES * BYTES_PER_PARAM
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_bytes_match_paper() {
        // 59 * 4 * 4 = 944 bytes per Gaussian.
        assert_eq!(training_bytes_per_gaussian(), 944);
    }

    #[test]
    fn rtx4090_capacity_matches_paper_claim() {
        // The paper states a 24 GB RTX 4090 can hold the model state of at
        // most ~26 million Gaussians.  Check the arithmetic used there.
        let capacity = 24usize * 1024 * 1024 * 1024;
        let max_gaussians = capacity / training_bytes_per_gaussian();
        assert!((26_000_000..28_000_000).contains(&max_gaussians));
    }
}
