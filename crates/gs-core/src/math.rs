//! Small fixed-size linear algebra used by the 3DGS pipeline.
//!
//! Only the pieces actually needed by splatting are implemented: 3-vectors,
//! 3×3 matrices, quaternions and a handful of 2×2 helpers used by the EWA
//! projection.  Everything is `f32`, mirroring the precision used by GPU
//! 3DGS implementations.

use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A 3-component single-precision vector.
///
/// ```
/// use gs_core::math::Vec3;
/// let v = Vec3::new(1.0, 2.0, 2.0);
/// assert_eq!(v.length(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// The all-ones vector.
    pub const ONE: Vec3 = Vec3 {
        x: 1.0,
        y: 1.0,
        z: 1.0,
    };
    /// Unit X axis.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit Y axis.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit Z axis.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from its components.
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    pub const fn splat(v: f32) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    pub fn dot(self, rhs: Vec3) -> f32 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Euclidean length.
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length (avoids the square root).
    pub fn length_squared(self) -> f32 {
        self.dot(self)
    }

    /// Returns the vector scaled to unit length.
    ///
    /// Returns [`Vec3::ZERO`] for a zero-length input instead of producing
    /// NaNs so callers do not have to special-case degenerate data.
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        if len > 0.0 {
            self / len
        } else {
            Vec3::ZERO
        }
    }

    /// Component-wise product.
    pub fn mul_elem(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x * rhs.x, self.y * rhs.y, self.z * rhs.z)
    }

    /// Component-wise maximum.
    pub fn max_elem(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// Component-wise minimum.
    pub fn min_elem(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// The maximum of the three components.
    pub fn max_component(self) -> f32 {
        self.x.max(self.y).max(self.z)
    }

    /// Distance to another point.
    pub fn distance(self, rhs: Vec3) -> f32 {
        (self - rhs).length()
    }

    /// Returns the components as an array `[x, y, z]`.
    pub fn to_array(self) -> [f32; 3] {
        [self.x, self.y, self.z]
    }

    /// Applies `f` to every component, returning the mapped vector.
    pub fn map(self, mut f: impl FnMut(f32) -> f32) -> Vec3 {
        Vec3::new(f(self.x), f(self.y), f(self.z))
    }

    /// Returns `true` when every component is finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl From<[f32; 3]> for Vec3 {
    fn from(a: [f32; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f32; 3] {
    fn from(v: Vec3) -> Self {
        v.to_array()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    fn mul(self, rhs: f32) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f32 {
    type Output = Vec3;
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl Div<f32> for Vec3 {
    type Output = Vec3;
    fn div(self, rhs: f32) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

/// A 2-component single-precision vector used for image-plane coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from its components.
    pub const fn new(x: f32, y: f32) -> Self {
        Vec2 { x, y }
    }

    /// Dot product.
    pub fn dot(self, rhs: Vec2) -> f32 {
        self.x * rhs.x + self.y * rhs.y
    }

    /// Euclidean length.
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f32> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f32) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

/// A row-major 3×3 single-precision matrix.
///
/// ```
/// use gs_core::math::{Mat3, Vec3};
/// let m = Mat3::identity();
/// assert_eq!(m * Vec3::X, Vec3::X);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat3 {
    /// Row-major storage: `m[row][col]`.
    pub m: [[f32; 3]; 3],
}

impl Default for Mat3 {
    fn default() -> Self {
        Mat3::identity()
    }
}

impl Mat3 {
    /// The identity matrix.
    pub fn identity() -> Mat3 {
        Mat3 {
            m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
        }
    }

    /// The zero matrix.
    pub fn zero() -> Mat3 {
        Mat3 { m: [[0.0; 3]; 3] }
    }

    /// Builds a matrix from three rows.
    pub fn from_rows(r0: Vec3, r1: Vec3, r2: Vec3) -> Mat3 {
        Mat3 {
            m: [r0.to_array(), r1.to_array(), r2.to_array()],
        }
    }

    /// Builds a matrix from three columns.
    pub fn from_cols(c0: Vec3, c1: Vec3, c2: Vec3) -> Mat3 {
        Mat3 {
            m: [[c0.x, c1.x, c2.x], [c0.y, c1.y, c2.y], [c0.z, c1.z, c2.z]],
        }
    }

    /// Builds a diagonal matrix with `d` on the diagonal.
    pub fn from_diagonal(d: Vec3) -> Mat3 {
        Mat3 {
            m: [[d.x, 0.0, 0.0], [0.0, d.y, 0.0], [0.0, 0.0, d.z]],
        }
    }

    /// Returns row `i` as a vector.
    ///
    /// # Panics
    /// Panics if `i >= 3`.
    pub fn row(&self, i: usize) -> Vec3 {
        Vec3::new(self.m[i][0], self.m[i][1], self.m[i][2])
    }

    /// Returns column `i` as a vector.
    ///
    /// # Panics
    /// Panics if `i >= 3`.
    pub fn col(&self, i: usize) -> Vec3 {
        Vec3::new(self.m[0][i], self.m[1][i], self.m[2][i])
    }

    /// The matrix transpose.
    pub fn transpose(&self) -> Mat3 {
        Mat3::from_rows(self.col(0), self.col(1), self.col(2))
    }

    /// The matrix determinant.
    pub fn determinant(&self) -> f32 {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// Matrix trace (sum of the diagonal).
    pub fn trace(&self) -> f32 {
        self.m[0][0] + self.m[1][1] + self.m[2][2]
    }

    /// The matrix inverse, or `None` if the matrix is (near) singular.
    pub fn inverse(&self) -> Option<Mat3> {
        let det = self.determinant();
        if det.abs() < 1e-12 {
            return None;
        }
        let inv_det = 1.0 / det;
        let m = &self.m;
        let mut out = Mat3::zero();
        out.m[0][0] = (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv_det;
        out.m[0][1] = (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv_det;
        out.m[0][2] = (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv_det;
        out.m[1][0] = (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * inv_det;
        out.m[1][1] = (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv_det;
        out.m[1][2] = (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv_det;
        out.m[2][0] = (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv_det;
        out.m[2][1] = (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * inv_det;
        out.m[2][2] = (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv_det;
        Some(out)
    }

    /// Checks that the matrix is (approximately) a rotation: orthonormal
    /// columns with determinant +1.
    pub fn is_rotation(&self, tol: f32) -> bool {
        let should_be_identity = *self * self.transpose();
        let mut max_err: f32 = 0.0;
        for r in 0..3 {
            for c in 0..3 {
                let expected = if r == c { 1.0 } else { 0.0 };
                max_err = max_err.max((should_be_identity.m[r][c] - expected).abs());
            }
        }
        max_err <= tol && (self.determinant() - 1.0).abs() <= tol
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;
    fn mul(self, rhs: Vec3) -> Vec3 {
        Vec3::new(
            self.row(0).dot(rhs),
            self.row(1).dot(rhs),
            self.row(2).dot(rhs),
        )
    }
}

impl Mul<Mat3> for Mat3 {
    type Output = Mat3;
    fn mul(self, rhs: Mat3) -> Mat3 {
        let mut out = Mat3::zero();
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] = self.row(r).dot(rhs.col(c));
            }
        }
        out
    }
}

impl Mul<f32> for Mat3 {
    type Output = Mat3;
    fn mul(self, rhs: f32) -> Mat3 {
        let mut out = self;
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] *= rhs;
            }
        }
        out
    }
}

impl Add<Mat3> for Mat3 {
    type Output = Mat3;
    fn add(self, rhs: Mat3) -> Mat3 {
        let mut out = self;
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] += rhs.m[r][c];
            }
        }
        out
    }
}

impl Index<(usize, usize)> for Mat3 {
    type Output = f32;
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.m[r][c]
    }
}

impl IndexMut<(usize, usize)> for Mat3 {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.m[r][c]
    }
}

/// A symmetric 2×2 matrix, stored as `[a, b; b, c]`, used for the projected
/// 2D covariance of a Gaussian.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Sym2 {
    /// Element (0, 0).
    pub a: f32,
    /// Element (0, 1) == (1, 0).
    pub b: f32,
    /// Element (1, 1).
    pub c: f32,
}

impl Sym2 {
    /// Creates a symmetric 2×2 matrix.
    pub const fn new(a: f32, b: f32, c: f32) -> Self {
        Sym2 { a, b, c }
    }

    /// The determinant `a·c − b²`.
    pub fn determinant(self) -> f32 {
        self.a * self.c - self.b * self.b
    }

    /// Inverse (the *conic* matrix in splatting terminology), or `None` if
    /// the matrix is singular.
    pub fn inverse(self) -> Option<Sym2> {
        let det = self.determinant();
        if det.abs() < 1e-12 {
            return None;
        }
        Some(Sym2::new(self.c / det, -self.b / det, self.a / det))
    }

    /// Largest eigenvalue (used for the screen-space extent of a splat).
    pub fn max_eigenvalue(self) -> f32 {
        let mid = 0.5 * (self.a + self.c);
        let disc = (mid * mid - self.determinant()).max(0.0).sqrt();
        mid + disc
    }

    /// Evaluates the quadratic form `dᵀ M d` for an offset `d = (dx, dy)`.
    pub fn quadratic_form(self, dx: f32, dy: f32) -> f32 {
        self.a * dx * dx + 2.0 * self.b * dx * dy + self.c * dy * dy
    }
}

/// A unit quaternion representing a 3D rotation, stored as `(w, x, y, z)`.
///
/// 3DGS stores each Gaussian's orientation as an (unnormalised) quaternion;
/// the renderer normalises before converting to a rotation matrix.
///
/// ```
/// use gs_core::math::{Quat, Vec3};
/// let q = Quat::from_axis_angle(Vec3::Z, std::f32::consts::FRAC_PI_2);
/// let rotated = q.to_rotation_matrix() * Vec3::X;
/// assert!((rotated - Vec3::Y).length() < 1e-5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quat {
    /// Scalar part.
    pub w: f32,
    /// X imaginary part.
    pub x: f32,
    /// Y imaginary part.
    pub y: f32,
    /// Z imaginary part.
    pub z: f32,
}

impl Default for Quat {
    fn default() -> Self {
        Quat::IDENTITY
    }
}

impl Quat {
    /// The identity rotation.
    pub const IDENTITY: Quat = Quat {
        w: 1.0,
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a quaternion from components.
    pub const fn new(w: f32, x: f32, y: f32, z: f32) -> Self {
        Quat { w, x, y, z }
    }

    /// Creates a rotation of `angle` radians about `axis`.
    pub fn from_axis_angle(axis: Vec3, angle: f32) -> Quat {
        let axis = axis.normalized();
        let half = angle * 0.5;
        let s = half.sin();
        Quat::new(half.cos(), axis.x * s, axis.y * s, axis.z * s)
    }

    /// Quaternion norm.
    pub fn norm(self) -> f32 {
        (self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Returns the normalised (unit) quaternion.  A zero quaternion maps to
    /// the identity so downstream rotation matrices stay well formed.
    pub fn normalized(self) -> Quat {
        let n = self.norm();
        if n > 1e-12 {
            Quat::new(self.w / n, self.x / n, self.y / n, self.z / n)
        } else {
            Quat::IDENTITY
        }
    }

    /// Converts to a 3×3 rotation matrix (normalising first).
    pub fn to_rotation_matrix(self) -> Mat3 {
        let q = self.normalized();
        let (w, x, y, z) = (q.w, q.x, q.y, q.z);
        Mat3 {
            m: [
                [
                    1.0 - 2.0 * (y * y + z * z),
                    2.0 * (x * y - w * z),
                    2.0 * (x * z + w * y),
                ],
                [
                    2.0 * (x * y + w * z),
                    1.0 - 2.0 * (x * x + z * z),
                    2.0 * (y * z - w * x),
                ],
                [
                    2.0 * (x * z - w * y),
                    2.0 * (y * z + w * x),
                    1.0 - 2.0 * (x * x + y * y),
                ],
            ],
        }
    }

    /// Returns the components as `[w, x, y, z]`.
    pub fn to_array(self) -> [f32; 4] {
        [self.w, self.x, self.y, self.z]
    }

    /// Hamilton product `self · rhs`.
    pub fn mul_quat(self, rhs: Quat) -> Quat {
        Quat::new(
            self.w * rhs.w - self.x * rhs.x - self.y * rhs.y - self.z * rhs.z,
            self.w * rhs.x + self.x * rhs.w + self.y * rhs.z - self.z * rhs.y,
            self.w * rhs.y - self.x * rhs.z + self.y * rhs.w + self.z * rhs.x,
            self.w * rhs.z + self.x * rhs.y - self.y * rhs.x + self.z * rhs.w,
        )
    }
}

impl From<[f32; 4]> for Quat {
    fn from(a: [f32; 4]) -> Self {
        Quat::new(a[0], a[1], a[2], a[3])
    }
}

impl From<Quat> for [f32; 4] {
    fn from(q: Quat) -> Self {
        q.to_array()
    }
}

/// Numerically stable sigmoid, used to map opacity logits to `[0, 1]`.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Inverse of [`sigmoid`]; clamps its input away from 0 and 1 to stay finite.
pub fn inverse_sigmoid(y: f32) -> f32 {
    let y = y.clamp(1e-6, 1.0 - 1e-6);
    (y / (1.0 - y)).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_close(a: f32, b: f32, tol: f32) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn vec3_basic_ops() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_close(a.dot(b), 32.0, 1e-6);
        assert_eq!(a.cross(b), Vec3::new(-3.0, 6.0, -3.0));
    }

    #[test]
    fn vec3_normalized_zero_is_zero() {
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn vec3_array_round_trip() {
        let v = Vec3::new(1.5, -2.5, 3.5);
        let a: [f32; 3] = v.into();
        assert_eq!(Vec3::from(a), v);
    }

    #[test]
    fn mat3_identity_and_mul() {
        let id = Mat3::identity();
        let v = Vec3::new(3.0, -1.0, 2.0);
        assert_eq!(id * v, v);
        assert_eq!(id * id, id);
        assert_close(id.determinant(), 1.0, 1e-6);
    }

    #[test]
    fn mat3_inverse_round_trip() {
        let m = Mat3::from_rows(
            Vec3::new(2.0, 1.0, 0.5),
            Vec3::new(0.0, 3.0, 1.0),
            Vec3::new(1.0, 0.0, 2.0),
        );
        let inv = m.inverse().expect("invertible");
        let prod = m * inv;
        for r in 0..3 {
            for c in 0..3 {
                let expected = if r == c { 1.0 } else { 0.0 };
                assert_close(prod.m[r][c], expected, 1e-5);
            }
        }
    }

    #[test]
    fn mat3_singular_has_no_inverse() {
        let m = Mat3::from_rows(Vec3::X, Vec3::X, Vec3::Y);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn mat3_transpose_of_transpose_is_identity_op() {
        let m = Mat3::from_rows(
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(4.0, 5.0, 6.0),
            Vec3::new(7.0, 8.0, 9.0),
        );
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn quat_axis_angle_rotates_correctly() {
        let q = Quat::from_axis_angle(Vec3::Z, std::f32::consts::FRAC_PI_2);
        let r = q.to_rotation_matrix();
        let rotated = r * Vec3::X;
        assert!((rotated - Vec3::Y).length() < 1e-5);
        assert!(r.is_rotation(1e-5));
    }

    #[test]
    fn quat_zero_normalizes_to_identity() {
        let q = Quat::new(0.0, 0.0, 0.0, 0.0).normalized();
        assert_eq!(q, Quat::IDENTITY);
    }

    #[test]
    fn quat_product_composes_rotations() {
        let a = Quat::from_axis_angle(Vec3::Z, 0.3);
        let b = Quat::from_axis_angle(Vec3::Z, 0.5);
        let composed = a.mul_quat(b).to_rotation_matrix();
        let expected = Quat::from_axis_angle(Vec3::Z, 0.8).to_rotation_matrix();
        for r in 0..3 {
            for c in 0..3 {
                assert_close(composed.m[r][c], expected.m[r][c], 1e-5);
            }
        }
    }

    #[test]
    fn sym2_inverse_and_eigenvalue() {
        let m = Sym2::new(4.0, 1.0, 3.0);
        let inv = m.inverse().unwrap();
        // M * M^-1 == I for symmetric 2x2.
        assert_close(m.a * inv.a + m.b * inv.b, 1.0, 1e-5);
        assert_close(m.a * inv.b + m.b * inv.c, 0.0, 1e-5);
        assert_close(m.b * inv.b + m.c * inv.c, 1.0, 1e-5);
        // Eigenvalues of [[4,1],[1,3]] are (7 ± sqrt(5)) / 2.
        assert_close(m.max_eigenvalue(), (7.0 + 5.0_f32.sqrt()) / 2.0, 1e-5);
    }

    #[test]
    fn sigmoid_round_trip() {
        for &x in &[-5.0, -1.0, 0.0, 0.3, 2.0, 6.0] {
            assert_close(inverse_sigmoid(sigmoid(x)), x, 1e-3);
        }
        assert_close(sigmoid(0.0), 0.5, 1e-6);
    }

    proptest! {
        #[test]
        fn prop_quat_to_matrix_is_rotation(w in -1.0f32..1.0, x in -1.0f32..1.0,
                                           y in -1.0f32..1.0, z in -1.0f32..1.0) {
            prop_assume!((w*w + x*x + y*y + z*z) > 1e-3);
            let q = Quat::new(w, x, y, z);
            prop_assert!(q.to_rotation_matrix().is_rotation(1e-3));
        }

        #[test]
        fn prop_rotation_preserves_length(w in -1.0f32..1.0, x in -1.0f32..1.0,
                                          y in -1.0f32..1.0, z in -1.0f32..1.0,
                                          vx in -10.0f32..10.0, vy in -10.0f32..10.0,
                                          vz in -10.0f32..10.0) {
            prop_assume!((w*w + x*x + y*y + z*z) > 1e-3);
            let q = Quat::new(w, x, y, z);
            let v = Vec3::new(vx, vy, vz);
            let rotated = q.to_rotation_matrix() * v;
            prop_assert!((rotated.length() - v.length()).abs() < 1e-2 * (1.0 + v.length()));
        }

        #[test]
        fn prop_mat3_inverse_round_trips(values in proptest::array::uniform9(-5.0f32..5.0)) {
            let m = Mat3 { m: [
                [values[0], values[1], values[2]],
                [values[3], values[4], values[5]],
                [values[6], values[7], values[8]],
            ]};
            prop_assume!(m.determinant().abs() > 1e-2);
            let inv = m.inverse().unwrap();
            let prod = m * inv;
            for r in 0..3 {
                for c in 0..3 {
                    let expected = if r == c { 1.0 } else { 0.0 };
                    prop_assert!((prod.m[r][c] - expected).abs() < 1e-2);
                }
            }
        }

        #[test]
        fn prop_sigmoid_in_unit_interval(x in -50.0f32..50.0) {
            let y = sigmoid(x);
            prop_assert!((0.0..=1.0).contains(&y));
        }
    }
}
