//! The 3D Gaussian scene representation.
//!
//! A scene is a (potentially very large) collection of anisotropic 3D
//! Gaussians, each with **59 learnable parameters** (Table 1 of the paper):
//!
//! | attribute                      | floats |
//! |--------------------------------|--------|
//! | 3D position                    | 3      |
//! | covariance (log-scale + quat)  | 3 + 4  |
//! | spherical harmonics (colour)   | 48     |
//! | opacity (logit)                | 1      |
//!
//! CLM partitions these into **selection-critical** attributes (position,
//! scale, rotation — needed for frustum culling, 10 floats) which stay
//! resident in GPU memory, and **non-critical** attributes (SH + opacity,
//! 49 floats) which are offloaded to CPU memory.  This module defines that
//! split and a structure-of-arrays container for the whole model.

use crate::math::{sigmoid, Mat3, Quat, Vec3};
use crate::sh::NUM_SH_COEFFS;

/// Total learnable floats per Gaussian (59).
pub const PARAMS_PER_GAUSSIAN: usize = 59;
/// Floats needed by frustum culling: position (3) + scale (3) + rotation (4).
pub const SELECTION_CRITICAL_FLOATS: usize = 10;
/// Floats offloadable to CPU memory: SH (48) + opacity (1).
pub const NON_CRITICAL_FLOATS: usize = PARAMS_PER_GAUSSIAN - SELECTION_CRITICAL_FLOATS;
/// SH coefficients per colour channel (degree 3).
pub const SH_COEFFS_PER_CHANNEL: usize = NUM_SH_COEFFS;
/// Total SH floats per Gaussian (3 channels × 16 coefficients).
pub const SH_FLOATS: usize = 3 * NUM_SH_COEFFS;
/// Copies of each parameter kept during training: the parameter itself, its
/// gradient and the two Adam moment estimates.
pub const TRAINING_STATE_COPIES: usize = 4;

/// The four attribute groups of a Gaussian, matching Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttributeKind {
    /// 3D position (3 floats). Selection-critical.
    Position,
    /// Anisotropic covariance: log-scale (3 floats) + rotation quaternion
    /// (4 floats). Selection-critical.
    Covariance,
    /// Spherical-harmonics colour coefficients (48 floats). Non-critical.
    SphericalHarmonics,
    /// Opacity logit (1 float). Non-critical.
    Opacity,
}

impl AttributeKind {
    /// All attribute kinds in canonical order.
    pub const ALL: [AttributeKind; 4] = [
        AttributeKind::Position,
        AttributeKind::Covariance,
        AttributeKind::SphericalHarmonics,
        AttributeKind::Opacity,
    ];

    /// Number of floats this attribute occupies per Gaussian.
    pub fn float_count(self) -> usize {
        match self {
            AttributeKind::Position => 3,
            AttributeKind::Covariance => 7,
            AttributeKind::SphericalHarmonics => SH_FLOATS,
            AttributeKind::Opacity => 1,
        }
    }

    /// Whether the attribute is needed by frustum culling and therefore kept
    /// resident in GPU memory by CLM.
    pub fn is_selection_critical(self) -> bool {
        matches!(self, AttributeKind::Position | AttributeKind::Covariance)
    }
}

/// A single Gaussian in array-of-structs form, convenient for construction
/// and for the renderer's per-splat processing.
#[derive(Debug, Clone, PartialEq)]
pub struct Gaussian {
    /// World-space centre.
    pub position: Vec3,
    /// Per-axis log-scale; the actual standard deviation along each local
    /// axis is `exp(log_scale)`.
    pub log_scale: Vec3,
    /// Orientation quaternion `(w, x, y, z)`; need not be normalised.
    pub rotation: Quat,
    /// Spherical-harmonics coefficients, channel-major (48 floats).
    pub sh: [f32; SH_FLOATS],
    /// Opacity logit; the effective opacity is `sigmoid(opacity_logit)`.
    pub opacity_logit: f32,
}

impl Default for Gaussian {
    fn default() -> Self {
        Gaussian {
            position: Vec3::ZERO,
            log_scale: Vec3::splat(-3.0),
            rotation: Quat::IDENTITY,
            sh: [0.0; SH_FLOATS],
            opacity_logit: 0.0,
        }
    }
}

impl Gaussian {
    /// Creates an isotropic Gaussian with standard deviation `sigma`, a
    /// constant colour `rgb` and effective opacity `opacity` in `(0, 1)`.
    ///
    /// # Panics
    /// Panics if `sigma` is not strictly positive.
    pub fn isotropic(position: Vec3, sigma: f32, rgb: [f32; 3], opacity: f32) -> Self {
        assert!(sigma > 0.0, "sigma must be positive, got {sigma}");
        Gaussian {
            position,
            log_scale: Vec3::splat(sigma.ln()),
            rotation: Quat::IDENTITY,
            sh: crate::sh::constant_color_coeffs(rgb),
            opacity_logit: crate::math::inverse_sigmoid(opacity),
        }
    }

    /// World-space standard deviations along the local axes.
    pub fn scale(&self) -> Vec3 {
        self.log_scale.map(f32::exp)
    }

    /// Effective opacity in `[0, 1]`.
    pub fn opacity(&self) -> f32 {
        sigmoid(self.opacity_logit)
    }

    /// Radius of the bounding sphere at `k` standard deviations
    /// (`k = 3` is the culling convention used by 3DGS).
    pub fn bounding_radius(&self, k: f32) -> f32 {
        k * self.scale().max_component()
    }

    /// 3D covariance matrix `Σ = R S Sᵀ Rᵀ`.
    pub fn covariance(&self) -> Mat3 {
        let r = self.rotation.to_rotation_matrix();
        let s = Mat3::from_diagonal(self.scale());
        let rs = r * s;
        rs * rs.transpose()
    }
}

/// Structure-of-arrays container for all Gaussians of a scene.
///
/// This layout matches how real 3DGS implementations store the model (one
/// tensor per attribute) and is what CLM's attribute-wise offloading
/// operates on.
///
/// ```
/// use gs_core::{GaussianModel, Gaussian};
/// use gs_core::math::Vec3;
///
/// let mut model = GaussianModel::new();
/// model.push(Gaussian::isotropic(Vec3::ZERO, 0.5, [1.0, 0.0, 0.0], 0.8));
/// assert_eq!(model.len(), 1);
/// assert_eq!(model.parameter_count(), 59);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GaussianModel {
    positions: Vec<Vec3>,
    log_scales: Vec<Vec3>,
    rotations: Vec<Quat>,
    sh: Vec<f32>,
    opacity_logits: Vec<f32>,
}

impl GaussianModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty model with capacity for `n` Gaussians.
    pub fn with_capacity(n: usize) -> Self {
        GaussianModel {
            positions: Vec::with_capacity(n),
            log_scales: Vec::with_capacity(n),
            rotations: Vec::with_capacity(n),
            sh: Vec::with_capacity(n * SH_FLOATS),
            opacity_logits: Vec::with_capacity(n),
        }
    }

    /// Number of Gaussians in the model.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the model contains no Gaussians.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Total number of learnable parameters (`len() × 59`).
    pub fn parameter_count(&self) -> usize {
        self.len() * PARAMS_PER_GAUSSIAN
    }

    /// Bytes of raw parameters (no gradients / optimizer state).
    pub fn parameter_bytes(&self) -> usize {
        self.parameter_count() * crate::BYTES_PER_PARAM
    }

    /// Bytes of full training state (parameters, gradients, two Adam
    /// moments), as used for the paper's memory-demand estimates.
    pub fn training_state_bytes(&self) -> usize {
        self.len() * crate::training_bytes_per_gaussian()
    }

    /// Appends one Gaussian, returning its index.
    pub fn push(&mut self, g: Gaussian) -> usize {
        let idx = self.len();
        self.positions.push(g.position);
        self.log_scales.push(g.log_scale);
        self.rotations.push(g.rotation);
        self.sh.extend_from_slice(&g.sh);
        self.opacity_logits.push(g.opacity_logit);
        idx
    }

    /// Reads Gaussian `i` back into array-of-structs form.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> Gaussian {
        let mut sh = [0.0f32; SH_FLOATS];
        sh.copy_from_slice(&self.sh[i * SH_FLOATS..(i + 1) * SH_FLOATS]);
        Gaussian {
            position: self.positions[i],
            log_scale: self.log_scales[i],
            rotation: self.rotations[i],
            sh,
            opacity_logit: self.opacity_logits[i],
        }
    }

    /// Overwrites Gaussian `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn set(&mut self, i: usize, g: Gaussian) {
        self.positions[i] = g.position;
        self.log_scales[i] = g.log_scale;
        self.rotations[i] = g.rotation;
        self.sh[i * SH_FLOATS..(i + 1) * SH_FLOATS].copy_from_slice(&g.sh);
        self.opacity_logits[i] = g.opacity_logit;
    }

    /// Removes the Gaussians at the given (sorted or unsorted, possibly
    /// duplicated) indices, preserving the relative order of the survivors.
    /// Returns the number of Gaussians removed.
    pub fn remove_indices(&mut self, indices: &[u32]) -> usize {
        if indices.is_empty() {
            return 0;
        }
        let mut remove = vec![false; self.len()];
        let mut count = 0;
        for &i in indices {
            let i = i as usize;
            if i < remove.len() && !remove[i] {
                remove[i] = true;
                count += 1;
            }
        }
        let mut keep_iter = remove.iter();
        self.positions.retain(|_| !*keep_iter.next().unwrap());
        let mut keep_iter = remove.iter();
        self.log_scales.retain(|_| !*keep_iter.next().unwrap());
        let mut keep_iter = remove.iter();
        self.rotations.retain(|_| !*keep_iter.next().unwrap());
        let mut keep_iter = remove.iter();
        self.opacity_logits.retain(|_| !*keep_iter.next().unwrap());
        let mut new_sh = Vec::with_capacity(self.sh.len() - count * SH_FLOATS);
        for (i, keep) in remove.iter().map(|r| !r).enumerate() {
            if keep {
                new_sh.extend_from_slice(&self.sh[i * SH_FLOATS..(i + 1) * SH_FLOATS]);
            }
        }
        self.sh = new_sh;
        count
    }

    /// World-space positions of all Gaussians.
    pub fn positions(&self) -> &[Vec3] {
        &self.positions
    }

    /// Mutable world-space positions.
    pub fn positions_mut(&mut self) -> &mut [Vec3] {
        &mut self.positions
    }

    /// Per-axis log-scales of all Gaussians.
    pub fn log_scales(&self) -> &[Vec3] {
        &self.log_scales
    }

    /// Mutable log-scales.
    pub fn log_scales_mut(&mut self) -> &mut [Vec3] {
        &mut self.log_scales
    }

    /// Rotation quaternions of all Gaussians.
    pub fn rotations(&self) -> &[Quat] {
        &self.rotations
    }

    /// Mutable rotation quaternions.
    pub fn rotations_mut(&mut self) -> &mut [Quat] {
        &mut self.rotations
    }

    /// Flat SH coefficient storage (`len() × 48` floats).
    pub fn sh(&self) -> &[f32] {
        &self.sh
    }

    /// Mutable flat SH coefficient storage.
    pub fn sh_mut(&mut self) -> &mut [f32] {
        &mut self.sh
    }

    /// SH coefficients of Gaussian `i` (48 floats).
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn sh_of(&self, i: usize) -> &[f32] {
        &self.sh[i * SH_FLOATS..(i + 1) * SH_FLOATS]
    }

    /// Opacity logits of all Gaussians.
    pub fn opacity_logits(&self) -> &[f32] {
        &self.opacity_logits
    }

    /// Mutable opacity logits.
    pub fn opacity_logits_mut(&mut self) -> &mut [f32] {
        &mut self.opacity_logits
    }

    /// Iterator over all Gaussians in array-of-structs form.
    pub fn iter(&self) -> impl Iterator<Item = Gaussian> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Axis-aligned bounding box of all Gaussian centres, or `None` for an
    /// empty model.
    pub fn bounding_box(&self) -> Option<(Vec3, Vec3)> {
        let first = *self.positions.first()?;
        let mut min = first;
        let mut max = first;
        for &p in &self.positions[1..] {
            min = min.min_elem(p);
            max = max.max_elem(p);
        }
        Some((min, max))
    }

    /// Packs the selection-critical attributes of Gaussian `i` into 10
    /// floats (`position ‖ log_scale ‖ rotation`), the layout CLM keeps
    /// resident on the GPU.
    pub fn selection_critical_row(&self, i: usize) -> [f32; SELECTION_CRITICAL_FLOATS] {
        let p = self.positions[i];
        let s = self.log_scales[i];
        let q = self.rotations[i];
        [p.x, p.y, p.z, s.x, s.y, s.z, q.w, q.x, q.y, q.z]
    }

    /// Packs the non-critical attributes of Gaussian `i` into 49 floats
    /// (`sh ‖ opacity`), the layout CLM offloads to pinned CPU memory.
    pub fn non_critical_row(&self, i: usize) -> [f32; NON_CRITICAL_FLOATS] {
        let mut row = [0.0f32; NON_CRITICAL_FLOATS];
        row[..SH_FLOATS].copy_from_slice(self.sh_of(i));
        row[SH_FLOATS] = self.opacity_logits[i];
        row
    }

    /// Writes a 49-float non-critical row back into Gaussian `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn set_non_critical_row(&mut self, i: usize, row: &[f32; NON_CRITICAL_FLOATS]) {
        self.sh[i * SH_FLOATS..(i + 1) * SH_FLOATS].copy_from_slice(&row[..SH_FLOATS]);
        self.opacity_logits[i] = row[SH_FLOATS];
    }

    /// Packs **all 59** learnable parameters of Gaussian `i` into one flat
    /// row: `position ‖ log_scale ‖ rotation(w,x,y,z) ‖ sh ‖ opacity`.
    ///
    /// This is the canonical layout the optimiser kernels operate on: one
    /// contiguous row per Gaussian lets the CPU Adam lane ship work between
    /// threads as plain memcpys.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn param_row(&self, i: usize) -> [f32; PARAMS_PER_GAUSSIAN] {
        let mut row = [0.0f32; PARAMS_PER_GAUSSIAN];
        self.read_param_row_into(i, &mut row);
        row
    }

    /// Writes the [`param_row`](Self::param_row) of Gaussian `i` into a
    /// caller-provided buffer, avoiding a return-value copy on staging
    /// paths that reuse one scratch row.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn read_param_row_into(&self, i: usize, row: &mut [f32; PARAMS_PER_GAUSSIAN]) {
        let p = self.positions[i];
        let s = self.log_scales[i];
        row[0..3].copy_from_slice(&p.to_array());
        row[3..6].copy_from_slice(&s.to_array());
        row[6..10].copy_from_slice(&self.rotations[i].to_array());
        row[10..10 + SH_FLOATS].copy_from_slice(self.sh_of(i));
        row[PARAMS_PER_GAUSSIAN - 1] = self.opacity_logits[i];
    }

    /// Writes a flat 59-float parameter row (the [`param_row`](Self::param_row)
    /// layout) back into Gaussian `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn set_param_row(&mut self, i: usize, row: &[f32; PARAMS_PER_GAUSSIAN]) {
        self.positions[i] = Vec3::new(row[0], row[1], row[2]);
        self.log_scales[i] = Vec3::new(row[3], row[4], row[5]);
        self.rotations[i] = Quat::from([row[6], row[7], row[8], row[9]]);
        self.sh[i * SH_FLOATS..(i + 1) * SH_FLOATS].copy_from_slice(&row[10..10 + SH_FLOATS]);
        self.opacity_logits[i] = row[PARAMS_PER_GAUSSIAN - 1];
    }
}

impl FromIterator<Gaussian> for GaussianModel {
    fn from_iter<T: IntoIterator<Item = Gaussian>>(iter: T) -> Self {
        let mut model = GaussianModel::new();
        for g in iter {
            model.push(g);
        }
        model
    }
}

impl Extend<Gaussian> for GaussianModel {
    fn extend<T: IntoIterator<Item = Gaussian>>(&mut self, iter: T) {
        for g in iter {
            self.push(g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_layout_matches_table1() {
        let total: usize = AttributeKind::ALL.iter().map(|a| a.float_count()).sum();
        assert_eq!(total, PARAMS_PER_GAUSSIAN);
        assert_eq!(AttributeKind::Position.float_count(), 3);
        assert_eq!(AttributeKind::Covariance.float_count(), 7);
        assert_eq!(AttributeKind::SphericalHarmonics.float_count(), 48);
        assert_eq!(AttributeKind::Opacity.float_count(), 1);
        let critical: usize = AttributeKind::ALL
            .iter()
            .filter(|a| a.is_selection_critical())
            .map(|a| a.float_count())
            .sum();
        assert_eq!(critical, SELECTION_CRITICAL_FLOATS);
        assert_eq!(PARAMS_PER_GAUSSIAN - critical, NON_CRITICAL_FLOATS);
        // The paper notes selection-critical attributes are < 20% of a
        // Gaussian's footprint (10 / 59).
        assert!((critical as f64) / (PARAMS_PER_GAUSSIAN as f64) < 0.20);
    }

    #[test]
    fn push_get_round_trip() {
        let mut model = GaussianModel::new();
        let g = Gaussian::isotropic(Vec3::new(1.0, 2.0, 3.0), 0.25, [0.1, 0.5, 0.9], 0.7);
        let idx = model.push(g.clone());
        assert_eq!(idx, 0);
        assert_eq!(model.get(0), g);
        assert_eq!(model.len(), 1);
        assert!(!model.is_empty());
    }

    #[test]
    fn set_overwrites_in_place() {
        let mut model = GaussianModel::new();
        model.push(Gaussian::default());
        model.push(Gaussian::default());
        let g = Gaussian::isotropic(Vec3::X, 1.0, [1.0, 1.0, 1.0], 0.5);
        model.set(1, g.clone());
        assert_eq!(model.get(0), Gaussian::default());
        assert_eq!(model.get(1), g);
    }

    #[test]
    fn isotropic_accessors() {
        let g = Gaussian::isotropic(Vec3::ZERO, 0.5, [0.2, 0.4, 0.6], 0.75);
        let s = g.scale();
        assert!((s.x - 0.5).abs() < 1e-6);
        assert!((g.opacity() - 0.75).abs() < 1e-5);
        assert!((g.bounding_radius(3.0) - 1.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn isotropic_rejects_nonpositive_sigma() {
        let _ = Gaussian::isotropic(Vec3::ZERO, 0.0, [0.0; 3], 0.5);
    }

    #[test]
    fn covariance_of_isotropic_is_diagonal() {
        let g = Gaussian::isotropic(Vec3::ZERO, 2.0, [0.0; 3], 0.5);
        let cov = g.covariance();
        for r in 0..3 {
            for c in 0..3 {
                let expected = if r == c { 4.0 } else { 0.0 };
                assert!((cov.m[r][c] - expected).abs() < 1e-4, "cov {cov:?}");
            }
        }
    }

    #[test]
    fn covariance_rotation_invariance_of_isotropic() {
        let mut g = Gaussian::isotropic(Vec3::ZERO, 1.5, [0.0; 3], 0.5);
        g.rotation = Quat::from_axis_angle(Vec3::new(1.0, 2.0, 0.5), 1.1);
        let cov = g.covariance();
        for r in 0..3 {
            for c in 0..3 {
                let expected = if r == c { 2.25 } else { 0.0 };
                assert!((cov.m[r][c] - expected).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn split_rows_cover_all_parameters() {
        let mut model = GaussianModel::new();
        let mut g = Gaussian::isotropic(Vec3::new(1.0, -2.0, 3.0), 0.3, [0.9, 0.1, 0.4], 0.6);
        for (i, c) in g.sh.iter_mut().enumerate() {
            *c = i as f32 * 0.01;
        }
        model.push(g);
        let critical = model.selection_critical_row(0);
        let non_critical = model.non_critical_row(0);
        assert_eq!(critical.len() + non_critical.len(), PARAMS_PER_GAUSSIAN);
        assert_eq!(critical[0], 1.0);
        assert_eq!(critical[1], -2.0);
        assert_eq!(non_critical[SH_FLOATS], model.opacity_logits()[0]);
    }

    #[test]
    fn non_critical_row_round_trip() {
        let mut model = GaussianModel::new();
        model.push(Gaussian::default());
        let mut row = [0.0f32; NON_CRITICAL_FLOATS];
        for (i, v) in row.iter_mut().enumerate() {
            *v = i as f32;
        }
        model.set_non_critical_row(0, &row);
        assert_eq!(model.non_critical_row(0), row);
    }

    #[test]
    fn param_row_round_trip_and_layout() {
        let mut model = GaussianModel::new();
        let mut g = Gaussian::isotropic(Vec3::new(1.0, -2.0, 3.0), 0.3, [0.9, 0.1, 0.4], 0.6);
        g.rotation = Quat::from_axis_angle(Vec3::new(0.2, 1.0, -0.5), 0.7);
        for (i, c) in g.sh.iter_mut().enumerate() {
            *c = 0.01 * i as f32 - 0.2;
        }
        model.push(g);
        model.push(Gaussian::default());

        let row = model.param_row(0);
        // Layout: position ‖ log_scale ‖ rotation ‖ sh ‖ opacity, matching
        // the selection-critical/non-critical split end to end.
        assert_eq!(
            &row[..SELECTION_CRITICAL_FLOATS],
            &model.selection_critical_row(0)[..]
        );
        assert_eq!(
            &row[SELECTION_CRITICAL_FLOATS..],
            &model.non_critical_row(0)[..]
        );

        model.set_param_row(1, &row);
        assert_eq!(model.get(1), model.get(0));
    }

    #[test]
    fn remove_indices_keeps_survivors_in_order() {
        let mut model = GaussianModel::new();
        for i in 0..5 {
            model.push(Gaussian::isotropic(
                Vec3::new(i as f32, 0.0, 0.0),
                0.1,
                [0.0; 3],
                0.5,
            ));
        }
        let removed = model.remove_indices(&[1, 3, 3]);
        assert_eq!(removed, 2);
        assert_eq!(model.len(), 3);
        assert_eq!(model.positions()[0].x, 0.0);
        assert_eq!(model.positions()[1].x, 2.0);
        assert_eq!(model.positions()[2].x, 4.0);
        // SH storage stays consistent.
        assert_eq!(model.sh().len(), 3 * SH_FLOATS);
    }

    #[test]
    fn remove_indices_ignores_out_of_range() {
        let mut model = GaussianModel::new();
        model.push(Gaussian::default());
        assert_eq!(model.remove_indices(&[5]), 0);
        assert_eq!(model.len(), 1);
    }

    #[test]
    fn memory_accounting() {
        let mut model = GaussianModel::new();
        for _ in 0..100 {
            model.push(Gaussian::default());
        }
        assert_eq!(model.parameter_count(), 5900);
        assert_eq!(model.parameter_bytes(), 5900 * 4);
        assert_eq!(model.training_state_bytes(), 100 * 944);
    }

    #[test]
    fn bounding_box() {
        let mut model = GaussianModel::new();
        assert!(model.bounding_box().is_none());
        model.push(Gaussian::isotropic(
            Vec3::new(-1.0, 2.0, 0.0),
            0.1,
            [0.0; 3],
            0.5,
        ));
        model.push(Gaussian::isotropic(
            Vec3::new(3.0, -4.0, 5.0),
            0.1,
            [0.0; 3],
            0.5,
        ));
        let (min, max) = model.bounding_box().unwrap();
        assert_eq!(min, Vec3::new(-1.0, -4.0, 0.0));
        assert_eq!(max, Vec3::new(3.0, 2.0, 5.0));
    }

    #[test]
    fn from_iterator_collects() {
        let model: GaussianModel = (0..4)
            .map(|i| Gaussian::isotropic(Vec3::new(i as f32, 0.0, 0.0), 0.1, [0.0; 3], 0.5))
            .collect();
        assert_eq!(model.len(), 4);
    }
}
