//! Pinhole cameras, poses and view frusta.
//!
//! Each training image in a 3DGS dataset is a *posed image*: an RGB image
//! plus the intrinsics and extrinsics of the camera that captured it.  The
//! view frustum derived from the pose is what drives frustum culling and
//! therefore CLM's sparsity analysis.

use crate::math::{Mat3, Vec3};

/// Pinhole camera intrinsics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CameraIntrinsics {
    /// Focal length in pixels along x.
    pub fx: f32,
    /// Focal length in pixels along y.
    pub fy: f32,
    /// Principal point x (pixels).
    pub cx: f32,
    /// Principal point y (pixels).
    pub cy: f32,
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
}

impl CameraIntrinsics {
    /// Builds intrinsics for a `width × height` image with the given
    /// horizontal field of view (radians) and a centred principal point.
    ///
    /// # Panics
    /// Panics if `width` or `height` is zero or `fov_x` is not in `(0, π)`.
    pub fn simple(width: u32, height: u32, fov_x: f32) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        assert!(
            fov_x > 0.0 && fov_x < std::f32::consts::PI,
            "fov_x must be in (0, pi), got {fov_x}"
        );
        let fx = width as f32 / (2.0 * (fov_x / 2.0).tan());
        CameraIntrinsics {
            fx,
            fy: fx,
            cx: width as f32 / 2.0,
            cy: height as f32 / 2.0,
            width,
            height,
        }
    }

    /// Total number of pixels.
    pub fn pixel_count(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Horizontal field of view in radians.
    pub fn fov_x(&self) -> f32 {
        2.0 * (self.width as f32 / (2.0 * self.fx)).atan()
    }

    /// Vertical field of view in radians.
    pub fn fov_y(&self) -> f32 {
        2.0 * (self.height as f32 / (2.0 * self.fy)).atan()
    }

    /// Returns a copy scaled by `factor` (e.g. 0.5 halves the resolution),
    /// keeping the field of view constant.
    ///
    /// # Panics
    /// Panics if `factor` is not strictly positive or would produce a
    /// zero-sized image.
    pub fn scaled(&self, factor: f32) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        let width = ((self.width as f32 * factor).round() as u32).max(1);
        let height = ((self.height as f32 * factor).round() as u32).max(1);
        CameraIntrinsics {
            fx: self.fx * factor,
            fy: self.fy * factor,
            cx: self.cx * factor,
            cy: self.cy * factor,
            width,
            height,
        }
    }
}

/// Rigid camera pose: world-to-camera rotation and translation.
///
/// A world point `p` maps to camera space as `R · p + t`; the camera looks
/// down its local +Z axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CameraExtrinsics {
    /// World-to-camera rotation.
    pub rotation: Mat3,
    /// World-to-camera translation.
    pub translation: Vec3,
}

impl Default for CameraExtrinsics {
    fn default() -> Self {
        CameraExtrinsics {
            rotation: Mat3::identity(),
            translation: Vec3::ZERO,
        }
    }
}

impl CameraExtrinsics {
    /// Builds a pose from a camera position and a look-at target.
    ///
    /// `up` is the approximate world up direction and must not be parallel
    /// to the viewing direction.
    ///
    /// # Panics
    /// Panics if `eye == target` or `up` is parallel to the view direction.
    pub fn look_at(eye: Vec3, target: Vec3, up: Vec3) -> Self {
        let forward = (target - eye).normalized();
        assert!(forward.length() > 0.0, "eye and target must differ");
        let right = forward.cross(up.normalized()).normalized();
        assert!(
            right.length() > 0.0,
            "up direction must not be parallel to the view direction"
        );
        let down = forward.cross(right); // camera +Y points "down" in image space
        let rotation = Mat3::from_rows(right, down, forward);
        let translation = -(rotation * eye);
        CameraExtrinsics {
            rotation,
            translation,
        }
    }

    /// Transforms a world-space point into camera space.
    pub fn world_to_camera(&self, p: Vec3) -> Vec3 {
        self.rotation * p + self.translation
    }

    /// The camera centre in world coordinates (`-Rᵀ t`).
    pub fn camera_center(&self) -> Vec3 {
        -(self.rotation.transpose() * self.translation)
    }

    /// The world-space viewing direction (camera +Z axis).
    pub fn view_direction(&self) -> Vec3 {
        self.rotation.transpose() * Vec3::Z
    }
}

/// A plane in Hessian normal form: points `p` with `n·p + d >= 0` are on the
/// "inside" of the plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plane {
    /// Unit normal pointing towards the inside half-space.
    pub normal: Vec3,
    /// Signed offset.
    pub d: f32,
}

impl Plane {
    /// Creates a plane from a (not necessarily unit) normal and offset,
    /// normalising both.
    pub fn new(normal: Vec3, d: f32) -> Self {
        let len = normal.length();
        if len > 0.0 {
            Plane {
                normal: normal / len,
                d: d / len,
            }
        } else {
            Plane { normal: Vec3::Z, d }
        }
    }

    /// Signed distance from `p` to the plane (positive = inside).
    pub fn signed_distance(&self, p: Vec3) -> f32 {
        self.normal.dot(p) + self.d
    }
}

/// A camera view frustum described by five planes (left, right, top, bottom,
/// near) plus a far plane, all pointing inwards.
#[derive(Debug, Clone, PartialEq)]
pub struct Frustum {
    planes: [Plane; 6],
}

impl Frustum {
    /// Number of planes.
    pub const PLANE_COUNT: usize = 6;

    /// Builds the frustum of `camera` in world space.
    pub fn from_camera(camera: &Camera) -> Self {
        camera.frustum()
    }

    /// Creates a frustum from explicit planes.
    pub fn from_planes(planes: [Plane; 6]) -> Self {
        Frustum { planes }
    }

    /// The frustum planes.
    pub fn planes(&self) -> &[Plane; 6] {
        &self.planes
    }

    /// Whether a sphere of radius `radius` centred at `center` intersects
    /// the frustum (conservative sphere-plane test, as used for 3σ culling).
    pub fn intersects_sphere(&self, center: Vec3, radius: f32) -> bool {
        self.planes
            .iter()
            .all(|plane| plane.signed_distance(center) >= -radius)
    }

    /// Whether a point lies inside the frustum.
    pub fn contains_point(&self, p: Vec3) -> bool {
        self.intersects_sphere(p, 0.0)
    }
}

/// A fully posed pinhole camera: intrinsics + extrinsics + clip range.
#[derive(Debug, Clone, PartialEq)]
pub struct Camera {
    /// Pinhole intrinsics.
    pub intrinsics: CameraIntrinsics,
    /// World-to-camera pose.
    pub extrinsics: CameraExtrinsics,
    /// Near clipping distance (camera-space z).
    pub near: f32,
    /// Far clipping distance (camera-space z).
    pub far: f32,
}

impl Camera {
    /// Default near plane distance.
    pub const DEFAULT_NEAR: f32 = 0.05;
    /// Default far plane distance.
    pub const DEFAULT_FAR: f32 = 1.0e4;

    /// Creates a camera from intrinsics and extrinsics with default clip
    /// distances.
    pub fn new(intrinsics: CameraIntrinsics, extrinsics: CameraExtrinsics) -> Self {
        Camera {
            intrinsics,
            extrinsics,
            near: Self::DEFAULT_NEAR,
            far: Self::DEFAULT_FAR,
        }
    }

    /// Convenience constructor: a camera at `eye` looking at `target`.
    pub fn look_at(eye: Vec3, target: Vec3, up: Vec3, intrinsics: CameraIntrinsics) -> Self {
        Camera::new(intrinsics, CameraExtrinsics::look_at(eye, target, up))
    }

    /// Returns a copy with the given clip distances.
    ///
    /// # Panics
    /// Panics unless `0 < near < far`.
    pub fn with_clip(mut self, near: f32, far: f32) -> Self {
        assert!(near > 0.0 && far > near, "require 0 < near < far");
        self.near = near;
        self.far = far;
        self
    }

    /// The camera centre in world space.
    pub fn center(&self) -> Vec3 {
        self.extrinsics.camera_center()
    }

    /// Transforms a world point to camera space.
    pub fn world_to_camera(&self, p: Vec3) -> Vec3 {
        self.extrinsics.world_to_camera(p)
    }

    /// Projects a camera-space point to pixel coordinates.  Returns `None`
    /// when the point is behind (or extremely close to) the camera.
    pub fn project_camera_space(&self, p_cam: Vec3) -> Option<(f32, f32)> {
        if p_cam.z < 1e-6 {
            return None;
        }
        let x = self.intrinsics.fx * p_cam.x / p_cam.z + self.intrinsics.cx;
        let y = self.intrinsics.fy * p_cam.y / p_cam.z + self.intrinsics.cy;
        Some((x, y))
    }

    /// Projects a world point to pixel coordinates, if it is in front of the
    /// camera.
    pub fn project(&self, p_world: Vec3) -> Option<(f32, f32)> {
        self.project_camera_space(self.world_to_camera(p_world))
    }

    /// Builds the world-space view frustum.
    ///
    /// The four side planes are derived from the field of view; near and far
    /// planes from the clip range.
    pub fn frustum(&self) -> Frustum {
        self.frustum_with_margin(1.0)
    }

    /// Builds a view frustum whose field of view is widened by `margin`
    /// (e.g. `1.15` = 15% wider) and whose clip range is relaxed by the same
    /// factor.  Frustum *culling* uses a widened frustum so that splats whose
    /// screen-space footprint is slightly inflated by the rasteriser's
    /// low-pass filter are never culled away — the same conservative margin
    /// the reference CUDA implementation applies.
    ///
    /// # Panics
    /// Panics if `margin < 1.0` or the widened field of view would reach π.
    pub fn frustum_with_margin(&self, margin: f32) -> Frustum {
        assert!(margin >= 1.0, "culling margin must be >= 1.0, got {margin}");
        let r = &self.extrinsics.rotation;
        let cam_x = r.transpose() * Vec3::X; // world-space camera right
        let cam_y = r.transpose() * Vec3::Y; // world-space camera down
        let cam_z = r.transpose() * Vec3::Z; // world-space viewing direction
        let center = self.center();

        let half_fov_x =
            (self.intrinsics.fov_x() * 0.5 * margin).min(std::f32::consts::FRAC_PI_2 - 1e-3);
        let half_fov_y =
            (self.intrinsics.fov_y() * 0.5 * margin).min(std::f32::consts::FRAC_PI_2 - 1e-3);
        let (sx, cx) = half_fov_x.sin_cos();
        let (sy, cy) = half_fov_y.sin_cos();

        // Side plane normals in world space (pointing inwards).
        let left_n = cam_z * sx + cam_x * cx;
        let right_n = cam_z * sx - cam_x * cx;
        let top_n = cam_z * sy + cam_y * cy;
        let bottom_n = cam_z * sy - cam_y * cy;

        let plane_through_center =
            |n: Vec3| -> Plane { Plane::new(n, -n.normalized().dot(center)) };

        let near_point = center + cam_z * (self.near / margin);
        let far_point = center + cam_z * (self.far * margin);
        let planes = [
            plane_through_center(left_n),
            plane_through_center(right_n),
            plane_through_center(top_n),
            plane_through_center(bottom_n),
            Plane::new(cam_z, -cam_z.dot(near_point)),
            Plane::new(-cam_z, cam_z.dot(far_point)),
        ];
        Frustum::from_planes(planes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn test_intrinsics() -> CameraIntrinsics {
        CameraIntrinsics::simple(128, 96, 60.0_f32.to_radians())
    }

    #[test]
    fn simple_intrinsics_fov_round_trip() {
        let intr = test_intrinsics();
        assert!((intr.fov_x() - 60.0_f32.to_radians()).abs() < 1e-5);
        assert_eq!(intr.pixel_count(), 128 * 96);
        assert_eq!(intr.cx, 64.0);
    }

    #[test]
    fn scaled_intrinsics_preserve_fov() {
        let intr = test_intrinsics();
        let half = intr.scaled(0.5);
        assert_eq!(half.width, 64);
        assert_eq!(half.height, 48);
        assert!((half.fov_x() - intr.fov_x()).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "must be non-zero")]
    fn zero_size_intrinsics_panic() {
        let _ = CameraIntrinsics::simple(0, 10, 1.0);
    }

    #[test]
    fn look_at_camera_center_is_eye() {
        let eye = Vec3::new(3.0, -2.0, 7.0);
        let ext = CameraExtrinsics::look_at(eye, Vec3::ZERO, Vec3::Y);
        assert!((ext.camera_center() - eye).length() < 1e-4);
        assert!(ext.rotation.is_rotation(1e-4));
    }

    #[test]
    fn look_at_target_projects_to_principal_point() {
        let cam = Camera::look_at(
            Vec3::new(0.0, 0.0, -5.0),
            Vec3::ZERO,
            Vec3::Y,
            test_intrinsics(),
        );
        let (x, y) = cam.project(Vec3::ZERO).expect("target in front of camera");
        assert!((x - cam.intrinsics.cx).abs() < 1e-3);
        assert!((y - cam.intrinsics.cy).abs() < 1e-3);
    }

    #[test]
    fn point_behind_camera_does_not_project() {
        let cam = Camera::look_at(
            Vec3::new(0.0, 0.0, -5.0),
            Vec3::ZERO,
            Vec3::Y,
            test_intrinsics(),
        );
        assert!(cam.project(Vec3::new(0.0, 0.0, -10.0)).is_none());
    }

    #[test]
    fn view_direction_points_at_target() {
        let eye = Vec3::new(1.0, 2.0, 3.0);
        let target = Vec3::new(-4.0, 0.0, 8.0);
        let ext = CameraExtrinsics::look_at(eye, target, Vec3::Y);
        let dir = ext.view_direction();
        let expected = (target - eye).normalized();
        assert!((dir - expected).length() < 1e-4);
    }

    #[test]
    fn frustum_contains_look_at_target() {
        let cam = Camera::look_at(
            Vec3::new(0.0, 1.0, -6.0),
            Vec3::ZERO,
            Vec3::Y,
            test_intrinsics(),
        );
        let frustum = cam.frustum();
        assert!(frustum.contains_point(Vec3::ZERO));
        // A point behind the camera is outside.
        assert!(!frustum.contains_point(Vec3::new(0.0, 1.0, -20.0)));
        // A point far off to the side is outside.
        assert!(!frustum.contains_point(Vec3::new(100.0, 0.0, 0.0)));
    }

    #[test]
    fn frustum_sphere_test_is_conservative_near_edges() {
        let cam = Camera::look_at(
            Vec3::new(0.0, 0.0, -5.0),
            Vec3::ZERO,
            Vec3::Y,
            test_intrinsics(),
        );
        let frustum = cam.frustum();
        // A point just outside the left edge with a generous radius should
        // still intersect.
        let outside = Vec3::new(-4.0, 0.0, 0.0);
        assert!(!frustum.contains_point(outside));
        assert!(frustum.intersects_sphere(outside, 2.0));
    }

    #[test]
    fn near_plane_culls_points_too_close() {
        let cam = Camera::look_at(
            Vec3::new(0.0, 0.0, -5.0),
            Vec3::ZERO,
            Vec3::Y,
            test_intrinsics(),
        )
        .with_clip(1.0, 100.0);
        let frustum = cam.frustum();
        // 0.5 units in front of the camera but within the near distance.
        assert!(!frustum.contains_point(Vec3::new(0.0, 0.0, -4.7)));
        assert!(frustum.contains_point(Vec3::new(0.0, 0.0, -3.0)));
    }

    #[test]
    fn far_plane_culls_distant_points() {
        let cam =
            Camera::look_at(Vec3::ZERO, Vec3::Z, Vec3::Y, test_intrinsics()).with_clip(0.1, 50.0);
        let frustum = cam.frustum();
        assert!(frustum.contains_point(Vec3::new(0.0, 0.0, 40.0)));
        assert!(!frustum.contains_point(Vec3::new(0.0, 0.0, 60.0)));
    }

    #[test]
    #[should_panic(expected = "0 < near < far")]
    fn invalid_clip_panics() {
        let _ =
            Camera::look_at(Vec3::ZERO, Vec3::Z, Vec3::Y, test_intrinsics()).with_clip(5.0, 1.0);
    }

    proptest! {
        #[test]
        fn prop_projected_points_inside_frustum_land_in_image(
            px in -20.0f32..20.0, py in -20.0f32..20.0, pz in 1.0f32..80.0
        ) {
            let cam = Camera::look_at(Vec3::ZERO, Vec3::Z, Vec3::Y, test_intrinsics())
                .with_clip(0.1, 100.0);
            let p = Vec3::new(px, py, pz);
            if cam.frustum().contains_point(p) {
                let (x, y) = cam.project(p).expect("in-frustum point must project");
                prop_assert!(x >= -1.0 && x <= cam.intrinsics.width as f32 + 1.0);
                prop_assert!(y >= -1.0 && y <= cam.intrinsics.height as f32 + 1.0);
            }
        }

        #[test]
        fn prop_camera_center_round_trip(ex in -50.0f32..50.0, ey in -50.0f32..50.0,
                                         ez in -50.0f32..50.0) {
            let eye = Vec3::new(ex, ey, ez);
            let target = Vec3::new(0.0, 0.0, 100.0);
            prop_assume!((target - eye).length() > 1e-3);
            let ext = CameraExtrinsics::look_at(eye, target, Vec3::Y);
            prop_assert!((ext.camera_center() - eye).length() < 1e-2);
        }
    }
}
