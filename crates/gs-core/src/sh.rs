//! Spherical-harmonics (SH) colour evaluation for 3D Gaussian Splatting.
//!
//! Each Gaussian stores 16 SH coefficients per colour channel (degree 3),
//! i.e. 48 floats, which are evaluated along the camera→Gaussian viewing
//! direction to produce a view-dependent RGB colour.  The constants match
//! the reference 3DGS / gsplat implementations.

use crate::math::Vec3;

/// Number of SH coefficients per colour channel at degree 3 (`(3+1)² = 16`).
pub const NUM_SH_COEFFS: usize = 16;

/// Maximum supported SH degree.
pub const MAX_SH_DEGREE: usize = 3;

// Real SH basis constants (same values as the reference CUDA implementation).
const SH_C0: f32 = 0.282_094_79;
const SH_C1: f32 = 0.488_602_51;
const SH_C2: [f32; 5] = [
    1.092_548_4,
    -1.092_548_4,
    0.315_391_57,
    -1.092_548_4,
    0.546_274_2,
];
const SH_C3: [f32; 7] = [
    -0.590_043_6,
    2.890_611_4,
    -0.457_045_8,
    0.373_176_33,
    -0.457_045_8,
    1.445_305_7,
    -0.590_043_6,
];

/// Evaluates the real SH basis functions for `degree` in direction `dir`
/// (which is normalised internally), writing the first
/// `(degree+1)²` values of `basis`.
///
/// # Panics
/// Panics if `degree > 3`.
pub fn sh_basis(degree: usize, dir: Vec3, basis: &mut [f32; NUM_SH_COEFFS]) {
    assert!(
        degree <= MAX_SH_DEGREE,
        "SH degree {degree} not supported (max 3)"
    );
    let d = dir.normalized();
    let (x, y, z) = (d.x, d.y, d.z);
    basis.fill(0.0);
    basis[0] = SH_C0;
    if degree >= 1 {
        basis[1] = -SH_C1 * y;
        basis[2] = SH_C1 * z;
        basis[3] = -SH_C1 * x;
    }
    if degree >= 2 {
        let (xx, yy, zz) = (x * x, y * y, z * z);
        let (xy, yz, xz) = (x * y, y * z, x * z);
        basis[4] = SH_C2[0] * xy;
        basis[5] = SH_C2[1] * yz;
        basis[6] = SH_C2[2] * (2.0 * zz - xx - yy);
        basis[7] = SH_C2[3] * xz;
        basis[8] = SH_C2[4] * (xx - yy);
    }
    if degree >= 3 {
        let (xx, yy, zz) = (x * x, y * y, z * z);
        basis[9] = SH_C3[0] * y * (3.0 * xx - yy);
        basis[10] = SH_C3[1] * x * y * z;
        basis[11] = SH_C3[2] * y * (4.0 * zz - xx - yy);
        basis[12] = SH_C3[3] * z * (2.0 * zz - 3.0 * xx - 3.0 * yy);
        basis[13] = SH_C3[4] * x * (4.0 * zz - xx - yy);
        basis[14] = SH_C3[5] * z * (xx - yy);
        basis[15] = SH_C3[6] * x * (xx - 3.0 * yy);
    }
}

/// Evaluates an RGB colour from 48 SH coefficients (16 per channel, stored
/// channel-major: `[r0..r15, g0..g15, b0..b15]`) in view direction `dir`.
///
/// Following the reference implementation a `+0.5` offset is applied and the
/// result clamped to be non-negative.
pub fn eval_sh_color(degree: usize, coeffs: &[f32], dir: Vec3) -> [f32; 3] {
    assert!(
        coeffs.len() >= 3 * NUM_SH_COEFFS,
        "expected {} SH floats, got {}",
        3 * NUM_SH_COEFFS,
        coeffs.len()
    );
    let mut basis = [0.0f32; NUM_SH_COEFFS];
    sh_basis(degree, dir, &mut basis);
    let mut rgb = [0.0f32; 3];
    for (channel, value) in rgb.iter_mut().enumerate() {
        let offset = channel * NUM_SH_COEFFS;
        let mut acc = 0.0;
        for i in 0..NUM_SH_COEFFS {
            acc += basis[i] * coeffs[offset + i];
        }
        *value = (acc + 0.5).max(0.0);
    }
    rgb
}

/// Gradient of [`eval_sh_color`] with respect to the SH coefficients.
///
/// Given `d_rgb` (the upstream gradient of the colour), accumulates
/// `d_color/d_coeff` into `d_coeffs` (48 floats, channel-major).  The
/// gradient of a clamped-to-zero channel is zero, matching the forward
/// `max(·, 0)`.
pub fn eval_sh_color_backward(
    degree: usize,
    coeffs: &[f32],
    dir: Vec3,
    d_rgb: [f32; 3],
    d_coeffs: &mut [f32],
) {
    assert!(d_coeffs.len() >= 3 * NUM_SH_COEFFS);
    let mut basis = [0.0f32; NUM_SH_COEFFS];
    sh_basis(degree, dir, &mut basis);
    for channel in 0..3 {
        let offset = channel * NUM_SH_COEFFS;
        // Recompute the pre-clamp value to honour the ReLU-like clamp.
        let mut acc = 0.0;
        for i in 0..NUM_SH_COEFFS {
            acc += basis[i] * coeffs[offset + i];
        }
        if acc + 0.5 <= 0.0 {
            continue;
        }
        for i in 0..NUM_SH_COEFFS {
            d_coeffs[offset + i] += basis[i] * d_rgb[channel];
        }
    }
}

/// Converts a plain RGB colour in `[0, 1]` to the DC (degree-0) SH
/// coefficient that reproduces it, leaving higher-order terms zero.
pub fn rgb_to_sh_dc(rgb: [f32; 3]) -> [f32; 3] {
    [
        (rgb[0] - 0.5) / SH_C0,
        (rgb[1] - 0.5) / SH_C0,
        (rgb[2] - 0.5) / SH_C0,
    ]
}

/// Fills a 48-float SH coefficient block so that the Gaussian renders as the
/// constant colour `rgb` from every direction.
pub fn constant_color_coeffs(rgb: [f32; 3]) -> [f32; 3 * NUM_SH_COEFFS] {
    let dc = rgb_to_sh_dc(rgb);
    let mut coeffs = [0.0f32; 3 * NUM_SH_COEFFS];
    coeffs[0] = dc[0];
    coeffs[NUM_SH_COEFFS] = dc[1];
    coeffs[2 * NUM_SH_COEFFS] = dc[2];
    coeffs
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn degree0_basis_is_constant() {
        let mut a = [0.0; NUM_SH_COEFFS];
        let mut b = [0.0; NUM_SH_COEFFS];
        sh_basis(0, Vec3::new(1.0, 2.0, -3.0), &mut a);
        sh_basis(0, Vec3::new(-0.2, 0.9, 0.1), &mut b);
        assert_eq!(a, b);
        assert!((a[0] - SH_C0).abs() < 1e-7);
        assert!(a[1..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn constant_color_round_trips_from_any_direction() {
        let rgb = [0.25, 0.6, 0.9];
        let coeffs = constant_color_coeffs(rgb);
        for dir in [Vec3::X, Vec3::Y, Vec3::Z, Vec3::new(0.3, -0.7, 0.2)] {
            let out = eval_sh_color(3, &coeffs, dir);
            for c in 0..3 {
                assert!((out[c] - rgb[c]).abs() < 1e-5, "{out:?} vs {rgb:?}");
            }
        }
    }

    #[test]
    fn higher_degree_adds_view_dependence() {
        let mut coeffs = constant_color_coeffs([0.5, 0.5, 0.5]);
        // Add a degree-1 term on the red channel.
        coeffs[2] = 0.8;
        let a = eval_sh_color(3, &coeffs, Vec3::Z);
        let b = eval_sh_color(3, &coeffs, -Vec3::Z);
        assert!(
            (a[0] - b[0]).abs() > 0.1,
            "expected view dependence, got {a:?} vs {b:?}"
        );
        // Green / blue channels unchanged.
        assert!((a[1] - b[1]).abs() < 1e-6);
        assert!((a[2] - b[2]).abs() < 1e-6);
    }

    #[test]
    fn color_is_clamped_non_negative() {
        let coeffs = constant_color_coeffs([-10.0, 0.5, 0.5]);
        let out = eval_sh_color(3, &coeffs, Vec3::X);
        assert_eq!(out[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn degree_above_three_panics() {
        let mut basis = [0.0; NUM_SH_COEFFS];
        sh_basis(4, Vec3::X, &mut basis);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut coeffs = [0.0f32; 3 * NUM_SH_COEFFS];
        for (i, c) in coeffs.iter_mut().enumerate() {
            *c = (i as f32 * 0.37).sin() * 0.2;
        }
        let dir = Vec3::new(0.4, -0.3, 0.85);
        let d_rgb = [1.0, 0.5, -0.25];
        let mut analytic = [0.0f32; 3 * NUM_SH_COEFFS];
        eval_sh_color_backward(3, &coeffs, dir, d_rgb, &mut analytic);

        let eps = 1e-3;
        for idx in [0, 5, 17, 20, 33, 47] {
            let mut plus = coeffs;
            plus[idx] += eps;
            let mut minus = coeffs;
            minus[idx] -= eps;
            let cp = eval_sh_color(3, &plus, dir);
            let cm = eval_sh_color(3, &minus, dir);
            let mut fd = 0.0;
            for c in 0..3 {
                fd += d_rgb[c] * (cp[c] - cm[c]) / (2.0 * eps);
            }
            assert!(
                (fd - analytic[idx]).abs() < 1e-2,
                "coeff {idx}: fd {fd} vs analytic {}",
                analytic[idx]
            );
        }
    }

    proptest! {
        #[test]
        fn prop_eval_color_finite(seed in 0u64..1000, dx in -1.0f32..1.0,
                                  dy in -1.0f32..1.0, dz in -1.0f32..1.0) {
            prop_assume!(dx * dx + dy * dy + dz * dz > 1e-4);
            let mut coeffs = [0.0f32; 3 * NUM_SH_COEFFS];
            for (i, c) in coeffs.iter_mut().enumerate() {
                *c = ((seed as f32) * 0.01 + i as f32 * 0.13).sin();
            }
            let rgb = eval_sh_color(3, &coeffs, Vec3::new(dx, dy, dz));
            prop_assert!(rgb.iter().all(|v| v.is_finite() && *v >= 0.0));
        }
    }
}
