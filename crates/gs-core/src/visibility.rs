//! Visibility sets: which Gaussians a view touches.
//!
//! CLM's offloading decisions are all expressed in terms of the per-view
//! visibility set `S_i` produced by frustum culling.  [`VisibilitySet`]
//! stores the indices as a sorted, deduplicated `Vec<u32>`, which makes the
//! set-algebra CLM needs (intersection size for Gaussian caching, symmetric
//! difference for the TSP distance, unions for finalisation analysis) cheap
//! linear merges.

use std::fmt;

/// A sorted, deduplicated set of Gaussian indices visible from one view.
///
/// ```
/// use gs_core::VisibilitySet;
/// let a = VisibilitySet::from_unsorted(vec![3, 1, 2, 3]);
/// let b = VisibilitySet::from_unsorted(vec![2, 3, 4]);
/// assert_eq!(a.len(), 3);
/// assert_eq!(a.intersection_len(&b), 2);
/// assert_eq!(a.symmetric_difference_len(&b), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct VisibilitySet {
    indices: Vec<u32>,
}

impl VisibilitySet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a set from indices that are already sorted and deduplicated.
    ///
    /// # Panics
    /// Panics in debug builds if the input is not strictly increasing.
    pub fn from_sorted(indices: Vec<u32>) -> Self {
        debug_assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "indices must be strictly increasing"
        );
        VisibilitySet { indices }
    }

    /// Creates a set from arbitrary indices, sorting and deduplicating.
    pub fn from_unsorted(mut indices: Vec<u32>) -> Self {
        indices.sort_unstable();
        indices.dedup();
        VisibilitySet { indices }
    }

    /// Number of Gaussians in the set.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The sorted indices.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Consumes the set, returning the sorted index vector.
    pub fn into_indices(self) -> Vec<u32> {
        self.indices
    }

    /// Whether the set contains `index`.
    pub fn contains(&self, index: u32) -> bool {
        self.indices.binary_search(&index).is_ok()
    }

    /// Sparsity ρ = |S| / N for a scene with `total` Gaussians.
    ///
    /// Returns 0 for an empty scene.
    pub fn sparsity(&self, total: usize) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.len() as f64 / total as f64
        }
    }

    /// Size of the intersection `|self ∩ other|`.
    pub fn intersection_len(&self, other: &VisibilitySet) -> usize {
        merge_count(&self.indices, &other.indices).both
    }

    /// Size of the union `|self ∪ other|`.
    pub fn union_len(&self, other: &VisibilitySet) -> usize {
        let c = merge_count(&self.indices, &other.indices);
        c.only_a + c.only_b + c.both
    }

    /// Size of the symmetric difference `|self ⊕ other|` — the TSP distance
    /// used by CLM's pipeline order optimisation (§4.2.3).
    pub fn symmetric_difference_len(&self, other: &VisibilitySet) -> usize {
        let c = merge_count(&self.indices, &other.indices);
        c.only_a + c.only_b
    }

    /// Elements of `self` that are also in `other` (`self ∩ other`), i.e.
    /// the Gaussians CLM can serve from the on-GPU cache when `other` was
    /// the previous micro-batch.
    pub fn intersection(&self, other: &VisibilitySet) -> VisibilitySet {
        let mut out = Vec::with_capacity(self.len().min(other.len()));
        merge_visit(&self.indices, &other.indices, |v, in_a, in_b| {
            if in_a && in_b {
                out.push(v);
            }
        });
        VisibilitySet { indices: out }
    }

    /// Elements of `self` that are **not** in `other` (`self \ other`), i.e.
    /// the Gaussians that must be fetched over PCIe.
    pub fn difference(&self, other: &VisibilitySet) -> VisibilitySet {
        let mut out = Vec::with_capacity(self.len());
        merge_visit(&self.indices, &other.indices, |v, in_a, in_b| {
            if in_a && !in_b {
                out.push(v);
            }
        });
        VisibilitySet { indices: out }
    }

    /// Union of the two sets.
    pub fn union(&self, other: &VisibilitySet) -> VisibilitySet {
        let mut out = Vec::with_capacity(self.len() + other.len());
        merge_visit(&self.indices, &other.indices, |v, _, _| out.push(v));
        VisibilitySet { indices: out }
    }

    /// Jaccard similarity `|A ∩ B| / |A ∪ B|`, a normalised measure of the
    /// spatial locality between two views (1 = identical working sets).
    pub fn jaccard(&self, other: &VisibilitySet) -> f64 {
        let union = self.union_len(other);
        if union == 0 {
            1.0
        } else {
            self.intersection_len(other) as f64 / union as f64
        }
    }

    /// Iterator over the contained indices.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.indices.iter().copied()
    }
}

impl FromIterator<u32> for VisibilitySet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        VisibilitySet::from_unsorted(iter.into_iter().collect())
    }
}

impl fmt::Display for VisibilitySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VisibilitySet({} gaussians)", self.len())
    }
}

struct MergeCounts {
    only_a: usize,
    only_b: usize,
    both: usize,
}

fn merge_count(a: &[u32], b: &[u32]) -> MergeCounts {
    let mut counts = MergeCounts {
        only_a: 0,
        only_b: 0,
        both: 0,
    };
    merge_visit(a, b, |_, in_a, in_b| match (in_a, in_b) {
        (true, true) => counts.both += 1,
        (true, false) => counts.only_a += 1,
        (false, true) => counts.only_b += 1,
        (false, false) => unreachable!(),
    });
    counts
}

/// Walks two sorted index slices in lockstep, invoking `visit(value, in_a,
/// in_b)` exactly once per distinct value.
fn merge_visit(a: &[u32], b: &[u32], mut visit: impl FnMut(u32, bool, bool)) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                visit(a[i], true, false);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                visit(b[j], false, true);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                visit(a[i], true, true);
                i += 1;
                j += 1;
            }
        }
    }
    while i < a.len() {
        visit(a[i], true, false);
        i += 1;
    }
    while j < b.len() {
        visit(b[j], false, true);
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn from_unsorted_sorts_and_dedups() {
        let s = VisibilitySet::from_unsorted(vec![5, 1, 3, 1, 5]);
        assert_eq!(s.indices(), &[1, 3, 5]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn contains_and_sparsity() {
        let s = VisibilitySet::from_unsorted(vec![0, 10, 20]);
        assert!(s.contains(10));
        assert!(!s.contains(11));
        assert!((s.sparsity(100) - 0.03).abs() < 1e-12);
        assert_eq!(s.sparsity(0), 0.0);
    }

    #[test]
    fn set_algebra_small_cases() {
        let a = VisibilitySet::from_unsorted(vec![1, 2, 3, 4]);
        let b = VisibilitySet::from_unsorted(vec![3, 4, 5]);
        assert_eq!(a.intersection_len(&b), 2);
        assert_eq!(a.union_len(&b), 5);
        assert_eq!(a.symmetric_difference_len(&b), 3);
        assert_eq!(a.intersection(&b).indices(), &[3, 4]);
        assert_eq!(a.difference(&b).indices(), &[1, 2]);
        assert_eq!(b.difference(&a).indices(), &[5]);
        assert_eq!(a.union(&b).indices(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn jaccard_of_identical_sets_is_one() {
        let a = VisibilitySet::from_unsorted(vec![7, 8, 9]);
        assert_eq!(a.jaccard(&a.clone()), 1.0);
        let empty = VisibilitySet::new();
        assert_eq!(empty.jaccard(&empty.clone()), 1.0);
    }

    #[test]
    fn empty_set_behaviour() {
        let empty = VisibilitySet::new();
        let a = VisibilitySet::from_unsorted(vec![1, 2]);
        assert!(empty.is_empty());
        assert_eq!(empty.intersection_len(&a), 0);
        assert_eq!(empty.union_len(&a), 2);
        assert_eq!(empty.symmetric_difference_len(&a), 2);
    }

    #[test]
    fn display_reports_cardinality() {
        let s = VisibilitySet::from_unsorted(vec![4, 9]);
        assert_eq!(format!("{s}"), "VisibilitySet(2 gaussians)");
    }

    #[test]
    fn from_iterator_collects() {
        let s: VisibilitySet = [9u32, 2, 2, 5].into_iter().collect();
        assert_eq!(s.indices(), &[2, 5, 9]);
    }

    fn to_btree(s: &VisibilitySet) -> BTreeSet<u32> {
        s.iter().collect()
    }

    proptest! {
        #[test]
        fn prop_set_algebra_matches_btreeset(a in proptest::collection::vec(0u32..200, 0..100),
                                             b in proptest::collection::vec(0u32..200, 0..100)) {
            let sa = VisibilitySet::from_unsorted(a.clone());
            let sb = VisibilitySet::from_unsorted(b.clone());
            let ba: BTreeSet<u32> = a.into_iter().collect();
            let bb: BTreeSet<u32> = b.into_iter().collect();

            prop_assert_eq!(sa.intersection_len(&sb), ba.intersection(&bb).count());
            prop_assert_eq!(sa.union_len(&sb), ba.union(&bb).count());
            prop_assert_eq!(sa.symmetric_difference_len(&sb),
                            ba.symmetric_difference(&bb).count());
            prop_assert_eq!(to_btree(&sa.intersection(&sb)),
                            ba.intersection(&bb).copied().collect::<BTreeSet<_>>());
            prop_assert_eq!(to_btree(&sa.difference(&sb)),
                            ba.difference(&bb).copied().collect::<BTreeSet<_>>());
            prop_assert_eq!(to_btree(&sa.union(&sb)),
                            ba.union(&bb).copied().collect::<BTreeSet<_>>());
        }

        #[test]
        fn prop_symmetric_difference_is_union_minus_intersection(
            a in proptest::collection::vec(0u32..500, 0..200),
            b in proptest::collection::vec(0u32..500, 0..200)
        ) {
            let sa = VisibilitySet::from_unsorted(a);
            let sb = VisibilitySet::from_unsorted(b);
            prop_assert_eq!(
                sa.symmetric_difference_len(&sb),
                sa.union_len(&sb) - sa.intersection_len(&sb)
            );
        }

        #[test]
        fn prop_tsp_distance_is_a_metric(
            a in proptest::collection::vec(0u32..100, 0..60),
            b in proptest::collection::vec(0u32..100, 0..60),
            c in proptest::collection::vec(0u32..100, 0..60)
        ) {
            // The symmetric-difference distance must satisfy the triangle
            // inequality (the paper relies on the instance being a metric
            // TSP, Appendix A.1).
            let sa = VisibilitySet::from_unsorted(a);
            let sb = VisibilitySet::from_unsorted(b);
            let sc = VisibilitySet::from_unsorted(c);
            let dab = sa.symmetric_difference_len(&sb);
            let dbc = sb.symmetric_difference_len(&sc);
            let dac = sa.symmetric_difference_len(&sc);
            prop_assert!(dac <= dab + dbc);
            // Symmetry and identity.
            prop_assert_eq!(dab, sb.symmetric_difference_len(&sa));
            prop_assert_eq!(sa.symmetric_difference_len(&sa), 0);
        }
    }
}
