//! Lane-chunked (AoSoA) parameter storage for SIMD-friendly kernels.
//!
//! The flat 59-float [`param_row`](GaussianModel::param_row) layout (PR 2)
//! made every optimiser row a single `memcpy`, but the kernels that walk
//! those rows — the Adam update and the rasteriser inner loops — still
//! process one scalar at a time.  This module provides the layout step that
//! lets them vectorise: Gaussians are grouped into **chunks of
//! [`LANE_WIDTH`] rows**, and within a chunk the storage is parameter-major
//! (`block[param][lane]`), so a kernel that walks a chunk touches
//! [`LANE_WIDTH`] consecutive `f32`s of the *same* parameter at once —
//! exactly the shape the autovectoriser lowers to SIMD loads/stores, and
//! mechanical to port to `std::simd` when it stabilises.
//!
//! The chunk width is **fixed at 8** rather than derived from the host SIMD
//! width: the layout is part of the numeric state that checkpoints and
//! traces round-trip through [`param_row`](GaussianModel::param_row), so it
//! must not vary across machines.  8 lanes of `f32` is one AVX2 register,
//! two NEON/SSE registers, half an AVX-512 register — a good fixed point.
//!
//! # Determinism contract
//!
//! The layout never changes *what* is computed.  Conversions to and from
//! row form are pure copies (bit-identical per attribute), and the lane
//! kernels built on top perform the same elementwise operations as their
//! scalar references — each row's update is independent, so grouping rows
//! into lanes is pure scheduling.  Padding lanes (rows past
//! [`len`](SoaParams::len) in the last chunk) are **kept at zero** as a
//! store invariant, so full-width kernels may process them freely: a zero
//! row through any of the kernels in this workspace stays zero.

use crate::gaussian::{GaussianModel, PARAMS_PER_GAUSSIAN, SH_FLOATS};
use crate::math::{Quat, Vec3};

/// Rows per AoSoA chunk.  Fixed (never derived from the host SIMD width) so
/// the layout — and therefore every bit-identity contract — is portable.
pub const LANE_WIDTH: usize = 8;

/// One lane group: [`LANE_WIDTH`] parameter rows in parameter-major order
/// (`block[param][lane]`).  This is both the unit of storage inside
/// [`SoaParams`] and the unit of work the lane kernels consume.
pub type LaneBlock = [[f32; LANE_WIDTH]; PARAMS_PER_GAUSSIAN];

/// Returns a zeroed [`LaneBlock`].
#[inline]
pub fn zero_lane_block() -> LaneBlock {
    [[0.0; LANE_WIDTH]; PARAMS_PER_GAUSSIAN]
}

/// AoSoA storage of per-Gaussian 59-float parameter rows (chunk width
/// [`LANE_WIDTH`], parameter-major within a chunk).
///
/// Invariant: padding lanes — lanes of the last chunk at row indices `>=`
/// [`len`](Self::len) — are always zero.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SoaParams {
    chunks: Vec<LaneBlock>,
    len: usize,
}

impl SoaParams {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a store of `len` all-zero rows.
    pub fn zeros(len: usize) -> Self {
        SoaParams {
            chunks: vec![zero_lane_block(); len.div_ceil(LANE_WIDTH)],
            len,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of lane chunks (the last may be partially filled).
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Rows stored in chunk `c` (always [`LANE_WIDTH`] except possibly the
    /// last chunk).
    pub fn lanes_in_chunk(&self, c: usize) -> usize {
        (self.len - c * LANE_WIDTH).min(LANE_WIDTH)
    }

    /// Chunk `c`, parameter-major.
    pub fn chunk(&self, c: usize) -> &LaneBlock {
        &self.chunks[c]
    }

    /// Mutable chunk `c`.  Callers must preserve the zero-padding
    /// invariant for lanes past [`len`](Self::len).
    pub fn chunk_mut(&mut self, c: usize) -> &mut LaneBlock {
        &mut self.chunks[c]
    }

    /// Reads row `i` into `out`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn read_row_into(&self, i: usize, out: &mut [f32; PARAMS_PER_GAUSSIAN]) {
        assert!(i < self.len, "row {i} out of bounds (len {})", self.len);
        let (c, l) = (i / LANE_WIDTH, i % LANE_WIDTH);
        let chunk = &self.chunks[c];
        for k in 0..PARAMS_PER_GAUSSIAN {
            out[k] = chunk[k][l];
        }
    }

    /// Row `i` as a flat array.
    pub fn row(&self, i: usize) -> [f32; PARAMS_PER_GAUSSIAN] {
        let mut out = [0.0; PARAMS_PER_GAUSSIAN];
        self.read_row_into(i, &mut out);
        out
    }

    /// Overwrites row `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn set_row(&mut self, i: usize, row: &[f32; PARAMS_PER_GAUSSIAN]) {
        assert!(i < self.len, "row {i} out of bounds (len {})", self.len);
        let (c, l) = (i / LANE_WIDTH, i % LANE_WIDTH);
        let chunk = &mut self.chunks[c];
        for k in 0..PARAMS_PER_GAUSSIAN {
            chunk[k][l] = row[k];
        }
    }

    /// Copies row `i` into lane `lane` of a staging block
    /// (`block[k][lane] = row[k]`): the gather half of running a lane
    /// kernel over rows that are not chunk-aligned.
    #[inline]
    pub fn gather_lane(&self, i: usize, lane: usize, block: &mut LaneBlock) {
        assert!(i < self.len, "row {i} out of bounds (len {})", self.len);
        let (c, l) = (i / LANE_WIDTH, i % LANE_WIDTH);
        let chunk = &self.chunks[c];
        for k in 0..PARAMS_PER_GAUSSIAN {
            block[k][lane] = chunk[k][l];
        }
    }

    /// Writes lane `lane` of a staging block back into row `i`: the scatter
    /// half of [`gather_lane`](Self::gather_lane).
    #[inline]
    pub fn scatter_lane(&mut self, i: usize, lane: usize, block: &LaneBlock) {
        assert!(i < self.len, "row {i} out of bounds (len {})", self.len);
        let (c, l) = (i / LANE_WIDTH, i % LANE_WIDTH);
        let chunk = &mut self.chunks[c];
        for k in 0..PARAMS_PER_GAUSSIAN {
            chunk[k][l] = block[k][lane];
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, row: &[f32; PARAMS_PER_GAUSSIAN]) {
        if self.len == self.chunks.len() * LANE_WIDTH {
            self.chunks.push(zero_lane_block());
        }
        self.len += 1;
        self.set_row(self.len - 1, row);
    }

    /// Resizes to `new_len` rows.  Grown rows are zero; shrinking zeroes the
    /// vacated lanes so the padding invariant holds.
    pub fn resize(&mut self, new_len: usize) {
        if new_len < self.len {
            // Zero vacated lanes of the surviving chunks, drop whole chunks.
            let keep_chunks = new_len.div_ceil(LANE_WIDTH);
            self.chunks.truncate(keep_chunks);
            if let Some(last) = self.chunks.last_mut() {
                for lane in new_len - (keep_chunks - 1) * LANE_WIDTH..LANE_WIDTH {
                    for k in 0..PARAMS_PER_GAUSSIAN {
                        last[k][lane] = 0.0;
                    }
                }
            }
        } else {
            self.chunks
                .resize(new_len.div_ceil(LANE_WIDTH), zero_lane_block());
        }
        self.len = new_len;
    }

    /// Densification-boundary resize, mirroring
    /// [`GaussianModel::remove_indices`] renumbering: the rows at the
    /// (possibly unsorted, possibly duplicated) `pruned` pre-resize indices
    /// are dropped, survivors slide down preserving order, and the store is
    /// then resized to `new_len` (appended rows zero).
    ///
    /// # Panics
    /// Panics if a pruned index is out of bounds.
    pub fn apply_resize(&mut self, pruned: &[u32], new_len: usize) {
        if !pruned.is_empty() {
            let mut remove = vec![false; self.len];
            for &i in pruned {
                let i = i as usize;
                assert!(i < self.len, "pruned index {i} out of bounds");
                remove[i] = true;
            }
            // In-place forward compaction: the destination row never passes
            // the source row, so each copy reads not-yet-overwritten data.
            let mut dst = 0usize;
            let mut row = [0.0f32; PARAMS_PER_GAUSSIAN];
            for src in 0..self.len {
                if remove[src] {
                    continue;
                }
                if dst != src {
                    self.read_row_into(src, &mut row);
                    self.set_row(dst, &row);
                }
                dst += 1;
            }
            self.resize(dst);
        }
        self.resize(new_len);
    }

    /// Builds a store from row form.
    pub fn from_rows<'a, I>(rows: I) -> Self
    where
        I: IntoIterator<Item = &'a [f32; PARAMS_PER_GAUSSIAN]>,
    {
        let mut store = SoaParams::new();
        for row in rows {
            store.push_row(row);
        }
        store
    }

    /// Converts every row of `model` into lane-chunked form (pure copies:
    /// bit-identical per attribute).
    pub fn from_model(model: &GaussianModel) -> Self {
        let mut store = SoaParams::zeros(model.len());
        let mut row = [0.0f32; PARAMS_PER_GAUSSIAN];
        for i in 0..model.len() {
            model.read_param_row_into(i, &mut row);
            store.set_row(i, &row);
        }
        store
    }

    /// Writes every row back into `model` through the
    /// [`set_param_row`](GaussianModel::set_param_row) compatibility seam.
    ///
    /// # Panics
    /// Panics if the model's length differs from the store's.
    pub fn write_to_model(&self, model: &mut GaussianModel) {
        assert_eq!(model.len(), self.len, "model / store length mismatch");
        let mut row = [0.0f32; PARAMS_PER_GAUSSIAN];
        for i in 0..self.len {
            self.read_row_into(i, &mut row);
            model.set_param_row(i, &row);
        }
    }
}

impl GaussianModel {
    /// Stages the parameters of Gaussian `i` into lane `lane` of a
    /// parameter-major staging block (`block[k][lane] = param k`), with no
    /// intermediate row materialisation — the transposed twin of
    /// [`param_row`](Self::param_row), byte-for-byte the same values.
    ///
    /// # Panics
    /// Panics if `i >= len()` or `lane >= LANE_WIDTH`.
    #[inline]
    pub fn param_lane_into(&self, i: usize, lane: usize, block: &mut LaneBlock) {
        let p = self.positions()[i];
        let s = self.log_scales()[i];
        let q = self.rotations()[i].to_array();
        block[0][lane] = p.x;
        block[1][lane] = p.y;
        block[2][lane] = p.z;
        block[3][lane] = s.x;
        block[4][lane] = s.y;
        block[5][lane] = s.z;
        for (k, qk) in q.iter().enumerate() {
            block[6 + k][lane] = *qk;
        }
        for (k, c) in self.sh_of(i).iter().enumerate() {
            block[10 + k][lane] = *c;
        }
        block[PARAMS_PER_GAUSSIAN - 1][lane] = self.opacity_logits()[i];
    }

    /// Writes lane `lane` of a parameter-major staging block back into
    /// Gaussian `i`: the inverse of [`param_lane_into`](Self::param_lane_into)
    /// and the transposed twin of [`set_param_row`](Self::set_param_row).
    ///
    /// # Panics
    /// Panics if `i >= len()` or `lane >= LANE_WIDTH`.
    #[inline]
    pub fn set_param_lane(&mut self, i: usize, lane: usize, block: &LaneBlock) {
        self.positions_mut()[i] = Vec3::new(block[0][lane], block[1][lane], block[2][lane]);
        self.log_scales_mut()[i] = Vec3::new(block[3][lane], block[4][lane], block[5][lane]);
        self.rotations_mut()[i] = Quat::from([
            block[6][lane],
            block[7][lane],
            block[8][lane],
            block[9][lane],
        ]);
        let sh = &mut self.sh_mut()[i * SH_FLOATS..(i + 1) * SH_FLOATS];
        for (k, c) in sh.iter_mut().enumerate() {
            *c = block[10 + k][lane];
        }
        self.opacity_logits_mut()[i] = block[PARAMS_PER_GAUSSIAN - 1][lane];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::Gaussian;

    fn row_of(seed: f32) -> [f32; PARAMS_PER_GAUSSIAN] {
        let mut row = [0.0f32; PARAMS_PER_GAUSSIAN];
        for (k, v) in row.iter_mut().enumerate() {
            *v = seed + 0.25 * k as f32;
        }
        row
    }

    fn model_of(n: usize) -> GaussianModel {
        (0..n)
            .map(|i| {
                let mut g = Gaussian::isotropic(
                    Vec3::new(i as f32, -(i as f32), 2.0 + i as f32),
                    0.2 + 0.01 * i as f32,
                    [0.2, 0.5, 0.8],
                    0.6,
                );
                for (k, c) in g.sh.iter_mut().enumerate() {
                    *c = 0.01 * (i * 48 + k) as f32 - 0.3;
                }
                g
            })
            .collect()
    }

    #[test]
    fn row_round_trip_across_chunk_boundaries() {
        // 19 rows: two full chunks plus a 3-lane tail.
        let rows: Vec<_> = (0..19).map(|i| row_of(i as f32)).collect();
        let store = SoaParams::from_rows(rows.iter());
        assert_eq!(store.len(), 19);
        assert_eq!(store.num_chunks(), 3);
        assert_eq!(store.lanes_in_chunk(0), 8);
        assert_eq!(store.lanes_in_chunk(2), 3);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(store.row(i), *row, "row {i}");
        }
    }

    #[test]
    fn padding_lanes_stay_zero() {
        let mut store =
            SoaParams::from_rows((0..5).map(|i| row_of(i as f32)).collect::<Vec<_>>().iter());
        for lane in 5..LANE_WIDTH {
            for k in 0..PARAMS_PER_GAUSSIAN {
                assert_eq!(store.chunk(0)[k][lane], 0.0);
            }
        }
        // Shrinking re-zeroes the vacated lanes.
        store.set_row(4, &row_of(9.0));
        store.resize(2);
        for lane in 2..LANE_WIDTH {
            for k in 0..PARAMS_PER_GAUSSIAN {
                assert_eq!(store.chunk(0)[k][lane], 0.0, "lane {lane} param {k}");
            }
        }
        // Growing back exposes zero rows, not stale data.
        store.resize(6);
        assert_eq!(store.row(4), [0.0; PARAMS_PER_GAUSSIAN]);
    }

    #[test]
    fn model_conversion_is_bit_identical() {
        let model = model_of(11);
        let store = SoaParams::from_model(&model);
        for i in 0..model.len() {
            assert_eq!(store.row(i), model.param_row(i), "row {i}");
        }
        let mut back = model_of(11);
        // Scramble, then restore from the store.
        back.positions_mut()[3] = Vec3::splat(99.0);
        back.sh_mut()[100] = -42.0;
        store.write_to_model(&mut back);
        assert_eq!(back, model);
    }

    #[test]
    fn gather_scatter_lane_round_trip() {
        let store_rows: Vec<_> = (0..10).map(|i| row_of(i as f32 * 1.5)).collect();
        let mut store = SoaParams::from_rows(store_rows.iter());
        let mut block = zero_lane_block();
        // Gather rows {9, 2, 5} into lanes {0, 1, 2} (deliberately not
        // chunk-aligned), scatter them back swapped.
        store.gather_lane(9, 0, &mut block);
        store.gather_lane(2, 1, &mut block);
        store.gather_lane(5, 2, &mut block);
        for k in 0..PARAMS_PER_GAUSSIAN {
            assert_eq!(block[k][0], store_rows[9][k]);
            assert_eq!(block[k][1], store_rows[2][k]);
        }
        store.scatter_lane(2, 0, &block); // row 2 := old row 9
        assert_eq!(store.row(2), store_rows[9]);
        assert_eq!(store.row(5), store_rows[5], "untouched rows unchanged");
    }

    #[test]
    fn model_lane_staging_matches_param_row() {
        let mut model = model_of(4);
        let mut block = zero_lane_block();
        model.param_lane_into(2, 3, &mut block);
        let row = model.param_row(2);
        for k in 0..PARAMS_PER_GAUSSIAN {
            assert_eq!(block[k][3], row[k], "param {k}");
        }
        // Scatter into another Gaussian: equivalent to set_param_row.
        model.set_param_lane(0, 3, &block);
        assert_eq!(model.param_row(0), row);
        assert_eq!(model.get(0), model.get(2));
    }

    #[test]
    fn apply_resize_compacts_like_remove_indices() {
        let rows: Vec<_> = (0..12).map(|i| row_of(i as f32)).collect();
        let mut store = SoaParams::from_rows(rows.iter());
        // Prune {1, 4, 9} (unsorted, with a duplicate), grow to 12.
        store.apply_resize(&[9, 1, 4, 4], 12);
        assert_eq!(store.len(), 12);
        let survivors: Vec<usize> = (0..12).filter(|i| ![1, 4, 9].contains(i)).collect();
        for (new_i, &old_i) in survivors.iter().enumerate() {
            assert_eq!(store.row(new_i), rows[old_i], "survivor {old_i}");
        }
        for i in survivors.len()..12 {
            assert_eq!(store.row(i), [0.0; PARAMS_PER_GAUSSIAN], "appended {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn apply_resize_rejects_out_of_range() {
        let mut store = SoaParams::zeros(3);
        store.apply_resize(&[3], 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_read_out_of_bounds_panics() {
        let store = SoaParams::zeros(2);
        let _ = store.row(2);
    }
}
