//! Error type shared by the gs-core public API.

use std::error::Error;
use std::fmt;

/// Errors produced by the 3DGS core data model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GsError {
    /// An index referred to a Gaussian that does not exist.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// Number of Gaussians in the model.
        len: usize,
    },
    /// Two containers that must describe the same Gaussians had different
    /// lengths.
    LengthMismatch {
        /// Expected number of elements.
        expected: usize,
        /// Actual number of elements.
        actual: usize,
    },
    /// A parameter fell outside its valid range.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        message: String,
    },
}

impl fmt::Display for GsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GsError::IndexOutOfBounds { index, len } => {
                write!(
                    f,
                    "gaussian index {index} out of bounds for model of length {len}"
                )
            }
            GsError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            GsError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
        }
    }
}

impl Error for GsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GsError::IndexOutOfBounds { index: 7, len: 3 };
        assert_eq!(
            e.to_string(),
            "gaussian index 7 out of bounds for model of length 3"
        );
        let e = GsError::LengthMismatch {
            expected: 2,
            actual: 5,
        };
        assert!(e.to_string().contains("expected 2"));
        let e = GsError::InvalidParameter {
            name: "sigma",
            message: "must be positive".into(),
        };
        assert!(e.to_string().contains("sigma"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<GsError>();
    }
}
