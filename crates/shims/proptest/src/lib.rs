//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this shim implements
//! the subset of proptest the workspace's property tests use: the
//! [`proptest!`] macro over `arg in strategy` bindings, numeric-range and
//! tuple strategies, `collection::vec`, `array::uniform9`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! * failures are reported by ordinary `assert!` panics — there is **no
//!   shrinking**;
//! * each property runs a fixed number of random cases
//!   ([`DEFAULT_CASES`]) from a per-test deterministic seed, so runs are
//!   reproducible without a persistence file.

use rand::rngs::StdRng;
use rand::Rng;

/// Number of random cases each property executes.
pub const DEFAULT_CASES: usize = 64;

pub mod test_runner {
    /// RNG handed to strategies by the [`proptest!`](crate::proptest) macro.
    pub type TestRng = rand::rngs::StdRng;

    /// Derives a deterministic per-test RNG from the test's name.
    pub fn rng_for(test_name: &str) -> TestRng {
        let mut seed: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01B3);
        }
        <TestRng as rand::SeedableRng>::seed_from_u64(seed)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value produced.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

pub mod collection {
    use super::Strategy;

    /// Strategy for `Vec`s with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len: usize,
    }

    /// `proptest::collection::vec`: vectors of `element` values with length
    /// in `size` (half-open, as in the call sites of this workspace).
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy {
            element,
            min_len: size.start,
            max_len: size.end - 1,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut rand::rngs::StdRng) -> Self::Value {
            let len = rand::Rng::gen_range(rng, self.min_len..=self.max_len);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod array {
    use super::Strategy;

    /// Strategy for `[T; 9]` with every element drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct Uniform9<S>(S);

    /// `proptest::array::uniform9`.
    pub fn uniform9<S: Strategy>(element: S) -> Uniform9<S> {
        Uniform9(element)
    }

    impl<S: Strategy> Strategy for Uniform9<S> {
        type Value = [S::Value; 9];
        fn sample(&self, rng: &mut rand::rngs::StdRng) -> Self::Value {
            std::array::from_fn(|_| self.0.sample(rng))
        }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body for [`DEFAULT_CASES`] sampled
/// argument tuples.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __proptest_rng = $crate::test_runner::rng_for(stringify!($name));
                for __proptest_case in 0..$crate::DEFAULT_CASES {
                    let _ = __proptest_case;
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut __proptest_rng);)+
                    $body
                }
            }
        )+
    };
}

/// Asserts a property; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality of two expressions.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn vec_strategy_respects_bounds() {
        let mut rng = crate::test_runner::rng_for("vec_strategy_respects_bounds");
        let strat = crate::collection::vec(0u32..10, 2..5);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..5).contains(&v.len()), "len {}", v.len());
            assert!(v.iter().all(|x| *x < 10));
        }
    }

    #[test]
    fn uniform9_fills_every_slot() {
        let mut rng = crate::test_runner::rng_for("uniform9");
        let arr = crate::array::uniform9(-1.0f32..1.0).sample(&mut rng);
        assert_eq!(arr.len(), 9);
        assert!(arr.iter().all(|x| (-1.0..1.0).contains(x)));
    }

    proptest! {
        #[test]
        fn macro_binds_multiple_strategies(
            a in 0u32..50,
            pair in (0u64..10, 1u8..3),
            v in crate::collection::vec(0u32..5, 0..4)
        ) {
            prop_assume!(a != 49);
            prop_assert!(a < 50);
            prop_assert!(pair.0 < 10 && pair.1 >= 1);
            prop_assert_eq!(v.iter().filter(|x| **x >= 5).count(), 0);
        }
    }
}
