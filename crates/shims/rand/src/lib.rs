//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the small slice of the `rand 0.8` API the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool}` and
//! `seq::SliceRandom::shuffle` — backed by a SplitMix64 generator.  The
//! streams are deterministic for a given seed (everything in the repo seeds
//! explicitly), which is all the callers rely on; statistical quality beyond
//! "uncorrelated enough for synthetic scenes and tests" is a non-goal.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    /// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
    ///
    /// Note: the streams differ from the real `StdRng` (ChaCha12); seeds in
    /// this repo only promise determinism, not any particular sequence.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng { state: seed };
            // Discard one output so that consecutive small seeds do not hand
            // the caller their own (highly correlated) first words.
            let _ = crate::RngCore::next_u64(&mut rng);
            rng
        }
    }
}

/// Types that can be drawn uniformly from a half-open or closed interval.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample from empty range");
                let span = (high as i128 - low as i128) as u128;
                low + (rng.next_u64() as u128 % span) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample from empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                low + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample from empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                let value = low + unit * (high - low);
                // Casting the 53-bit numerator to f32 can round `unit` up to
                // exactly 1.0; keep the documented exclusive upper bound.
                if value < high {
                    value
                } else {
                    high.next_down().max(low)
                }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample from empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                low + unit * (high - low)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range-like arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} not in [0, 1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use crate::Rng;

    /// Slice shuffling, the only piece of rand's `seq` module the workspace
    /// uses.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(-3i32..9);
            assert!((-3..9).contains(&x));
            let f = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(1.0f64..=2.0);
            assert!((1.0..=2.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
