//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this shim provides a
//! minimal wall-clock timing harness with criterion's calling conventions:
//! `Criterion::{bench_function, benchmark_group}`, `Bencher::iter`,
//! `BenchmarkId::from_parameter` and the `criterion_group!`/`criterion_main!`
//! macros.  It runs each benchmark for a bounded number of iterations and
//! prints a mean time per iteration — enough to spot order-of-magnitude
//! regressions locally, with none of criterion's statistics.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for one parameterised benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from the benchmark parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// Builds an id from a function name and a parameter.
    pub fn new<P: Display>(function: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, keeping its output alive via `black_box`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Sets the nominal sample count (used as the iteration count here).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; this shim does not run a separate
    /// measurement phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; this shim does not warm up.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            iterations: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        report(name, &bencher);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of parameterised benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one case of the group with its input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            iterations: self.criterion.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id.0), &bencher);
        self
    }

    /// Finishes the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

fn report(name: &str, bencher: &Bencher) {
    let per_iter = if bencher.iterations == 0 {
        Duration::ZERO
    } else {
        bencher.elapsed / bencher.iterations as u32
    };
    println!(
        "bench {name}: {:.3} ms/iter ({} iters)",
        per_iter.as_secs_f64() * 1e3,
        bencher.iterations
    );
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut runs = 0u64;
        Criterion::default()
            .sample_size(5)
            .bench_function("demo", |b| {
                b.iter(|| {
                    runs += 1;
                    runs
                })
            });
        assert_eq!(runs, 5);
    }

    #[test]
    fn groups_run_each_input() {
        let mut c = Criterion::default().sample_size(2);
        let mut total = 0u64;
        let mut group = c.benchmark_group("g");
        for &n in &[1u64, 2, 3] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| {
                    total += n;
                    total
                })
            });
        }
        group.finish();
        assert_eq!(total, 2 * (1 + 2 + 3));
    }
}
