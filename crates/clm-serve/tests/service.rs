//! Integration tests for the multi-tenant service: fairness/starvation,
//! admission control, memory budgets, and checkpoint evict/resume.
//!
//! Everything runs on the simulated backend, so schedules and latencies are
//! virtual-timeline quantities and the assertions are exact and
//! deterministic.

use clm_core::{DensifyConfig, DensifySchedule, SystemKind, TrainConfig};
use clm_serve::{
    Admission, AdmitError, BackendChoice, ClmServe, FairnessConfig, SceneRegistry, ServeConfig,
    SessionState, StepOutcome, TenantSpec,
};
use gs_scene::{DatasetConfig, InitConfig, SceneKind};

fn registry_with(name: &str, views: usize, seed: u64) -> SceneRegistry {
    let mut registry = SceneRegistry::new();
    registry.register(
        name,
        SceneKind::Bicycle,
        DatasetConfig {
            num_gaussians: 160,
            num_views: views,
            width: 32,
            height: 24,
            seed,
        },
    );
    registry
}

fn train_config(seed: u64, batch_size: usize) -> TrainConfig {
    TrainConfig {
        system: SystemKind::Clm,
        batch_size,
        seed,
        ..Default::default()
    }
}

fn init_config(seed: u64, num_gaussians: usize) -> InitConfig {
    InitConfig {
        num_gaussians,
        initial_opacity: 0.3,
        seed,
        ..Default::default()
    }
}

fn spec(tenant: &str, scene: &str, seed: u64, batches: usize) -> TenantSpec {
    let mut s = TenantSpec::new(
        tenant,
        scene,
        train_config(seed, 3),
        init_config(seed + 1, 80),
    );
    s.target_batches = batches;
    s
}

/// A heavy tenant (large model, expensive batches) must not starve a light
/// one: with equal weights the light tenant's worst-case per-batch latency
/// stays within the fair-share bound of one heavy batch plus its own.
#[test]
fn two_tenant_starvation_bound() {
    let registry = registry_with("shared", 9, 11);
    let mut serve = ClmServe::new(
        registry,
        ServeConfig {
            max_active: 2,
            fairness: FairnessConfig::default(),
            ..Default::default()
        },
    );

    let mut heavy = spec("heavy", "shared", 21, 12);
    heavy.init.num_gaussians = 320;
    heavy.cost_scale = 8.0; // paper-scale tenant: bandwidth-bound batches
    let mut light = spec("light", "shared", 22, 60);
    light.init.num_gaussians = 80;

    let heavy_id = serve.admit(heavy).unwrap().id();
    let light_id = serve.admit(light).unwrap().id();

    let mut heavy_cost_max = 0.0f64;
    let mut light_cost_max = 0.0f64;
    // Heavy device time served by the end of the contention interval (the
    // instant the light tenant completes); past that point the heavy
    // tenant runs alone and fairness no longer constrains it.
    let mut heavy_served_under_contention = None;
    while !serve.all_done() {
        match serve.step() {
            StepOutcome::Ran {
                id,
                cost,
                completed,
            } => {
                if id == heavy_id {
                    heavy_cost_max = heavy_cost_max.max(cost);
                } else {
                    light_cost_max = light_cost_max.max(cost);
                }
                if id == light_id && completed {
                    heavy_served_under_contention =
                        Some(serve.session(heavy_id).unwrap().stats.served_cost);
                }
            }
            StepOutcome::Idle => break,
        }
    }
    assert!(serve.all_done());
    let light_stats = &serve.session(light_id).unwrap().stats;
    let heavy_stats = &serve.session(heavy_id).unwrap().stats;
    assert_eq!(light_stats.batches, 60);
    assert_eq!(heavy_stats.batches, 12);
    assert!(
        heavy_cost_max > 2.0 * light_cost_max,
        "scenario needs an actually-heavy tenant: heavy {heavy_cost_max} vs light {light_cost_max}"
    );

    // DRR bound: between two of the light tenant's batches the heavy tenant
    // can run at most quantum×weight + one max batch worth of service, so
    // the light tenant's worst-case latency is bounded by its own batch
    // plus ~2 heavy batches — never an unbounded queue behind the hog.
    let bound = light_cost_max + 2.0 * heavy_cost_max + f64::EPSILON;
    assert!(
        light_stats.latency.max() <= bound,
        "light tenant starved: worst latency {} > fair-share bound {}",
        light_stats.latency.max(),
        bound
    );
    // And over the contention interval the split of virtual device time is
    // near 50/50 (equal weights), within the DRR per-tenant error of about
    // one maximum batch cost each.
    let heavy_served = heavy_served_under_contention.expect("light completed under contention");
    let ratio = heavy_served / light_stats.served_cost;
    assert!(
        (0.5..2.0).contains(&ratio),
        "device-time split {ratio} strays from equal shares"
    );
}

/// Weighted shares: a weight-3 tenant receives ≈3× the virtual device time
/// of a weight-1 tenant over a contention interval.
#[test]
fn weighted_shares_hold() {
    let registry = registry_with("shared", 9, 13);
    let mut serve = ClmServe::new(
        registry,
        ServeConfig {
            max_active: 2,
            fairness: FairnessConfig { quantum: 0.0 },
            ..Default::default()
        },
    );
    let mut favored = spec("favored", "shared", 31, 30);
    favored.weight = 3.0;
    let standard = spec("standard", "shared", 32, 30);
    let favored_id = serve.admit(favored).unwrap().id();
    let standard_id = serve.admit(standard).unwrap().id();

    // Run a fixed contention interval (both tenants still have work).
    for _ in 0..24 {
        assert!(matches!(serve.step(), StepOutcome::Ran { .. }));
    }
    let f = serve.session(favored_id).unwrap().stats.served_cost;
    let s = serve.session(standard_id).unwrap().stats.served_cost;
    let ratio = f / s;
    assert!(
        (2.0..4.5).contains(&ratio),
        "expected ≈3:1 served cost, got {ratio} ({f} vs {s})"
    );
}

/// Admission control: slots then queue then rejection; completion promotes
/// the queue FIFO and queue wait shows up in first-batch latency.
#[test]
fn admission_queue_and_saturation() {
    let registry = registry_with("shared", 6, 17);
    let mut serve = ClmServe::new(
        registry,
        ServeConfig {
            max_active: 2,
            max_queued: 1,
            ..Default::default()
        },
    );
    let a = serve.admit(spec("a", "shared", 41, 4)).unwrap();
    let b = serve.admit(spec("b", "shared", 42, 4)).unwrap();
    let c = serve.admit(spec("c", "shared", 43, 2)).unwrap();
    assert!(matches!(a, Admission::Active(_)));
    assert!(matches!(b, Admission::Active(_)));
    assert!(matches!(c, Admission::Queued(_)));
    assert_eq!(
        serve.admit(spec("d", "shared", 44, 2)),
        Err(AdmitError::Saturated)
    );
    assert_eq!(
        serve.admit(spec("e", "nowhere", 45, 2)),
        Err(AdmitError::UnknownScene("nowhere".into()))
    );
    let bad = TenantSpec {
        weight: 0.0,
        ..spec("f", "shared", 46, 2)
    };
    assert_eq!(serve.admit(bad), Err(AdmitError::BadWeight));

    serve.run(10_000);
    assert!(serve.all_done());
    let c_stats = &serve.session(c.id()).unwrap().stats;
    assert_eq!(c_stats.batches, 2);
    // c waited for a slot: its worst latency (first batch, includes queue
    // wait) exceeds its typical service time.
    assert!(c_stats.latency.max() > c_stats.latency.min());
    assert_eq!(serve.stats().completed, 3);
    assert_eq!(serve.stats().rejected, 3);
}

/// Memory budgets: the granted window is clamped under the buffer cap, the
/// pool high-water mark respects it (zero violations), and a budget below
/// one buffer is rejected outright.
#[test]
fn staging_budget_clamps_and_holds() {
    let registry = registry_with("shared", 6, 19);
    let mut serve = ClmServe::new(registry, ServeConfig::default());

    let mut thrifty = spec("thrifty", "shared", 51, 4);
    thrifty.prefetch_window = 6; // asks for far more lookahead...
    let per_buffer = thrifty.buffer_bytes();
    thrifty.staging_budget_bytes = Some(2 * per_buffer); // ...than 2 buffers allow
    let id = serve.admit(thrifty).unwrap().id();
    let session = serve.session(id).unwrap();
    assert_eq!(session.max_staging_buffers, 2);
    assert_eq!(session.granted_window, 1, "window clamped under the cap");

    let mut broke = spec("broke", "shared", 52, 4);
    broke.staging_budget_bytes = Some(per_buffer - 1);
    assert!(matches!(
        serve.admit(broke),
        Err(AdmitError::BudgetTooSmall { .. })
    ));

    serve.run(10_000);
    assert!(serve.all_done());
    let stats = &serve.session(id).unwrap().stats;
    assert_eq!(stats.batches, 4);
    assert_eq!(
        stats.budget_violations, 0,
        "pool high-water exceeded the admitted budget"
    );
}

/// Evict/resume: a session evicted to `.clmckpt` bytes mid-run and resumed
/// later finishes with exactly the state an uninterrupted run reaches, and
/// its batch count survives the round trip.
#[test]
fn evict_resume_is_bit_identical() {
    let densify = Some(DensifySchedule {
        every_batches: 2,
        config: DensifyConfig {
            grad_threshold: 1.0e-5,
            prune_opacity: 0.305,
            max_gaussians: 120,
            seed: 63,
            ..Default::default()
        },
    });

    // Reference: one tenant runs 6 batches uninterrupted.
    let mut reference = ClmServe::new(registry_with("scene", 6, 23), ServeConfig::default());
    let mut ref_spec = spec("ref", "scene", 61, 6);
    ref_spec.train.densify = densify.clone();
    let ref_id = reference.admit(ref_spec).unwrap().id();
    reference.run(10_000);
    assert!(reference.all_done());

    // Interrupted: same tenant spec, evicted after 3 batches (crossing a
    // densification boundary), then resumed and finished.
    let mut serve = ClmServe::new(registry_with("scene", 6, 23), ServeConfig::default());
    let mut victim = spec("victim", "scene", 61, 6);
    victim.train.densify = densify;
    let id = serve.admit(victim).unwrap().id();
    for _ in 0..3 {
        assert!(matches!(serve.step(), StepOutcome::Ran { .. }));
    }
    serve.evict(id).unwrap();
    let session = serve.session(id).unwrap();
    assert_eq!(session.state, SessionState::Evicted);
    assert!(session.backend.is_none());
    // The checkpoint is a valid .clmckpt container.
    let bytes = &session.evicted.as_ref().unwrap().checkpoint;
    assert_eq!(&bytes[..8], b"CLMCKPT\0");
    assert!(matches!(serve.step(), StepOutcome::Idle));
    assert!(serve.evict(id).is_err(), "double-evict must fail");

    serve.resume(id).unwrap();
    assert_eq!(serve.session(id).unwrap().state, SessionState::Active);
    serve.run(10_000);
    assert!(serve.all_done());

    let interrupted = serve.session(id).unwrap();
    let uninterrupted = reference.session(ref_id).unwrap();
    assert_eq!(interrupted.stats.batches, 6);
    assert_eq!(interrupted.stats.evictions, 1);
    assert_eq!(interrupted.stats.resumes, 1);
    // Bit-identity is asserted on the sessions' final trained state via
    // the completion checkpoints (covers model, Adam moments, gradient
    // norms, resize history).
    let a = &interrupted.evicted.as_ref().unwrap().checkpoint;
    let b = &uninterrupted.evicted.as_ref().unwrap().checkpoint;
    assert_eq!(a, b, "evict/resume diverged from the uninterrupted run");
}

/// Cancellation frees the slot for a queued tenant; churn (repeated
/// evict/resume cycles) neither loses batches nor violates budgets.
#[test]
fn cancellation_and_churn() {
    let registry = registry_with("shared", 6, 29);
    let mut serve = ClmServe::new(
        registry,
        ServeConfig {
            max_active: 1,
            max_queued: 4,
            ..Default::default()
        },
    );
    let doomed = serve.admit(spec("doomed", "shared", 71, 50)).unwrap().id();
    let waiting = serve.admit(spec("waiting", "shared", 72, 3)).unwrap().id();
    assert_eq!(serve.session(waiting).unwrap().state, SessionState::Queued);

    assert!(matches!(serve.step(), StepOutcome::Ran { .. }));
    serve.cancel(doomed).unwrap();
    assert_eq!(
        serve.session(doomed).unwrap().state,
        SessionState::Cancelled
    );
    assert_eq!(serve.session(waiting).unwrap().state, SessionState::Active);
    assert!(serve.cancel(doomed).is_err(), "double-cancel must fail");

    // Churn the surviving session: evict+resume between every batch.
    while !serve.all_done() {
        match serve.step() {
            StepOutcome::Ran { id, completed, .. } if !completed => {
                serve.evict(id).unwrap();
                serve.resume(id).unwrap();
            }
            StepOutcome::Ran { .. } => {}
            StepOutcome::Idle => break,
        }
    }
    assert!(serve.all_done());
    let survivor = serve.session(waiting).unwrap();
    assert_eq!(survivor.stats.batches, 3);
    assert_eq!(survivor.stats.evictions, 2);
    assert_eq!(survivor.stats.resumes, 2);
    assert_eq!(survivor.state, SessionState::Completed);
    assert_eq!(serve.stats().cancelled, 1);
}

/// The service sustains ≥ 4 concurrent active sessions multiplexed over the
/// shared timeline, each making progress every round.
#[test]
fn four_concurrent_tenants_progress() {
    let mut registry = registry_with("a", 6, 31);
    registry.register(
        "b",
        SceneKind::Rubble,
        DatasetConfig {
            num_gaussians: 160,
            num_views: 6,
            width: 32,
            height: 24,
            seed: 37,
        },
    );
    let mut serve = ClmServe::new(
        registry,
        ServeConfig {
            max_active: 4,
            ..Default::default()
        },
    );
    let ids: Vec<_> = (0..4)
        .map(|i| {
            let scene = if i % 2 == 0 { "a" } else { "b" };
            let mut s = spec(&format!("t{i}"), scene, 80 + i as u64, 5);
            s.backend = BackendChoice::Simulated;
            serve.admit(s).unwrap().id()
        })
        .collect();
    assert_eq!(serve.active_ids().len(), 4);
    serve.run(10_000);
    assert!(serve.all_done());
    for id in ids {
        let s = serve.session(id).unwrap();
        assert_eq!(s.stats.batches, 5);
        assert_eq!(s.state, SessionState::Completed);
        assert!(s.stats.latency.count() == 5 && s.stats.latency.max() > 0.0);
    }
    assert_eq!(serve.stats().batches, 20);
    assert!(serve.virtual_now() > 0.0);
}
