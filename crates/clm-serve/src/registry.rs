//! The scene registry: the fleet of scenes a service instance owns.
//!
//! Tenants reference scenes by name; the registry generates each scene's
//! synthetic dataset and ground-truth images **once** and shares them
//! immutably (`Arc`) across every session training on that scene.  Datasets
//! are pure functions of `(SceneSpec, DatasetConfig)`, so two service
//! replicas registering the same entry serve bit-identical workloads — the
//! property the process-based bench harness and the conformance suite lean
//! on.

use clm_core::ground_truth_images;
use gs_render::Image;
use gs_scene::{generate_dataset, Dataset, DatasetConfig, SceneKind, SceneSpec};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One registered scene: its paper spec, generator configuration, and the
/// generated dataset plus rendered ground-truth targets, shared immutably
/// by every session training on it.
#[derive(Debug)]
pub struct SceneEntry {
    /// Registry name the scene was registered under.
    pub name: String,
    /// The paper scene this dataset mimics.
    pub spec: SceneSpec,
    /// Generator configuration the dataset was built from.
    pub config: DatasetConfig,
    /// The generated synthetic dataset (cameras, ground-truth splats).
    pub dataset: Dataset,
    /// Rendered ground-truth images, one per camera.
    pub targets: Vec<Image>,
}

impl SceneEntry {
    /// Number of camera views in the scene.
    pub fn num_views(&self) -> usize {
        self.dataset.cameras.len()
    }
}

/// A name → scene map with deterministic iteration order.
#[derive(Debug, Default)]
pub struct SceneRegistry {
    scenes: BTreeMap<String, Arc<SceneEntry>>,
}

impl SceneRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Generates and registers a scene under `name`, replacing any previous
    /// entry with that name.  Returns the shared entry.
    pub fn register(
        &mut self,
        name: &str,
        kind: SceneKind,
        config: DatasetConfig,
    ) -> Arc<SceneEntry> {
        let spec = SceneSpec::of(kind);
        let dataset = generate_dataset(&spec, &config);
        let targets = ground_truth_images(&dataset);
        let entry = Arc::new(SceneEntry {
            name: name.to_string(),
            spec,
            config,
            dataset,
            targets,
        });
        self.scenes.insert(name.to_string(), entry.clone());
        entry
    }

    /// Looks a scene up by name.
    pub fn get(&self, name: &str) -> Option<Arc<SceneEntry>> {
        self.scenes.get(name).cloned()
    }

    /// Registered scene names in sorted order.
    pub fn names(&self) -> Vec<&str> {
        self.scenes.keys().map(|s| s.as_str()).collect()
    }

    /// Number of registered scenes.
    pub fn len(&self) -> usize {
        self.scenes.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.scenes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_generates_shared_deterministic_scenes() {
        let config = DatasetConfig {
            num_gaussians: 120,
            num_views: 6,
            width: 24,
            height: 18,
            seed: 5,
        };
        let mut a = SceneRegistry::new();
        let mut b = SceneRegistry::new();
        let ea = a.register("bike", SceneKind::Bicycle, config);
        let eb = b.register("bike", SceneKind::Bicycle, config);
        assert_eq!(ea.num_views(), 6);
        assert_eq!(ea.dataset.ground_truth, eb.dataset.ground_truth);
        assert_eq!(ea.targets, eb.targets);
        // Lookup shares, never regenerates.
        assert!(Arc::ptr_eq(&ea, &a.get("bike").unwrap()));
        assert!(a.get("nope").is_none());
        assert_eq!(a.names(), vec!["bike"]);
        assert_eq!(a.len(), 1);
        assert!(!a.is_empty());
    }
}
