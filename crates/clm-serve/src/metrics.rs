//! Mergeable latency histograms with fixed geometric buckets.
//!
//! The serving layer measures per-session batch latency; the process-based
//! bench harness merges histograms emitted by independent agent processes
//! into one percentile report.  Merging across processes is only exact when
//! every process buckets against the **same fixed boundaries**, so the
//! bucket geometry here is a compile-time constant, never data-dependent:
//! bucket `i` covers `[BASE·2^(i/4), BASE·2^((i+1)/4))` seconds — four
//! buckets per octave from 0.1 µs up past 10⁴ s, which keeps the
//! worst-case quantile error under ≈ 19 % while the exact `min`/`max`/`sum`
//! ride alongside for the tails.

/// Number of fixed buckets (≈ 40 octaves at 4 buckets per octave).
pub const HISTOGRAM_BUCKETS: usize = 160;

/// Lower bound of bucket 0 in seconds (values at or below land in bucket 0).
pub const HISTOGRAM_BASE_SECONDS: f64 = 1e-7;

/// Buckets per factor-of-two of latency.
pub const BUCKETS_PER_OCTAVE: f64 = 4.0;

/// A latency histogram over the fixed geometric bucket grid, mergeable
/// across sessions and across processes.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Index of the fixed bucket a latency (in seconds) falls into.
pub fn bucket_index(seconds: f64) -> usize {
    // NaN routes into bucket 0 alongside everything at or below the base.
    if seconds.is_nan() || seconds <= HISTOGRAM_BASE_SECONDS {
        return 0;
    }
    let i = (BUCKETS_PER_OCTAVE * (seconds / HISTOGRAM_BASE_SECONDS).log2()).floor();
    (i as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// `[lo, hi)` bounds of fixed bucket `i` in seconds.
pub fn bucket_bounds(i: usize) -> (f64, f64) {
    let lo = HISTOGRAM_BASE_SECONDS * 2f64.powf(i as f64 / BUCKETS_PER_OCTAVE);
    let hi = HISTOGRAM_BASE_SECONDS * 2f64.powf((i + 1) as f64 / BUCKETS_PER_OCTAVE);
    (lo, hi)
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: 0.0,
        }
    }

    /// Records one latency sample in seconds.  Negative or NaN samples are
    /// clamped into bucket 0 (they can only arise from clock anomalies and
    /// must not poison the distribution).
    pub fn record(&mut self, seconds: f64) {
        let s = if seconds.is_finite() && seconds > 0.0 {
            seconds
        } else {
            0.0
        };
        self.counts[bucket_index(s)] += 1;
        self.count += 1;
        self.sum += s;
        self.min = self.min.min(s);
        self.max = self.max.max(s);
    }

    /// Merges another histogram into this one (exact: both share the fixed
    /// bucket grid).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples in seconds.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Mean sample in seconds (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Value at quantile `q ∈ [0, 1]`: the geometric midpoint of the bucket
    /// holding the `ceil(q·count)`-th sample, clamped into the exact
    /// observed `[min, max]` range (so `quantile(1.0) == max` and low
    /// quantiles never undershoot the fastest sample).  Returns 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (lo, hi) = bucket_bounds(i);
                let mid = (lo * hi).sqrt();
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Sparse `(bucket, count)` pairs for every non-empty bucket, ascending.
    pub fn sparse_buckets(&self) -> Vec<(usize, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Rebuilds a histogram from the summary fields and sparse buckets of a
    /// serialised one (the harness-side merge path).  Returns `None` when
    /// the parts are inconsistent: a bucket index out of range or bucket
    /// counts that do not sum to `count`.
    pub fn from_sparse(
        count: u64,
        sum: f64,
        min: f64,
        max: f64,
        buckets: &[(usize, u64)],
    ) -> Option<Self> {
        let mut h = LatencyHistogram::new();
        let mut total = 0u64;
        for &(i, c) in buckets {
            if i >= HISTOGRAM_BUCKETS {
                return None;
            }
            h.counts[i] += c;
            total += c;
        }
        if total != count {
            return None;
        }
        h.count = count;
        h.sum = sum;
        h.min = if count == 0 { f64::INFINITY } else { min };
        h.max = max;
        Some(h)
    }

    /// Single-line JSON fragment (`{"count":…,"sum_s":…,…,"buckets":[[i,c],…]}`)
    /// used by the agent binaries.
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> = self
            .sparse_buckets()
            .iter()
            .map(|(i, c)| format!("[{i},{c}]"))
            .collect();
        // `{}` on f64 prints the shortest representation that round-trips
        // exactly, so a parsed histogram compares equal to the original.
        format!(
            "{{\"count\":{},\"sum_s\":{},\"min_s\":{},\"max_s\":{},\"buckets\":[{}]}}",
            self.count,
            self.sum,
            self.min(),
            self.max,
            buckets.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_grid_is_monotone_and_covers_the_range() {
        let mut prev_hi = 0.0;
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo < hi);
            assert!(lo >= prev_hi * 0.999_999);
            prev_hi = hi;
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(1e9), HISTOGRAM_BUCKETS - 1);
        // Every positive value lands in the bucket whose bounds contain it.
        for &v in &[1e-7, 3e-6, 0.004, 1.0, 17.5, 900.0] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(v <= hi && (v >= lo || bucket_index(v) == 0), "{v}");
        }
    }

    #[test]
    fn quantiles_bracket_the_samples() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000 {
            h.record(i as f64 * 1e-3); // 1 ms .. 1 s
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!((p50 - 0.5).abs() / 0.5 < 0.2, "p50 ≈ 0.5 s, got {p50}");
        assert!((p99 - 0.99).abs() / 0.99 < 0.2, "p99 ≈ 0.99 s, got {p99}");
        assert!(p50 <= p99);
        assert_eq!(h.quantile(1.0), h.max());
        assert!(h.quantile(0.0) >= h.min());
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let samples_a = [1e-4, 2e-4, 5e-3, 0.7];
        let samples_b = [3e-5, 0.02, 0.02, 4.0, 11.0];
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for &s in &samples_a {
            a.record(s);
            whole.record(s);
        }
        for &s in &samples_b {
            b.record(s);
            whole.record(s);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn sparse_round_trip_preserves_the_histogram() {
        let mut h = LatencyHistogram::new();
        for &s in &[1e-5, 1e-5, 0.3, 2.0, 2.1] {
            h.record(s);
        }
        let rebuilt = LatencyHistogram::from_sparse(
            h.count(),
            h.sum(),
            h.min(),
            h.max(),
            &h.sparse_buckets(),
        )
        .expect("consistent parts");
        assert_eq!(rebuilt, h);
        // Inconsistent parts are refused.
        assert!(LatencyHistogram::from_sparse(3, 0.0, 0.0, 0.0, &[(0, 2)]).is_none());
        assert!(
            LatencyHistogram::from_sparse(1, 0.0, 0.0, 0.0, &[(HISTOGRAM_BUCKETS, 1)]).is_none()
        );
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert!(h.sparse_buckets().is_empty());
    }
}
