//! The multi-tenant training service.
//!
//! [`ClmServe`] owns a [`SceneRegistry`], a bounded set of active
//! [`Session`]s multiplexed over the shared device timeline by a
//! [`DeficitScheduler`], and a FIFO admission queue for tenants waiting on
//! an active slot.  One call to [`ClmServe::step`] runs exactly one batch
//! of whichever session the scheduler picks; [`ClmServe::run`] steps until
//! every admitted session completes.
//!
//! Time: the service keeps a **virtual clock** advanced by each batch's
//! simulated makespan (falling back to wall-clock for backends without a
//! simulated timeline).  Per-batch latency is `completion − ready`, so a
//! session that waits behind other tenants sees its queue delay in its own
//! histogram — that is the quantity the fairness bound constrains.
//!
//! Memory: admission converts a tenant's pinned staging budget into a cap
//! on simultaneously leased staging buffers (worst-case buffer size ×
//! count), clamps the granted prefetch window below the cap so the budget
//! holds **by construction**, installs the cap as the pool's
//! `capacity_limit` backstop, and audits the pool's high-water mark after
//! every batch.

use crate::metrics::LatencyHistogram;
use crate::registry::{SceneEntry, SceneRegistry};
use crate::scheduler::{DeficitScheduler, FairnessConfig};
use crate::session::{
    Backend, EvictedState, Session, SessionId, SessionState, SessionStats, TenantSpec,
};
use clm_trace::Checkpoint;
use std::collections::{BTreeMap, VecDeque};
use std::time::Instant;

/// Service-level configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum concurrently active (backend-owning) sessions.
    pub max_active: usize,
    /// Maximum sessions waiting in the admission queue (`0` = reject when
    /// all active slots are taken).
    pub max_queued: usize,
    /// Fairness scheduler knobs.
    pub fairness: FairnessConfig,
    /// Pinned staging budget applied to tenants that do not declare one,
    /// in bytes.  `None` leaves such tenants uncapped.
    pub default_staging_budget: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_active: 4,
            max_queued: 16,
            fairness: FairnessConfig::default(),
            default_staging_budget: None,
        }
    }
}

/// Why an admission request was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// The spec references a scene the registry does not hold.
    UnknownScene(String),
    /// Active slots and the admission queue are both full.
    Saturated,
    /// The declared staging budget cannot hold even one worst-case staging
    /// buffer for this scene/densification cap.
    BudgetTooSmall {
        /// Budget the tenant declared (or inherited), in bytes.
        budget: u64,
        /// Worst-case bytes of a single staging buffer for the spec.
        needed: u64,
    },
    /// The spec's weight is zero, negative, or non-finite.
    BadWeight,
    /// The spec asks for zero batches.
    EmptyJob,
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::UnknownScene(s) => write!(f, "unknown scene {s:?}"),
            AdmitError::Saturated => write!(f, "service saturated: active slots and queue full"),
            AdmitError::BudgetTooSmall { budget, needed } => write!(
                f,
                "staging budget {budget} B below one worst-case buffer ({needed} B)"
            ),
            AdmitError::BadWeight => write!(f, "weight must be finite and > 0"),
            AdmitError::EmptyJob => write!(f, "target_batches must be > 0"),
        }
    }
}

impl std::error::Error for AdmitError {}

/// Where an admitted session landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The session got an active slot immediately.
    Active(SessionId),
    /// The session is waiting in the admission queue.
    Queued(SessionId),
}

impl Admission {
    /// The admitted session's id, wherever it landed.
    pub fn id(&self) -> SessionId {
        match *self {
            Admission::Active(id) | Admission::Queued(id) => id,
        }
    }
}

/// What one service step did.
#[derive(Debug, Clone, PartialEq)]
pub enum StepOutcome {
    /// Ran one batch of the named session.
    Ran {
        /// Session that ran.
        id: SessionId,
        /// Virtual device seconds the batch cost.
        cost: f64,
        /// Whether the batch finished the session.
        completed: bool,
    },
    /// No active session has work (all completed, evicted, or the ring is
    /// empty).
    Idle,
}

/// Service-wide counters.
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Total batches executed across all sessions.
    pub batches: u64,
    /// Sessions admitted (active or queued).
    pub admitted: u64,
    /// Admission requests rejected.
    pub rejected: u64,
    /// Evictions performed.
    pub evictions: u64,
    /// Resumes performed.
    pub resumes: u64,
    /// Sessions cancelled.
    pub cancelled: u64,
    /// Sessions run to completion.
    pub completed: u64,
}

/// A long-running multi-tenant training service instance.
#[derive(Debug)]
pub struct ClmServe {
    config: ServeConfig,
    registry: SceneRegistry,
    sessions: BTreeMap<SessionId, Session>,
    scheduler: DeficitScheduler,
    queue: VecDeque<SessionId>,
    virtual_now: f64,
    next_id: u64,
    stats: ServeStats,
    epoch: Instant,
}

impl ClmServe {
    /// A service over the given registry.
    pub fn new(registry: SceneRegistry, config: ServeConfig) -> Self {
        ClmServe {
            scheduler: DeficitScheduler::new(config.fairness.clone()),
            config,
            registry,
            sessions: BTreeMap::new(),
            queue: VecDeque::new(),
            virtual_now: 0.0,
            next_id: 0,
            stats: ServeStats::default(),
            epoch: Instant::now(),
        }
    }

    /// The scene registry (for registering additional scenes live).
    pub fn registry_mut(&mut self) -> &mut SceneRegistry {
        &mut self.registry
    }

    /// The scene registry.
    pub fn registry(&self) -> &SceneRegistry {
        &self.registry
    }

    /// Service-wide counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Current virtual time in device seconds.
    pub fn virtual_now(&self) -> f64 {
        self.virtual_now
    }

    /// A session by id.
    pub fn session(&self, id: SessionId) -> Option<&Session> {
        self.sessions.get(&id)
    }

    /// All session ids in admission order.
    pub fn session_ids(&self) -> Vec<SessionId> {
        self.sessions.keys().copied().collect()
    }

    /// Ids of sessions currently holding active slots.
    pub fn active_ids(&self) -> Vec<SessionId> {
        self.sessions
            .values()
            .filter(|s| s.state == SessionState::Active)
            .map(|s| s.id)
            .collect()
    }

    /// Whether every admitted session has completed or been cancelled.
    pub fn all_done(&self) -> bool {
        self.queue.is_empty()
            && self
                .sessions
                .values()
                .all(|s| matches!(s.state, SessionState::Completed | SessionState::Cancelled))
    }

    /// Admits a tenant: validates the spec, charges its staging budget, and
    /// either activates it (free slot) or queues it.
    pub fn admit(&mut self, spec: TenantSpec) -> Result<Admission, AdmitError> {
        let scene = match self.registry.get(&spec.scene) {
            Some(s) => s,
            None => {
                self.stats.rejected += 1;
                return Err(AdmitError::UnknownScene(spec.scene.clone()));
            }
        };
        if !(spec.weight.is_finite() && spec.weight > 0.0) {
            self.stats.rejected += 1;
            return Err(AdmitError::BadWeight);
        }
        if spec.target_batches == 0 {
            self.stats.rejected += 1;
            return Err(AdmitError::EmptyJob);
        }
        let budget = spec
            .staging_budget_bytes
            .or(self.config.default_staging_budget);
        let (max_buffers, granted_window) = match budget {
            Some(bytes) => {
                let per = spec.buffer_bytes().max(1);
                let max_buffers = (bytes / per) as usize;
                if max_buffers == 0 {
                    self.stats.rejected += 1;
                    return Err(AdmitError::BudgetTooSmall {
                        budget: bytes,
                        needed: per,
                    });
                }
                // The pool stages the in-flight batch plus the lookahead,
                // so a window of `w` can lease `w + 1` buffers at once.
                (max_buffers, spec.prefetch_window.min(max_buffers - 1))
            }
            None => (usize::MAX, spec.prefetch_window),
        };
        let active_count = self.active_ids().len();
        let has_slot = active_count < self.config.max_active;
        if !has_slot && self.queue.len() >= self.config.max_queued {
            self.stats.rejected += 1;
            return Err(AdmitError::Saturated);
        }

        let id = SessionId(self.next_id);
        self.next_id += 1;
        let mut session = Session {
            id,
            spec,
            scene,
            state: SessionState::Queued,
            backend: None,
            evicted: None,
            stats: SessionStats::default(),
            ready_at: self.virtual_now,
            max_staging_buffers: max_buffers,
            granted_window,
        };
        self.stats.admitted += 1;
        if has_slot {
            self.activate(&mut session, None);
            self.sessions.insert(id, session);
            Ok(Admission::Active(id))
        } else {
            self.sessions.insert(id, session);
            self.queue.push_back(id);
            Ok(Admission::Queued(id))
        }
    }

    /// Gives a session a backend (fresh, or restored from its checkpoint)
    /// and puts it in the scheduler ring.
    fn activate(&mut self, session: &mut Session, restored: Option<clm_core::Trainer>) {
        session.backend = Some(session.build_backend(restored));
        session.state = SessionState::Active;
        session.ready_at = self.virtual_now;
        self.scheduler.add(session.id, session.spec.weight);
    }

    /// Runs one batch of whichever active session the fairness scheduler
    /// picks, advancing the virtual clock by its cost.
    pub fn step(&mut self) -> StepOutcome {
        let id = match self.scheduler.pick() {
            None => return StepOutcome::Idle,
            Some(id) => {
                // Sessions can only leave the ring via evict/complete/
                // cancel (which call remove), so a pick is always live.
                debug_assert!(self.sessions.contains_key(&id));
                id
            }
        };

        let session = self
            .sessions
            .get_mut(&id)
            .expect("scheduled session exists");
        let slice = session.next_slice();
        let cameras = &session.scene.dataset.cameras[slice.clone()];
        let targets = &session.scene.targets[slice];
        let backend = session
            .backend
            .as_mut()
            .expect("active session has backend");
        let wall_start = Instant::now();
        let report = backend.execute_batch(cameras, targets);
        let wall = wall_start.elapsed().as_secs_f64();
        let cost = report.sim_makespan.unwrap_or(report.wall_seconds).max(0.0);

        self.virtual_now += cost;
        session.stats.batches += 1;
        session.stats.served_cost += cost;
        session.stats.last_cost = cost;
        session
            .stats
            .latency
            .record(self.virtual_now - session.ready_at);
        session.stats.wall_latency.record(wall);
        session.ready_at = self.virtual_now;
        if session.max_staging_buffers != usize::MAX {
            let stats = session.backend.as_ref().expect("still active").pool_stats();
            if stats.high_water_buffers > session.max_staging_buffers {
                session.stats.budget_violations += 1;
            }
        }
        self.stats.batches += 1;
        self.scheduler.charge(id, cost);

        let completed = session.is_done();
        if completed {
            // Keep the final state as `.clmckpt` bytes so results outlive
            // the backend (and tests can assert on them).
            session.evicted = Some(session.capture());
            session.state = SessionState::Completed;
            session.backend = None;
            self.scheduler.remove(id);
            self.stats.completed += 1;
            self.promote_queued();
        }
        StepOutcome::Ran {
            id,
            cost,
            completed,
        }
    }

    /// Steps until every admitted session completes (or `max_steps` batches
    /// have run, as a runaway guard).  Returns the number of batches run.
    pub fn run(&mut self, max_steps: u64) -> u64 {
        let mut ran = 0;
        while ran < max_steps && !self.all_done() {
            match self.step() {
                StepOutcome::Ran { .. } => ran += 1,
                StepOutcome::Idle => break,
            }
        }
        ran
    }

    /// Evicts an active session: captures its trainer into `.clmckpt`
    /// bytes, drops the backend (batch boundaries are drain points in every
    /// backend, so there is no in-flight state to lose), frees the slot and
    /// promotes the longest-waiting queued session.
    pub fn evict(&mut self, id: SessionId) -> Result<(), ServeError> {
        let session = self
            .sessions
            .get_mut(&id)
            .ok_or(ServeError::NoSuchSession(id))?;
        if session.state != SessionState::Active {
            return Err(ServeError::NotActive(id, session.state));
        }
        let evicted = session.capture();
        session.evicted = Some(evicted);
        session.backend = None;
        session.state = SessionState::Evicted;
        session.stats.evictions += 1;
        self.scheduler.remove(id);
        self.stats.evictions += 1;
        self.promote_queued();
        Ok(())
    }

    /// Resumes an evicted session into a free active slot, restoring its
    /// trainer from the `.clmckpt` bytes (bit-identical to the state at
    /// eviction) and re-entering it into the scheduler ring.
    pub fn resume(&mut self, id: SessionId) -> Result<(), ServeError> {
        {
            let session = self
                .sessions
                .get(&id)
                .ok_or(ServeError::NoSuchSession(id))?;
            if session.state != SessionState::Evicted {
                return Err(ServeError::NotEvicted(id, session.state));
            }
        }
        if self.active_ids().len() >= self.config.max_active {
            return Err(ServeError::NoFreeSlot);
        }
        let mut session = self.sessions.remove(&id).expect("checked above");
        let evicted = session.evicted.as_ref().expect("evicted session has state");
        let ckpt = Checkpoint::decode(&evicted.checkpoint)
            .map_err(|e| ServeError::RestoreFailed(id, format!("{e:?}")))?;
        let trainer = ckpt
            .restore(session.spec.train.clone())
            .map_err(|e| ServeError::RestoreFailed(id, format!("{e:?}")))?;
        self.activate(&mut session, Some(trainer));
        session.evicted = None;
        session.stats.resumes += 1;
        self.stats.resumes += 1;
        self.sessions.insert(id, session);
        Ok(())
    }

    /// Cancels a session in any live state; its backend and checkpoint are
    /// dropped and nothing survives.
    pub fn cancel(&mut self, id: SessionId) -> Result<(), ServeError> {
        let session = self
            .sessions
            .get_mut(&id)
            .ok_or(ServeError::NoSuchSession(id))?;
        match session.state {
            SessionState::Completed | SessionState::Cancelled => {
                return Err(ServeError::NotActive(id, session.state));
            }
            SessionState::Active => self.scheduler.remove(id),
            SessionState::Queued => self.queue.retain(|&q| q != id),
            SessionState::Evicted => {}
        }
        let session = self.sessions.get_mut(&id).expect("still present");
        let was_active = session.state == SessionState::Active;
        session.state = SessionState::Cancelled;
        session.backend = None;
        session.evicted = None;
        self.stats.cancelled += 1;
        if was_active {
            self.promote_queued();
        }
        Ok(())
    }

    /// Moves queued sessions into free active slots, FIFO.
    fn promote_queued(&mut self) {
        while self.active_ids().len() < self.config.max_active {
            let Some(id) = self.queue.pop_front() else {
                break;
            };
            let mut session = self.sessions.remove(&id).expect("queued session exists");
            if session.state != SessionState::Queued {
                self.sessions.insert(id, session);
                continue;
            }
            // Latency clock: the wait in the admission queue counts toward
            // the first batch's latency, so ready_at stays at admission.
            let ready = session.ready_at;
            self.activate(&mut session, None);
            session.ready_at = ready;
            self.sessions.insert(id, session);
        }
    }

    /// Wall-clock seconds since the service instance was created.
    pub fn uptime(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// A latency histogram merging every session's virtual-timeline
    /// distribution.
    pub fn merged_latency(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for s in self.sessions.values() {
            h.merge(&s.stats.latency);
        }
        h
    }

    /// Convenience accessor used by tests: the shared scene entry of a
    /// session.
    pub fn scene_of(&self, id: SessionId) -> Option<&SceneEntry> {
        self.sessions.get(&id).map(|s| &*s.scene)
    }
}

/// Errors from lifecycle operations on existing sessions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No session with that id.
    NoSuchSession(SessionId),
    /// Operation requires an active session.
    NotActive(SessionId, SessionState),
    /// Operation requires an evicted session.
    NotEvicted(SessionId, SessionState),
    /// All active slots are occupied.
    NoFreeSlot,
    /// Checkpoint decode/restore failed.
    RestoreFailed(SessionId, String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::NoSuchSession(id) => write!(f, "no session {id}"),
            ServeError::NotActive(id, s) => write!(f, "session {id} is {s:?}, not Active"),
            ServeError::NotEvicted(id, s) => write!(f, "session {id} is {s:?}, not Evicted"),
            ServeError::NoFreeSlot => write!(f, "no free active slot"),
            ServeError::RestoreFailed(id, e) => write!(f, "restoring session {id}: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// The allocated backend variant of a session, exposed for tests that
/// inspect trainers directly.
pub fn backend_of(session: &Session) -> Option<&Backend> {
    session.backend.as_ref()
}

/// The evicted-state bytes of a session, exposed for tests that check the
/// `.clmckpt` container directly.
pub fn evicted_of(session: &Session) -> Option<&EvictedState> {
    session.evicted.as_ref()
}
