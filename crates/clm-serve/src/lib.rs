//! `clm-serve` — a long-running multi-tenant training service over the CLM
//! runtime.
//!
//! One service instance owns a fleet of scenes behind a [`SceneRegistry`]
//! and multiplexes per-tenant training [`Session`]s over the shared device
//! timeline: each [`ClmServe::step`] call runs one batch of whichever
//! session the weighted deficit-round-robin [`DeficitScheduler`] picks, so
//! under contention every tenant receives virtual device time proportional
//! to its weight (within one maximum batch cost — the classic DRR bound).
//!
//! The capacity policies are built from mechanisms the lower layers already
//! guarantee:
//!
//! * **Admission control** — a bounded active set plus a FIFO queue;
//!   oversubscribed tenants wait, and their queue delay shows up in their
//!   own latency histogram.
//! * **Memory bounds** — a tenant's pinned staging budget becomes a cap on
//!   simultaneously leased staging buffers: the granted prefetch window is
//!   clamped under the cap (the budget holds by construction), the pool's
//!   `capacity_limit` backstops it, and the high-water mark is audited
//!   after every batch.
//! * **Evict/resume** — cold sessions are captured into the `.clmckpt`
//!   container and later restored **bit-identically**; batch boundaries are
//!   drain points in every backend, so eviction never loses in-flight work.
//!
//! Latency is measured on a service-level virtual clock advanced by each
//! batch's simulated makespan, which makes the whole schedule — and the
//! fairness and starvation tests built on it — deterministic with the
//! simulated backend.

#![warn(missing_docs)]

pub mod metrics;
pub mod registry;
pub mod scheduler;
pub mod service;
pub mod session;

pub use metrics::{
    bucket_bounds, bucket_index, LatencyHistogram, BUCKETS_PER_OCTAVE, HISTOGRAM_BASE_SECONDS,
    HISTOGRAM_BUCKETS,
};
pub use registry::{SceneEntry, SceneRegistry};
pub use scheduler::{DeficitScheduler, FairnessConfig};
pub use service::{
    Admission, AdmitError, ClmServe, ServeConfig, ServeError, ServeStats, StepOutcome,
};
pub use session::{
    Backend, BackendChoice, EvictedState, Session, SessionId, SessionState, SessionStats,
    TenantSpec,
};
