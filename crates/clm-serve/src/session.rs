//! Tenant sessions: one per-tenant training job and its lifecycle.
//!
//! A session moves through `Queued → Active → (Evicted ⇄ Active) →
//! Completed | Cancelled`.  While active it owns an execution backend
//! (simulated or threaded) built over the registry's shared scene data;
//! while evicted only its `.clmckpt` bytes and warm-start ratio survive,
//! so a resumed session continues **bit-identically** — the same invariant
//! the chaos suite proves for kill/restore, applied as a capacity policy.

use crate::metrics::LatencyHistogram;
use crate::registry::SceneEntry;
use clm_core::TrainConfig;
use clm_runtime::pool::ROW_BYTES;
use clm_runtime::{
    ExecutionBackend, ExecutionReport, PipelinedEngine, PoolStats, RuntimeConfig, ThreadedBackend,
    ThreadedConfig,
};
use clm_trace::Checkpoint;
use gs_scene::{init_from_point_cloud, InitConfig};
use std::sync::Arc;

/// Stable identifier of a session within one service instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Which execution backend a session trains on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendChoice {
    /// [`PipelinedEngine`]: deterministic simulated device time — the
    /// default, and the only choice whose batch costs (and therefore the
    /// fairness scheduler's virtual timeline) are bit-reproducible.
    #[default]
    Simulated,
    /// [`ThreadedBackend`]: real worker threads, measured wall-clock costs.
    Threaded,
}

/// Everything a tenant declares when asking for a session.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant name (reporting only; uniqueness is not required).
    pub tenant: String,
    /// Registry name of the scene to train.
    pub scene: String,
    /// Fair-share weight (> 0): a weight-2 tenant receives twice the
    /// virtual device time of a weight-1 tenant under contention.
    pub weight: f64,
    /// Execution backend for the session.
    pub backend: BackendChoice,
    /// Training configuration (seed, batch size, system, densify schedule).
    pub train: TrainConfig,
    /// Point-cloud initialisation of the session's model.
    pub init: InitConfig,
    /// Total batches the session wants to train.
    pub target_batches: usize,
    /// Requested prefetch lookahead window (may be clamped by the memory
    /// budget).
    pub prefetch_window: usize,
    /// Pinned staging-memory budget in bytes (`None` = the service
    /// default).  Enforced as a cap on simultaneously leased staging
    /// buffers via [`PinnedBufferPool`](clm_runtime::PinnedBufferPool)
    /// accounting.
    pub staging_budget_bytes: Option<u64>,
    /// Multiplier on the simulated backend's timeline costs (reduced-scale
    /// scenes are latency-dominated; this recovers the paper-scale,
    /// bandwidth-bound regime per tenant).  Ignored by the threaded
    /// backend, whose costs are measured wall-clock.
    pub cost_scale: f64,
}

impl TenantSpec {
    /// A minimal spec with defaults: weight 1, simulated backend, window 2,
    /// no explicit budget.
    pub fn new(tenant: &str, scene: &str, train: TrainConfig, init: InitConfig) -> Self {
        TenantSpec {
            tenant: tenant.to_string(),
            scene: scene.to_string(),
            weight: 1.0,
            backend: BackendChoice::Simulated,
            train,
            init,
            target_batches: 1,
            prefetch_window: 2,
            staging_budget_bytes: None,
            cost_scale: 1.0,
        }
    }

    /// Upper bound on the rows one staged gather can carry: the largest
    /// model this session can ever hold (its densification cap, or the
    /// initial size when it never densifies).
    pub fn max_model_rows(&self) -> usize {
        self.train
            .densify
            .as_ref()
            .map(|d| d.config.max_gaussians)
            .unwrap_or(self.init.num_gaussians)
            .max(self.init.num_gaussians)
    }

    /// Worst-case bytes of one pinned staging buffer for this session.
    pub fn buffer_bytes(&self) -> u64 {
        (self.max_model_rows() * ROW_BYTES) as u64
    }
}

/// Lifecycle state of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Admitted but waiting for an active slot.
    Queued,
    /// Owns a backend and is schedulable.
    Active,
    /// Checkpointed to `.clmckpt` bytes; backend released.
    Evicted,
    /// Reached its target batch count.
    Completed,
    /// Cancelled mid-run; no state survives.
    Cancelled,
}

/// Per-session counters and latency distributions.
#[derive(Debug, Clone, Default)]
pub struct SessionStats {
    /// Batches trained so far (survives evict/resume).
    pub batches: u64,
    /// Times the session was evicted to a checkpoint.
    pub evictions: u64,
    /// Times the session was resumed from a checkpoint.
    pub resumes: u64,
    /// Batches whose pool high-water mark exceeded the admitted budget
    /// (must stay 0; a violation means the window clamp math is wrong).
    pub budget_violations: u64,
    /// Virtual device seconds consumed by the session's batches.
    pub served_cost: f64,
    /// Cost of the session's most recent batch (the scheduler's estimate
    /// for its next one).
    pub last_cost: f64,
    /// Per-batch latency on the shared virtual timeline: completion time
    /// minus the instant the session became ready (queue wait + service).
    pub latency: LatencyHistogram,
    /// Wall-clock seconds per batch, measured on the host.
    pub wall_latency: LatencyHistogram,
}

/// The state an evicted session keeps: its encoded checkpoint and the
/// adaptive-window ratio to warm-start the resumed backend with.
#[derive(Debug, Clone)]
pub struct EvictedState {
    /// Encoded `.clmckpt` container bytes.
    pub checkpoint: Vec<u8>,
    /// Warm-start ratio captured from the evicted backend's window
    /// selector, if it had observed one.
    pub warm_start_ratio: Option<f64>,
}

/// An active session's execution backend.
pub enum Backend {
    /// Simulated discrete-event engine.
    Simulated(PipelinedEngine),
    /// Threaded wall-clock backend.
    Threaded(ThreadedBackend),
}

impl Backend {
    /// Executes one batch through the common backend trait.
    pub fn execute_batch(
        &mut self,
        cameras: &[gs_core::camera::Camera],
        targets: &[gs_render::Image],
    ) -> ExecutionReport {
        match self {
            Backend::Simulated(e) => e.execute_batch(cameras, targets),
            Backend::Threaded(e) => e.execute_batch(cameras, targets),
        }
    }

    /// The wrapped trainer.
    pub fn trainer(&self) -> &clm_core::Trainer {
        match self {
            Backend::Simulated(e) => e.trainer(),
            Backend::Threaded(e) => e.trainer(),
        }
    }

    /// Staging-pool statistics.
    pub fn pool_stats(&self) -> PoolStats {
        match self {
            Backend::Simulated(e) => e.pool_stats(),
            Backend::Threaded(e) => e.pool_stats(),
        }
    }

    /// Ratio tracked by the adaptive-window selector, for checkpointing.
    pub fn warm_start_ratio(&self) -> Option<f64> {
        let selector = match self {
            Backend::Simulated(e) => e.window_selector(),
            Backend::Threaded(e) => e.window_selector(),
        };
        selector.smoothed_ratio().filter(|r| r.is_finite())
    }
}

impl std::fmt::Debug for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Simulated(_) => write!(f, "Backend::Simulated"),
            Backend::Threaded(_) => write!(f, "Backend::Threaded"),
        }
    }
}

/// One tenant's training job inside the service.
#[derive(Debug)]
pub struct Session {
    /// The session's identifier.
    pub id: SessionId,
    /// The tenant's declared spec.
    pub spec: TenantSpec,
    /// Shared scene data the session trains on.
    pub scene: Arc<SceneEntry>,
    /// Lifecycle state.
    pub state: SessionState,
    /// The backend, when [`SessionState::Active`].
    pub backend: Option<Backend>,
    /// Checkpoint bytes, when [`SessionState::Evicted`] (or queued for
    /// resume).
    pub evicted: Option<EvictedState>,
    /// Counters and latency distributions.
    pub stats: SessionStats,
    /// Virtual instant the session last became ready to run (admission,
    /// resume, or its previous batch's completion).
    pub ready_at: f64,
    /// Admitted cap on simultaneously leased staging buffers.
    pub max_staging_buffers: usize,
    /// Prefetch window actually granted (requested, clamped by budget).
    pub granted_window: usize,
}

impl Session {
    /// Whether the session has trained all its target batches.
    pub fn is_done(&self) -> bool {
        self.stats.batches as usize >= self.spec.target_batches
    }

    /// The camera/target range of the session's next batch: epoch slices of
    /// `batch_size` views, derived from the trainer's own batch cursor so
    /// evict/resume cannot skip or repeat a slice.
    pub fn next_slice(&self) -> std::ops::Range<usize> {
        let views = self.scene.num_views();
        let batch = self.spec.train.batch_size.max(1).min(views);
        let per_epoch = views.div_ceil(batch);
        let cursor = self
            .backend
            .as_ref()
            .map(|b| b.trainer().batches_trained())
            .unwrap_or(self.stats.batches as usize);
        let i = cursor % per_epoch;
        let start = i * batch;
        start..(start + batch).min(views)
    }

    /// Builds the session's backend from scratch (fresh model) or from a
    /// restored trainer, applying the granted window, the budget cap and
    /// the warm-start ratio.
    ///
    /// Both backends adopt the host's autotuned *scheduling* knobs (lane
    /// fan-outs, Adam chunk size) as their base configuration.  The
    /// prefetch window stays the service's granted one — it is an admission
    /// decision, not a host property — and `band_height` stays whatever the
    /// tenant's `TrainConfig` declares (`band_height: 0` below): it is part
    /// of the numeric contract, and a restored trainer must continue
    /// bit-identically to its pre-eviction trajectory.
    pub fn build_backend(&self, restored: Option<clm_core::Trainer>) -> Backend {
        let warm = self.evicted.as_ref().and_then(|e| e.warm_start_ratio);
        match self.spec.backend {
            BackendChoice::Simulated => {
                let config = RuntimeConfig {
                    prefetch_window: self.granted_window,
                    warm_start_ratio: warm,
                    cost_scale: self.spec.cost_scale,
                    pixel_cost_scale: self.spec.cost_scale,
                    band_height: 0,
                    ..RuntimeConfig::autotuned()
                };
                let mut engine = match restored {
                    Some(trainer) => PipelinedEngine::with_trainer(trainer, config),
                    None => {
                        let init = init_from_point_cloud(
                            &self.scene.dataset.ground_truth,
                            &self.spec.init,
                        );
                        PipelinedEngine::new(init, self.spec.train.clone(), config)
                    }
                };
                engine.set_staging_capacity(Some(self.max_staging_buffers));
                Backend::Simulated(engine)
            }
            BackendChoice::Threaded => {
                let config = ThreadedConfig {
                    prefetch_window: self.granted_window,
                    warm_start_ratio: warm,
                    band_height: 0,
                    ..ThreadedConfig::autotuned()
                };
                let mut backend = match restored {
                    Some(trainer) => ThreadedBackend::with_trainer(trainer, config),
                    None => {
                        let init = init_from_point_cloud(
                            &self.scene.dataset.ground_truth,
                            &self.spec.init,
                        );
                        ThreadedBackend::new(init, self.spec.train.clone(), config)
                    }
                };
                backend.set_staging_capacity(Some(self.max_staging_buffers));
                Backend::Threaded(backend)
            }
        }
    }

    /// Captures the active backend into an [`EvictedState`].
    ///
    /// # Panics
    /// Panics if the session has no backend.
    pub fn capture(&self) -> EvictedState {
        let backend = self.backend.as_ref().expect("capture needs a backend");
        let warm = backend.warm_start_ratio();
        EvictedState {
            checkpoint: Checkpoint::capture(backend.trainer(), warm).encode(),
            warm_start_ratio: warm,
        }
    }
}
