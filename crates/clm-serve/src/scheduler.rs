//! Weighted deficit-round-robin scheduling across active sessions.
//!
//! Every session carries a deficit counter in **virtual device seconds**.
//! Each round-robin visit tops the counter up by `quantum × weight`; a
//! session runs while its credit covers the estimated cost of its next
//! batch, and the actual cost is charged afterwards.  Over any contention
//! interval each tenant therefore receives device time proportional to its
//! weight (the classic DRR bound: per-tenant service error ≤ one maximum
//! batch cost), which is what the two-tenant starvation test pins down.
//!
//! The scheduler is deliberately pure state-machine code — no clocks, no
//! randomness — so that with the simulated backend the whole service
//! schedule is bit-reproducible from the tenant specs alone.

use crate::session::SessionId;
use std::collections::BTreeMap;

/// Tuning knobs for the fairness scheduler.
#[derive(Debug, Clone)]
pub struct FairnessConfig {
    /// Deficit replenished per visit for a weight-1.0 session, in virtual
    /// device seconds.  `0.0` selects an adaptive quantum equal to the
    /// largest batch cost seen so far, which guarantees progress without
    /// knowing batch costs up front.
    pub quantum: f64,
}

impl Default for FairnessConfig {
    fn default() -> Self {
        FairnessConfig { quantum: 0.0 }
    }
}

/// Deficit-round-robin scheduler over the set of active sessions.
#[derive(Debug, Default)]
pub struct DeficitScheduler {
    config: FairnessConfig,
    /// Round-robin ring of `(session, weight)` in admission order.
    ring: Vec<(SessionId, f64)>,
    /// Next ring position to visit.
    cursor: usize,
    /// Unspent credit per session, in virtual device seconds.
    deficits: BTreeMap<SessionId, f64>,
    /// Estimated cost of each session's next batch (its last actual cost).
    estimates: BTreeMap<SessionId, f64>,
    /// Largest actual batch cost charged so far (adaptive quantum).
    max_cost_seen: f64,
}

impl DeficitScheduler {
    /// A scheduler with the given fairness configuration.
    pub fn new(config: FairnessConfig) -> Self {
        DeficitScheduler {
            config,
            ..Default::default()
        }
    }

    /// Number of sessions in the ring.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The quantum currently in effect for a weight-1.0 session.
    pub fn effective_quantum(&self) -> f64 {
        if self.config.quantum > 0.0 {
            self.config.quantum
        } else if self.max_cost_seen > 0.0 {
            self.max_cost_seen
        } else {
            1.0
        }
    }

    /// Adds a session to the ring with the given weight (clamped to a
    /// small positive floor).  Its deficit starts at zero: newcomers earn
    /// credit at the same rate as everyone else, they do not jump queues.
    pub fn add(&mut self, id: SessionId, weight: f64) {
        let weight = if weight.is_finite() && weight > 0.0 {
            weight
        } else {
            1.0
        };
        self.ring.push((id, weight));
        self.deficits.insert(id, 0.0);
        self.estimates.insert(id, 0.0);
    }

    /// Removes a session (eviction, completion, cancellation).  Unspent
    /// deficit is forfeited — a session cannot bank credit across an
    /// eviction.
    pub fn remove(&mut self, id: SessionId) {
        if let Some(pos) = self.ring.iter().position(|&(s, _)| s == id) {
            self.ring.remove(pos);
            if pos < self.cursor {
                self.cursor -= 1;
            }
            if !self.ring.is_empty() {
                self.cursor %= self.ring.len();
            } else {
                self.cursor = 0;
            }
        }
        self.deficits.remove(&id);
        self.estimates.remove(&id);
    }

    /// Picks the next session to run one batch.  Visits the ring from the
    /// cursor; a session with enough credit to cover its estimated next
    /// batch cost is returned **without** advancing the cursor (DRR keeps
    /// serving a session while its credit lasts), otherwise its deficit is
    /// topped up by `quantum × weight` and the cursor advances.  Returns
    /// `None` when the ring is empty.
    pub fn pick(&mut self) -> Option<SessionId> {
        if self.ring.is_empty() {
            return None;
        }
        let quantum = self.effective_quantum();
        // Each full lap tops every deficit up by at least quantum×weight,
        // so at most ceil(estimate / (quantum×weight)) laps are needed;
        // the bound below only trips on internal accounting bugs.
        for _ in 0..10_000 * self.ring.len() {
            let (id, weight) = self.ring[self.cursor];
            let deficit = self.deficits.get_mut(&id).expect("ring member has deficit");
            let estimate = *self.estimates.get(&id).expect("ring member has estimate");
            if *deficit >= estimate {
                return Some(id);
            }
            *deficit += quantum * weight;
            self.cursor = (self.cursor + 1) % self.ring.len();
        }
        unreachable!("deficit scheduler failed to converge");
    }

    /// Charges a session the actual cost of the batch it just ran and
    /// records that cost as the estimate for its next one.
    pub fn charge(&mut self, id: SessionId, cost: f64) {
        let cost = if cost.is_finite() && cost > 0.0 {
            cost
        } else {
            0.0
        };
        if let Some(d) = self.deficits.get_mut(&id) {
            *d -= cost;
        }
        self.estimates.insert(id, cost);
        self.max_cost_seen = self.max_cost_seen.max(cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_rounds(
        sched: &mut DeficitScheduler,
        costs: &BTreeMap<SessionId, f64>,
        n: usize,
    ) -> BTreeMap<SessionId, f64> {
        let mut served: BTreeMap<SessionId, f64> = BTreeMap::new();
        for _ in 0..n {
            let id = sched.pick().expect("non-empty ring");
            let cost = costs[&id];
            sched.charge(id, cost);
            *served.entry(id).or_insert(0.0) += cost;
        }
        served
    }

    #[test]
    fn equal_weights_share_equally() {
        let a = SessionId(1);
        let b = SessionId(2);
        let mut sched = DeficitScheduler::new(FairnessConfig::default());
        sched.add(a, 1.0);
        sched.add(b, 1.0);
        let costs = BTreeMap::from([(a, 2.0), (b, 2.0)]);
        let served = run_rounds(&mut sched, &costs, 100);
        assert!((served[&a] - served[&b]).abs() <= 2.0, "{served:?}");
    }

    #[test]
    fn weights_bias_service_proportionally() {
        let heavy = SessionId(1);
        let light = SessionId(2);
        let mut sched = DeficitScheduler::new(FairnessConfig { quantum: 1.0 });
        sched.add(heavy, 3.0);
        sched.add(light, 1.0);
        let costs = BTreeMap::from([(heavy, 1.0), (light, 1.0)]);
        let served = run_rounds(&mut sched, &costs, 400);
        let ratio = served[&heavy] / served[&light];
        assert!((ratio - 3.0).abs() < 0.2, "expected ≈3:1, got {ratio}");
    }

    #[test]
    fn expensive_tenant_cannot_starve_a_cheap_one() {
        let expensive = SessionId(1);
        let cheap = SessionId(2);
        let mut sched = DeficitScheduler::new(FairnessConfig::default());
        sched.add(expensive, 1.0);
        sched.add(cheap, 1.0);
        let costs = BTreeMap::from([(expensive, 8.0), (cheap, 1.0)]);
        let served = run_rounds(&mut sched, &costs, 200);
        // Equal weights: device time should split near 50/50 even though
        // one tenant's batches cost 8× more.
        let ratio = served[&expensive] / served[&cheap];
        assert!(
            (0.7..1.4).contains(&ratio),
            "expected ≈1:1 device time, got {ratio} ({served:?})"
        );
    }

    #[test]
    fn removal_keeps_the_ring_consistent() {
        let ids: Vec<SessionId> = (0..4).map(SessionId).collect();
        let mut sched = DeficitScheduler::new(FairnessConfig::default());
        for &id in &ids {
            sched.add(id, 1.0);
        }
        let costs: BTreeMap<SessionId, f64> = ids.iter().map(|&i| (i, 1.0)).collect();
        run_rounds(&mut sched, &costs, 10);
        sched.remove(ids[1]);
        sched.remove(ids[3]);
        assert_eq!(sched.len(), 2);
        let served = run_rounds(&mut sched, &costs, 40);
        assert!(served.keys().all(|k| *k == ids[0] || *k == ids[2]));
        sched.remove(ids[0]);
        sched.remove(ids[2]);
        assert!(sched.pick().is_none());
    }
}
