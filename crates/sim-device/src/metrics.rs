//! Hardware-utilisation metrics derived from an executed [`Timeline`].
//!
//! These mirror the quantities the paper extracts from Nsight Systems:
//! CPU-core utilisation, GPU DRAM read/write bandwidth utilisation and PCIe
//! RX/TX utilisation (Table 7), plus the GPU idle-rate CDF (Figure 15).

use crate::device::DeviceProfile;
use crate::timeline::{empirical_cdf, Lane, OpKind, Timeline};

/// Utilisation percentages for one training run, in the same units as the
/// paper's Table 7 (0–100).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HardwareUtilization {
    /// CPU core utilisation (%): busy fraction of the CPU Adam and
    /// scheduler lanes.
    pub cpu_util: f64,
    /// GPU DRAM read-bandwidth utilisation (%).
    pub dram_read: f64,
    /// GPU DRAM write-bandwidth utilisation (%).
    pub dram_write: f64,
    /// PCIe CPU→GPU (RX from the GPU's perspective) utilisation (%).
    pub pcie_rx: f64,
    /// PCIe GPU→CPU (TX) utilisation (%).
    pub pcie_tx: f64,
}

/// Derives [`HardwareUtilization`] from a timeline and the device profile it
/// was scheduled against.
///
/// DRAM utilisation is modelled as proportional to how busy the GPU compute
/// lane is (the same rendering work touches the same memory regardless of
/// offloading strategy — §A.4 of the paper makes the matching observation
/// that CLM's higher DRAM utilisation comes purely from finishing the same
/// accesses in less time).
pub fn hardware_utilization(timeline: &Timeline, profile: &DeviceProfile) -> HardwareUtilization {
    let makespan = timeline.makespan();
    if makespan <= 0.0 {
        return HardwareUtilization::default();
    }
    let cpu_busy = timeline.busy_time(Lane::CpuAdam) + timeline.busy_time(Lane::CpuScheduler);
    let gpu_util = timeline.utilization(Lane::GpuCompute);

    let rx_bytes = timeline.bytes_by_kind(OpKind::LoadParams) as f64;
    let tx_bytes = timeline.bytes_by_kind(OpKind::StoreGrads) as f64;
    let link_capacity = profile.pcie_bandwidth * makespan;

    HardwareUtilization {
        cpu_util: (cpu_busy / makespan * 100.0).min(100.0),
        dram_read: (gpu_util * 18.0).min(100.0),
        dram_write: (gpu_util * 12.0).min(100.0),
        pcie_rx: (rx_bytes / link_capacity * 100.0).min(100.0),
        pcie_tx: (tx_bytes / link_capacity * 100.0).min(100.0),
    }
}

/// GPU idle-rate CDF (Figure 15): `(idle_rate_percent, fraction_of_time)`
/// pairs, computed over sampling windows of `window` seconds.
pub fn gpu_idle_rate_cdf(timeline: &Timeline, window: f64) -> Vec<(f64, f64)> {
    let rates = timeline.idle_rates(Lane::GpuCompute, window);
    empirical_cdf(&rates)
        .into_iter()
        .map(|(rate, frac)| (rate * 100.0, frac))
        .collect()
}

/// Mean GPU utilisation (%): the complement of the area under the idle-rate
/// CDF, i.e. the expected value of "SMs active".
pub fn mean_gpu_utilization(timeline: &Timeline, window: f64) -> f64 {
    let rates = timeline.idle_rates(Lane::GpuCompute, window);
    if rates.is_empty() {
        return 0.0;
    }
    let mean_idle: f64 = rates.iter().sum::<f64>() / rates.len() as f64;
    (1.0 - mean_idle) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::{Lane, OpKind};

    fn busy_timeline() -> Timeline {
        let mut t = Timeline::new();
        let load = t.push_with_bytes(OpKind::LoadParams, Lane::GpuComm, 1.0, 10_000_000_000, &[]);
        let fwd = t.push(OpKind::Forward, Lane::GpuCompute, 4.0, &[load]);
        let bwd = t.push(OpKind::Backward, Lane::GpuCompute, 4.0, &[fwd]);
        t.push_with_bytes(
            OpKind::StoreGrads,
            Lane::GpuComm,
            1.0,
            5_000_000_000,
            &[bwd],
        );
        t.push(OpKind::CpuAdamUpdate, Lane::CpuAdam, 3.0, &[bwd]);
        t
    }

    #[test]
    fn utilization_components_are_bounded() {
        let t = busy_timeline();
        let util = hardware_utilization(&t, &DeviceProfile::rtx4090());
        for v in [
            util.cpu_util,
            util.dram_read,
            util.dram_write,
            util.pcie_rx,
            util.pcie_tx,
        ] {
            assert!((0.0..=100.0).contains(&v), "value {v} out of range");
        }
        assert!(util.cpu_util > 0.0);
        assert!(util.pcie_rx > util.pcie_tx, "more bytes loaded than stored");
    }

    #[test]
    fn empty_timeline_yields_zero_utilization() {
        let util = hardware_utilization(&Timeline::new(), &DeviceProfile::rtx4090());
        assert_eq!(util, HardwareUtilization::default());
    }

    #[test]
    fn idle_cdf_and_mean_utilization_are_consistent() {
        let t = busy_timeline();
        let cdf = gpu_idle_rate_cdf(&t, 0.5);
        assert!(!cdf.is_empty());
        assert!(cdf
            .iter()
            .all(|(rate, frac)| (0.0..=100.0).contains(rate) && (0.0..=1.0).contains(frac)));
        let mean = mean_gpu_utilization(&t, 0.5);
        assert!(mean > 0.0 && mean <= 100.0);
        // Compute lane is busy 8 of the 12-second makespan (the trailing
        // CPU Adam extends the run) => ~67% utilisation.
        assert!((mean - 66.7).abs() < 10.0, "mean {mean}");
    }

    #[test]
    fn better_overlap_gives_higher_mean_utilization() {
        // Sequential (naive) schedule: comm blocks compute.
        let mut naive = Timeline::new();
        let l = naive.push(OpKind::LoadParams, Lane::GpuComm, 2.0, &[]);
        let f = naive.push(OpKind::Forward, Lane::GpuCompute, 2.0, &[l]);
        let b = naive.push(OpKind::Backward, Lane::GpuCompute, 2.0, &[f]);
        naive.push(OpKind::StoreGrads, Lane::GpuComm, 2.0, &[b]);

        // Overlapped schedule: same work, comm hidden behind compute.
        let mut clm = Timeline::new();
        let l1 = clm.push(OpKind::LoadParams, Lane::GpuComm, 2.0, &[]);
        let f1 = clm.push(OpKind::Forward, Lane::GpuCompute, 2.0, &[l1]);
        clm.push(OpKind::StoreGrads, Lane::GpuComm, 2.0, &[f1]);
        clm.push(OpKind::Backward, Lane::GpuCompute, 2.0, &[f1]);

        assert!(
            mean_gpu_utilization(&clm, 0.5) > mean_gpu_utilization(&naive, 0.5),
            "overlapped schedule should keep the GPU busier"
        );
    }
}
