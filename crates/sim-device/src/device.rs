//! Device profiles: the capacities and rates of the simulated hardware.
//!
//! The CLM paper evaluates on two testbeds (an RTX 4090 over PCIe 4.0 and an
//! RTX 2080 Ti over PCIe 3.0).  A [`DeviceProfile`] captures the handful of
//! quantities that CLM's behaviour actually depends on — GPU memory
//! capacity, host (pinned) memory capacity, PCIe bandwidth/latency, relative
//! GPU compute rate and CPU Adam throughput — plus the coefficients of a
//! simple analytic cost model for rendering work.
//!
//! Because this reproduction runs scenes at a reduced scale, profiles can be
//! [`scaled`](DeviceProfile::scale_capacity) so that out-of-memory
//! crossovers land at the same *relative* model sizes as in the paper.

/// Capacities and rates of one simulated GPU + host testbed.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable name (e.g. "RTX 4090").
    pub name: String,
    /// GPU memory capacity in bytes.
    pub gpu_memory_bytes: u64,
    /// Host (CPU) memory capacity in bytes, the pool pinned memory is
    /// allocated from.
    pub host_memory_bytes: u64,
    /// Effective PCIe bandwidth in bytes per second (one direction).
    pub pcie_bandwidth: f64,
    /// Fixed per-transfer latency in seconds (kernel launch + DMA setup).
    pub pcie_latency: f64,
    /// Relative GPU compute throughput (1.0 = RTX 4090).
    pub gpu_compute_rate: f64,
    /// CPU Adam throughput in parameters per second.
    pub cpu_adam_params_per_sec: f64,
    /// Seconds of GPU time per rasterised Gaussian in a forward pass
    /// (before dividing by [`gpu_compute_rate`](Self::gpu_compute_rate)).
    pub forward_cost_per_gaussian: f64,
    /// Seconds of GPU time per output pixel in a forward pass.
    pub forward_cost_per_pixel: f64,
    /// Backward-pass cost as a multiple of the forward pass.
    pub backward_multiplier: f64,
    /// Fraction of GPU memory unusable due to allocator fragmentation
    /// (Appendix A.3 discusses how PyTorch's caching allocator fragments).
    pub fragmentation_overhead: f64,
}

impl DeviceProfile {
    /// The paper's primary testbed: 24 GB RTX 4090, PCIe 4.0 ×16,
    /// 128 GB host RAM, 16-core CPU.
    pub fn rtx4090() -> Self {
        DeviceProfile {
            name: "RTX 4090".to_string(),
            gpu_memory_bytes: 24 * GIB,
            host_memory_bytes: 128 * GIB,
            // ~25 GB/s effective on PCIe 4.0 x16.
            pcie_bandwidth: 25.0e9,
            pcie_latency: 10.0e-6,
            gpu_compute_rate: 1.0,
            // 16-core Threadripper running the vectorised CPU Adam.
            cpu_adam_params_per_sec: 2.0e9,
            forward_cost_per_gaussian: 10.0e-9,
            forward_cost_per_pixel: 1.5e-9,
            backward_multiplier: 2.0,
            fragmentation_overhead: 0.06,
        }
    }

    /// The paper's secondary testbed: 11 GB RTX 2080 Ti, PCIe 3.0 ×16,
    /// 256 GB host RAM, 20-core CPU.  It has ~7× fewer FLOPs than the 4090
    /// (≈4× lower effective rasterisation throughput, since splatting is
    /// partly bandwidth-bound) and half the PCIe bandwidth, which makes it
    /// compute-bound.
    pub fn rtx2080ti() -> Self {
        DeviceProfile {
            name: "RTX 2080 Ti".to_string(),
            gpu_memory_bytes: 11 * GIB,
            host_memory_bytes: 256 * GIB,
            // ~12 GB/s effective on PCIe 3.0 x16.
            pcie_bandwidth: 12.0e9,
            pcie_latency: 10.0e-6,
            gpu_compute_rate: 1.0 / 4.0,
            // Older 20-core Xeon.
            cpu_adam_params_per_sec: 0.7e9,
            forward_cost_per_gaussian: 10.0e-9,
            forward_cost_per_pixel: 1.5e-9,
            backward_multiplier: 2.0,
            fragmentation_overhead: 0.06,
        }
    }

    /// Returns a copy with GPU and host memory capacities multiplied by
    /// `factor`, used to run the paper's experiments at reduced scene scale
    /// while preserving where OOM crossovers fall.
    ///
    /// # Panics
    /// Panics if `factor` is not strictly positive.
    pub fn scale_capacity(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive, got {factor}");
        let mut out = self.clone();
        out.gpu_memory_bytes = (self.gpu_memory_bytes as f64 * factor).round() as u64;
        out.host_memory_bytes = (self.host_memory_bytes as f64 * factor).round() as u64;
        out.name = format!("{} (x{factor:.4} capacity)", self.name);
        out
    }

    /// GPU memory usable after subtracting the fragmentation overhead.
    pub fn usable_gpu_memory(&self) -> u64 {
        (self.gpu_memory_bytes as f64 * (1.0 - self.fragmentation_overhead)) as u64
    }

    /// Time in seconds to transfer `bytes` over PCIe in one direction.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            0.0
        } else {
            self.pcie_latency + bytes as f64 / self.pcie_bandwidth
        }
    }

    /// GPU time in seconds for a forward pass over `gaussians` splats
    /// rendered at `pixels` output pixels.
    pub fn forward_time(&self, gaussians: u64, pixels: u64) -> f64 {
        (self.forward_cost_per_gaussian * gaussians as f64
            + self.forward_cost_per_pixel * pixels as f64)
            / self.gpu_compute_rate
    }

    /// GPU time in seconds for the corresponding backward pass.
    pub fn backward_time(&self, gaussians: u64, pixels: u64) -> f64 {
        self.forward_time(gaussians, pixels) * self.backward_multiplier
    }

    /// Time in seconds for the CPU Adam thread to update `params`
    /// parameters.
    pub fn cpu_adam_time(&self, params: u64) -> f64 {
        params as f64 / self.cpu_adam_params_per_sec
    }

    /// Time in seconds for a GPU (fused) Adam update over `params`
    /// parameters; modelled as memory-bound and far faster than CPU Adam.
    pub fn gpu_adam_time(&self, params: u64) -> f64 {
        params as f64 / (self.cpu_adam_params_per_sec * 40.0 * self.gpu_compute_rate)
    }
}

/// One gibibyte.
pub const GIB: u64 = 1024 * 1024 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_paper_testbeds() {
        let a = DeviceProfile::rtx4090();
        let b = DeviceProfile::rtx2080ti();
        assert_eq!(a.gpu_memory_bytes, 24 * GIB);
        assert_eq!(b.gpu_memory_bytes, 11 * GIB);
        // The 2080 Ti has a severalfold lower effective rendering rate and
        // ~2x less PCIe bandwidth.
        assert!(a.gpu_compute_rate / b.gpu_compute_rate > 3.0);
        assert!(a.pcie_bandwidth / b.pcie_bandwidth > 1.9);
        assert!(b.host_memory_bytes > a.host_memory_bytes);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let p = DeviceProfile::rtx4090();
        assert_eq!(p.transfer_time(0), 0.0);
        let one_mb = p.transfer_time(1_000_000);
        let ten_mb = p.transfer_time(10_000_000);
        assert!(ten_mb > one_mb);
        // Latency floor matters for tiny transfers.
        assert!(p.transfer_time(1) >= p.pcie_latency);
    }

    #[test]
    fn compute_times_scale_with_rate() {
        let fast = DeviceProfile::rtx4090();
        let slow = DeviceProfile::rtx2080ti();
        let f = fast.forward_time(1_000_000, 100_000);
        let s = slow.forward_time(1_000_000, 100_000);
        assert!((s / f - 4.0).abs() < 0.2, "slow/fast = {}", s / f);
        assert!(fast.backward_time(1_000_000, 100_000) > f);
    }

    #[test]
    fn gpu_adam_is_much_faster_than_cpu_adam() {
        let p = DeviceProfile::rtx4090();
        assert!(p.gpu_adam_time(1_000_000) < p.cpu_adam_time(1_000_000) / 10.0);
    }

    #[test]
    fn scaled_capacity_preserves_rates() {
        let p = DeviceProfile::rtx4090().scale_capacity(0.001);
        assert_eq!(
            p.gpu_memory_bytes,
            (24.0 * GIB as f64 * 0.001).round() as u64
        );
        assert_eq!(p.pcie_bandwidth, DeviceProfile::rtx4090().pcie_bandwidth);
        assert!(p.usable_gpu_memory() < p.gpu_memory_bytes);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_scale_panics() {
        let _ = DeviceProfile::rtx4090().scale_capacity(0.0);
    }
}
