//! Host CPU topology probe: the `host-topo` half of hardware-aware
//! autotuning.
//!
//! Every execution knob that decides CLM's overlap quality
//! (`compute_threads`, `band_height`, the prefetch window seed, the Adam
//! chunk size) depends on what the *host* actually offers: how many cores
//! the scheduler may really use (which is **not**
//! `available_parallelism()` inside a cgroup-throttled container), how big
//! the caches the banded kernels block for are, and whether "16 CPUs" means
//! 16 physical cores or 8 cores with SMT.  This module answers those
//! questions once per process:
//!
//! * [`CpuVendor`] — CPUID-style vendor classification via a match table
//!   over `/proc/cpuinfo`'s `vendor_id` / `CPU implementer` fields;
//! * [`HostTopology`] — the typed probe result: physical/logical cores,
//!   SMT, cache line and L2/L3 sizes, and the cgroup CPU quota (v1
//!   `cpu.cfs_quota_us`/`cpu.cfs_period_us` and v2 `cpu.max` are both
//!   understood);
//! * [`HostTopology::effective_cores`] — the core count schedulers should
//!   size worker lanes by: logical CPUs capped by the cgroup quota;
//! * [`HostTopology::fingerprint`] — a stable key for per-(host, scene)
//!   tuning records.
//!
//! Everything is probed through **pure string parsers** over file contents
//! (`/proc/cpuinfo`, `/sys/devices/system/cpu/.../cache`, the cgroup
//! files), so the detection logic is unit-testable with mocked inputs, and
//! the portable fallback (`std::thread::available_parallelism`, default
//! cache geometry) kicks in field by field on any platform where a probe
//! file is missing.

use std::fmt;
use std::sync::OnceLock;

/// Default cache line size assumed when the probe cannot read one.
pub const DEFAULT_CACHE_LINE_BYTES: usize = 64;

/// Default per-core L2 size (bytes) assumed when the probe cannot read one.
pub const DEFAULT_L2_BYTES: u64 = 512 * 1024;

/// Default shared L3 size (bytes) assumed when the probe cannot read one.
pub const DEFAULT_L3_BYTES: u64 = 8 * 1024 * 1024;

/// CPU vendor, classified from CPUID-style identification strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CpuVendor {
    /// `GenuineIntel`.
    Intel,
    /// `AuthenticAMD`.
    Amd,
    /// ARM implementers (`CPU implementer: 0x41` and relatives), including
    /// Apple silicon exposed through Linux.
    Arm,
    /// Anything the match table does not recognise.
    #[default]
    Unknown,
}

impl CpuVendor {
    /// Classifies a `/proc/cpuinfo` `vendor_id` (x86) or `CPU implementer`
    /// (ARM) value.  The match table mirrors the CPUID vendor strings; an
    /// unrecognised value maps to [`CpuVendor::Unknown`] rather than
    /// failing.
    pub fn from_id(id: &str) -> Self {
        match id.trim() {
            "GenuineIntel" => CpuVendor::Intel,
            "AuthenticAMD" | "HygonGenuine" => CpuVendor::Amd,
            // ARM implementer codes: ARM Ltd, Apple, Ampere, Qualcomm.
            "0x41" | "0x61" | "0xc0" | "0x51" => CpuVendor::Arm,
            _ => CpuVendor::Unknown,
        }
    }
}

impl fmt::Display for CpuVendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CpuVendor::Intel => "intel",
            CpuVendor::Amd => "amd",
            CpuVendor::Arm => "arm",
            CpuVendor::Unknown => "unknown",
        };
        f.write_str(name)
    }
}

/// The probed host topology.
///
/// Construct with [`HostTopology::detect`] (or the process-cached
/// [`HostTopology::cached`]); every field falls back to a safe default when
/// its probe source is unavailable, so detection never fails.
#[derive(Debug, Clone, PartialEq)]
pub struct HostTopology {
    /// CPU vendor from the CPUID match table.
    pub vendor: CpuVendor,
    /// The `model name` string from `/proc/cpuinfo` (empty when unknown).
    pub model_name: String,
    /// Physical cores (unique `(physical id, core id)` pairs; falls back to
    /// the logical count when the topology fields are absent).
    pub physical_cores: usize,
    /// Logical CPUs the OS exposes (`available_parallelism` fallback).
    pub logical_cpus: usize,
    /// Whether SMT is active (`logical_cpus > physical_cores`).
    pub smt: bool,
    /// Cache line size in bytes.
    pub cache_line_bytes: usize,
    /// Per-core L2 size in bytes.
    pub l2_bytes: u64,
    /// Shared L3 size in bytes (0 when the host genuinely has none).
    pub l3_bytes: u64,
    /// cgroup CPU quota in cores (v1 `cfs_quota/cfs_period` or v2
    /// `cpu.max`), `None` when unthrottled or undetectable.
    pub cpu_quota: Option<f64>,
}

impl Default for HostTopology {
    fn default() -> Self {
        HostTopology::fallback()
    }
}

impl HostTopology {
    /// The portable fallback topology: `available_parallelism` logical
    /// CPUs, no SMT/vendor/cache information beyond the defaults.
    pub fn fallback() -> Self {
        let logical = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        HostTopology {
            vendor: CpuVendor::Unknown,
            model_name: String::new(),
            physical_cores: logical,
            logical_cpus: logical,
            smt: false,
            cache_line_bytes: DEFAULT_CACHE_LINE_BYTES,
            l2_bytes: DEFAULT_L2_BYTES,
            l3_bytes: DEFAULT_L3_BYTES,
            cpu_quota: None,
        }
    }

    /// Probes the host: `/proc/cpuinfo`, the sysfs cache hierarchy and the
    /// cgroup quota files, falling back field by field where a source is
    /// missing (non-Linux hosts get the pure fallback).
    pub fn detect() -> Self {
        let mut topo = HostTopology::fallback();
        if let Ok(cpuinfo) = std::fs::read_to_string("/proc/cpuinfo") {
            apply_cpuinfo(&mut topo, &cpuinfo);
        }
        // available_parallelism already honours CPU affinity masks; keep
        // whichever logical count is smaller so a taskset-restricted
        // process does not oversubscribe either.
        let avail = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(topo.logical_cpus);
        if avail < topo.logical_cpus {
            topo.logical_cpus = avail.max(1);
            topo.physical_cores = topo.physical_cores.min(topo.logical_cpus);
        }
        topo.smt = topo.logical_cpus > topo.physical_cores;
        apply_sysfs_caches(&mut topo);
        topo.cpu_quota = detect_cpu_quota();
        topo
    }

    /// The process-cached probe result; the filesystem is touched once.
    pub fn cached() -> &'static HostTopology {
        static TOPO: OnceLock<HostTopology> = OnceLock::new();
        TOPO.get_or_init(HostTopology::detect)
    }

    /// The core count worker lanes should be sized by: logical CPUs capped
    /// by the cgroup quota (rounded up — a 1.5-core quota still deserves 2
    /// workers), never below 1.
    ///
    /// This is the cgroup-aware replacement for raw
    /// `available_parallelism()`: in a container limited to 2 CPUs on a
    /// 64-core host, `available_parallelism` reports 64 and oversubscribed
    /// worker lanes time-slice against each other; `effective_cores`
    /// reports 2.
    pub fn effective_cores(&self) -> usize {
        let quota_cores = match self.cpu_quota {
            Some(q) if q > 0.0 => q.ceil() as usize,
            _ => usize::MAX,
        };
        self.logical_cpus.min(quota_cores).max(1)
    }

    /// A stable identity for per-(host, scene) tuning records: vendor, core
    /// topology, cache sizes and the effective core count (so a quota
    /// change re-tunes rather than replaying knobs sized for more cores).
    pub fn fingerprint(&self) -> String {
        format!(
            "{}-{}c{}t-l2:{}k-l3:{}k-e{}",
            self.vendor,
            self.physical_cores,
            self.logical_cpus,
            self.l2_bytes / 1024,
            self.l3_bytes / 1024,
            self.effective_cores(),
        )
    }

    /// Single-line JSON object describing the topology — the `host_topo`
    /// section of `BENCH_runtime.json`.
    pub fn to_json(&self) -> String {
        let quota = match self.cpu_quota {
            Some(q) => format!("{q:.3}"),
            None => "null".to_string(),
        };
        // The model name is the only free-form probe string; strip the two
        // characters that could break the hand-rolled JSON.
        let model: String = self
            .model_name
            .chars()
            .filter(|c| *c != '"' && *c != '\\')
            .collect();
        format!(
            "{{\"vendor\":\"{}\",\"model\":\"{}\",\"physical_cores\":{},\
             \"logical_cpus\":{},\"smt\":{},\"cache_line_bytes\":{},\
             \"l2_bytes\":{},\"l3_bytes\":{},\"cpu_quota\":{},\
             \"effective_cores\":{},\"fingerprint\":\"{}\"}}",
            self.vendor,
            model,
            self.physical_cores,
            self.logical_cpus,
            self.smt,
            self.cache_line_bytes,
            self.l2_bytes,
            self.l3_bytes,
            quota,
            self.effective_cores(),
            self.fingerprint(),
        )
    }
}

/// Applies the parseable fields of a `/proc/cpuinfo` dump onto `topo`.
/// Pure with respect to the filesystem, so tests can feed mocked content.
pub fn apply_cpuinfo(topo: &mut HostTopology, cpuinfo: &str) {
    let mut logical = 0usize;
    let mut cores_per_package = 0usize;
    let mut physical_pairs = std::collections::HashSet::new();
    let mut physical_id = None;
    let mut core_id = None;
    for line in cpuinfo.lines() {
        let Some((key, value)) = line.split_once(':') else {
            // Blank line: one processor block ends.  Flush the pair so the
            // ids of the next block do not bleed into this one.
            if let (Some(p), Some(c)) = (physical_id.take(), core_id.take()) {
                physical_pairs.insert((p, c));
            }
            continue;
        };
        let (key, value) = (key.trim(), value.trim());
        match key {
            "processor" => logical += 1,
            "vendor_id" | "CPU implementer" if topo.vendor == CpuVendor::Unknown => {
                topo.vendor = CpuVendor::from_id(value);
            }
            "model name" | "Processor" if topo.model_name.is_empty() => {
                topo.model_name = value.to_string();
            }
            "cpu cores" => cores_per_package = value.parse().unwrap_or(cores_per_package),
            "physical id" => physical_id = value.parse::<usize>().ok(),
            "core id" => core_id = value.parse::<usize>().ok(),
            "cache_alignment" => {
                topo.cache_line_bytes = value.parse().unwrap_or(topo.cache_line_bytes)
            }
            _ => {}
        }
    }
    if let (Some(p), Some(c)) = (physical_id, core_id) {
        physical_pairs.insert((p, c));
    }
    if logical > 0 {
        topo.logical_cpus = logical;
    }
    topo.physical_cores = if !physical_pairs.is_empty() {
        physical_pairs.len()
    } else if cores_per_package > 0 {
        cores_per_package
    } else {
        topo.logical_cpus
    };
    topo.smt = topo.logical_cpus > topo.physical_cores;
}

/// Parses a sysfs cache size string (`"512K"`, `"8192K"`, `"1M"`, or plain
/// bytes) into bytes.
pub fn parse_cache_size(s: &str) -> Option<u64> {
    let t = s.trim();
    if t.is_empty() {
        return None;
    }
    let (digits, mult) = match t.as_bytes()[t.len() - 1].to_ascii_uppercase() {
        b'K' => (&t[..t.len() - 1], 1024u64),
        b'M' => (&t[..t.len() - 1], 1024 * 1024),
        b'G' => (&t[..t.len() - 1], 1024 * 1024 * 1024),
        _ => (t, 1),
    };
    digits.trim().parse::<u64>().ok().map(|n| n * mult)
}

/// Parses a cgroup **v2** `cpu.max` file (`"max 100000"` = unthrottled,
/// `"200000 100000"` = 2.0 cores) into a quota in cores.
pub fn parse_cgroup_v2_max(content: &str) -> Option<f64> {
    let mut parts = content.split_whitespace();
    let quota = parts.next()?;
    if quota == "max" {
        return None;
    }
    let quota: f64 = quota.parse().ok()?;
    let period: f64 = parts.next().unwrap_or("100000").parse().ok()?;
    (quota > 0.0 && period > 0.0).then(|| quota / period)
}

/// Parses the cgroup **v1** pair `cpu.cfs_quota_us` / `cpu.cfs_period_us`
/// (`quota = -1` = unthrottled) into a quota in cores.
pub fn parse_cgroup_v1(quota_us: &str, period_us: &str) -> Option<f64> {
    let quota: f64 = quota_us.trim().parse().ok()?;
    let period: f64 = period_us.trim().parse().ok()?;
    (quota > 0.0 && period > 0.0).then(|| quota / period)
}

/// Reads the cgroup CPU quota from the standard v2 then v1 mount points.
fn detect_cpu_quota() -> Option<f64> {
    if let Ok(content) = std::fs::read_to_string("/sys/fs/cgroup/cpu.max") {
        if let Some(q) = parse_cgroup_v2_max(&content) {
            return Some(q);
        }
        // A readable cpu.max saying "max" means cgroup v2 without a quota;
        // do not fall through to stale v1 paths.
        return None;
    }
    for dir in ["/sys/fs/cgroup/cpu", "/sys/fs/cgroup/cpu,cpuacct"] {
        let quota = std::fs::read_to_string(format!("{dir}/cpu.cfs_quota_us"));
        let period = std::fs::read_to_string(format!("{dir}/cpu.cfs_period_us"));
        if let (Ok(q), Ok(p)) = (quota, period) {
            if let Some(cores) = parse_cgroup_v1(&q, &p) {
                return Some(cores);
            }
        }
    }
    None
}

/// Reads the L2/L3/line sizes from `/sys/devices/system/cpu/cpu0/cache`.
fn apply_sysfs_caches(topo: &mut HostTopology) {
    let base = "/sys/devices/system/cpu/cpu0/cache";
    for index in 0..=4usize {
        let read = |file: &str| std::fs::read_to_string(format!("{base}/index{index}/{file}"));
        let Ok(level) = read("level") else { continue };
        let cache_type = read("type").unwrap_or_default();
        let t = cache_type.trim();
        if t == "Instruction" {
            continue;
        }
        let size = read("size").ok().and_then(|s| parse_cache_size(&s));
        match level.trim() {
            "2" => topo.l2_bytes = size.unwrap_or(topo.l2_bytes),
            "3" => topo.l3_bytes = size.unwrap_or(topo.l3_bytes),
            _ => {}
        }
        if let Ok(line) = read("coherency_line_size") {
            if let Ok(bytes) = line.trim().parse::<usize>() {
                if bytes > 0 {
                    topo.cache_line_bytes = bytes;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CPUINFO_2S_SMT: &str = "\
processor\t: 0
vendor_id\t: AuthenticAMD
model name\t: AMD EPYC 7B13 64-Core Processor
physical id\t: 0
core id\t: 0
cpu cores\t: 2
cache_alignment\t: 64

processor\t: 1
vendor_id\t: AuthenticAMD
model name\t: AMD EPYC 7B13 64-Core Processor
physical id\t: 0
core id\t: 0
cpu cores\t: 2

processor\t: 2
vendor_id\t: AuthenticAMD
model name\t: AMD EPYC 7B13 64-Core Processor
physical id\t: 0
core id\t: 1
cpu cores\t: 2

processor\t: 3
vendor_id\t: AuthenticAMD
model name\t: AMD EPYC 7B13 64-Core Processor
physical id\t: 0
core id\t: 1
cpu cores\t: 2
";

    #[test]
    fn vendor_match_table_classifies_the_usual_suspects() {
        assert_eq!(CpuVendor::from_id("GenuineIntel"), CpuVendor::Intel);
        assert_eq!(CpuVendor::from_id(" AuthenticAMD "), CpuVendor::Amd);
        assert_eq!(CpuVendor::from_id("0x41"), CpuVendor::Arm);
        assert_eq!(CpuVendor::from_id("0x61"), CpuVendor::Arm);
        assert_eq!(CpuVendor::from_id("TransmetaCPU"), CpuVendor::Unknown);
        assert_eq!(CpuVendor::Amd.to_string(), "amd");
        assert_eq!(CpuVendor::Unknown.to_string(), "unknown");
    }

    #[test]
    fn cpuinfo_parse_counts_physical_and_logical_cores() {
        let mut topo = HostTopology::fallback();
        apply_cpuinfo(&mut topo, CPUINFO_2S_SMT);
        assert_eq!(topo.vendor, CpuVendor::Amd);
        assert_eq!(topo.model_name, "AMD EPYC 7B13 64-Core Processor");
        assert_eq!(topo.logical_cpus, 4);
        assert_eq!(topo.physical_cores, 2, "2 cores x 2 SMT threads");
        assert!(topo.smt);
        assert_eq!(topo.cache_line_bytes, 64);
    }

    #[test]
    fn cpuinfo_without_topology_fields_falls_back_to_logical() {
        let mut topo = HostTopology::fallback();
        apply_cpuinfo(
            &mut topo,
            "processor\t: 0\nvendor_id\t: GenuineIntel\n\nprocessor\t: 1\n",
        );
        assert_eq!(topo.vendor, CpuVendor::Intel);
        assert_eq!(topo.logical_cpus, 2);
        assert_eq!(topo.physical_cores, 2);
        assert!(!topo.smt);
    }

    #[test]
    fn cache_size_strings_parse_in_sysfs_units() {
        assert_eq!(parse_cache_size("512K"), Some(512 * 1024));
        assert_eq!(parse_cache_size("32768K\n"), Some(32768 * 1024));
        assert_eq!(parse_cache_size("8M"), Some(8 * 1024 * 1024));
        assert_eq!(parse_cache_size("1024"), Some(1024));
        assert_eq!(parse_cache_size(""), None);
        assert_eq!(parse_cache_size("junk"), None);
    }

    #[test]
    fn cgroup_v2_quota_parses_cores_and_max() {
        assert_eq!(parse_cgroup_v2_max("max 100000\n"), None);
        assert_eq!(parse_cgroup_v2_max("200000 100000\n"), Some(2.0));
        assert_eq!(parse_cgroup_v2_max("150000 100000"), Some(1.5));
        // Missing period defaults to the kernel's 100ms.
        assert_eq!(parse_cgroup_v2_max("50000"), Some(0.5));
        assert_eq!(parse_cgroup_v2_max(""), None);
        assert_eq!(parse_cgroup_v2_max("garbage here"), None);
    }

    #[test]
    fn cgroup_v1_quota_parses_cores_and_unlimited() {
        assert_eq!(parse_cgroup_v1("-1\n", "100000\n"), None);
        assert_eq!(parse_cgroup_v1("400000", "100000"), Some(4.0));
        assert_eq!(parse_cgroup_v1("junk", "100000"), None);
        assert_eq!(parse_cgroup_v1("100000", "0"), None);
    }

    /// The satellite regression: a mocked 2-core quota on a big SMT host
    /// must cap the effective core count at 2, not report 64.
    #[test]
    fn effective_cores_respects_a_mocked_quota() {
        let mut topo = HostTopology::fallback();
        topo.logical_cpus = 64;
        topo.physical_cores = 32;
        topo.cpu_quota = parse_cgroup_v2_max("200000 100000");
        assert_eq!(topo.effective_cores(), 2);
        // Fractional quotas round up: 1.5 cores still deserves 2 workers.
        topo.cpu_quota = parse_cgroup_v1("150000", "100000");
        assert_eq!(topo.effective_cores(), 2);
        // Unthrottled: the logical count stands.
        topo.cpu_quota = None;
        assert_eq!(topo.effective_cores(), 64);
        // A quota wider than the host never inflates the count.
        topo.cpu_quota = Some(128.0);
        assert_eq!(topo.effective_cores(), 64);
        // Degenerate quotas cannot zero the count.
        topo.cpu_quota = Some(0.0);
        assert_eq!(topo.effective_cores(), 64);
        topo.logical_cpus = 1;
        topo.cpu_quota = Some(0.25);
        assert_eq!(topo.effective_cores(), 1);
    }

    #[test]
    fn fingerprint_tracks_the_effective_core_count() {
        let mut topo = HostTopology::fallback();
        topo.vendor = CpuVendor::Amd;
        topo.physical_cores = 8;
        topo.logical_cpus = 16;
        topo.l2_bytes = 512 * 1024;
        topo.l3_bytes = 32 * 1024 * 1024;
        topo.cpu_quota = None;
        let unthrottled = topo.fingerprint();
        assert_eq!(unthrottled, "amd-8c16t-l2:512k-l3:32768k-e16");
        topo.cpu_quota = Some(2.0);
        let throttled = topo.fingerprint();
        assert_eq!(throttled, "amd-8c16t-l2:512k-l3:32768k-e2");
        assert_ne!(unthrottled, throttled, "quota changes re-key the tuning");
    }

    #[test]
    fn detect_never_fails_and_caches() {
        let topo = HostTopology::detect();
        assert!(topo.logical_cpus >= 1);
        assert!(topo.physical_cores >= 1);
        assert!(topo.physical_cores <= topo.logical_cpus);
        assert!(topo.effective_cores() >= 1);
        assert!(topo.effective_cores() <= topo.logical_cpus);
        assert!(topo.cache_line_bytes > 0);
        assert!(topo.l2_bytes > 0);
        let cached = HostTopology::cached();
        assert_eq!(cached, HostTopology::cached(), "stable across calls");
    }

    #[test]
    fn json_section_is_single_line_and_complete() {
        let mut topo = HostTopology::fallback();
        topo.model_name = "Weird \"Quoted\" \\Model".to_string();
        topo.cpu_quota = Some(2.5);
        let json = topo.to_json();
        assert!(!json.contains('\n'));
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"vendor\":",
            "\"model\":",
            "\"physical_cores\":",
            "\"logical_cpus\":",
            "\"smt\":",
            "\"cache_line_bytes\":",
            "\"l2_bytes\":",
            "\"l3_bytes\":",
            "\"cpu_quota\":2.500",
            "\"effective_cores\":",
            "\"fingerprint\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("Weird Quoted Model"), "{json}");
        topo.cpu_quota = None;
        assert!(topo.to_json().contains("\"cpu_quota\":null"));
    }
}
