//! Simulated memory pools: GPU device memory and pinned host memory.
//!
//! The pools do not hold real data — the actual Gaussian parameters live in
//! ordinary Rust vectors owned by the trainer — but every allocation a real
//! implementation would make on the GPU (model state, activations, transfer
//! buffers) is mirrored here so that capacity limits, OOM behaviour and the
//! per-category memory breakdowns of Figure 10 can be reproduced exactly.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// What an allocation is used for; drives the Figure 10 breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemoryCategory {
    /// Gaussian parameters, gradients and optimiser moments.
    ModelState,
    /// Activations of the forward/backward pass.
    Activation,
    /// Transfer (double) buffers used by offloading.
    TransferBuffer,
    /// Everything else (index tensors, workspace, CUDA context, ...).
    Other,
}

impl MemoryCategory {
    /// All categories in display order.
    pub const ALL: [MemoryCategory; 4] = [
        MemoryCategory::ModelState,
        MemoryCategory::Activation,
        MemoryCategory::TransferBuffer,
        MemoryCategory::Other,
    ];
}

impl fmt::Display for MemoryCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemoryCategory::ModelState => "model states",
            MemoryCategory::Activation => "activations",
            MemoryCategory::TransferBuffer => "transfer buffers",
            MemoryCategory::Other => "others",
        };
        f.write_str(s)
    }
}

/// Error returned when an allocation would exceed the pool capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested by the failing allocation.
    pub requested: u64,
    /// Bytes already in use.
    pub in_use: u64,
    /// Pool capacity in bytes.
    pub capacity: u64,
    /// Name of the pool ("GPU", "pinned host", ...).
    pub pool: String,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} out of memory: requested {} bytes with {} of {} bytes already in use",
            self.pool, self.requested, self.in_use, self.capacity
        )
    }
}

impl Error for OutOfMemory {}

/// Identifier of a live allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AllocationId(u64);

/// A fixed-capacity memory pool with per-category accounting and a
/// high-water mark.
#[derive(Debug, Clone)]
pub struct MemoryPool {
    name: String,
    capacity: u64,
    in_use: u64,
    peak: u64,
    next_id: u64,
    allocations: HashMap<AllocationId, (MemoryCategory, u64)>,
}

impl MemoryPool {
    /// Creates a pool with the given capacity in bytes.
    pub fn new(name: impl Into<String>, capacity: u64) -> Self {
        MemoryPool {
            name: name.into(),
            capacity,
            in_use: 0,
            peak: 0,
            next_id: 0,
            allocations: HashMap::new(),
        }
    }

    /// The pool name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Pool capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// Bytes still available.
    pub fn available(&self) -> u64 {
        self.capacity - self.in_use
    }

    /// Highest number of bytes ever allocated simultaneously.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Number of live allocations.
    pub fn allocation_count(&self) -> usize {
        self.allocations.len()
    }

    /// Allocates `bytes` in `category`.
    ///
    /// # Errors
    /// Returns [`OutOfMemory`] if the allocation would exceed the capacity;
    /// the pool is left unchanged in that case.
    pub fn allocate(
        &mut self,
        category: MemoryCategory,
        bytes: u64,
    ) -> Result<AllocationId, OutOfMemory> {
        if self.in_use + bytes > self.capacity {
            return Err(OutOfMemory {
                requested: bytes,
                in_use: self.in_use,
                capacity: self.capacity,
                pool: self.name.clone(),
            });
        }
        let id = AllocationId(self.next_id);
        self.next_id += 1;
        self.allocations.insert(id, (category, bytes));
        self.in_use += bytes;
        self.peak = self.peak.max(self.in_use);
        Ok(id)
    }

    /// Frees a previous allocation.  Freeing an unknown id is a no-op and
    /// returns `false`.
    pub fn free(&mut self, id: AllocationId) -> bool {
        if let Some((_, bytes)) = self.allocations.remove(&id) {
            self.in_use -= bytes;
            true
        } else {
            false
        }
    }

    /// Frees every live allocation in `category`, returning the number of
    /// bytes released.
    pub fn free_category(&mut self, category: MemoryCategory) -> u64 {
        let ids: Vec<AllocationId> = self
            .allocations
            .iter()
            .filter(|(_, (c, _))| *c == category)
            .map(|(id, _)| *id)
            .collect();
        let mut released = 0;
        for id in ids {
            if let Some((_, bytes)) = self.allocations.remove(&id) {
                released += bytes;
                self.in_use -= bytes;
            }
        }
        released
    }

    /// Bytes currently allocated in `category`.
    pub fn in_use_by(&self, category: MemoryCategory) -> u64 {
        self.allocations
            .values()
            .filter(|(c, _)| *c == category)
            .map(|(_, b)| *b)
            .sum()
    }

    /// Per-category breakdown of the current usage, in display order.
    pub fn breakdown(&self) -> Vec<(MemoryCategory, u64)> {
        MemoryCategory::ALL
            .iter()
            .map(|&c| (c, self.in_use_by(c)))
            .collect()
    }

    /// Convenience: would an allocation of `bytes` succeed right now?
    pub fn can_allocate(&self, bytes: u64) -> bool {
        self.in_use + bytes <= self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn allocate_free_cycle() {
        let mut pool = MemoryPool::new("GPU", 1000);
        let a = pool.allocate(MemoryCategory::ModelState, 400).unwrap();
        let b = pool.allocate(MemoryCategory::Activation, 500).unwrap();
        assert_eq!(pool.in_use(), 900);
        assert_eq!(pool.available(), 100);
        assert_eq!(pool.peak(), 900);
        assert_eq!(pool.allocation_count(), 2);
        assert!(pool.free(a));
        assert_eq!(pool.in_use(), 500);
        assert!(!pool.free(a), "double free is a no-op");
        assert!(pool.free(b));
        assert_eq!(pool.in_use(), 0);
        assert_eq!(pool.peak(), 900, "peak survives frees");
    }

    #[test]
    fn oom_is_reported_and_leaves_pool_unchanged() {
        let mut pool = MemoryPool::new("GPU", 100);
        pool.allocate(MemoryCategory::ModelState, 80).unwrap();
        let err = pool.allocate(MemoryCategory::Activation, 30).unwrap_err();
        assert_eq!(err.requested, 30);
        assert_eq!(err.in_use, 80);
        assert_eq!(err.capacity, 100);
        assert!(err.to_string().contains("out of memory"));
        assert_eq!(pool.in_use(), 80);
    }

    #[test]
    fn category_breakdown() {
        let mut pool = MemoryPool::new("GPU", 1000);
        pool.allocate(MemoryCategory::ModelState, 300).unwrap();
        pool.allocate(MemoryCategory::ModelState, 100).unwrap();
        pool.allocate(MemoryCategory::Activation, 200).unwrap();
        pool.allocate(MemoryCategory::TransferBuffer, 50).unwrap();
        assert_eq!(pool.in_use_by(MemoryCategory::ModelState), 400);
        assert_eq!(pool.in_use_by(MemoryCategory::Activation), 200);
        assert_eq!(pool.in_use_by(MemoryCategory::Other), 0);
        let breakdown = pool.breakdown();
        let total: u64 = breakdown.iter().map(|(_, b)| *b).sum();
        assert_eq!(total, pool.in_use());
    }

    #[test]
    fn free_category_releases_everything_in_it() {
        let mut pool = MemoryPool::new("GPU", 1000);
        pool.allocate(MemoryCategory::Activation, 200).unwrap();
        pool.allocate(MemoryCategory::Activation, 300).unwrap();
        pool.allocate(MemoryCategory::ModelState, 100).unwrap();
        assert_eq!(pool.free_category(MemoryCategory::Activation), 500);
        assert_eq!(pool.in_use(), 100);
        assert_eq!(pool.free_category(MemoryCategory::Activation), 0);
    }

    #[test]
    fn can_allocate_matches_allocate() {
        let mut pool = MemoryPool::new("GPU", 100);
        assert!(pool.can_allocate(100));
        assert!(!pool.can_allocate(101));
        pool.allocate(MemoryCategory::Other, 60).unwrap();
        assert!(pool.can_allocate(40));
        assert!(!pool.can_allocate(41));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<OutOfMemory>();
    }

    proptest! {
        #[test]
        fn prop_usage_never_exceeds_capacity(ops in proptest::collection::vec((0u64..300, 0u8..4), 1..200)) {
            let mut pool = MemoryPool::new("GPU", 2000);
            let mut live: Vec<AllocationId> = Vec::new();
            for (bytes, action) in ops {
                if action == 3 && !live.is_empty() {
                    let id = live.remove(bytes as usize % live.len());
                    pool.free(id);
                } else {
                    let cat = MemoryCategory::ALL[action as usize % 4];
                    if let Ok(id) = pool.allocate(cat, bytes) {
                        live.push(id);
                    }
                }
                prop_assert!(pool.in_use() <= pool.capacity());
                prop_assert!(pool.peak() >= pool.in_use());
                let total: u64 = pool.breakdown().iter().map(|(_, b)| *b).sum();
                prop_assert_eq!(total, pool.in_use());
            }
        }
    }
}
