//! Seeded, deterministic fault injection for the simulated lanes.
//!
//! Production training fleets lose devices, hit flaky interconnects and
//! stall on oversubscribed hosts; a runtime that only ever sees a perfect
//! world cannot claim robustness.  This module supplies the fault model the
//! execution backends inject against:
//!
//! * **Transient op failures** — a gather, all-reduce step or CPU Adam
//!   chunk fails and is retried under a bounded [`RetryPolicy`] with
//!   deterministic exponential backoff.  On the simulated timelines the
//!   failed attempts and backoff waits are priced into the op's duration;
//!   the threaded backend re-executes the (pure) work for real.
//! * **Straggler lanes** — a lane runs slow for its next K ops
//!   ([`StragglerSpec`]), modelling an oversubscribed worker.
//! * **Permanent device loss** — at a chosen batch boundary a sharded run
//!   loses devices ([`DeviceLossSpec`]) and must drain, repartition onto
//!   the survivors and continue.
//! * **Pinned-staging-buffer exhaustion** — a run of acquisitions from the
//!   staging pool is denied ([`ExhaustionSpec`]), forcing the backpressure
//!   path.
//!
//! Everything is driven by one splitmix64 stream seeded from
//! [`FaultSpec::seed`], so a fault schedule is a pure function of the spec:
//! two runs with the same spec see byte-identical fault sequences, which is
//! what lets the conformance suite assert that a faulted run converges to a
//! final model bit-identical to the fault-free one.
//!
//! Faults reach the scheduler through the [`FaultSink`] hook on
//! [`Timeline`](crate::Timeline) — the same pattern the trace recorder uses
//! ([`TraceSink`](crate::TraceSink)) — so the runtime crates stay free of
//! any fault-model dependency.  [`FaultPlan`] is the shared handle backends
//! install: cheaply cloneable, lockable from worker threads, and readable
//! after the run for [`FaultStats`] accounting.

use crate::timeline::{Lane, OpKind};
use std::sync::{Arc, Mutex};

/// Bounded-retry policy with deterministic exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum failed attempts a transient fault may cost before the op
    /// succeeds (simulated lanes) or the lane aborts (threaded timeouts).
    /// Zero disables transient injection entirely.
    pub max_retries: u32,
    /// Backoff after the first failed attempt, in simulated seconds.
    pub backoff_base: f64,
    /// Multiplier applied to the backoff after each further failure.
    pub backoff_factor: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_base: 100.0e-6,
            backoff_factor: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Total backoff of `attempts` consecutive failures:
    /// `base * (1 + factor + factor² + …)`, one term per failure.
    pub fn total_backoff(&self, attempts: u32) -> f64 {
        let mut wait = self.backoff_base;
        let mut total = 0.0;
        for _ in 0..attempts {
            total += wait;
            wait *= self.backoff_factor;
        }
        total
    }
}

/// A lane that runs slow: its next `ops` operations cost `factor`× their
/// fault-free duration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerSpec {
    /// The straggling lane.
    pub lane: Lane,
    /// Duration multiplier (> 1 for a slowdown).
    pub factor: f64,
    /// Number of ops the slowdown lasts.
    pub ops: u64,
}

/// Permanent loss of `lose` devices at the `at_batch` boundary (before the
/// batch with that index runs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceLossSpec {
    /// Global batch index at whose boundary the loss strikes.
    pub at_batch: u64,
    /// Devices lost (the highest-indexed ones; survivors keep their ranks).
    pub lose: usize,
}

/// Denial of `denials` consecutive staging-pool acquisitions starting at
/// the `at_acquire`-th acquire (0-based) of the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExhaustionSpec {
    /// Acquire index at which denials begin.
    pub at_acquire: u64,
    /// Number of consecutive denials.
    pub denials: u32,
}

/// The full seeded fault schedule of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Seed of the splitmix64 stream transient draws come from.
    pub seed: u64,
    /// Per-op probability of a transient failure on an injectable op
    /// (gather, all-reduce step, CPU Adam chunk).
    pub transient_rate: f64,
    /// Cap on the total number of injected transients (keeps fault
    /// schedules finite on long runs).
    pub max_transients: u64,
    /// Retry/backoff policy applied to every transient.
    pub retry: RetryPolicy,
    /// Optional straggler lane.
    pub straggler: Option<StragglerSpec>,
    /// Optional permanent device loss.
    pub device_loss: Option<DeviceLossSpec>,
    /// Optional staging-pool exhaustion window.
    pub staging_exhaustion: Option<ExhaustionSpec>,
}

impl FaultSpec {
    /// A spec with no faults enabled, drawing from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultSpec {
            seed,
            transient_rate: 0.0,
            max_transients: 0,
            retry: RetryPolicy::default(),
            straggler: None,
            device_loss: None,
            staging_exhaustion: None,
        }
    }

    /// Enables transient op failures at `rate`, at most `max` of them.
    pub fn with_transients(mut self, rate: f64, max: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.transient_rate = rate;
        self.max_transients = max;
        self
    }

    /// Makes `lane` straggle by `factor`× for its next `ops` operations.
    pub fn with_straggler(mut self, lane: Lane, factor: f64, ops: u64) -> Self {
        assert!(factor >= 1.0, "a straggler slows down, factor must be >= 1");
        self.straggler = Some(StragglerSpec { lane, factor, ops });
        self
    }

    /// Loses `lose` devices at the `at_batch` boundary.
    pub fn with_device_loss(mut self, at_batch: u64, lose: usize) -> Self {
        self.device_loss = Some(DeviceLossSpec { at_batch, lose });
        self
    }

    /// Denies `denials` staging acquisitions starting at acquire
    /// `at_acquire`.
    pub fn with_staging_exhaustion(mut self, at_acquire: u64, denials: u32) -> Self {
        self.staging_exhaustion = Some(ExhaustionSpec {
            at_acquire,
            denials,
        });
        self
    }

    /// Overrides the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// Running totals of every fault injected and recovered from; surfaced on
/// the per-batch and per-run execution reports.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultStats {
    /// Transient op failures injected.
    pub transients: u64,
    /// Failed attempts those transients cost (≥ `transients`).
    pub retries: u64,
    /// Simulated seconds spent backing off between attempts.
    pub backoff_seconds: f64,
    /// Ops slowed by the straggler lane.
    pub straggled_ops: u64,
    /// Extra simulated seconds the straggler added.
    pub straggle_seconds: f64,
    /// Staging-pool acquisitions denied by injected exhaustion.
    pub exhaustion_denials: u64,
    /// Permanent device-loss events fired.
    pub device_losses: u64,
    /// Real recv timeouts observed by threaded worker lanes.
    pub timeouts: u64,
    /// Lanes aborted after exhausting their retry budget.
    pub aborts: u64,
}

impl FaultStats {
    /// Counter-wise difference `self - earlier`; used to attribute faults
    /// to one batch out of a run-level accumulator.
    pub fn since(&self, earlier: &FaultStats) -> FaultStats {
        FaultStats {
            transients: self.transients - earlier.transients,
            retries: self.retries - earlier.retries,
            backoff_seconds: self.backoff_seconds - earlier.backoff_seconds,
            straggled_ops: self.straggled_ops - earlier.straggled_ops,
            straggle_seconds: self.straggle_seconds - earlier.straggle_seconds,
            exhaustion_denials: self.exhaustion_denials - earlier.exhaustion_denials,
            device_losses: self.device_losses - earlier.device_losses,
            timeouts: self.timeouts - earlier.timeouts,
            aborts: self.aborts - earlier.aborts,
        }
    }

    /// Whether any fault at all was recorded.
    pub fn any(&self) -> bool {
        *self != FaultStats::default()
    }
}

/// The fault (if any) injected into one scheduled op.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OpFault {
    /// No fault: the op runs at its submitted duration.
    None,
    /// A transient failure: the op re-executes `attempts` extra times and
    /// waits `backoff` seconds in between before succeeding.
    Transient {
        /// Failed attempts before the success.
        attempts: u32,
        /// Total backoff seconds across the failures.
        backoff: f64,
    },
    /// A straggler slowdown: the op costs `factor`× its duration.
    Straggle {
        /// Duration multiplier.
        factor: f64,
    },
}

impl OpFault {
    /// The duration the op actually costs under this fault: failed
    /// attempts re-execute the work, backoff waits in between, stragglers
    /// multiply.
    pub fn apply(&self, dur: f64) -> f64 {
        match *self {
            OpFault::None => dur,
            OpFault::Transient { attempts, backoff } => dur * f64::from(attempts + 1) + backoff,
            OpFault::Straggle { factor } => dur * factor,
        }
    }
}

/// Receiver consulted for every op submitted to a
/// [`Timeline`](crate::Timeline) with a fault sink installed — the
/// injection hook mirroring
/// [`TraceSink`](crate::TraceSink) on the capture side.
pub trait FaultSink: Send + std::fmt::Debug {
    /// Decides the fault for one simulated op about to be scheduled.
    fn on_op(&mut self, kind: OpKind, lane: Lane, dur: f64) -> OpFault;

    /// Observes one *measured* span (threaded/synchronous backends).
    /// Measured intervals cannot be re-timed after the fact, so this is
    /// accounting-only; real injection for those backends happens inside
    /// the worker lanes.
    fn on_span(&mut self, _kind: OpKind, _lane: Lane) {}
}

/// Op kinds a transient failure may strike: the paper pipeline's gathers,
/// all-reduce steps and CPU Adam chunks.
fn transient_injectable(kind: OpKind) -> bool {
    matches!(
        kind,
        OpKind::LoadParams | OpKind::AllReduce | OpKind::CpuAdamUpdate
    )
}

/// splitmix64 — tiny, seedable, and plenty for fault scheduling.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from the stream.
fn unit_draw(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

#[derive(Debug)]
struct FaultState {
    spec: FaultSpec,
    rng: u64,
    stats: FaultStats,
    transients_left: u64,
    straggles_left: u64,
    device_loss_pending: bool,
    acquires: u64,
    denials_used: u32,
}

impl FaultState {
    fn new(spec: FaultSpec) -> Self {
        FaultState {
            rng: spec.seed,
            stats: FaultStats::default(),
            transients_left: spec.max_transients,
            straggles_left: spec.straggler.map(|s| s.ops).unwrap_or(0),
            device_loss_pending: spec.device_loss.is_some(),
            acquires: 0,
            denials_used: 0,
            spec,
        }
    }

    /// Draws whether the next injectable op suffers a transient failure;
    /// returns `(failed_attempts, total_backoff)` when it does.
    fn draw_transient(&mut self, kind: OpKind) -> Option<(u32, f64)> {
        if !transient_injectable(kind)
            || self.transients_left == 0
            || self.spec.retry.max_retries == 0
        {
            return None;
        }
        if unit_draw(&mut self.rng) >= self.spec.transient_rate {
            return None;
        }
        let attempts =
            1 + (splitmix64(&mut self.rng) % u64::from(self.spec.retry.max_retries)) as u32;
        self.transients_left -= 1;
        let backoff = self.spec.retry.total_backoff(attempts);
        self.stats.transients += 1;
        self.stats.retries += u64::from(attempts);
        self.stats.backoff_seconds += backoff;
        Some((attempts, backoff))
    }

    /// Consumes one straggle slot if `lane` is the straggler.
    fn draw_straggle(&mut self, lane: Lane, dur: f64) -> Option<f64> {
        let s = self.spec.straggler?;
        if lane != s.lane || self.straggles_left == 0 || dur <= 0.0 {
            return None;
        }
        self.straggles_left -= 1;
        self.stats.straggled_ops += 1;
        self.stats.straggle_seconds += dur * (s.factor - 1.0);
        Some(s.factor)
    }
}

impl FaultSink for FaultState {
    fn on_op(&mut self, kind: OpKind, lane: Lane, dur: f64) -> OpFault {
        if let Some(factor) = self.draw_straggle(lane, dur) {
            return OpFault::Straggle { factor };
        }
        if dur > 0.0 {
            if let Some((attempts, backoff)) = self.draw_transient(kind) {
                return OpFault::Transient { attempts, backoff };
            }
        }
        OpFault::None
    }
}

/// The shared handle to one run's fault schedule.
///
/// Cloning is cheap (an `Arc` bump): the engine keeps one handle for
/// boundary decisions (device loss, staging denials) and stats reads while
/// its per-batch [`Timeline`](crate::Timeline)s — and, in the threaded
/// backend, its worker lanes — hold others.
#[derive(Debug, Clone)]
pub struct FaultPlan(Arc<Mutex<FaultState>>);

impl FaultPlan {
    /// Creates the plan for `spec`.
    pub fn new(spec: FaultSpec) -> Self {
        FaultPlan(Arc::new(Mutex::new(FaultState::new(spec))))
    }

    fn state(&self) -> std::sync::MutexGuard<'_, FaultState> {
        // A panicking worker must not wedge fault accounting: the state is
        // plain counters, valid regardless of where the panic struck.
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The plan as a [`Timeline`](crate::Timeline) fault sink.
    pub fn sink(&self) -> Arc<Mutex<dyn FaultSink>> {
        self.0.clone()
    }

    /// Snapshot of the fault counters so far.
    pub fn stats(&self) -> FaultStats {
        self.state().stats
    }

    /// The retry policy backends should apply to real (threaded) faults.
    pub fn retry(&self) -> RetryPolicy {
        self.state().spec.retry
    }

    /// Scales the backoff base by `factor` — how engines price backoff
    /// through their cost model (a cost-scaled run backs off in the same
    /// scaled time units its ops are costed in).
    pub fn scale_backoff(&self, factor: f64) {
        assert!(factor > 0.0, "backoff scale must be positive");
        self.state().spec.retry.backoff_base *= factor;
    }

    /// Fires the permanent device loss if its boundary has been reached:
    /// returns the number of devices to lose, exactly once.
    pub fn device_loss_at(&self, batch: u64) -> Option<usize> {
        let mut st = self.state();
        let dl = st.spec.device_loss?;
        if st.device_loss_pending && batch >= dl.at_batch {
            st.device_loss_pending = false;
            st.stats.device_losses += 1;
            Some(dl.lose)
        } else {
            None
        }
    }

    /// Registers one staging-pool acquisition; `true` means the acquire is
    /// denied by injected exhaustion and the caller must take its
    /// backpressure path.
    pub fn next_staging_acquire(&self) -> bool {
        let mut st = self.state();
        let index = st.acquires;
        st.acquires += 1;
        let Some(e) = st.spec.staging_exhaustion else {
            return false;
        };
        if index >= e.at_acquire && st.denials_used < e.denials {
            st.denials_used += 1;
            st.stats.exhaustion_denials += 1;
            true
        } else {
            false
        }
    }

    /// Draws a transient failure for real (threaded) work of `kind`;
    /// returns the number of failed attempts the lane must re-execute.
    pub fn transient_attempts(&self, kind: OpKind) -> Option<u32> {
        self.state().draw_transient(kind).map(|(a, _)| a)
    }

    /// Draws a straggle for real (threaded) work on `lane`; returns the
    /// slowdown factor the lane must emulate by re-executing its work.
    pub fn straggle_factor(&self, lane: Lane) -> Option<f64> {
        // Real spans have no pre-known duration; account one straggle slot
        // without a seconds figure.
        let mut st = self.state();
        let s = st.spec.straggler?;
        if lane != s.lane || st.straggles_left == 0 {
            return None;
        }
        st.straggles_left -= 1;
        st.stats.straggled_ops += 1;
        Some(s.factor)
    }

    /// Records one real recv timeout observed by a threaded lane.
    pub fn note_timeout(&self) {
        self.state().stats.timeouts += 1;
    }

    /// Records one lane abort (retry budget exhausted).
    pub fn note_abort(&self) {
        self.state().stats.aborts += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::Timeline;

    #[test]
    fn total_backoff_is_a_geometric_sum() {
        let r = RetryPolicy {
            max_retries: 5,
            backoff_base: 1.0,
            backoff_factor: 2.0,
        };
        assert_eq!(r.total_backoff(0), 0.0);
        assert_eq!(r.total_backoff(1), 1.0);
        assert_eq!(r.total_backoff(3), 1.0 + 2.0 + 4.0);
    }

    #[test]
    fn fault_schedule_is_a_pure_function_of_the_spec() {
        let spec = FaultSpec::new(42).with_transients(0.5, 100);
        let a = FaultPlan::new(spec);
        let b = FaultPlan::new(spec);
        let mut faults_a = Vec::new();
        let mut faults_b = Vec::new();
        for _ in 0..200 {
            faults_a.push(
                a.sink()
                    .lock()
                    .unwrap()
                    .on_op(OpKind::LoadParams, Lane::GpuComm, 1.0),
            );
            faults_b.push(
                b.sink()
                    .lock()
                    .unwrap()
                    .on_op(OpKind::LoadParams, Lane::GpuComm, 1.0),
            );
        }
        assert_eq!(faults_a, faults_b);
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().transients > 0, "rate 0.5 over 200 draws must hit");
    }

    #[test]
    fn transients_only_strike_injectable_kinds_and_respect_the_cap() {
        let plan = FaultPlan::new(FaultSpec::new(7).with_transients(1.0, 3));
        let sink = plan.sink();
        let mut sink = sink.lock().unwrap();
        // Forward/Backward are never injectable.
        assert_eq!(
            sink.on_op(OpKind::Forward, Lane::GpuCompute, 1.0),
            OpFault::None
        );
        for _ in 0..3 {
            assert!(matches!(
                sink.on_op(OpKind::LoadParams, Lane::GpuComm, 1.0),
                OpFault::Transient { .. }
            ));
        }
        // Cap reached: rate 1.0 no longer fires.
        assert_eq!(
            sink.on_op(OpKind::LoadParams, Lane::GpuComm, 1.0),
            OpFault::None
        );
        drop(sink);
        let stats = plan.stats();
        assert_eq!(stats.transients, 3);
        assert!(stats.retries >= 3);
        assert!(stats.backoff_seconds > 0.0);
    }

    #[test]
    fn straggler_slows_exactly_k_ops_on_its_lane() {
        let plan = FaultPlan::new(FaultSpec::new(1).with_straggler(Lane::CpuAdam, 3.0, 2));
        let sink = plan.sink();
        let mut sink = sink.lock().unwrap();
        // Wrong lane: untouched.
        assert_eq!(
            sink.on_op(OpKind::CpuAdamUpdate, Lane::GpuCompute, 1.0),
            OpFault::None
        );
        assert_eq!(
            sink.on_op(OpKind::CpuAdamUpdate, Lane::CpuAdam, 2.0),
            OpFault::Straggle { factor: 3.0 }
        );
        assert_eq!(
            sink.on_op(OpKind::CpuAdamUpdate, Lane::CpuAdam, 1.0),
            OpFault::Straggle { factor: 3.0 }
        );
        // Budget spent.
        assert_eq!(
            sink.on_op(OpKind::CpuAdamUpdate, Lane::CpuAdam, 1.0),
            OpFault::None
        );
        drop(sink);
        let stats = plan.stats();
        assert_eq!(stats.straggled_ops, 2);
        assert_eq!(stats.straggle_seconds, 2.0 * 2.0 + 1.0 * 2.0);
    }

    #[test]
    fn op_fault_pricing_inflates_durations() {
        assert_eq!(OpFault::None.apply(2.0), 2.0);
        assert_eq!(
            OpFault::Transient {
                attempts: 2,
                backoff: 0.5
            }
            .apply(2.0),
            2.0 * 3.0 + 0.5
        );
        assert_eq!(OpFault::Straggle { factor: 4.0 }.apply(2.0), 8.0);
    }

    #[test]
    fn timeline_with_installed_sink_prices_faults_into_the_schedule() {
        let plan = FaultPlan::new(FaultSpec::new(3).with_transients(1.0, 1).with_retry(
            RetryPolicy {
                max_retries: 1,
                backoff_base: 0.25,
                backoff_factor: 2.0,
            },
        ));
        let mut faulted = Timeline::new();
        faulted.install_fault_sink(plan.sink());
        let mut clean = Timeline::new();
        for t in [&mut faulted, &mut clean] {
            t.push(OpKind::LoadParams, Lane::GpuComm, 1.0, &[]);
            t.push(OpKind::Forward, Lane::GpuCompute, 1.0, &[]);
        }
        // rate 1.0, max_retries 1 → exactly one extra attempt + 0.25 backoff
        // on the load; the forward is untouched.
        assert_eq!(faulted.ops()[0].dur, 1.0 * 2.0 + 0.25);
        assert_eq!(faulted.ops()[1].dur, 1.0);
        assert_eq!(clean.ops()[0].dur, 1.0);
        assert_eq!(plan.stats().transients, 1);
    }

    #[test]
    fn device_loss_fires_exactly_once_at_its_boundary() {
        let plan = FaultPlan::new(FaultSpec::new(0).with_device_loss(2, 2));
        assert_eq!(plan.device_loss_at(0), None);
        assert_eq!(plan.device_loss_at(1), None);
        assert_eq!(plan.device_loss_at(2), Some(2));
        assert_eq!(
            plan.device_loss_at(3),
            None,
            "a loss is permanent, not periodic"
        );
        assert_eq!(plan.stats().device_losses, 1);
    }

    #[test]
    fn staging_exhaustion_denies_a_contiguous_window() {
        let plan = FaultPlan::new(FaultSpec::new(0).with_staging_exhaustion(2, 2));
        let denials: Vec<bool> = (0..6).map(|_| plan.next_staging_acquire()).collect();
        assert_eq!(denials, vec![false, false, true, true, false, false]);
        assert_eq!(plan.stats().exhaustion_denials, 2);
    }

    #[test]
    fn threaded_draw_paths_share_the_budget_with_the_sink() {
        let plan = FaultPlan::new(FaultSpec::new(9).with_transients(1.0, 2).with_straggler(
            Lane::GpuComm,
            2.0,
            1,
        ));
        assert!(plan.transient_attempts(OpKind::LoadParams).is_some());
        assert!(plan.transient_attempts(OpKind::Forward).is_none());
        assert!(plan.straggle_factor(Lane::GpuComm).is_some());
        assert!(plan.straggle_factor(Lane::GpuComm).is_none());
        plan.note_timeout();
        plan.note_abort();
        let stats = plan.stats();
        assert_eq!(stats.transients, 1);
        assert_eq!(stats.straggled_ops, 1);
        assert_eq!(stats.timeouts, 1);
        assert_eq!(stats.aborts, 1);
    }

    #[test]
    fn stats_since_attributes_a_batch_delta() {
        let plan = FaultPlan::new(FaultSpec::new(5).with_transients(1.0, 10));
        let before = plan.stats();
        assert!(!before.any());
        plan.transient_attempts(OpKind::AllReduce);
        plan.transient_attempts(OpKind::AllReduce);
        let delta = plan.stats().since(&before);
        assert_eq!(delta.transients, 2);
        assert!(delta.any());
    }

    #[test]
    fn scaled_backoff_prices_through_the_cost_model() {
        let plan = FaultPlan::new(FaultSpec::new(0).with_transients(1.0, 1).with_retry(
            RetryPolicy {
                max_retries: 1,
                backoff_base: 1.0,
                backoff_factor: 2.0,
            },
        ));
        plan.scale_backoff(0.5);
        assert_eq!(plan.retry().backoff_base, 0.5);
    }
}
