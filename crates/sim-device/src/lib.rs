//! Simulated device substrate for the CLM reproduction.
//!
//! The CLM paper is a *systems* paper: its contribution is a data-placement
//! and scheduling policy for 3DGS training on a GPU whose memory is smaller
//! than the model.  This crate provides the hardware model that policy runs
//! against in the absence of a physical GPU:
//!
//! * [`DeviceProfile`] — capacities and rates of the two paper testbeds
//!   (RTX 4090 / PCIe 4.0 and RTX 2080 Ti / PCIe 3.0) and an analytic cost
//!   model for rendering, transfers and Adam updates;
//! * [`MemoryPool`] — GPU and pinned-host memory accounting with
//!   per-category breakdowns and out-of-memory errors;
//! * [`Timeline`] — a discrete-event scheduler over CUDA-stream-like lanes
//!   with cross-lane dependencies, from which makespan, overlap,
//!   utilisation and idle-rate statistics are derived;
//! * [`metrics`] — the Nsight-style utilisation numbers reported in the
//!   paper's Table 7 and Figure 15;
//! * [`HostTopology`] — the probe of the *real* host the simulation runs
//!   on (cores, caches, cgroup CPU quota), feeding the runtime's
//!   hardware-aware autotuning.
//!
//! # Example
//!
//! ```
//! use sim_device::{DeviceProfile, Timeline, Lane, OpKind};
//!
//! let profile = DeviceProfile::rtx4090();
//! let mut timeline = Timeline::new();
//! let load = timeline.push_with_bytes(
//!     OpKind::LoadParams, Lane::GpuComm, profile.transfer_time(1 << 20), 1 << 20, &[]);
//! let fwd = timeline.push(
//!     OpKind::Forward, Lane::GpuCompute, profile.forward_time(10_000, 256 * 256), &[load]);
//! timeline.push(OpKind::Backward, Lane::GpuCompute,
//!               profile.backward_time(10_000, 256 * 256), &[fwd]);
//! assert!(timeline.makespan() > 0.0);
//! ```
#![warn(missing_docs)]

pub mod device;
pub mod fault;
pub mod host;
pub mod memory;
pub mod metrics;
pub mod timeline;

pub use device::{DeviceProfile, GIB};
pub use fault::{
    DeviceLossSpec, ExhaustionSpec, FaultPlan, FaultSink, FaultSpec, FaultStats, OpFault,
    RetryPolicy, StragglerSpec,
};
pub use host::{CpuVendor, HostTopology};
pub use memory::{AllocationId, MemoryCategory, MemoryPool, OutOfMemory};
pub use metrics::{
    gpu_idle_rate_cdf, hardware_utilization, mean_gpu_utilization, HardwareUtilization,
};
pub use timeline::{empirical_cdf, Lane, OpId, OpKind, ScheduledOp, Timeline, TraceSink};
