//! Discrete-event execution timeline.
//!
//! The paper's performance results all come from how work is laid out on
//! three concurrent "lanes" — the GPU compute stream, the GPU communication
//! stream and the dedicated CPU Adam thread — and how much of it can be
//! overlapped.  [`Timeline`] reproduces this: operations are submitted to a
//! lane in program order (like a CUDA stream), may depend on operations in
//! other lanes (like CUDA events), and are scheduled as early as those two
//! constraints allow.  From the resulting schedule we derive makespan,
//! per-lane busy time, idle-rate CDFs (Figure 15) and utilisation metrics
//! (Table 7).

use crate::fault::FaultSink;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// An execution resource that serialises the operations submitted to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Lane {
    /// The GPU compute stream (stream 0 in Figure 6).
    GpuCompute,
    /// The GPU communication stream (stream 1 in Figure 6).
    GpuComm,
    /// The dedicated CPU Adam thread.
    CpuAdam,
    /// The host Python/scheduling thread (frustum culling, TSP ordering).
    CpuScheduler,
    /// Compute stream of simulated device `d > 0` in a sharded (multi-GPU)
    /// schedule.  Device 0 reuses [`Lane::GpuCompute`]; use
    /// [`Lane::compute_of`] instead of constructing this directly.
    DeviceCompute(u8),
    /// Communication stream of simulated device `d > 0` (see
    /// [`Lane::comm_of`]).
    DeviceComm(u8),
    /// CPU Adam worker serving simulated device `d > 0` (see
    /// [`Lane::adam_of`]).
    DeviceAdam(u8),
}

impl Lane {
    /// The four single-device lanes in display order.  Sharded schedules add
    /// one `Device*` lane triple per extra device on top of these.
    pub const ALL: [Lane; 4] = [
        Lane::GpuCompute,
        Lane::GpuComm,
        Lane::CpuAdam,
        Lane::CpuScheduler,
    ];

    /// Largest device index a sharded schedule may address (the `Device*`
    /// lanes carry the index as a `u8`).
    pub const MAX_DEVICE: usize = u8::MAX as usize;

    /// The compute lane of simulated device `device`.  Device 0 maps to the
    /// classic [`Lane::GpuCompute`], so a 1-device sharded schedule lands on
    /// exactly the lanes the single-device engine uses.
    ///
    /// # Panics
    /// Panics if `device` exceeds [`Lane::MAX_DEVICE`].
    pub fn compute_of(device: usize) -> Lane {
        assert!(
            device <= Lane::MAX_DEVICE,
            "device index {device} too large"
        );
        if device == 0 {
            Lane::GpuCompute
        } else {
            Lane::DeviceCompute(device as u8)
        }
    }

    /// The communication lane of simulated device `device` (device 0 maps to
    /// [`Lane::GpuComm`]).
    ///
    /// # Panics
    /// Panics if `device` exceeds [`Lane::MAX_DEVICE`].
    pub fn comm_of(device: usize) -> Lane {
        assert!(
            device <= Lane::MAX_DEVICE,
            "device index {device} too large"
        );
        if device == 0 {
            Lane::GpuComm
        } else {
            Lane::DeviceComm(device as u8)
        }
    }

    /// The CPU Adam lane serving simulated device `device` (device 0 maps to
    /// [`Lane::CpuAdam`]).
    ///
    /// # Panics
    /// Panics if `device` exceeds [`Lane::MAX_DEVICE`].
    pub fn adam_of(device: usize) -> Lane {
        assert!(
            device <= Lane::MAX_DEVICE,
            "device index {device} too large"
        );
        if device == 0 {
            Lane::CpuAdam
        } else {
            Lane::DeviceAdam(device as u8)
        }
    }

    /// The device this lane belongs to: 0 for the classic GPU/Adam lanes,
    /// `d` for the `Device*` lanes, and `None` for the host scheduler (it is
    /// shared by every device).
    pub fn device(self) -> Option<usize> {
        match self {
            Lane::GpuCompute | Lane::GpuComm | Lane::CpuAdam => Some(0),
            Lane::CpuScheduler => None,
            Lane::DeviceCompute(d) | Lane::DeviceComm(d) | Lane::DeviceAdam(d) => Some(d as usize),
        }
    }

    /// Compact wire code for trace serialisation: `4 * device + class` with
    /// class compute = 0 / comm = 1 / adam = 2, and the shared scheduler lane
    /// at the otherwise-unused code 3.  Round-trips through
    /// [`Lane::from_code`].
    pub fn code(self) -> u32 {
        match self {
            Lane::CpuScheduler => 3,
            Lane::GpuCompute => 0,
            Lane::GpuComm => 1,
            Lane::CpuAdam => 2,
            Lane::DeviceCompute(d) => 4 * d as u32,
            Lane::DeviceComm(d) => 4 * d as u32 + 1,
            Lane::DeviceAdam(d) => 4 * d as u32 + 2,
        }
    }

    /// Inverse of [`Lane::code`]; `None` for codes no lane encodes to
    /// (class 3 of a non-zero device).
    pub fn from_code(code: u32) -> Option<Lane> {
        if code == 3 {
            return Some(Lane::CpuScheduler);
        }
        let device = (code / 4) as usize;
        match code % 4 {
            0 => Some(Lane::compute_of(device)),
            1 => Some(Lane::comm_of(device)),
            2 => Some(Lane::adam_of(device)),
            _ => None,
        }
    }
}

/// The kind of work an operation represents; used for run-time breakdowns
/// (Figure 13) and communication-volume accounting (Figure 14, Table 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Forward rendering pass of one micro-batch.
    Forward,
    /// Backward pass of one micro-batch.
    Backward,
    /// Parameter load from CPU to GPU memory.
    LoadParams,
    /// Gradient store from GPU to CPU memory.
    StoreGrads,
    /// On-GPU copy of cached Gaussians between double buffers.
    CacheCopy,
    /// Cross-device gradient all-reduce step of a sharded (data-parallel)
    /// schedule.
    AllReduce,
    /// Mid-training model resize at a densification boundary: host-side row
    /// compaction/append of the offloaded store, optimiser state and pinned
    /// staging buffers while every lane is drained.
    Resize,
    /// Adam update executed on the CPU thread.
    CpuAdamUpdate,
    /// Adam update executed on the GPU (GPU-only baselines).
    GpuAdamUpdate,
    /// Frustum culling, ordering and other scheduling work.
    Scheduling,
    /// Anything else.
    Other,
}

impl OpKind {
    /// Every kind, in wire-code order.
    pub const ALL: [OpKind; 11] = [
        OpKind::Forward,
        OpKind::Backward,
        OpKind::LoadParams,
        OpKind::StoreGrads,
        OpKind::CacheCopy,
        OpKind::AllReduce,
        OpKind::Resize,
        OpKind::CpuAdamUpdate,
        OpKind::GpuAdamUpdate,
        OpKind::Scheduling,
        OpKind::Other,
    ];

    /// Compact wire code for trace serialisation (index into
    /// [`OpKind::ALL`]); round-trips through [`OpKind::from_code`].
    pub fn code(self) -> u32 {
        OpKind::ALL.iter().position(|k| *k == self).unwrap() as u32
    }

    /// Inverse of [`OpKind::code`]; `None` for out-of-range codes.
    pub fn from_code(code: u32) -> Option<OpKind> {
        OpKind::ALL.get(code as usize).copied()
    }

    /// Short display name used by reports and Chrome-trace exports.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Forward => "Forward",
            OpKind::Backward => "Backward",
            OpKind::LoadParams => "LoadParams",
            OpKind::StoreGrads => "StoreGrads",
            OpKind::CacheCopy => "CacheCopy",
            OpKind::AllReduce => "AllReduce",
            OpKind::Resize => "Resize",
            OpKind::CpuAdamUpdate => "CpuAdamUpdate",
            OpKind::GpuAdamUpdate => "GpuAdamUpdate",
            OpKind::Scheduling => "Scheduling",
            OpKind::Other => "Other",
        }
    }
}

/// Identifier of a submitted operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(usize);

impl OpId {
    /// Position of the operation in its timeline's submission order.
    /// Timelines are per-batch, so this doubles as the within-batch index a
    /// trace encoder can use to express dependencies compactly.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A scheduled operation with its resolved start and end times.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledOp {
    /// Identifier.
    pub id: OpId,
    /// Work classification.
    pub kind: OpKind,
    /// Lane the operation ran on.
    pub lane: Lane,
    /// Start time in seconds.
    pub start: f64,
    /// End time in seconds (`start + dur`, rounded once).
    pub end: f64,
    /// Duration in seconds exactly as submitted.  Kept separately from
    /// `end - start` so a trace replay can re-push the identical value:
    /// recomputing the duration from the rounded `end` could be off by an
    /// ulp and break bit-exact schedule reproduction.
    pub dur: f64,
    /// Bytes moved (zero for pure compute).
    pub bytes: u64,
    /// Gaussian rows the operation touched (zero when not applicable).
    pub rows: u64,
    /// Micro-batch index within the batch, when the operation belongs to
    /// one (`None` for batch-level work such as scheduling or resizes).
    pub microbatch: Option<u32>,
    /// Cross-lane dependencies the operation waited on, as submitted.
    /// Empty for measured (wall-clock) spans, whose ordering is implicit in
    /// their recorded start times.
    pub deps: Vec<OpId>,
}

impl ScheduledOp {
    /// Duration in seconds (the submitted value, see [`ScheduledOp::dur`]).
    pub fn duration(&self) -> f64 {
        self.dur
    }
}

/// Receiver for scheduled operations flushed out of a [`Timeline`]; the
/// hook through which trace recorders capture every op the runtime
/// schedules without the runtime depending on any trace format.
pub trait TraceSink {
    /// Records one scheduled op attributed to `(epoch, batch)`.  Ops of one
    /// batch arrive in submission order, which is also the order their
    /// within-batch [`OpId`] indices count.
    fn record_op(&mut self, epoch: u64, batch: u64, op: &ScheduledOp);
}

/// An as-early-as-possible scheduler over serialising lanes with
/// cross-lane dependencies.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    ops: Vec<ScheduledOp>,
    lane_available: HashMap<Lane, f64>,
    fault: Option<Arc<Mutex<dyn FaultSink>>>,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a fault sink: every subsequently submitted op is offered to
    /// it and any injected fault is priced into the op's duration before
    /// scheduling (see [`crate::fault`]).  Measured spans are reported to
    /// the sink for accounting but never re-timed.
    pub fn install_fault_sink(&mut self, sink: Arc<Mutex<dyn FaultSink>>) {
        self.fault = Some(sink);
    }

    /// Submits an operation of `kind` to `lane` lasting `duration` seconds,
    /// not starting before every operation in `deps` has finished.
    /// Returns the operation id.
    ///
    /// # Panics
    /// Panics if `duration` is negative or a dependency id is unknown.
    pub fn push(&mut self, kind: OpKind, lane: Lane, duration: f64, deps: &[OpId]) -> OpId {
        self.push_with_bytes(kind, lane, duration, 0, deps)
    }

    /// Like [`push`](Self::push) but records `bytes` moved by the operation
    /// (for communication accounting).
    ///
    /// # Panics
    /// Panics if `duration` is negative or a dependency id is unknown.
    pub fn push_with_bytes(
        &mut self,
        kind: OpKind,
        lane: Lane,
        duration: f64,
        bytes: u64,
        deps: &[OpId],
    ) -> OpId {
        self.push_traced(kind, lane, duration, bytes, 0, None, deps)
    }

    /// Like [`push_with_bytes`](Self::push_with_bytes) but also annotates
    /// the op with the Gaussian `rows` it touches and the `microbatch` it
    /// belongs to, so a trace of the schedule carries enough structure to be
    /// replayed under altered pipeline knobs.
    ///
    /// # Panics
    /// Panics if `duration` is negative or a dependency id is unknown.
    pub fn push_traced(
        &mut self,
        kind: OpKind,
        lane: Lane,
        duration: f64,
        bytes: u64,
        rows: u64,
        microbatch: Option<u32>,
        deps: &[OpId],
    ) -> OpId {
        assert!(
            duration >= 0.0,
            "duration must be non-negative, got {duration}"
        );
        let duration = match &self.fault {
            Some(sink) => {
                // A poisoned sink still holds valid counters (see
                // FaultPlan::state); recover rather than cascade the panic.
                let fault = sink
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .on_op(kind, lane, duration);
                fault.apply(duration)
            }
            None => duration,
        };
        let lane_ready = *self.lane_available.get(&lane).unwrap_or(&0.0);
        let deps_ready = deps
            .iter()
            .map(|d| {
                self.ops
                    .get(d.0)
                    .unwrap_or_else(|| panic!("unknown dependency {d:?}"))
                    .end
            })
            .fold(0.0f64, f64::max);
        let start = lane_ready.max(deps_ready);
        let end = start + duration;
        let id = OpId(self.ops.len());
        self.ops.push(ScheduledOp {
            id,
            kind,
            lane,
            start,
            end,
            dur: duration,
            bytes,
            rows,
            microbatch,
            deps: deps.to_vec(),
        });
        self.lane_available.insert(lane, end);
        id
    }

    /// Records a *measured* span with an explicit `[start, end]` interval —
    /// the form wall-clock backends (the synchronous trainer and the
    /// threaded backend) use to capture what actually ran, as opposed to
    /// simulated ops whose start the scheduler derives.  The lane's
    /// availability advances to at least `end` so simulated and measured ops
    /// can share a timeline without travelling back in time; no dependency
    /// edges are recorded (ordering is implicit in the measured starts).
    ///
    /// # Panics
    /// Panics if `start` is negative or `end < start`.
    pub fn push_span(
        &mut self,
        kind: OpKind,
        lane: Lane,
        start: f64,
        end: f64,
        bytes: u64,
        rows: u64,
        microbatch: Option<u32>,
    ) -> OpId {
        assert!(start >= 0.0, "span start must be non-negative, got {start}");
        assert!(
            end >= start,
            "span must not end before it starts ({end} < {start})"
        );
        if let Some(sink) = &self.fault {
            sink.lock()
                .unwrap_or_else(|p| p.into_inner())
                .on_span(kind, lane);
        }
        let id = OpId(self.ops.len());
        self.ops.push(ScheduledOp {
            id,
            kind,
            lane,
            start,
            end,
            dur: end - start,
            bytes,
            rows,
            microbatch,
            deps: Vec::new(),
        });
        let lane_ready = *self.lane_available.get(&lane).unwrap_or(&0.0);
        self.lane_available.insert(lane, lane_ready.max(end));
        id
    }

    /// Flushes every scheduled op, in submission order, into `sink`
    /// attributed to `(epoch, batch)`.
    pub fn flush_trace(&self, epoch: u64, batch: u64, sink: &mut dyn TraceSink) {
        for op in &self.ops {
            sink.record_op(epoch, batch, op);
        }
    }

    /// All scheduled operations in submission order.
    pub fn ops(&self) -> &[ScheduledOp] {
        &self.ops
    }

    /// End time of operation `id`.
    ///
    /// # Panics
    /// Panics if the id is unknown.
    pub fn end_of(&self, id: OpId) -> f64 {
        self.ops[id.0].end
    }

    /// Completion time of the whole schedule (0 for an empty timeline).
    pub fn makespan(&self) -> f64 {
        self.ops.iter().map(|o| o.end).fold(0.0, f64::max)
    }

    /// Total busy time of a lane.
    pub fn busy_time(&self, lane: Lane) -> f64 {
        self.ops
            .iter()
            .filter(|o| o.lane == lane)
            .map(ScheduledOp::duration)
            .sum()
    }

    /// Total time spent on operations of `kind` (across all lanes).
    pub fn time_by_kind(&self, kind: OpKind) -> f64 {
        self.ops
            .iter()
            .filter(|o| o.kind == kind)
            .map(ScheduledOp::duration)
            .sum()
    }

    /// Total bytes moved by operations of `kind`.
    pub fn bytes_by_kind(&self, kind: OpKind) -> u64 {
        self.ops
            .iter()
            .filter(|o| o.kind == kind)
            .map(|o| o.bytes)
            .sum()
    }

    /// Fraction of the makespan a lane was busy (0 for an empty timeline).
    pub fn utilization(&self, lane: Lane) -> f64 {
        let makespan = self.makespan();
        if makespan <= 0.0 {
            0.0
        } else {
            self.busy_time(lane) / makespan
        }
    }

    /// Total time a lane sat idle within the makespan (0 for an empty
    /// timeline).
    pub fn idle_time(&self, lane: Lane) -> f64 {
        (self.makespan() - self.busy_time(lane)).max(0.0)
    }

    /// Fraction of the makespan a lane sat idle — the quantity the paper's
    /// Figure 15 compares between CLM and the no-overlap schedules (0 for an
    /// empty timeline).
    pub fn idle_fraction(&self, lane: Lane) -> f64 {
        let makespan = self.makespan();
        if makespan <= 0.0 {
            0.0
        } else {
            (self.idle_time(lane) / makespan).clamp(0.0, 1.0)
        }
    }

    /// Busy intervals of a lane, sorted by start time.
    pub fn intervals(&self, lane: Lane) -> Vec<(f64, f64)> {
        let mut out: Vec<(f64, f64)> = self
            .ops
            .iter()
            .filter(|o| o.lane == lane && o.duration() > 0.0)
            .map(|o| (o.start, o.end))
            .collect();
        out.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        out
    }

    /// Per-window idle rates of a lane, the quantity whose CDF the paper
    /// plots in Figure 15 (`100 − SMs Active`, sampled over windows of
    /// `window` seconds).  Returns one idle fraction in `[0, 1]` per window
    /// covering `[0, makespan)`.
    ///
    /// # Panics
    /// Panics if `window` is not strictly positive.
    pub fn idle_rates(&self, lane: Lane, window: f64) -> Vec<f64> {
        assert!(window > 0.0, "window must be positive");
        let makespan = self.makespan();
        if makespan <= 0.0 {
            return Vec::new();
        }
        let intervals = self.intervals(lane);
        let num_windows = (makespan / window).ceil() as usize;
        let mut rates = Vec::with_capacity(num_windows);
        for w in 0..num_windows {
            let w_start = w as f64 * window;
            let w_end = (w_start + window).min(makespan);
            let span = w_end - w_start;
            if span <= 0.0 {
                break;
            }
            let mut busy = 0.0;
            for &(s, e) in &intervals {
                let overlap = (e.min(w_end) - s.max(w_start)).max(0.0);
                busy += overlap;
            }
            rates.push(1.0 - (busy / span).min(1.0));
        }
        rates
    }
}

/// Empirical CDF of a sample set: returns `(value, cumulative_fraction)`
/// pairs sorted by value.  Useful for reproducing the paper's CDF figures
/// (sparsity in Figure 5, GPU idle rate in Figure 15).
pub fn empirical_cdf(samples: &[f64]) -> Vec<(f64, f64)> {
    if samples.is_empty() {
        return Vec::new();
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len() as f64;
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_lane_mapping_reuses_classic_lanes_for_device_zero() {
        assert_eq!(Lane::compute_of(0), Lane::GpuCompute);
        assert_eq!(Lane::comm_of(0), Lane::GpuComm);
        assert_eq!(Lane::adam_of(0), Lane::CpuAdam);
        assert_eq!(Lane::compute_of(3), Lane::DeviceCompute(3));
        assert_eq!(Lane::comm_of(1), Lane::DeviceComm(1));
        assert_eq!(Lane::adam_of(2), Lane::DeviceAdam(2));
        for d in [0usize, 1, 2, 7] {
            assert_eq!(Lane::compute_of(d).device(), Some(d));
            assert_eq!(Lane::comm_of(d).device(), Some(d));
            assert_eq!(Lane::adam_of(d).device(), Some(d));
        }
        assert_eq!(Lane::CpuScheduler.device(), None);
    }

    #[test]
    fn device_lanes_serialise_independently_per_device() {
        // Two devices computing concurrently must overlap; the same device's
        // lane still serialises.
        let mut t = Timeline::new();
        t.push(OpKind::Forward, Lane::compute_of(0), 2.0, &[]);
        t.push(OpKind::Forward, Lane::compute_of(1), 2.0, &[]);
        assert_eq!(t.makespan(), 2.0);
        t.push(OpKind::AllReduce, Lane::comm_of(0), 1.0, &[]);
        t.push(OpKind::AllReduce, Lane::comm_of(0), 1.0, &[]);
        assert_eq!(t.busy_time(Lane::comm_of(0)), 2.0);
        assert_eq!(t.time_by_kind(OpKind::AllReduce), 2.0);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_device_index_panics() {
        let _ = Lane::compute_of(Lane::MAX_DEVICE + 1);
    }

    #[test]
    fn single_lane_serializes() {
        let mut t = Timeline::new();
        let a = t.push(OpKind::Forward, Lane::GpuCompute, 2.0, &[]);
        let b = t.push(OpKind::Backward, Lane::GpuCompute, 3.0, &[]);
        assert_eq!(t.end_of(a), 2.0);
        assert_eq!(t.end_of(b), 5.0);
        assert_eq!(t.makespan(), 5.0);
        assert_eq!(t.busy_time(Lane::GpuCompute), 5.0);
        assert_eq!(t.utilization(Lane::GpuCompute), 1.0);
    }

    #[test]
    fn independent_lanes_overlap() {
        let mut t = Timeline::new();
        t.push(OpKind::Forward, Lane::GpuCompute, 4.0, &[]);
        t.push(OpKind::LoadParams, Lane::GpuComm, 3.0, &[]);
        assert_eq!(t.makespan(), 4.0);
        assert!(t.utilization(Lane::GpuComm) < 1.0);
    }

    #[test]
    fn dependencies_delay_start() {
        let mut t = Timeline::new();
        let load = t.push(OpKind::LoadParams, Lane::GpuComm, 2.0, &[]);
        let fwd = t.push(OpKind::Forward, Lane::GpuCompute, 1.0, &[load]);
        assert_eq!(t.ops()[fwd.0].start, 2.0);
        assert_eq!(t.makespan(), 3.0);
    }

    #[test]
    fn pipelined_schedule_overlaps_comm_and_compute() {
        // Two micro-batches: load(i+1) overlaps with compute(i), the
        // structure CLM's micro-batch pipelining produces (Figure 6).
        let mut t = Timeline::new();
        let load1 = t.push(OpKind::LoadParams, Lane::GpuComm, 1.0, &[]);
        let fwd1 = t.push(OpKind::Forward, Lane::GpuCompute, 2.0, &[load1]);
        let load2 = t.push(OpKind::LoadParams, Lane::GpuComm, 1.0, &[]);
        let bwd1 = t.push(OpKind::Backward, Lane::GpuCompute, 2.0, &[fwd1]);
        let fwd2 = t.push(OpKind::Forward, Lane::GpuCompute, 2.0, &[load2, bwd1]);
        let _bwd2 = t.push(OpKind::Backward, Lane::GpuCompute, 2.0, &[fwd2]);
        // Without overlap this would take 2 loads + 4 compute = 10; with
        // overlap the second load hides behind compute.
        assert_eq!(t.makespan(), 9.0);
        assert_eq!(t.busy_time(Lane::GpuComm), 2.0);
        assert_eq!(t.busy_time(Lane::GpuCompute), 8.0);
    }

    #[test]
    fn bytes_and_kind_accounting() {
        let mut t = Timeline::new();
        t.push_with_bytes(OpKind::LoadParams, Lane::GpuComm, 1.0, 1000, &[]);
        t.push_with_bytes(OpKind::LoadParams, Lane::GpuComm, 1.0, 500, &[]);
        t.push_with_bytes(OpKind::StoreGrads, Lane::GpuComm, 1.0, 700, &[]);
        assert_eq!(t.bytes_by_kind(OpKind::LoadParams), 1500);
        assert_eq!(t.bytes_by_kind(OpKind::StoreGrads), 700);
        assert_eq!(t.time_by_kind(OpKind::LoadParams), 2.0);
    }

    #[test]
    fn idle_rates_reflect_gaps() {
        let mut t = Timeline::new();
        let a = t.push(OpKind::Forward, Lane::GpuCompute, 1.0, &[]);
        // Communication creates a 1-second gap on the compute lane.
        let b = t.push(OpKind::LoadParams, Lane::GpuComm, 2.0, &[a]);
        t.push(OpKind::Forward, Lane::GpuCompute, 1.0, &[b]);
        let rates = t.idle_rates(Lane::GpuCompute, 1.0);
        assert_eq!(rates.len(), 4);
        assert_eq!(rates[0], 0.0);
        assert_eq!(rates[1], 1.0);
        assert_eq!(rates[2], 1.0);
        assert_eq!(rates[3], 0.0);
    }

    #[test]
    fn idle_rates_of_fully_busy_lane_are_zero() {
        let mut t = Timeline::new();
        t.push(OpKind::Forward, Lane::GpuCompute, 5.0, &[]);
        let rates = t.idle_rates(Lane::GpuCompute, 0.5);
        assert!(rates.iter().all(|r| *r == 0.0));
    }

    #[test]
    fn empirical_cdf_is_monotone_and_ends_at_one() {
        let cdf = empirical_cdf(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf[0].0, 1.0);
        assert_eq!(cdf.last().unwrap().1, 1.0);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!(empirical_cdf(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let mut t = Timeline::new();
        t.push(OpKind::Other, Lane::GpuCompute, -1.0, &[]);
    }

    #[test]
    fn empty_timeline_metrics() {
        let t = Timeline::new();
        assert_eq!(t.makespan(), 0.0);
        assert_eq!(t.utilization(Lane::GpuCompute), 0.0);
        assert_eq!(t.idle_time(Lane::GpuCompute), 0.0);
        assert_eq!(t.idle_fraction(Lane::GpuCompute), 0.0);
        assert!(t.idle_rates(Lane::GpuCompute, 1.0).is_empty());
    }

    #[test]
    fn lane_and_kind_wire_codes_round_trip() {
        let mut lanes: Vec<Lane> = Lane::ALL.to_vec();
        for d in [1usize, 2, 7, Lane::MAX_DEVICE] {
            lanes.push(Lane::compute_of(d));
            lanes.push(Lane::comm_of(d));
            lanes.push(Lane::adam_of(d));
        }
        let mut seen = std::collections::HashSet::new();
        for lane in lanes {
            let code = lane.code();
            assert!(seen.insert(code), "duplicate wire code {code} for {lane:?}");
            assert_eq!(Lane::from_code(code), Some(lane));
        }
        assert_eq!(Lane::from_code(7), None, "class 3 of device 1 is unused");
        for kind in OpKind::ALL {
            assert_eq!(OpKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(OpKind::from_code(OpKind::ALL.len() as u32), None);
    }

    #[test]
    fn push_traced_records_rows_microbatch_and_deps() {
        let mut t = Timeline::new();
        let load = t.push_traced(
            OpKind::LoadParams,
            Lane::GpuComm,
            1.0,
            640,
            10,
            Some(0),
            &[],
        );
        let fwd = t.push_traced(
            OpKind::Forward,
            Lane::GpuCompute,
            2.0,
            0,
            10,
            Some(0),
            &[load],
        );
        let op = &t.ops()[fwd.index()];
        assert_eq!(op.rows, 10);
        assert_eq!(op.microbatch, Some(0));
        assert_eq!(op.deps, vec![load]);
        assert_eq!(op.start, 1.0);
        // Plain push routes through the same path with empty annotations.
        let other = t.push(OpKind::Other, Lane::CpuScheduler, 0.5, &[fwd]);
        let op = &t.ops()[other.index()];
        assert_eq!(op.rows, 0);
        assert_eq!(op.microbatch, None);
        assert_eq!(op.deps, vec![fwd]);
    }

    #[test]
    fn push_span_keeps_measured_interval_and_advances_lane() {
        let mut t = Timeline::new();
        t.push_span(OpKind::Forward, Lane::GpuCompute, 1.0, 3.0, 0, 5, Some(0));
        // A measured span that started earlier but is logged later keeps its
        // own interval; the lane clock never moves backwards.
        t.push_span(OpKind::Forward, Lane::GpuCompute, 0.5, 1.0, 0, 5, Some(1));
        assert_eq!(t.ops()[1].start, 0.5);
        assert_eq!(t.ops()[1].end, 1.0);
        assert_eq!(t.makespan(), 3.0);
        // Simulated work pushed after a span starts no earlier than the
        // furthest measured end.
        let next = t.push(OpKind::Backward, Lane::GpuCompute, 1.0, &[]);
        assert_eq!(t.ops()[next.index()].start, 3.0);
    }

    #[test]
    #[should_panic(expected = "end before it starts")]
    fn inverted_span_panics() {
        let mut t = Timeline::new();
        t.push_span(OpKind::Other, Lane::GpuCompute, 2.0, 1.0, 0, 0, None);
    }

    #[test]
    fn flush_trace_replays_ops_in_submission_order() {
        struct Collect(Vec<(u64, u64, usize, OpKind)>);
        impl TraceSink for Collect {
            fn record_op(&mut self, epoch: u64, batch: u64, op: &ScheduledOp) {
                self.0.push((epoch, batch, op.id.index(), op.kind));
            }
        }
        let mut t = Timeline::new();
        let a = t.push(OpKind::LoadParams, Lane::GpuComm, 1.0, &[]);
        t.push(OpKind::Forward, Lane::GpuCompute, 1.0, &[a]);
        let mut sink = Collect(Vec::new());
        t.flush_trace(3, 7, &mut sink);
        assert_eq!(
            sink.0,
            vec![(3, 7, 0, OpKind::LoadParams), (3, 7, 1, OpKind::Forward)]
        );
    }

    #[test]
    fn idle_time_and_fraction_complement_utilization() {
        let mut t = Timeline::new();
        let a = t.push(OpKind::Forward, Lane::GpuCompute, 1.0, &[]);
        let b = t.push(OpKind::LoadParams, Lane::GpuComm, 3.0, &[a]);
        t.push(OpKind::Forward, Lane::GpuCompute, 1.0, &[b]);
        // Makespan 5, compute busy 2 -> idle 3 (60%).
        assert_eq!(t.makespan(), 5.0);
        assert_eq!(t.idle_time(Lane::GpuCompute), 3.0);
        assert!((t.idle_fraction(Lane::GpuCompute) - 0.6).abs() < 1e-12);
        assert!(
            (t.idle_fraction(Lane::GpuCompute) + t.utilization(Lane::GpuCompute) - 1.0).abs()
                < 1e-12
        );
    }
}
