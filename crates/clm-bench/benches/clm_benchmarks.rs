//! Criterion micro-benchmarks over the hot paths of the CLM reproduction:
//! frustum culling, visibility-set algebra, cache planning, TSP ordering,
//! the differentiable renderer and the batch-level pipeline simulation that
//! every figure of the paper is derived from.

use clm_core::{
    batch_fetch_bytes, order_batch, simulate_batch, synthetic_microbatch_stats, DistanceMatrix,
    FinalizationPlan, OrderingStrategy, SceneProfile, SystemKind, TspConfig,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gs_core::cull_frustum;
use gs_render::{l1_loss, render, render_backward, RenderOptions};
use gs_scene::{generate_dataset, DatasetConfig, SceneKind, SceneSpec};
use sim_device::DeviceProfile;
use std::hint::black_box;

fn bench_dataset() -> gs_scene::Dataset {
    generate_dataset(
        &SceneSpec::of(SceneKind::Rubble),
        &DatasetConfig {
            num_gaussians: 3_000,
            num_views: 32,
            width: 48,
            height: 36,
            seed: 1,
        },
    )
}

fn bigcity_profile() -> SceneProfile {
    SceneProfile {
        name: "BigCity".into(),
        resolution: (1920, 1080),
        batch_size: 64,
        rho_mean: 0.0039,
        rho_max: 0.0106,
        cache_hit_rate: 0.15,
        overlap_fraction: 0.6,
    }
}

/// Frustum culling over selection-critical attributes (the per-view step
/// CLM runs ahead of every batch).
fn bench_frustum_culling(c: &mut Criterion) {
    let dataset = bench_dataset();
    c.bench_function("frustum_culling_3k_gaussians", |b| {
        b.iter(|| {
            black_box(cull_frustum(
                black_box(&dataset.ground_truth),
                black_box(&dataset.cameras[0]),
            ))
        })
    });
}

/// Visibility-set algebra and cache planning (Figure 14's inner loop).
fn bench_cache_planning(c: &mut Criterion) {
    let dataset = bench_dataset();
    let sets = dataset.visibility_sets(&dataset.ground_truth);
    c.bench_function("cache_plan_batch_of_8", |b| {
        b.iter(|| black_box(batch_fetch_bytes(black_box(&sets[..8]))))
    });
    c.bench_function("finalization_plan_batch_of_8", |b| {
        b.iter(|| black_box(FinalizationPlan::new(black_box(&sets[..8]))))
    });
}

/// TSP ordering (§4.2.3) for the batch sizes used in the paper.
fn bench_tsp_ordering(c: &mut Criterion) {
    let dataset = bench_dataset();
    let sets = dataset.visibility_sets(&dataset.ground_truth);
    let mut group = c.benchmark_group("tsp_order");
    for &batch in &[4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            let chunk = &sets[..batch];
            b.iter(|| {
                let matrix = DistanceMatrix::from_visibility(black_box(chunk));
                black_box(clm_core::solve(&matrix, &TspConfig::default()))
            })
        });
    }
    group.finish();
    c.bench_function("ordering_strategies_batch_of_8", |b| {
        let chunk = &sets[..8];
        let cams = &dataset.cameras[..8];
        b.iter(|| {
            for strategy in OrderingStrategy::ALL {
                black_box(order_batch(strategy, cams, chunk, 3));
            }
        })
    });
}

/// Differentiable renderer forward and backward (the stand-in for the gsplat
/// kernels that dominate 3DGS training time).
fn bench_renderer(c: &mut Criterion) {
    let dataset = bench_dataset();
    let camera = &dataset.cameras[0];
    let visible = cull_frustum(&dataset.ground_truth, camera);
    let options = RenderOptions {
        background: [0.0; 3],
        visible: Some(visible.indices().to_vec()),
        ..RenderOptions::default()
    };
    c.bench_function("render_forward_48x36", |b| {
        b.iter(|| black_box(render(&dataset.ground_truth, camera, &options)))
    });
    let out = render(&dataset.ground_truth, camera, &options);
    let target = gs_render::Image::filled(48, 36, [0.2, 0.2, 0.2]);
    let loss = l1_loss(&out.image, &target);
    c.bench_function("render_backward_48x36", |b| {
        b.iter(|| {
            black_box(render_backward(
                &dataset.ground_truth,
                camera,
                &out.aux,
                &loss.d_image,
            ))
        })
    });
}

/// Batch-level pipeline simulation per system (what Figures 11–13 are built
/// from).
fn bench_pipeline_simulation(c: &mut Criterion) {
    let device = DeviceProfile::rtx4090();
    let scene = bigcity_profile();
    let n = 46_000_000u64;
    let stats = synthetic_microbatch_stats(&scene, n, true);
    let mut group = c.benchmark_group("simulate_batch");
    for system in SystemKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{system}")),
            &system,
            |b, &system| b.iter(|| black_box(simulate_batch(system, &device, &scene, n, &stats))),
        );
    }
    group.finish();
}

/// Max-model-size search (Figure 8's inner loop).
fn bench_max_model_size(c: &mut Criterion) {
    let device = DeviceProfile::rtx4090();
    let scene = bigcity_profile();
    c.bench_function("max_trainable_gaussians_clm", |b| {
        b.iter(|| {
            black_box(clm_core::max_trainable_gaussians(
                SystemKind::Clm,
                &device,
                &scene,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_frustum_culling, bench_cache_planning, bench_tsp_ordering,
              bench_renderer, bench_pipeline_simulation, bench_max_model_size
}
criterion_main!(benches);
