//! Process-based multi-tenant serving benchmark: the machinery behind
//! `serve_agent`, `serve_bench` and the CI `serve-smoke` job.
//!
//! The harness follows the WIND shape: an orchestrator (`serve_bench`)
//! spawns N release-binary **agent processes** (`serve_agent`), each of
//! which boots a full [`ClmServe`] instance, drives a fixed chaos scenario
//! — oversubscription with queue drain, tenant churn (evict → `.clmckpt` →
//! resume), a mid-epoch cancellation, a budget rejection — and prints one
//! single-line `clm_serve_agent_v1` JSON report to stdout.  The
//! orchestrator parses the lines, **merges** the per-session latency
//! histograms exactly (every process buckets on the same fixed grid), and
//! writes the `clm_serve_bench_v1` artefact (`BENCH_serve.json`) with
//! p50/p99/tail latency per session and fleet-wide.
//!
//! Latencies come from the service's virtual timeline (simulated device
//! seconds, deterministic per agent index); wall-clock histograms ride
//! alongside for the host-side cost.

use clm_core::{SystemKind, TrainConfig};
use clm_serve::{
    AdmitError, ClmServe, FairnessConfig, LatencyHistogram, SceneRegistry, ServeConfig, SessionId,
    SessionState, StepOutcome, TenantSpec,
};
use gs_scene::{DatasetConfig, InitConfig, SceneKind};

/// Workload size of one serve agent.
#[derive(Debug, Clone, Copy)]
pub struct ServeScale {
    /// Gaussians in each synthetic scene.
    pub scene_gaussians: usize,
    /// Camera views per scene.
    pub views: usize,
    /// Render width/height in pixels.
    pub width: u32,
    /// Render height in pixels.
    pub height: u32,
    /// Gaussians each tenant's model starts with.
    pub init_gaussians: usize,
    /// Views per batch.
    pub batch_size: usize,
    /// Batches each tenant trains.
    pub target_batches: usize,
    /// Workload seed (scene generation is shared across agents; tenant
    /// seeds additionally mix in the agent index).
    pub seed: u64,
}

impl ServeScale {
    /// The CI configuration: small enough for seconds per agent, large
    /// enough that the scenario exercises queueing, churn and cancellation.
    pub fn smoke() -> Self {
        ServeScale {
            scene_gaussians: 220,
            views: 8,
            width: 32,
            height: 24,
            init_gaussians: 90,
            batch_size: 4,
            target_batches: 6,
            seed: 47,
        }
    }
}

/// Number of tenants each agent admits (two of them start queued).
pub const TENANTS_PER_AGENT: usize = 6;

/// Active slots per agent service (< [`TENANTS_PER_AGENT`], forcing
/// oversubscription).
pub const ACTIVE_SLOTS: usize = 4;

fn agent_registry(scale: &ServeScale) -> SceneRegistry {
    let mut registry = SceneRegistry::new();
    let config = DatasetConfig {
        num_gaussians: scale.scene_gaussians,
        num_views: scale.views,
        width: scale.width,
        height: scale.height,
        seed: scale.seed,
    };
    registry.register("urban", SceneKind::Bicycle, config);
    registry.register(
        "rubble",
        SceneKind::Rubble,
        DatasetConfig {
            seed: scale.seed + 1,
            ..config
        },
    );
    registry
}

fn tenant_spec(scale: &ServeScale, agent: u64, i: usize) -> TenantSpec {
    let scene = if i.is_multiple_of(2) {
        "urban"
    } else {
        "rubble"
    };
    let seed = scale.seed + 100 * agent + i as u64;
    let mut spec = TenantSpec::new(
        &format!("t{i}"),
        scene,
        TrainConfig {
            system: SystemKind::Clm,
            batch_size: scale.batch_size,
            seed,
            ..Default::default()
        },
        InitConfig {
            num_gaussians: scale.init_gaussians,
            initial_opacity: 0.3,
            seed: seed + 1,
            ..Default::default()
        },
    );
    spec.target_batches = scale.target_batches;
    match i {
        // Tenant 1 is the hog: paper-scale (bandwidth-bound) batch costs
        // and double weight — fairness must still bound everyone else.
        1 => {
            spec.cost_scale = 6.0;
            spec.weight = 2.0;
        }
        // Tenant 2 runs under a tight staging budget (2 buffers) with an
        // oversized window request, exercising the admission clamp.
        2 => {
            spec.prefetch_window = 5;
            spec.staging_budget_bytes = Some(2 * spec.buffer_bytes());
        }
        // Tenant 4 is light-weight (half share) and queued at admission.
        4 => spec.weight = 0.5,
        _ => {}
    }
    spec
}

/// One session's slice of an agent report.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Agent process index the session ran in.
    pub agent: u64,
    /// Tenant name.
    pub tenant: String,
    /// Scene name.
    pub scene: String,
    /// Final lifecycle state (`Completed` or `Cancelled`).
    pub state: String,
    /// Batches trained.
    pub batches: u64,
    /// Evictions the session survived.
    pub evictions: u64,
    /// Resumes the session survived.
    pub resumes: u64,
    /// Budget violations observed (must be 0).
    pub budget_violations: u64,
    /// Virtual-timeline per-batch latency.
    pub latency: LatencyHistogram,
    /// Wall-clock per-batch latency.
    pub wall: LatencyHistogram,
}

/// Everything one agent process measured.
#[derive(Debug, Clone)]
pub struct AgentReport {
    /// Agent process index.
    pub agent: u64,
    /// Per-session measurements in admission order.
    pub sessions: Vec<SessionReport>,
    /// Total batches the service ran.
    pub batches: u64,
    /// Admission rejections (the scenario provokes exactly one).
    pub rejected: u64,
    /// Sessions cancelled (the scenario provokes exactly one).
    pub cancelled: u64,
    /// Final virtual time of the service, in device seconds.
    pub virtual_seconds: f64,
}

/// Runs the fixed chaos scenario in-process and returns the agent report.
///
/// Scenario, deterministic per `(scale, agent)`:
/// 1. admit [`TENANTS_PER_AGENT`] tenants into [`ACTIVE_SLOTS`] slots
///    (the surplus queue — oversubscription);
/// 2. reject one tenant whose budget cannot hold a single buffer;
/// 3. at one third of tenant 0's run, evict it (churn) — the freed slot
///    drains the queue — and resume it as soon as a slot frees;
/// 4. at half of tenant 3's run, cancel it mid-epoch;
/// 5. drain until every session completes.
pub fn run_serve_agent(scale: &ServeScale, agent: u64) -> AgentReport {
    let registry = agent_registry(scale);
    let mut serve = ClmServe::new(
        registry,
        ServeConfig {
            max_active: ACTIVE_SLOTS,
            max_queued: TENANTS_PER_AGENT,
            fairness: FairnessConfig::default(),
            default_staging_budget: None,
        },
    );

    let ids: Vec<SessionId> = (0..TENANTS_PER_AGENT)
        .map(|i| {
            serve
                .admit(tenant_spec(scale, agent, i))
                .expect("scenario tenants admit cleanly")
                .id()
        })
        .collect();

    // A tenant whose budget is below one worst-case buffer must be refused.
    let mut broke = tenant_spec(scale, agent, 0);
    broke.tenant = "broke".into();
    broke.staging_budget_bytes = Some(broke.buffer_bytes() - 1);
    assert!(matches!(
        serve.admit(broke),
        Err(AdmitError::BudgetTooSmall { .. })
    ));

    let churn_victim = ids[0];
    let cancel_victim = ids[3];
    let churn_at = (scale.target_batches / 3).max(1) as u64;
    let cancel_at = (scale.target_batches / 2).max(1) as u64;
    let mut churned = false;
    let mut cancelled = false;

    let step_guard = (TENANTS_PER_AGENT * scale.target_batches * 20) as u64;
    let mut steps = 0u64;
    let mut iters = 0u64;
    while !serve.all_done() && iters < step_guard {
        iters += 1;
        // Resume any evicted session the moment a slot is free.
        let evicted: Vec<SessionId> = serve
            .session_ids()
            .into_iter()
            .filter(|&id| serve.session(id).map(|s| s.state) == Some(SessionState::Evicted))
            .collect();
        for id in evicted {
            if serve.resume(id).is_ok() {
                break;
            }
        }
        match serve.step() {
            StepOutcome::Ran { .. } => steps += 1,
            StepOutcome::Idle => {
                // Every active slot drained while sessions still wait
                // evicted; loop to resume them.
                continue;
            }
        }
        if !churned
            && serve.session(churn_victim).map(|s| s.stats.batches) >= Some(churn_at)
            && serve.session(churn_victim).map(|s| s.state) == Some(SessionState::Active)
        {
            serve.evict(churn_victim).expect("churn eviction");
            churned = true;
        }
        if !cancelled
            && serve.session(cancel_victim).map(|s| s.stats.batches) >= Some(cancel_at)
            && serve.session(cancel_victim).map(|s| s.state) == Some(SessionState::Active)
        {
            serve.cancel(cancel_victim).expect("mid-epoch cancellation");
            cancelled = true;
        }
    }
    assert!(
        serve.all_done(),
        "scenario failed to drain in {steps} steps"
    );
    assert!(churned && cancelled, "scenario triggers did not fire");

    let sessions = ids
        .iter()
        .map(|&id| {
            let s = serve.session(id).expect("session retained");
            SessionReport {
                agent,
                tenant: s.spec.tenant.clone(),
                scene: s.spec.scene.clone(),
                state: format!("{:?}", s.state),
                batches: s.stats.batches,
                evictions: s.stats.evictions,
                resumes: s.stats.resumes,
                budget_violations: s.stats.budget_violations,
                latency: s.stats.latency.clone(),
                wall: s.stats.wall_latency.clone(),
            }
        })
        .collect();
    AgentReport {
        agent,
        sessions,
        batches: serve.stats().batches,
        rejected: serve.stats().rejected,
        cancelled: serve.stats().cancelled,
        virtual_seconds: serve.virtual_now(),
    }
}

impl AgentReport {
    /// The single-line `clm_serve_agent_v1` JSON an agent process prints.
    pub fn to_json(&self) -> String {
        let sessions: Vec<String> = self
            .sessions
            .iter()
            .map(|s| {
                format!(
                    "{{\"tenant\":\"{}\",\"scene\":\"{}\",\"state\":\"{}\",\"batches\":{},\
                     \"evictions\":{},\"resumes\":{},\"budget_violations\":{},\
                     \"latency\":{},\"wall\":{}}}",
                    s.tenant,
                    s.scene,
                    s.state,
                    s.batches,
                    s.evictions,
                    s.resumes,
                    s.budget_violations,
                    s.latency.to_json(),
                    s.wall.to_json()
                )
            })
            .collect();
        format!(
            "{{\"schema\":\"clm_serve_agent_v1\",\"agent\":{},\"batches\":{},\"rejected\":{},\
             \"cancelled\":{},\"virtual_seconds\":{:.9},\"sessions\":[{}]}}",
            self.agent,
            self.batches,
            self.rejected,
            self.cancelled,
            self.virtual_seconds,
            sessions.join(",")
        )
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON reader for the orchestrator side (no serde in this tree).
// ---------------------------------------------------------------------------

/// A parsed JSON value (numbers as `f64`; ample for the agent reports).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string (escapes `\"` `\\` `\n` `\t` only — all the writer emits).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at {pos}"));
        }
        Ok(value)
    }

    /// Member of an object, by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer.
    pub fn u64(&self) -> Option<u64> {
        self.num()
            .filter(|n| *n >= 0.0 && n.fract() == 0.0)
            .map(|n| n as u64)
    }

    /// The value as a string slice.
    pub fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end".into()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, b"true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, b"false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, b"null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &[u8], value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at {}", *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = bytes.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    _ => return Err(format!("unsupported escape at {}", *pos)),
                }
            }
            _ => out.push(c as char),
        }
    }
    Err("unterminated string".into())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at {start}"))
}

fn histogram_from_json(value: &Json) -> Result<LatencyHistogram, String> {
    let count = value
        .get("count")
        .and_then(Json::u64)
        .ok_or("histogram missing count")?;
    let sum = value
        .get("sum_s")
        .and_then(Json::num)
        .ok_or("histogram missing sum_s")?;
    let min = value
        .get("min_s")
        .and_then(Json::num)
        .ok_or("histogram missing min_s")?;
    let max = value
        .get("max_s")
        .and_then(Json::num)
        .ok_or("histogram missing max_s")?;
    let mut buckets = Vec::new();
    for pair in value
        .get("buckets")
        .and_then(Json::arr)
        .ok_or("histogram missing buckets")?
    {
        let pair = pair.arr().ok_or("bucket is not a pair")?;
        if pair.len() != 2 {
            return Err("bucket is not a pair".into());
        }
        let i = pair[0].u64().ok_or("bad bucket index")? as usize;
        let c = pair[1].u64().ok_or("bad bucket count")?;
        buckets.push((i, c));
    }
    LatencyHistogram::from_sparse(count, sum, min, max, &buckets)
        .ok_or_else(|| "inconsistent histogram parts".into())
}

/// Parses one agent process's stdout line back into an [`AgentReport`].
pub fn parse_agent_report(line: &str) -> Result<AgentReport, String> {
    let root = Json::parse(line.trim())?;
    if root.get("schema").and_then(Json::str) != Some("clm_serve_agent_v1") {
        return Err("not a clm_serve_agent_v1 line".into());
    }
    let agent = root
        .get("agent")
        .and_then(Json::u64)
        .ok_or("missing agent")?;
    let mut sessions = Vec::new();
    for s in root
        .get("sessions")
        .and_then(Json::arr)
        .ok_or("missing sessions")?
    {
        sessions.push(SessionReport {
            agent,
            tenant: s
                .get("tenant")
                .and_then(Json::str)
                .ok_or("missing tenant")?
                .to_string(),
            scene: s
                .get("scene")
                .and_then(Json::str)
                .ok_or("missing scene")?
                .to_string(),
            state: s
                .get("state")
                .and_then(Json::str)
                .ok_or("missing state")?
                .to_string(),
            batches: s
                .get("batches")
                .and_then(Json::u64)
                .ok_or("missing batches")?,
            evictions: s
                .get("evictions")
                .and_then(Json::u64)
                .ok_or("missing evictions")?,
            resumes: s
                .get("resumes")
                .and_then(Json::u64)
                .ok_or("missing resumes")?,
            budget_violations: s
                .get("budget_violations")
                .and_then(Json::u64)
                .ok_or("missing budget_violations")?,
            latency: histogram_from_json(s.get("latency").ok_or("missing latency")?)?,
            wall: histogram_from_json(s.get("wall").ok_or("missing wall")?)?,
        });
    }
    Ok(AgentReport {
        agent,
        sessions,
        batches: root
            .get("batches")
            .and_then(Json::u64)
            .ok_or("missing batches")?,
        rejected: root
            .get("rejected")
            .and_then(Json::u64)
            .ok_or("missing rejected")?,
        cancelled: root
            .get("cancelled")
            .and_then(Json::u64)
            .ok_or("missing cancelled")?,
        virtual_seconds: root
            .get("virtual_seconds")
            .and_then(Json::num)
            .ok_or("missing virtual_seconds")?,
    })
}

/// The merged fleet-wide report behind `BENCH_serve.json`.
#[derive(Debug, Clone)]
pub struct ServeBench {
    /// Agent reports in agent order.
    pub agents: Vec<AgentReport>,
    /// Merged virtual-timeline latency across every session.
    pub latency: LatencyHistogram,
    /// Merged wall-clock latency across every session.
    pub wall: LatencyHistogram,
}

impl ServeBench {
    /// Merges parsed agent reports (exact: shared fixed bucket grid).
    pub fn merge(agents: Vec<AgentReport>) -> ServeBench {
        let mut latency = LatencyHistogram::new();
        let mut wall = LatencyHistogram::new();
        for agent in &agents {
            for s in &agent.sessions {
                latency.merge(&s.latency);
                wall.merge(&s.wall);
            }
        }
        ServeBench {
            agents,
            latency,
            wall,
        }
    }

    /// Total batches across the fleet.
    pub fn batches(&self) -> u64 {
        self.agents.iter().map(|a| a.batches).sum()
    }

    /// Total budget violations across the fleet (must be 0).
    pub fn budget_violations(&self) -> u64 {
        self.agents
            .iter()
            .flat_map(|a| &a.sessions)
            .map(|s| s.budget_violations)
            .sum()
    }

    /// Total evict → resume round trips across the fleet.
    pub fn resumes(&self) -> u64 {
        self.agents
            .iter()
            .flat_map(|a| &a.sessions)
            .map(|s| s.resumes)
            .sum()
    }

    /// The single-line `clm_serve_bench_v1` artefact (`BENCH_serve.json`).
    pub fn to_json(&self) -> String {
        let percentiles = |h: &LatencyHistogram| {
            format!(
                "{{\"count\":{},\"p50_s\":{:.9},\"p90_s\":{:.9},\"p99_s\":{:.9},\
                 \"max_s\":{:.9},\"mean_s\":{:.9}}}",
                h.count(),
                h.quantile(0.5),
                h.quantile(0.9),
                h.quantile(0.99),
                h.max(),
                h.mean()
            )
        };
        let per_session: Vec<String> = self
            .agents
            .iter()
            .flat_map(|a| &a.sessions)
            .map(|s| {
                format!(
                    "{{\"agent\":{},\"tenant\":\"{}\",\"scene\":\"{}\",\"state\":\"{}\",\
                     \"batches\":{},\"evictions\":{},\"resumes\":{},\"budget_violations\":{},\
                     \"latency\":{}}}",
                    s.agent,
                    s.tenant,
                    s.scene,
                    s.state,
                    s.batches,
                    s.evictions,
                    s.resumes,
                    s.budget_violations,
                    percentiles(&s.latency)
                )
            })
            .collect();
        format!(
            "{{\"schema\":\"clm_serve_bench_v1\",\"agents\":{},\"sessions\":{},\"batches\":{},\
             \"rejected\":{},\"cancelled\":{},\"resumes\":{},\"budget_violations\":{},\
             \"latency\":{},\"wall_latency\":{},\"per_session\":[{}]}}",
            self.agents.len(),
            self.agents.iter().map(|a| a.sessions.len()).sum::<usize>(),
            self.batches(),
            self.agents.iter().map(|a| a.rejected).sum::<u64>(),
            self.agents.iter().map(|a| a.cancelled).sum::<u64>(),
            self.resumes(),
            self.budget_violations(),
            percentiles(&self.latency),
            percentiles(&self.wall),
            per_session.join(",")
        )
    }
}

/// Shape check for the `clm_serve_bench_v1` artefact: single line, right
/// schema, carries the percentile fields and the per-session list.
pub fn looks_like_serve_json(text: &str) -> bool {
    let line = text.trim_end_matches('\n');
    !line.contains('\n')
        && line.starts_with("{\"schema\":\"clm_serve_bench_v1\",")
        && line.ends_with("]}")
        && line.contains("\"p50_s\":")
        && line.contains("\"p99_s\":")
        && line.contains("\"per_session\":[")
        && line.contains("\"wall_latency\":")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_reader_round_trips_values() {
        let doc = r#"{"a":1,"b":[1,2.5,-3e-2],"c":"x\"y","d":{"e":null,"f":true},"g":[]}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").and_then(Json::u64), Some(1));
        assert_eq!(v.get("b").and_then(Json::arr).map(<[Json]>::len), Some(3));
        assert_eq!(v.get("c").and_then(Json::str), Some("x\"y"));
        assert_eq!(v.get("d").and_then(|d| d.get("e")), Some(&Json::Null));
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{}extra").is_err());
    }

    #[test]
    fn agent_report_json_round_trips() {
        let scale = ServeScale {
            target_batches: 3,
            ..ServeScale::smoke()
        };
        let report = run_serve_agent(&scale, 0);
        let line = report.to_json();
        assert!(!line.contains('\n'));
        let parsed = parse_agent_report(&line).expect("parse own output");
        assert_eq!(parsed.agent, report.agent);
        assert_eq!(parsed.batches, report.batches);
        assert_eq!(parsed.sessions.len(), report.sessions.len());
        for (a, b) in parsed.sessions.iter().zip(&report.sessions) {
            assert_eq!(a.tenant, b.tenant);
            assert_eq!(a.batches, b.batches);
            assert_eq!(a.latency, b.latency);
            assert_eq!(a.wall.count(), b.wall.count());
        }
    }

    #[test]
    fn scenario_covers_churn_cancel_queue_and_budgets() {
        let scale = ServeScale {
            target_batches: 4,
            ..ServeScale::smoke()
        };
        let report = run_serve_agent(&scale, 1);
        assert_eq!(report.sessions.len(), TENANTS_PER_AGENT);
        assert_eq!(report.rejected, 1, "budget rejection fires");
        assert_eq!(report.cancelled, 1, "mid-epoch cancellation fires");
        let churned = &report.sessions[0];
        assert!(
            churned.evictions >= 1 && churned.resumes >= 1,
            "churn fires"
        );
        assert_eq!(churned.state, "Completed");
        let cancelled = report.sessions.iter().find(|s| s.state == "Cancelled");
        assert!(cancelled.is_some(), "one session ends cancelled");
        assert_eq!(
            report
                .sessions
                .iter()
                .map(|s| s.budget_violations)
                .sum::<u64>(),
            0
        );
        // Everyone else completed their full target.
        for s in &report.sessions {
            if s.state == "Completed" {
                assert_eq!(s.batches, 4, "{} shortchanged", s.tenant);
            }
        }
        assert!(report.virtual_seconds > 0.0);
    }

    #[test]
    fn merge_and_artefact_shape() {
        let scale = ServeScale {
            target_batches: 3,
            ..ServeScale::smoke()
        };
        let lines: Vec<String> = (0..2)
            .map(|a| run_serve_agent(&scale, a).to_json())
            .collect();
        let agents: Vec<AgentReport> = lines
            .iter()
            .map(|l| parse_agent_report(l).unwrap())
            .collect();
        let merged = ServeBench::merge(agents);
        let total: u64 = merged
            .agents
            .iter()
            .flat_map(|a| &a.sessions)
            .map(|s| s.latency.count())
            .sum();
        assert_eq!(merged.latency.count(), total, "merge keeps every sample");
        assert!(merged.latency.quantile(0.5) <= merged.latency.quantile(0.99));
        let artefact = merged.to_json();
        assert!(
            looks_like_serve_json(&artefact),
            "artefact shape: {artefact}"
        );
        assert!(!looks_like_serve_json("{\"schema\":\"other\"}"));
    }
}
