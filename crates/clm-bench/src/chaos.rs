//! Fault-recovery benchmark: the chaos matrix behind `chaos_bench` and the
//! CI `chaos-smoke` job.
//!
//! Replays one seeded densifying run through every execution backend while a
//! seeded [`FaultPlan`] injects the fault taxonomy — transient op failures,
//! a straggling communication lane, pinned-staging exhaustion, permanent
//! device loss — and once more through the kill → `.clmckpt` snapshot →
//! restore protocol.  Every leg is gated on **bit-identity** against the
//! fault-free synchronous reference: recovery may stretch the schedule, it
//! must never touch the numerics.  The measurements (faults injected,
//! retries paid, backoff seconds, checkpoint size) are emitted as a
//! single-line `clm_chaos_bench_v1` JSON artefact.

use clm_core::{
    ground_truth_images, BatchReport, DensifyConfig, DensifySchedule, SystemKind, TrainConfig,
    Trainer,
};
use clm_runtime::{
    ExecutionBackend, PipelinedEngine, RuntimeConfig, ShardedEngine, ThreadedBackend,
    ThreadedConfig,
};
use clm_trace::Checkpoint;
use gs_core::GaussianModel;
use gs_render::Image;
use gs_scene::{
    generate_dataset, init_from_point_cloud, Dataset, DatasetConfig, InitConfig, SceneKind,
    SceneSpec,
};
use sim_device::{FaultPlan, FaultSpec, FaultStats, Lane, RetryPolicy};

/// Workload size of one chaos run.
#[derive(Debug, Clone, Copy)]
pub struct ChaosScale {
    /// Gaussians in the synthetic scene the dataset renders.
    pub scene_gaussians: usize,
    /// Camera views (trajectory length = views / batch × epochs).
    pub views: usize,
    /// Render width/height in pixels.
    pub width: u32,
    pub height: u32,
    /// Gaussians the trained model starts with.
    pub init_gaussians: usize,
    /// Views per batch.
    pub batch_size: usize,
    /// Epochs trained.
    pub epochs: usize,
    /// Densify cadence in batches (the run must cross resize boundaries,
    /// otherwise the chaos matrix never proves recovery across one).
    pub densify_every: usize,
    /// Workload seed.
    pub seed: u64,
}

impl ChaosScale {
    /// The CI configuration: small enough for seconds, large enough that
    /// the run crosses densification boundaries and every fault fires.
    pub fn smoke() -> Self {
        ChaosScale {
            scene_gaussians: 400,
            views: 12,
            width: 40,
            height: 30,
            init_gaussians: 150,
            batch_size: 4,
            epochs: 2,
            densify_every: 2,
            seed: 7,
        }
    }
}

/// Seed of the splitmix64 stream the injected fault schedule draws from.
pub const CHAOS_FAULT_SEED: u64 = 0xC4A05;

/// The injected fault schedule: a transient failure on half of the
/// injectable ops plus a 3× straggler on the communication lane and a burst
/// of staging-pool denials — far beyond any realistic fault rate, so the
/// recovery paths are exercised constantly rather than occasionally.
pub fn chaos_fault_spec() -> FaultSpec {
    FaultSpec::new(CHAOS_FAULT_SEED)
        .with_transients(0.5, 48)
        .with_straggler(Lane::GpuComm, 3.0, 8)
        .with_staging_exhaustion(2, 2)
        .with_retry(RetryPolicy::default())
}

/// One leg of the chaos matrix: a backend run under one fault schedule (or
/// the kill/restore protocol), gated on bit-identity.
#[derive(Debug, Clone)]
pub struct ChaosLeg {
    /// Leg name, e.g. `pipelined_faults` or `sharded_device_loss_4to2`.
    pub name: &'static str,
    /// Whether the leg's trajectory matched the fault-free reference bit
    /// for bit (per-batch reports and the final model).
    pub bit_identical: bool,
    /// Faults injected and recovered from during the leg.
    pub stats: FaultStats,
}

/// The chaos matrix outcome plus the artefacts the binary writes.
#[derive(Debug, Clone)]
pub struct ChaosBench {
    /// The workload the matrix ran.
    pub scale: ChaosScale,
    /// Batches per full run.
    pub batches: usize,
    /// Densification boundaries the reference run crossed.
    pub resize_events: usize,
    /// Every leg of the matrix.
    pub legs: Vec<ChaosLeg>,
    /// Encoded `.clmckpt` snapshot taken at the kill boundary (written as
    /// the CI artefact).
    pub checkpoint: Vec<u8>,
    /// Batch index the kill/restore legs snapshot at.
    pub kill_at: usize,
}

impl ChaosBench {
    /// Whether every leg of the matrix stayed bit-identical.
    pub fn all_bit_identical(&self) -> bool {
        self.legs.iter().all(|l| l.bit_identical)
    }

    /// Whether any leg aborted instead of recovering.
    pub fn any_aborts(&self) -> bool {
        self.legs.iter().any(|l| l.stats.aborts > 0)
    }

    /// Total transient failures injected across the matrix — zero means
    /// the matrix was vacuous and the gate must fail.
    pub fn total_transients(&self) -> u64 {
        self.legs.iter().map(|l| l.stats.transients).sum()
    }

    /// Single-line JSON artefact (`clm_chaos_bench_v1`).
    pub fn to_json(&self) -> String {
        let mut legs = String::new();
        for (i, leg) in self.legs.iter().enumerate() {
            if i > 0 {
                legs.push(',');
            }
            let s = &leg.stats;
            legs.push_str(&format!(
                "{{\"name\":\"{}\",\"bit_identical\":{},\"transients\":{},\
                 \"retries\":{},\"backoff_s\":{:.9},\"straggled_ops\":{},\
                 \"straggle_s\":{:.9},\"exhaustion_denials\":{},\
                 \"device_losses\":{},\"timeouts\":{},\"aborts\":{}}}",
                leg.name,
                leg.bit_identical,
                s.transients,
                s.retries,
                s.backoff_seconds,
                s.straggled_ops,
                s.straggle_seconds,
                s.exhaustion_denials,
                s.device_losses,
                s.timeouts,
                s.aborts,
            ));
        }
        format!(
            "{{\"schema\":\"clm_chaos_bench_v1\",\"seed\":{},\"fault_seed\":{},\
             \"batches\":{},\"resize_events\":{},\"kill_at_batch\":{},\
             \"checkpoint_bytes\":{},\"all_bit_identical\":{},\"legs\":[{legs}]}}",
            self.scale.seed,
            CHAOS_FAULT_SEED,
            self.batches,
            self.resize_events,
            self.kill_at,
            self.checkpoint.len(),
            self.all_bit_identical(),
        )
    }
}

/// Shape check for the written artefact (CI re-reads the file through this
/// before trusting the gate).
pub fn looks_like_chaos_json(s: &str) -> bool {
    let t = s.trim();
    t.starts_with('{')
        && t.ends_with('}')
        && t.lines().count() == 1
        && t.contains("\"schema\":\"clm_chaos_bench_v1\"")
        && t.contains("\"legs\":[")
        && t.contains("\"all_bit_identical\":")
}

struct Workload {
    dataset: Dataset,
    targets: Vec<Image>,
    init: GaussianModel,
    train: TrainConfig,
    slices: Vec<std::ops::Range<usize>>,
}

fn build_workload(scale: &ChaosScale) -> Workload {
    let dataset = generate_dataset(
        &SceneSpec::of(SceneKind::Rubble),
        &DatasetConfig {
            num_gaussians: scale.scene_gaussians,
            num_views: scale.views,
            width: scale.width,
            height: scale.height,
            seed: scale.seed,
        },
    );
    let targets = ground_truth_images(&dataset);
    let init = init_from_point_cloud(
        &dataset.ground_truth,
        &InitConfig {
            num_gaussians: scale.init_gaussians,
            initial_opacity: 0.3,
            seed: scale.seed + 1,
            ..Default::default()
        },
    );
    let train = TrainConfig {
        system: SystemKind::Clm,
        batch_size: scale.batch_size,
        seed: scale.seed,
        densify: Some(DensifySchedule {
            every_batches: scale.densify_every,
            config: DensifyConfig {
                grad_threshold: 1.0e-5,
                prune_opacity: 0.305,
                max_gaussians: scale.init_gaussians + 40,
                seed: scale.seed + 2,
                ..Default::default()
            },
        }),
        ..Default::default()
    };
    let per_epoch = {
        let mut slices = Vec::new();
        let mut start = 0;
        while start < scale.views {
            let end = (start + scale.batch_size).min(scale.views);
            slices.push(start..end);
            start = end;
        }
        slices
    };
    let mut slices = Vec::new();
    for _ in 0..scale.epochs {
        slices.extend(per_epoch.iter().cloned());
    }
    Workload {
        dataset,
        targets,
        init,
        train,
        slices,
    }
}

fn runtime_config(devices: usize) -> RuntimeConfig {
    RuntimeConfig {
        prefetch_window: 2,
        num_devices: devices,
        ..Default::default()
    }
}

fn threaded_config() -> ThreadedConfig {
    ThreadedConfig {
        prefetch_window: 2,
        ..Default::default()
    }
}

struct Reference {
    reports: Vec<BatchReport>,
    final_model: GaussianModel,
    resize_events: usize,
}

fn run_reference(w: &Workload) -> Reference {
    let mut trainer = Trainer::new(w.init.clone(), w.train.clone());
    let mut reports = Vec::new();
    for range in &w.slices {
        reports.push(
            trainer.train_batch(&w.dataset.cameras[range.clone()], &w.targets[range.clone()]),
        );
    }
    Reference {
        reports,
        final_model: trainer.model().clone(),
        resize_events: trainer.resize_events(),
    }
}

fn run_range<B: ExecutionBackend>(
    backend: &mut B,
    w: &Workload,
    from: usize,
    to: usize,
    reports: &mut Vec<BatchReport>,
) {
    for range in &w.slices[from..to] {
        let report =
            backend.execute_batch(&w.dataset.cameras[range.clone()], &w.targets[range.clone()]);
        reports.push(report.batch);
    }
}

fn matches_reference<B: ExecutionBackend>(
    backend: &B,
    reports: &[BatchReport],
    reference: &Reference,
) -> bool {
    reports == reference.reports.as_slice() && backend.trainer().model() == &reference.final_model
}

/// Runs one faulted leg: `make` constructs the backend with the given plan
/// already installed (each backend exposes its own `install_fault_plan`).
fn faulted_leg<B, F>(name: &'static str, reference: &Reference, w: &Workload, make: F) -> ChaosLeg
where
    B: ExecutionBackend,
    F: FnOnce(FaultPlan) -> B,
{
    let plan = FaultPlan::new(chaos_fault_spec());
    let mut backend = make(plan.clone());
    let mut reports = Vec::new();
    run_range(&mut backend, w, 0, w.slices.len(), &mut reports);
    ChaosLeg {
        name,
        bit_identical: matches_reference(&backend, &reports, reference),
        stats: plan.stats(),
    }
}

fn kill_restore_leg<B, F, G>(
    name: &'static str,
    reference: &Reference,
    w: &Workload,
    kill_at: usize,
    make: F,
    resume: G,
) -> (ChaosLeg, Vec<u8>)
where
    B: ExecutionBackend,
    F: FnOnce() -> B,
    G: FnOnce(Trainer) -> B,
{
    let mut first = make();
    let mut reports = Vec::new();
    run_range(&mut first, w, 0, kill_at, &mut reports);
    let bytes = Checkpoint::capture(first.trainer(), None).encode();
    drop(first); // the "kill": only the checkpoint bytes survive

    let restored = Checkpoint::decode(&bytes)
        .expect("checkpoint bytes round-trip")
        .restore(w.train.clone())
        .expect("checkpoint restores against the run's config");
    let mut resumed = resume(restored);
    run_range(&mut resumed, w, kill_at, w.slices.len(), &mut reports);
    let leg = ChaosLeg {
        name,
        bit_identical: matches_reference(&resumed, &reports, reference),
        stats: FaultStats::default(),
    };
    (leg, bytes)
}

/// Runs the full chaos matrix at one scale.
pub fn run_chaos_bench(scale: ChaosScale) -> ChaosBench {
    let w = build_workload(&scale);
    let reference = run_reference(&w);
    // Kill past the midpoint so the snapshot carries a non-trivial batch
    // cursor, accumulated gradient norms and resize history.
    let kill_at = w.slices.len() / 2 + 1;
    let mut legs = Vec::new();

    // Fault legs: transients + straggler + staging exhaustion per backend.
    legs.push(faulted_leg("pipelined_faults", &reference, &w, |plan| {
        let mut e = PipelinedEngine::new(w.init.clone(), w.train.clone(), runtime_config(1));
        e.install_fault_plan(plan);
        e
    }));
    legs.push(faulted_leg("threaded_faults", &reference, &w, |plan| {
        let mut e = ThreadedBackend::new(w.init.clone(), w.train.clone(), threaded_config());
        e.install_fault_plan(plan);
        e
    }));
    legs.push(faulted_leg("sharded4_faults", &reference, &w, |plan| {
        let mut e = ShardedEngine::new(
            w.init.clone(),
            w.train.clone(),
            runtime_config(4),
            &w.dataset.cameras,
        );
        e.install_fault_plan(plan);
        e
    }));

    // Device loss: D=4 loses two devices at the second batch boundary and
    // finishes on the survivors.
    {
        let plan = FaultPlan::new(FaultSpec::new(CHAOS_FAULT_SEED).with_device_loss(2, 2));
        let mut sharded = ShardedEngine::new(
            w.init.clone(),
            w.train.clone(),
            runtime_config(4),
            &w.dataset.cameras,
        );
        sharded.install_fault_plan(plan.clone());
        let mut reports = Vec::new();
        run_range(&mut sharded, &w, 0, w.slices.len(), &mut reports);
        let survived =
            sharded.config().num_devices == 2 && sharded.partition().device_counts().len() == 2;
        legs.push(ChaosLeg {
            name: "sharded_device_loss_4to2",
            bit_identical: survived && matches_reference(&sharded, &reports, &reference),
            stats: plan.stats(),
        });
    }

    // Kill → checkpoint → restore per backend.  The pipelined leg's bytes
    // become the published `.clmckpt` artefact.
    let (leg, checkpoint) = kill_restore_leg(
        "pipelined_kill_restore",
        &reference,
        &w,
        kill_at,
        || PipelinedEngine::new(w.init.clone(), w.train.clone(), runtime_config(1)),
        |t| PipelinedEngine::with_trainer(t, runtime_config(1)),
    );
    legs.push(leg);
    let (leg, _) = kill_restore_leg(
        "threaded_kill_restore",
        &reference,
        &w,
        kill_at,
        || ThreadedBackend::new(w.init.clone(), w.train.clone(), threaded_config()),
        |t| ThreadedBackend::with_trainer(t, threaded_config()),
    );
    legs.push(leg);
    let (leg, _) = kill_restore_leg(
        "sharded2_kill_restore",
        &reference,
        &w,
        kill_at,
        || {
            ShardedEngine::new(
                w.init.clone(),
                w.train.clone(),
                runtime_config(2),
                &w.dataset.cameras,
            )
        },
        |t| ShardedEngine::with_trainer(t, runtime_config(2), &w.dataset.cameras),
    );
    legs.push(leg);

    ChaosBench {
        scale,
        batches: w.slices.len(),
        resize_events: reference.resize_events,
        legs,
        checkpoint,
        kill_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_matrix_recovers_bit_identically_everywhere() {
        let bench = run_chaos_bench(ChaosScale::smoke());
        for leg in &bench.legs {
            assert!(leg.bit_identical, "{} diverged: {leg:?}", leg.name);
            assert_eq!(leg.stats.aborts, 0, "{} aborted: {leg:?}", leg.name);
        }
        assert!(bench.total_transients() > 0, "the fault matrix was vacuous");
        assert!(
            bench.resize_events >= 2,
            "the chaos workload must densify: {bench:?}"
        );
        assert!(!bench.checkpoint.is_empty());
        let decoded = Checkpoint::decode(&bench.checkpoint).expect("artefact decodes");
        assert_eq!(decoded.batches_trained, bench.kill_at as u64);
    }

    #[test]
    fn json_artefact_is_well_formed() {
        let bench = run_chaos_bench(ChaosScale::smoke());
        let json = bench.to_json();
        assert!(looks_like_chaos_json(&json), "malformed: {json}");
        assert!(json.contains("\"name\":\"sharded_device_loss_4to2\""));
        assert!(json.contains("\"name\":\"pipelined_kill_restore\""));
        assert!(!looks_like_chaos_json("{}"));
        assert!(!looks_like_chaos_json("not json"));
    }
}
