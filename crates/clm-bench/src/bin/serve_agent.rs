//! Tenant-agent process of the serving benchmark.
//!
//! Boots one in-process [`ClmServe`](clm_serve::ClmServe) instance, drives
//! the fixed chaos scenario (oversubscription, churn, mid-epoch
//! cancellation, a budget rejection) against it, and prints exactly one
//! single-line `clm_serve_agent_v1` JSON report to stdout.  The
//! `serve_bench` orchestrator spawns several of these as separate release
//! processes and merges their histograms.
//!
//! Flags:
//!
//! * `--agent <n>` — agent index, mixed into the tenant seeds (default 0).

use clm_bench::serve::{run_serve_agent, ServeScale};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let agent = args
        .iter()
        .position(|a| a == "--agent")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);

    let report = run_serve_agent(&ServeScale::smoke(), agent);
    println!("{}", report.to_json());
    ExitCode::SUCCESS
}
