//! Orchestrator of the process-based serving benchmark.
//!
//! Spawns `--agents` copies of the sibling `serve_agent` binary as separate
//! processes, parses the single-line `clm_serve_agent_v1` report each
//! prints, merges the per-session latency histograms exactly (shared fixed
//! bucket grid), and writes the fleet-wide `clm_serve_bench_v1` artefact
//! with p50/p99/tail per-session latency to `--out` (default
//! `BENCH_serve.json`).  Exits non-zero if any agent fails, any budget was
//! violated, the churn legs did not produce evict → resume round trips, or
//! the artefact fails the shape check.
//!
//! Flags:
//!
//! * `--agents <n>` — agent processes to spawn (default 2);
//! * `--out <path>` — artefact path (default `BENCH_serve.json`).

use clm_bench::serve::{looks_like_serve_json, parse_agent_report, AgentReport, ServeBench};
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let agents: u64 = flag("--agents").and_then(|v| v.parse().ok()).unwrap_or(2);
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_serve.json".to_string());

    // The agent binary sits next to this one in the target directory.
    let agent_bin = match std::env::current_exe() {
        Ok(me) => me.with_file_name(if cfg!(windows) {
            "serve_agent.exe"
        } else {
            "serve_agent"
        }),
        Err(e) => {
            eprintln!("serve_bench: cannot locate own binary: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !agent_bin.exists() {
        eprintln!(
            "serve_bench: agent binary {} not built (build the workspace binaries first)",
            agent_bin.display()
        );
        return ExitCode::FAILURE;
    }

    // Spawn every agent first, then collect: the processes run their
    // scenarios concurrently.
    let mut children = Vec::new();
    for agent in 0..agents {
        let child = Command::new(&agent_bin)
            .args(["--agent", &agent.to_string()])
            .stdout(std::process::Stdio::piped())
            .spawn();
        match child {
            Ok(c) => children.push((agent, c)),
            Err(e) => {
                eprintln!("serve_bench: spawning agent {agent}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut reports: Vec<AgentReport> = Vec::new();
    for (agent, child) in children {
        let output = match child.wait_with_output() {
            Ok(o) => o,
            Err(e) => {
                eprintln!("serve_bench: waiting for agent {agent}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if !output.status.success() {
            eprintln!("serve_bench: agent {agent} exited with {}", output.status);
            return ExitCode::FAILURE;
        }
        let stdout = String::from_utf8_lossy(&output.stdout);
        let line = match stdout.lines().find(|l| l.starts_with('{')) {
            Some(l) => l,
            None => {
                eprintln!("serve_bench: agent {agent} printed no JSON line");
                return ExitCode::FAILURE;
            }
        };
        match parse_agent_report(line) {
            Ok(r) => reports.push(r),
            Err(e) => {
                eprintln!("serve_bench: agent {agent} report unparseable ({e}): {line}");
                return ExitCode::FAILURE;
            }
        }
    }

    let bench = ServeBench::merge(reports);
    let json = bench.to_json();
    println!("{json}");
    if let Err(e) = std::fs::write(&out_path, format!("{json}\n")) {
        eprintln!("serve_bench: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }

    // Gate 1: the artefact on disk is a well-formed single-line JSON with
    // the percentile fields.
    let written = match std::fs::read_to_string(&out_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve_bench: cannot re-read {out_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !looks_like_serve_json(&written) {
        eprintln!("serve_bench: FAIL — {out_path} is malformed: {written}");
        return ExitCode::FAILURE;
    }
    // Gate 2: no tenant exceeded its admitted staging budget.
    if bench.budget_violations() > 0 {
        eprintln!(
            "serve_bench: FAIL — {} staging-budget violations across the fleet",
            bench.budget_violations()
        );
        return ExitCode::FAILURE;
    }
    // Gate 3: the churn legs actually exercised evict → .clmckpt → resume.
    if bench.resumes() < bench.agents.len() as u64 {
        eprintln!(
            "serve_bench: FAIL — only {} resumes across {} agents; churn leg vacuous",
            bench.resumes(),
            bench.agents.len()
        );
        return ExitCode::FAILURE;
    }
    // Gate 4: latencies were actually measured.
    if bench.latency.count() == 0 || bench.latency.max() <= 0.0 {
        eprintln!("serve_bench: FAIL — empty merged latency histogram");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "serve_bench: serving gate passed ({} agents, {} sessions, {} batches, \
         p50 {:.3} ms / p99 {:.3} ms virtual, {} resumes, 0 budget violations)",
        bench.agents.len(),
        bench.agents.iter().map(|a| a.sessions.len()).sum::<usize>(),
        bench.batches(),
        bench.latency.quantile(0.5) * 1e3,
        bench.latency.quantile(0.99) * 1e3,
        bench.resumes(),
    );
    ExitCode::SUCCESS
}
