//! Table 7 artefact: hardware utilisation of CLM vs naive offloading,
//! derived from timelines executed by the pipelined runtime.  Prints one
//! JSON summary line on stdout (bench-harness idiom); the table-formatted
//! variant remains available via the `paper_figures` binary.
fn main() {
    println!("{}", clm_bench::runtime_summary_table7());
}
