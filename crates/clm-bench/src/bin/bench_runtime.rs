//! Wall-clock runtime benchmark binary.
//!
//! Trains the same scene with the synchronous trainer, the simulated
//! pipelined engine and the threaded backend, verifies the three are
//! bit-identical, and emits the measurements as single-line JSON to stdout
//! **and** to `BENCH_runtime.json` (override with `--out <path>`).
//!
//! Flags:
//!
//! * `--smoke` — run the tiny CI configuration and enforce the smoke gate:
//!   the written artefact must be well-formed, the three backends must be
//!   bit-identical, and the threaded backend must reach at least 0.9× the
//!   synchronous trainer's throughput on a multi-core host (0.75× on a
//!   single core, where the overlap has nowhere to run and only the
//!   coordination overhead is being bounded).
//! * `--out <path>` — where to write the JSON artefact.

use clm_bench::wallclock::{looks_like_bench_json, run_wallclock_bench, WallclockScale};
use std::process::ExitCode;

/// Minimum threaded/synchronous throughput ratio the smoke gate accepts on
/// a multi-core host, where the lanes genuinely overlap.
const SMOKE_MIN_SPEEDUP_MULTI_CORE: f64 = 0.9;

/// Gate on a single-core host: the lanes time-slice instead of overlapping,
/// so the threaded backend can only lose by its coordination overhead; a
/// looser bound keeps the gate meaningful (overhead stays small) without
/// flaking on scheduler noise.
const SMOKE_MIN_SPEEDUP_SINGLE_CORE: f64 = 0.75;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_runtime.json".to_string());

    let scale = if smoke {
        WallclockScale::smoke()
    } else {
        WallclockScale::full()
    };
    let bench = run_wallclock_bench(scale);
    let json = bench.to_json();
    println!("{json}");

    if let Err(e) = std::fs::write(&out_path, format!("{json}\n")) {
        eprintln!("bench_runtime: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }

    if !bench.numerics_match {
        eprintln!("bench_runtime: FAIL — backends diverged numerically");
        return ExitCode::FAILURE;
    }

    if smoke {
        // Gate 1: the artefact on disk must be a well-formed single-line
        // JSON object.
        let written = match std::fs::read_to_string(&out_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("bench_runtime: cannot re-read {out_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if !looks_like_bench_json(&written) {
            eprintln!("bench_runtime: FAIL — {out_path} is malformed: {written}");
            return ExitCode::FAILURE;
        }
        // Gate 2: threaded throughput relative to the synchronous trainer,
        // with the bound picked by how many cores the host actually has.
        let gate = if bench.host_cores >= 2 {
            SMOKE_MIN_SPEEDUP_MULTI_CORE
        } else {
            SMOKE_MIN_SPEEDUP_SINGLE_CORE
        };
        let speedup = bench.speedup_threaded_vs_sync();
        if speedup < gate {
            eprintln!(
                "bench_runtime: FAIL — threaded throughput is only {speedup:.3}x the \
                 synchronous trainer's (gate: {gate} on {} cores)",
                bench.host_cores
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "bench_runtime: smoke gate passed (threaded/sync = {speedup:.3}x, \
             threaded/simulated = {:.3}x, cores = {})",
            bench.speedup_threaded_vs_simulated(),
            bench.host_cores
        );
    }
    ExitCode::SUCCESS
}
