//! Wall-clock runtime benchmark binary.
//!
//! Trains the same scene with the synchronous trainer, the simulated
//! pipelined engine, the threaded backend, the threaded backend with a
//! parallel compute lane and the sharded multi-device engine, verifies the
//! five are bit-identical, and emits the measurements as single-line JSON
//! to stdout **and** to `BENCH_runtime.json` (override with
//! `--out <path>`).  The run densifies on the scale's cadence, so every
//! backend crosses the same mid-epoch resize boundaries; the artefact
//! records `resize_events` and the post-resize throughput delta per
//! backend, making densification cost part of the perf trajectory.
//!
//! Flags:
//!
//! * `--smoke` — run the tiny CI configuration and enforce the smoke gate:
//!   the written artefact must be well-formed, the five backends must be
//!   bit-identical (in particular `sharded_bit_identical`, the shard-count
//!   invariance CI's `shard-matrix` job checks at every device count), and
//!   the threaded backend must beat the synchronous trainer **strictly**
//!   (`> 1×`) on a host with ≥ 2 cores.  On a single-core host the lanes
//!   can only time-slice, so the gate is a 0.9× floor that bounds the
//!   coordination overhead instead.  On a ≥ 4-core host the parallel
//!   compute lane must additionally reach ≥ 1.5× the serial lane's
//!   throughput.
//! * `--devices <n>` — simulated devices for the `sharded` entry
//!   (default 1; CI's matrix runs 1, 2 and 4).
//! * `--compute-threads <n>` — band workers for the `threaded_parallel`
//!   entry (default: the host's autotuned, cgroup-quota-aware
//!   parallelism).
//! * `--out <path>` — where to write the JSON artefact.
//!
//! The artefact embeds the probed host topology and the startup-calibration
//! record (`host_topo` / `autotune` sections), so a number can always be
//! traced back to the hardware — and the effective CPU budget — it was
//! measured on.

use clm_bench::wallclock::{looks_like_bench_json, run_wallclock_bench, WallclockScale};
use std::process::ExitCode;

/// Gate on a multi-core host: with ≥ 2 cores the comm and Adam lanes
/// genuinely overlap the compute lane, so the threaded backend must win
/// strictly.
const SMOKE_MIN_SPEEDUP_MULTI_CORE: f64 = 1.0;

/// Gate on a single-core host: the lanes time-slice instead of overlapping,
/// so the threaded backend can only lose by its coordination overhead; a
/// floor keeps the gate meaningful (overhead stays small) without flaking
/// on scheduler noise.
const SMOKE_MIN_SPEEDUP_SINGLE_CORE: f64 = 0.9;

/// Compute-lane throughput the parallel lane must reach relative to the
/// serial lane on a host with at least this many cores.
const SMOKE_MIN_COMPUTE_SPEEDUP: f64 = 1.5;
const SMOKE_COMPUTE_GATE_MIN_CORES: usize = 4;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_runtime.json".to_string());
    let compute_threads = match args.iter().position(|a| a == "--compute-threads") {
        Some(i) => match args.get(i + 1).map(|v| v.parse::<usize>()) {
            Some(Ok(n)) if n >= 1 => n,
            _ => {
                eprintln!(
                    "bench_runtime: --compute-threads needs a positive integer, got {}",
                    args.get(i + 1).map(String::as_str).unwrap_or("<missing>")
                );
                return ExitCode::FAILURE;
            }
        },
        None => 0, // auto-detect
    };
    let devices = match args.iter().position(|a| a == "--devices") {
        Some(i) => match args.get(i + 1).map(|v| v.parse::<usize>()) {
            Some(Ok(n)) if n >= 1 => n,
            _ => {
                eprintln!(
                    "bench_runtime: --devices needs a positive integer, got {}",
                    args.get(i + 1).map(String::as_str).unwrap_or("<missing>")
                );
                return ExitCode::FAILURE;
            }
        },
        None => 1,
    };

    let mut scale = if smoke {
        WallclockScale::smoke()
    } else {
        WallclockScale::full()
    };
    scale.compute_threads = compute_threads;
    scale.devices = devices;
    let bench = run_wallclock_bench(scale);
    if let Some(note) = bench.perf_note() {
        eprintln!("bench_runtime: {note}");
    }
    let json = bench.to_json();
    println!("{json}");

    if let Err(e) = std::fs::write(&out_path, format!("{json}\n")) {
        eprintln!("bench_runtime: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }

    if !bench.sharded_bit_identical {
        eprintln!(
            "bench_runtime: FAIL — sharded training at {} devices diverged from the \
             synchronous trainer (shard-count invariance violated)",
            bench.devices,
        );
        return ExitCode::FAILURE;
    }
    if !bench.numerics_match {
        eprintln!("bench_runtime: FAIL — backends diverged numerically");
        return ExitCode::FAILURE;
    }

    if smoke {
        // Gate 1: the artefact on disk must be a well-formed single-line
        // JSON object.
        let written = match std::fs::read_to_string(&out_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("bench_runtime: cannot re-read {out_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if !looks_like_bench_json(&written) {
            eprintln!("bench_runtime: FAIL — {out_path} is malformed: {written}");
            return ExitCode::FAILURE;
        }
        // Gate 2: threaded throughput relative to the synchronous trainer,
        // with the bound picked by how many cores the host actually has
        // (reuse the count already recorded in the artefact).
        let cores = bench.host_cores;
        let gate = if cores >= 2 {
            SMOKE_MIN_SPEEDUP_MULTI_CORE
        } else {
            SMOKE_MIN_SPEEDUP_SINGLE_CORE
        };
        let speedup = bench.speedup_threaded_vs_sync();
        let strictly = cores >= 2;
        let failed = if strictly {
            speedup <= gate
        } else {
            speedup < gate
        };
        if failed {
            eprintln!(
                "bench_runtime: FAIL — threaded throughput is only {speedup:.3}x the \
                 synchronous trainer's (gate: {}{gate} on {cores} cores)",
                if strictly { "> " } else { ">= " },
            );
            return ExitCode::FAILURE;
        }
        // Gate 3: on a big-enough host the parallel compute lane must
        // actually scale.
        let compute_speedup = bench.compute_speedup_parallel_vs_serial();
        if cores >= SMOKE_COMPUTE_GATE_MIN_CORES
            && bench.compute_threads >= SMOKE_COMPUTE_GATE_MIN_CORES
            && compute_speedup < SMOKE_MIN_COMPUTE_SPEEDUP
        {
            eprintln!(
                "bench_runtime: FAIL — parallel compute lane reached only \
                 {compute_speedup:.3}x the serial lane's throughput \
                 (gate: >= {SMOKE_MIN_COMPUTE_SPEEDUP} with {} threads on {cores} cores)",
                bench.compute_threads,
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "bench_runtime: smoke gate passed (threaded/sync = {speedup:.3}x, \
             threaded/simulated = {:.3}x, parallel-compute/serial = {compute_speedup:.3}x \
             at {} threads, sharded bit-identical at {} devices, cores = {cores})",
            bench.speedup_threaded_vs_simulated(),
            bench.compute_threads,
            bench.devices,
        );
    }
    ExitCode::SUCCESS
}
