//! Figure 13 artefact: per-lane runtime decomposition of CLM vs naive
//! offloading measured by executing both trainers on the pipelined runtime,
//! plus the threaded backend's measured compute-lane scaling over band
//! workers.  Prints one JSON summary line on stdout (bench-harness idiom);
//! the table-formatted `simulate_batch` variant remains available via the
//! `paper_figures` binary.
fn main() {
    println!("{}", clm_bench::runtime_summary_figure13());
}
