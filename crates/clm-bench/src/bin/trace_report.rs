//! Renders a recorded `.clmtrace` into a perf report.
//!
//! Prints a single-line JSON report (per-lane and per-device utilisation,
//! op-kind histograms with p50/p99, critical-path summary when the trace is
//! replayable) to stdout and self-checks its shape before exiting.
//!
//! Flags:
//!
//! * `--out <path>` — also write the report JSON to a file;
//! * `--chrome <path>` — write a Chrome-trace JSON (load it in
//!   `chrome://tracing` or Perfetto to see the lanes as tracks).

use clm_trace::{chrome_trace_json, looks_like_report_json, Trace, TraceReport};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path = match args.iter().find(|a| !a.starts_with("--")) {
        Some(p) => p.clone(),
        None => {
            eprintln!(
                "usage: trace_report <trace.clmtrace> [--out report.json] [--chrome trace.json]"
            );
            return ExitCode::FAILURE;
        }
    };
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("trace_report: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match Trace::decode(&bytes) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_report: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let json = TraceReport::build(&trace).to_json();
    if !looks_like_report_json(&json) {
        eprintln!("trace_report: FAIL — generated report is malformed: {json}");
        return ExitCode::FAILURE;
    }
    println!("{json}");

    if let Some(out) = flag("--out") {
        if let Err(e) = std::fs::write(&out, format!("{json}\n")) {
            eprintln!("trace_report: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(chrome) = flag("--chrome") {
        if let Err(e) = std::fs::write(&chrome, chrome_trace_json(&trace)) {
            eprintln!("trace_report: cannot write {chrome}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("trace_report: Chrome trace written to {chrome}");
    }
    ExitCode::SUCCESS
}
