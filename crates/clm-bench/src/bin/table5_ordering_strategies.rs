//! Regenerates one artefact of the CLM paper's evaluation; see EXPERIMENTS.md.
fn main() {
    print!("{}", clm_bench::report_table5_ordering_strategies());
}
