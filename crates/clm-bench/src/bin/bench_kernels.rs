//! Per-kernel throughput benchmark binary.
//!
//! Measures rows-per-second throughput of the four lane-staged hot kernels
//! — the packed Adam step, the forward and backward rasteriser passes, and
//! per-Gaussian projection — and emits the measurements as single-line JSON
//! to stdout **and** to `BENCH_kernels.json` (override with `--out <path>`).
//! The same four measurements also ride inside `BENCH_runtime.json` as its
//! `kernels` section (see `bench_runtime`); this binary is the fast path
//! that re-measures only the kernels.
//!
//! Flags:
//!
//! * `--smoke` — run the tiny CI configuration and enforce the smoke gate:
//!   the written artefact must be well-formed and, on a host with ≥ 2
//!   cores, every kernel must clear its throughput floor.  On a single-core
//!   host the chunked Adam path time-slices against its own workers and a
//!   loaded runner distorts every number, so only the artefact shape is
//!   gated there.
//! * `--compute-threads <n>` — workers for the chunked Adam and banded
//!   render paths (default: the host's detected parallelism).
//! * `--out <path>` — where to write the JSON artefact.

use clm_bench::kernels::{looks_like_kernel_json, run_kernel_bench, KernelScale};
use std::process::ExitCode;

/// Throughput floors (rows/s) enforced by the smoke gate on hosts with at
/// least [`FLOOR_MIN_CORES`] cores.  Deliberately 1–2 orders of magnitude
/// below what the lane-staged kernels reach on one modern core, so the gate
/// catches layout regressions (an accidental de-vectorisation, a
/// per-element copy creeping back into the staging path) without flaking on
/// slow or shared runners.
const FLOORS: [(&str, f64); 4] = [
    ("adam_step", 50_000.0),
    ("raster_forward", 5_000.0),
    ("raster_backward", 2_500.0),
    ("projection", 100_000.0),
];

/// Core count below which the floors are informational only.
const FLOOR_MIN_CORES: usize = 2;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let compute_threads = match args.iter().position(|a| a == "--compute-threads") {
        Some(i) => match args.get(i + 1).map(|v| v.parse::<usize>()) {
            Some(Ok(n)) if n >= 1 => n,
            _ => {
                eprintln!(
                    "bench_kernels: --compute-threads needs a positive integer, got {}",
                    args.get(i + 1).map(String::as_str).unwrap_or("<missing>")
                );
                return ExitCode::FAILURE;
            }
        },
        None => 0, // auto-detect
    };

    let mut scale = if smoke {
        KernelScale::smoke()
    } else {
        KernelScale::full()
    };
    scale.compute_threads = compute_threads;
    let bench = run_kernel_bench(scale);
    let json = bench.to_json();
    println!("{json}");

    if let Err(e) = std::fs::write(&out_path, format!("{json}\n")) {
        eprintln!("bench_kernels: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }

    if smoke {
        // Gate 1: the artefact on disk must be a well-formed single-line
        // JSON object carrying every kernel.
        let written = match std::fs::read_to_string(&out_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("bench_kernels: cannot re-read {out_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if !looks_like_kernel_json(&written) {
            eprintln!("bench_kernels: FAIL — {out_path} is malformed: {written}");
            return ExitCode::FAILURE;
        }
        // Gate 2: throughput floors, only where the numbers mean something.
        if bench.host_cores >= FLOOR_MIN_CORES {
            for (name, floor) in FLOORS {
                let measured = bench.kernel(name).rows_per_s;
                if measured < floor {
                    eprintln!(
                        "bench_kernels: FAIL — {name} reached only {measured:.0} rows/s \
                         (floor: {floor:.0} on {} cores)",
                        bench.host_cores,
                    );
                    return ExitCode::FAILURE;
                }
            }
        } else {
            eprintln!(
                "bench_kernels: single-core host — throughput floors skipped \
                 (artefact shape still gated)"
            );
        }
        let summary = bench
            .kernels
            .iter()
            .map(|k| format!("{} = {:.0} rows/s", k.name, k.rows_per_s))
            .collect::<Vec<_>>()
            .join(", ");
        eprintln!(
            "bench_kernels: smoke gate passed ({summary}, threads = {}, cores = {})",
            bench.compute_threads, bench.host_cores,
        );
    }
    ExitCode::SUCCESS
}
