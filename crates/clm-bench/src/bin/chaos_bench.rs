//! Fault-recovery benchmark binary: runs the chaos matrix and gates on
//! bit-identity.
//!
//! Replays one seeded densifying run through every execution backend under
//! a seeded fault schedule (transient op failures, a straggling comm lane,
//! staging-pool exhaustion), through a permanent 4 → 2 device loss on the
//! sharded engine, and through the kill → `.clmckpt` → restore protocol on
//! all three runtime backends.  Emits a single-line `clm_chaos_bench_v1`
//! JSON to stdout and to `BENCH_chaos.json`, writes the kill-boundary
//! checkpoint to `CHAOS.clmckpt`, and exits non-zero if any leg diverged
//! from the fault-free reference, any lane aborted instead of recovering,
//! or the fault matrix turned out vacuous (nothing injected).
//!
//! Flags:
//!
//! * `--out <path>` — where to write the JSON artefact
//!   (default `BENCH_chaos.json`);
//! * `--ckpt <path>` — where to write the checkpoint artefact
//!   (default `CHAOS.clmckpt`).

use clm_bench::chaos::{looks_like_chaos_json, run_chaos_bench, ChaosScale};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_chaos.json".to_string());
    let ckpt_path = flag("--ckpt").unwrap_or_else(|| "CHAOS.clmckpt".to_string());

    let bench = run_chaos_bench(ChaosScale::smoke());
    let json = bench.to_json();
    println!("{json}");

    if let Err(e) = std::fs::write(&out_path, format!("{json}\n")) {
        eprintln!("chaos_bench: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&ckpt_path, &bench.checkpoint) {
        eprintln!("chaos_bench: cannot write {ckpt_path}: {e}");
        return ExitCode::FAILURE;
    }

    // Gate 1: the artefact on disk must be a well-formed single-line JSON
    // object.
    let written = match std::fs::read_to_string(&out_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("chaos_bench: cannot re-read {out_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !looks_like_chaos_json(&written) {
        eprintln!("chaos_bench: FAIL — {out_path} is malformed: {written}");
        return ExitCode::FAILURE;
    }
    // Gate 2: every leg must have recovered to the fault-free bits.
    for leg in &bench.legs {
        if !leg.bit_identical {
            eprintln!(
                "chaos_bench: FAIL — leg {} diverged from the fault-free reference \
                 (recovery must never change numerics): {:?}",
                leg.name, leg.stats,
            );
            return ExitCode::FAILURE;
        }
    }
    // Gate 3: recovery, not abortion.
    if bench.any_aborts() {
        eprintln!("chaos_bench: FAIL — a lane aborted instead of recovering");
        return ExitCode::FAILURE;
    }
    // Gate 4: the matrix must actually have injected faults, and the
    // workload must have crossed densification boundaries while recovering.
    if bench.total_transients() == 0 {
        eprintln!("chaos_bench: FAIL — no transient faults injected; the matrix is vacuous");
        return ExitCode::FAILURE;
    }
    if bench.resize_events < 2 {
        eprintln!(
            "chaos_bench: FAIL — the chaos workload crossed only {} densify boundaries",
            bench.resize_events,
        );
        return ExitCode::FAILURE;
    }
    eprintln!(
        "chaos_bench: chaos gate passed ({} legs bit-identical, {} transients injected, \
         checkpoint artefact {} bytes at batch {}, {} resize boundaries)",
        bench.legs.len(),
        bench.total_transients(),
        bench.checkpoint.len(),
        bench.kill_at,
        bench.resize_events,
    );
    ExitCode::SUCCESS
}
