//! Deterministically re-simulates a recorded `.clmtrace` offline.
//!
//! With no knobs the replay re-executes the recorded schedule through a
//! fresh discrete-event timeline and **verifies** it reproduces the
//! recording bit for bit — per-op start/end, per-lane busy totals and the
//! critical path — exiting non-zero on any divergence.  With knobs it
//! answers what-if questions against the same trace without re-running any
//! numerics:
//!
//! * `--window <w>` — re-pipeline under a different prefetch window;
//! * `--devices <n>` — re-shard across `n` simulated devices (priced by
//!   the trace header's cost model);
//! * `--scale-compute/--scale-comm/--scale-adam/--scale-scheduling <x>` —
//!   stretch one op class (e.g. `--scale-comm 0.5` for a link twice as
//!   fast).
//!
//! Prints a single-line JSON summary either way.

use clm_trace::{
    critical_path, replay_with_knobs, verify_exact, BatchReplay, KindScale, ReplayKnobs, Trace,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path = match args.iter().find(|a| !a.starts_with("--")) {
        Some(p) => p.clone(),
        None => {
            eprintln!(
                "usage: trace_replay <trace.clmtrace> [--window w] [--devices n] [--scale-* x]"
            );
            return ExitCode::FAILURE;
        }
    };
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let parse_usize = |name: &str| -> Result<Option<usize>, String> {
        match flag(name) {
            None => Ok(None),
            Some(v) => v
                .parse::<usize>()
                .map(Some)
                .map_err(|_| format!("{name} needs a non-negative integer, got {v}")),
        }
    };
    let parse_scale = |name: &str| -> Result<f64, String> {
        match flag(name) {
            None => Ok(1.0),
            Some(v) => match v.parse::<f64>() {
                Ok(x) if x > 0.0 && x.is_finite() => Ok(x),
                _ => Err(format!("{name} needs a positive number, got {v}")),
            },
        }
    };

    let knobs = match (|| -> Result<ReplayKnobs, String> {
        Ok(ReplayKnobs {
            window: parse_usize("--window")?,
            devices: parse_usize("--devices")?,
            scale: KindScale {
                compute: parse_scale("--scale-compute")?,
                comm: parse_scale("--scale-comm")?,
                adam: parse_scale("--scale-adam")?,
                scheduling: parse_scale("--scale-scheduling")?,
            },
        })
    })() {
        Ok(k) => k,
        Err(e) => {
            eprintln!("trace_replay: {e}");
            return ExitCode::FAILURE;
        }
    };

    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("trace_replay: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match Trace::decode(&bytes) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_replay: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let altered = knobs.window.is_some() || knobs.devices.is_some() || !knobs.scale.is_identity();
    let recorded_makespan: f64 = trace
        .batches()
        .iter()
        .map(|(_, _, events)| {
            events
                .iter()
                .map(clm_trace::TraceEvent::end)
                .fold(0.0f64, f64::max)
        })
        .sum();

    let (mode, replays) = if altered {
        match replay_with_knobs(&trace, &knobs) {
            Ok(r) => ("knobs", r),
            Err(e) => {
                eprintln!("trace_replay: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        // Unchanged knobs: the replay must reproduce the recording exactly,
        // op for op — verify_exact fails loudly if it does not.
        match verify_exact(&trace) {
            Ok(r) => ("verify", r),
            Err(e) => {
                eprintln!("trace_replay: {path}: replay diverged: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    println!(
        "{}",
        summary_json(&trace, mode, recorded_makespan, &replays)
    );
    ExitCode::SUCCESS
}

fn summary_json(
    trace: &Trace,
    mode: &str,
    recorded_makespan: f64,
    replays: &[BatchReplay],
) -> String {
    let replayed_makespan: f64 = replays.iter().map(|b| b.timeline.makespan()).sum();
    let (critical_s, critical_ops) = replays
        .iter()
        .map(|b| critical_path(&b.timeline))
        .fold((0.0, 0usize), |(s, n), cp| (s + cp.length_s, n + cp.ops));
    format!(
        "{{\"schema\":\"clm_trace_replay_v1\",\"mode\":\"{mode}\",\
         \"backend\":\"{}\",\"batches\":{},\"events\":{},\
         \"recorded_makespan_s\":{recorded_makespan:.9},\
         \"replayed_makespan_s\":{replayed_makespan:.9},\
         \"speedup_vs_recorded\":{:.4},\
         \"critical_path_s\":{critical_s:.9},\"critical_path_ops\":{critical_ops}}}",
        trace.meta.backend,
        replays.len(),
        trace.events.len(),
        if replayed_makespan > 0.0 {
            recorded_makespan / replayed_makespan
        } else {
            0.0
        },
    )
}
