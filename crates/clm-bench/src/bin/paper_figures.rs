//! Regenerates every table and figure of the CLM paper's evaluation.
//!
//! Usage: `cargo run --release -p clm-bench --bin paper_figures [-- <id>...]`
//! where `<id>` is e.g. `figure8` or `table5`; with no arguments every
//! experiment is generated in paper order.
fn main() {
    let requested: Vec<String> = std::env::args().skip(1).collect();
    for (id, generate) in clm_bench::all_reports() {
        if requested.is_empty() || requested.iter().any(|r| r == id) {
            println!("==== {id} ====");
            print!("{}", generate());
            println!();
        }
    }
}
