//! Figure 12 artefact: CLM vs GPU-only baselines training throughput,
//! measured by executing the trainers on the pipelined runtime.  Prints one
//! JSON summary line on stdout (bench-harness idiom); the table-formatted
//! variant remains available via the `paper_figures` binary.
fn main() {
    println!("{}", clm_bench::runtime_summary_figure12());
}
