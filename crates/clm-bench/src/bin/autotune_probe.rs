//! Host-topology and autotune probe binary.
//!
//! Probes the host (vendor, core topology, caches, cgroup CPU quota), runs
//! the startup calibration, derives the tuned knob defaults, and emits the
//! combined record as single-line JSON to stdout — the same `host_topo` and
//! `autotune` sections `BENCH_runtime.json` embeds, without the multi-second
//! training run around them.  CI's `autotune-smoke` job runs this to check
//! that autotuning lands in sane bounds on whatever runner it got.
//!
//! Exit status is non-zero when any derived knob escapes its documented
//! range, so the binary doubles as the autotune sanity gate:
//!
//! * `compute_threads` and `adam_threads` in `1 ..= effective_cores` —
//!   in particular, a cgroup quota must cap them (the bug where a 2-CPU
//!   container tuned 64 workers);
//! * `adam_chunk_rows` in `256 ..= 16_384`;
//! * `band_height` a non-zero multiple of the rasteriser tile size;
//! * `prefetch_window` in `1 ..= 8`;
//! * every calibrated throughput strictly positive, with the whole
//!   calibration finishing inside its startup budget.
//!
//! Flags: `--out <path>` additionally writes the JSON to a file.

use gs_render::TILE_SIZE;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let topo = sim_device::HostTopology::cached();
    let tuned = clm_runtime::tuned();
    let json = format!(
        "{{\"probe\":\"autotune\",\"host_topo\":{},\"autotune\":{}}}",
        topo.to_json(),
        tuned.to_json(),
    );
    println!("{json}");
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
            eprintln!("autotune_probe: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let effective = topo.effective_cores();
    let k = &tuned.knobs;
    let cal = &tuned.calibration;
    let mut failures = Vec::new();
    if !(1..=effective).contains(&k.compute_threads) {
        failures.push(format!(
            "compute_threads={} outside 1..={effective} (effective cores)",
            k.compute_threads,
        ));
    }
    if !(1..=effective).contains(&k.adam_threads) {
        failures.push(format!(
            "adam_threads={} outside 1..={effective} (effective cores)",
            k.adam_threads,
        ));
    }
    if !(256..=16_384).contains(&k.adam_chunk_rows) {
        failures.push(format!(
            "adam_chunk_rows={} outside 256..=16384",
            k.adam_chunk_rows
        ));
    }
    if k.band_height == 0 || !k.band_height.is_multiple_of(TILE_SIZE) {
        failures.push(format!(
            "band_height={} is not a non-zero multiple of the {TILE_SIZE}-pixel tile",
            k.band_height,
        ));
    }
    if !(1..=8).contains(&k.prefetch_window) {
        failures.push(format!(
            "prefetch_window={} outside 1..=8",
            k.prefetch_window
        ));
    }
    for (name, rate) in [
        ("adam_rows_per_s", cal.adam_rows_per_s),
        ("raster_rows_per_s", cal.raster_rows_per_s),
        ("gather_rows_per_s", cal.gather_rows_per_s),
    ] {
        if !(rate.is_finite() && rate > 0.0) {
            failures.push(format!("calibration {name}={rate} is not positive"));
        }
    }
    // Generous multiple of the per-path budget: calibration is a startup
    // cost every training process pays, so it must stay in the tens of
    // milliseconds even on a loaded single-core runner.
    if !(cal.wall_ms.is_finite() && cal.wall_ms < 2_000.0) {
        failures.push(format!(
            "calibration took {} ms (budget blown)",
            cal.wall_ms
        ));
    }

    if failures.is_empty() {
        eprintln!(
            "autotune_probe: ok — {} => compute_threads={}, adam_threads={}, \
             adam_chunk_rows={}, band_height={}, prefetch_window={} \
             (calibrated in {:.1} ms)",
            topo.fingerprint(),
            k.compute_threads,
            k.adam_threads,
            k.adam_chunk_rows,
            k.band_height,
            k.prefetch_window,
            cal.wall_ms,
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("autotune_probe: FAIL — {f}");
        }
        ExitCode::FAILURE
    }
}
