//! Regenerates one artefact of the CLM paper's evaluation; see EXPERIMENTS.md.
fn main() {
    print!("{}", clm_bench::report_figure5_sparsity_cdf());
}
