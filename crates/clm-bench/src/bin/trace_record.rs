//! Records an op trace of one training run to a `.clmtrace` file.
//!
//! Flags:
//!
//! * `--backend <name>` — `synchronous` / `simulated` / `threaded` /
//!   `sharded` (default `simulated`; the scheduled backends produce
//!   replayable traces, the others measured spans).
//! * `--scale <smoke|full|test>` — workload size (default `smoke`).
//! * `--devices <n>` — simulated devices for the `sharded` backend.
//! * `--out <path>` — output file (default `TRACE_<backend>.clmtrace`).

use clm_bench::trace::{describe, record_trace, span_capture_note, TRACE_BACKENDS};
use clm_bench::wallclock::WallclockScale;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let backend = flag("--backend").unwrap_or_else(|| "simulated".to_string());
    if !TRACE_BACKENDS.contains(&backend.as_str()) {
        eprintln!("trace_record: unknown backend {backend:?} (expected one of {TRACE_BACKENDS:?})");
        return ExitCode::FAILURE;
    }
    let mut scale = match flag("--scale").as_deref() {
        None | Some("smoke") => WallclockScale::smoke(),
        Some("full") => WallclockScale::full(),
        Some("test") => WallclockScale::test(),
        Some(other) => {
            eprintln!("trace_record: unknown scale {other:?} (expected smoke, full or test)");
            return ExitCode::FAILURE;
        }
    };
    if let Some(d) = flag("--devices") {
        match d.parse::<usize>() {
            Ok(n) if n >= 1 => scale.devices = n,
            _ => {
                eprintln!("trace_record: --devices needs a positive integer, got {d}");
                return ExitCode::FAILURE;
            }
        }
    }
    let out_path = flag("--out").unwrap_or_else(|| format!("TRACE_{backend}.clmtrace"));

    let trace = match record_trace(&backend, &scale) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_record: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(note) = span_capture_note() {
        if !trace.has_deps() {
            eprintln!("trace_record: {note}");
        }
    }
    let bytes = trace.encode();
    if let Err(e) = std::fs::write(&out_path, &bytes) {
        eprintln!("trace_record: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "trace_record: {} -> {out_path} ({} bytes)",
        describe(&trace),
        bytes.len(),
    );
    ExitCode::SUCCESS
}
