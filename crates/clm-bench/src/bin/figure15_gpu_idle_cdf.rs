//! Figure 15 artefact: GPU idle-rate comparison between the pipelined CLM
//! schedule, the no-overlap schedule and naive offloading, measured by the
//! pipelined runtime.  Prints one JSON summary line on stdout (bench-harness
//! idiom); the table-formatted variant remains available via the
//! `paper_figures` binary.
fn main() {
    println!("{}", clm_bench::runtime_summary_figure15());
}
