//! Regenerates one artefact of the CLM paper's evaluation; see EXPERIMENTS.md.
fn main() {
    print!("{}", clm_bench::report_figure15_gpu_idle_cdf());
}
