//! Op-trace recording harness: trains the wallclock benchmark's scene on a
//! chosen execution backend and captures every operation into a
//! [`clm_trace::Trace`].
//!
//! This is the producer end of the trace pipeline; the `trace_record`,
//! `trace_replay` and `trace_report` binaries are thin wrappers.  Two kinds
//! of trace come out depending on the backend:
//!
//! * **Simulated schedules** (`simulated`, `sharded`) — flushed straight
//!   from the discrete-event [`Timeline`] each batch executes on, complete
//!   with dependency edges and exact scheduled durations.  These replay
//!   deterministically offline (`clm_trace::verify_exact`) and support
//!   what-if knob replays (prefetch window, device count, cost scaling).
//! * **Measured spans** (`synchronous`, `threaded`) — wall-clock intervals
//!   bracketing the real phases (gathers, render, CPU Adam), with no
//!   dependency structure.  These feed the report/Chrome-trace pipeline but
//!   refuse exact replay (there is no schedule to re-simulate).
//!
//! The workload is [`crate::wallclock`]'s scene (same seeds, same densify
//! cadence), so traces line up with `BENCH_runtime.json` entries.

use crate::wallclock::{bench_scene, detect_host_cores, WallclockScale};
use clm_core::{Trainer, GRADIENT_BYTES};
use clm_runtime::{
    PipelinedEngine, PrefetchPolicy, RuntimeConfig, ShardedEngine, ThreadedBackend, ThreadedConfig,
    PEER_HOP_FACTOR,
};
use clm_trace::{CostParams, Trace, TraceMeta, TraceWriter};
use gs_render::Image;
use gs_scene::Dataset;
use sim_device::{DeviceProfile, Timeline};

/// Seed of the generated dataset (matches [`crate::wallclock`]).
pub const DATASET_SEED: u64 = 29;

/// Backends the recorder knows how to trace, in documentation order.
pub const TRACE_BACKENDS: [&str; 4] = ["synchronous", "simulated", "threaded", "sharded"];

/// Records one full training run of `backend` at `scale` into a trace.
///
/// `backend` must be one of [`TRACE_BACKENDS`]; the sharded entry honours
/// `scale.devices`, everything else runs single-device.
pub fn record_trace(backend: &str, scale: &WallclockScale) -> Result<Trace, String> {
    let (dataset, targets, init) = bench_scene(scale);
    let model_len = init.len();
    let devices = if backend == "sharded" {
        scale.devices.max(1)
    } else {
        1
    };
    let mut writer = TraceWriter::new(trace_meta(backend, scale, model_len, devices));
    match backend {
        "synchronous" => record_synchronous(&mut writer, scale, &dataset, &targets, init),
        "simulated" => record_simulated(&mut writer, scale, &dataset, &targets, init, model_len),
        "threaded" => record_threaded(&mut writer, scale, &dataset, &targets, init),
        "sharded" => record_sharded(&mut writer, scale, &dataset, &targets, init, model_len),
        other => {
            return Err(format!(
                "unknown backend {other:?} (expected one of {TRACE_BACKENDS:?})"
            ))
        }
    }
    Ok(writer.finish())
}

/// The trace header for one recorded run: workload identity plus the
/// cost-model constants device-count replays re-price communication with.
fn trace_meta(
    backend: &str,
    scale: &WallclockScale,
    model_len: usize,
    devices: usize,
) -> TraceMeta {
    let profile = DeviceProfile::rtx4090();
    TraceMeta {
        backend: backend.to_string(),
        scene: format!("rubble-{}", scale.label),
        devices: devices as u32,
        prefetch_window: scale.prefetch_window as u32,
        seed: DATASET_SEED,
        cost: CostParams {
            pcie_latency_s: profile.pcie_latency,
            pcie_bandwidth: profile.pcie_bandwidth,
            cost_scale: 45_200_000.0 / model_len as f64,
            peer_hop_factor: PEER_HOP_FACTOR,
            gradient_bytes: GRADIENT_BYTES as u64,
        },
    }
}

/// Paper-scale costing shared by the simulated and sharded recordings —
/// identical to the wallclock benchmark's, so traces and
/// `BENCH_runtime.json` describe the same schedules.
fn runtime_config(scale: &WallclockScale, model_len: usize, devices: usize) -> RuntimeConfig {
    RuntimeConfig {
        device: DeviceProfile::rtx4090(),
        prefetch_window: scale.prefetch_window,
        policy: PrefetchPolicy::Fixed,
        cost_scale: 45_200_000.0 / model_len as f64,
        pixel_cost_scale: (1920.0 * 1080.0) / (scale.width as f64 * scale.height as f64),
        compute_threads: 0,
        band_height: 0,
        num_devices: devices,
        warm_start_ratio: None,
    }
}

/// Iterates the run's batches in the order every backend trains them:
/// `(epoch, batch-within-epoch, view range)`.
fn batch_ranges(scale: &WallclockScale, views: usize) -> Vec<(u64, u64, usize, usize)> {
    let batch = scale.batch_size.max(1);
    let mut out = Vec::new();
    for epoch in 0..scale.epochs {
        let mut view = 0;
        let mut b = 0u64;
        while view < views {
            let end = (view + batch).min(views);
            out.push((epoch as u64, b, view, end));
            view = end;
            b += 1;
        }
    }
    out
}

fn record_synchronous(
    writer: &mut TraceWriter,
    scale: &WallclockScale,
    dataset: &Dataset,
    targets: &[Image],
    init: gs_core::gaussian::GaussianModel,
) {
    let mut trainer = Trainer::new(init, crate::wallclock::train_config(scale));
    for (epoch, b, lo, hi) in batch_ranges(scale, dataset.cameras.len()) {
        let mut timeline = Timeline::new();
        trainer.train_batch_spanned(&dataset.cameras[lo..hi], &targets[lo..hi], &mut timeline);
        writer.record_timeline(epoch, b, &timeline);
    }
}

fn record_simulated(
    writer: &mut TraceWriter,
    scale: &WallclockScale,
    dataset: &Dataset,
    targets: &[Image],
    init: gs_core::gaussian::GaussianModel,
    model_len: usize,
) {
    let mut engine = PipelinedEngine::new(
        init,
        crate::wallclock::train_config(scale),
        runtime_config(scale, model_len, 1),
    );
    for (epoch, b, lo, hi) in batch_ranges(scale, dataset.cameras.len()) {
        let report = engine.run_batch(&dataset.cameras[lo..hi], &targets[lo..hi]);
        writer.record_timeline(epoch, b, &report.timeline);
    }
}

fn record_threaded(
    writer: &mut TraceWriter,
    scale: &WallclockScale,
    dataset: &Dataset,
    targets: &[Image],
    init: gs_core::gaussian::GaussianModel,
) {
    let mut backend = ThreadedBackend::new(
        init,
        crate::wallclock::train_config(scale),
        ThreadedConfig {
            prefetch_window: scale.prefetch_window,
            ..Default::default()
        },
    );
    for (epoch, b, lo, hi) in batch_ranges(scale, dataset.cameras.len()) {
        let (_report, timeline) =
            backend.run_batch_traced(&dataset.cameras[lo..hi], &targets[lo..hi]);
        writer.record_timeline(epoch, b, &timeline);
    }
}

fn record_sharded(
    writer: &mut TraceWriter,
    scale: &WallclockScale,
    dataset: &Dataset,
    targets: &[Image],
    init: gs_core::gaussian::GaussianModel,
    model_len: usize,
) {
    let devices = scale.devices.max(1);
    let mut engine = ShardedEngine::new(
        init,
        crate::wallclock::train_config(scale),
        runtime_config(scale, model_len, devices),
        &dataset.cameras,
    );
    for (epoch, b, lo, hi) in batch_ranges(scale, dataset.cameras.len()) {
        let report = engine.run_batch(&dataset.cameras[lo..hi], &targets[lo..hi]);
        writer.record_timeline(epoch, b, &report.timeline);
    }
}

/// One line of run context for the binaries' stderr chatter.
pub fn describe(trace: &Trace) -> String {
    format!(
        "backend={} scene={} devices={} window={} events={} batches={} deps={}",
        trace.meta.backend,
        trace.meta.scene,
        trace.meta.devices,
        trace.meta.prefetch_window,
        trace.events.len(),
        trace.batches().len(),
        if trace.has_deps() {
            "scheduled"
        } else {
            "measured"
        },
    )
}

/// Host-cores note for measured-span traces: on a single core the spans
/// time-slice, so overlap in the trace under-represents a multi-core run.
pub fn span_capture_note() -> Option<String> {
    let cores = detect_host_cores();
    (cores == 1).then(|| {
        format!(
            "warning: recorded on {cores} core — measured spans time-slice \
             instead of overlapping"
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use clm_trace::{replay_exact, verify_exact, TraceReport};

    /// Record → encode → decode round-trips bit-exactly for every backend,
    /// and each trace is non-trivial (covers the whole run's batches).
    #[test]
    fn all_four_backends_record_and_round_trip() {
        let scale = WallclockScale::test();
        let expected_batches = batch_ranges(&scale, scale.views).len();
        for backend in TRACE_BACKENDS {
            let trace = record_trace(backend, &scale).unwrap();
            assert_eq!(trace.meta.backend, backend);
            assert!(!trace.events.is_empty(), "{backend}: empty trace");
            assert_eq!(
                trace.batches().len(),
                expected_batches,
                "{backend}: missing batches"
            );
            let decoded = Trace::decode(&trace.encode()).unwrap();
            assert_eq!(decoded, trace, "{backend}: decode diverged");
            assert_eq!(
                decoded.encode(),
                trace.encode(),
                "{backend}: non-canonical encoding"
            );
            // Simulated schedules carry dependency edges; measured spans
            // never do.
            let scheduled = backend == "simulated" || backend == "sharded";
            assert_eq!(trace.has_deps(), scheduled, "{backend}");
            // Every trace reports, whichever kind it is.
            let report = TraceReport::build(&trace);
            assert!(report.total_makespan_s > 0.0, "{backend}");
            assert_eq!(report.critical.is_some(), scheduled, "{backend}");
        }
    }

    /// Replaying a scheduled trace with unchanged knobs reproduces the
    /// recorded critical path and per-lane busy totals bit for bit — the
    /// acceptance bar the CI trace-smoke job holds release builds to.
    #[test]
    fn unchanged_replay_is_bit_identical() {
        let scale = WallclockScale::test();
        let trace = record_trace("simulated", &scale).unwrap();
        let replays = verify_exact(&trace).unwrap();
        assert_eq!(replays.len(), trace.batches().len());
        for (replay, (_, _, events)) in replays.iter().zip(trace.batches()) {
            let recorded_end = events.iter().map(|e| e.end().to_bits()).max();
            let replayed_end = replay.timeline.ops().iter().map(|o| o.end.to_bits()).max();
            assert_eq!(recorded_end, replayed_end);
        }
    }

    /// Recording the same seeded workload twice yields byte-identical
    /// traces: the pipeline is deterministic end to end.
    #[test]
    fn seeded_recordings_are_reproducible() {
        let scale = WallclockScale::test();
        let a = record_trace("simulated", &scale).unwrap();
        let b = record_trace("simulated", &scale).unwrap();
        assert_eq!(a.encode(), b.encode());
        let sa = record_trace("sharded", &scale).unwrap();
        let sb = record_trace("sharded", &scale).unwrap();
        assert_eq!(sa.encode(), sb.encode());
    }

    /// The sharded recording schedules onto every device's lane group.
    #[test]
    fn sharded_recording_covers_every_device() {
        let scale = WallclockScale::test();
        let trace = record_trace("sharded", &scale).unwrap();
        assert_eq!(trace.meta.devices, scale.devices as u32);
        let max_device = trace
            .events
            .iter()
            .filter_map(|e| e.lane.device())
            .max()
            .unwrap();
        assert_eq!(max_device, scale.devices - 1);
        let replays = replay_exact(&trace).unwrap();
        assert!(!replays.is_empty());
    }

    /// A version bump in the header refuses to decode — stale tooling can
    /// never misread a future trace.
    #[test]
    fn recorded_trace_rejects_a_corrupted_schema_version() {
        let scale = WallclockScale::test();
        let mut bytes = record_trace("simulated", &scale).unwrap().encode();
        bytes[8..12].copy_from_slice(&(clm_trace::FORMAT_VERSION + 7).to_le_bytes());
        assert!(matches!(
            Trace::decode(&bytes),
            Err(clm_trace::TraceError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn unknown_backend_is_refused() {
        assert!(record_trace("quantum", &WallclockScale::test()).is_err());
    }
}
