//! Benchmark harness: regenerates every table and figure of the CLM paper's
//! evaluation (§6) against the simulated device substrate and the synthetic
//! evaluation scenes.
//!
//! Each `report_*` function returns the rows/series of one paper artefact as
//! a formatted text table; the binaries in `src/bin/` are thin wrappers that
//! print them, and the Criterion benches in `benches/` measure the hot
//! kernels the harness exercises.  Absolute numbers differ from the paper
//! (the substrate is a calibrated simulator, not the authors' testbeds); the
//! *shapes* — who wins, by roughly what factor, and where the crossovers
//! fall — are the reproduction target, recorded in `EXPERIMENTS.md`.

pub mod chaos;
pub mod kernels;
pub mod runtime_reports;
pub mod serve;
pub mod trace;
pub mod wallclock;

pub use chaos::{looks_like_chaos_json, run_chaos_bench, ChaosBench, ChaosScale};
pub use kernels::{
    looks_like_kernel_json, run_kernel_bench, KernelBench, KernelScale, KERNEL_NAMES,
};
pub use runtime_reports::{
    runtime_summary_figure11, runtime_summary_figure12, runtime_summary_figure13,
    runtime_summary_figure15, runtime_summary_table7,
};
pub use serve::{
    looks_like_serve_json, parse_agent_report, run_serve_agent, AgentReport, ServeBench, ServeScale,
};
pub use trace::{record_trace, TRACE_BACKENDS};
pub use wallclock::{run_wallclock_bench, WallclockBench, WallclockScale};

use clm_core::{
    gpu_memory_required, ground_truth_images, max_trainable_gaussians, pinned_memory_required,
    simulate_batch, synthetic_microbatch_stats, OrderingStrategy, SceneProfile, SystemKind,
    TrainConfig, Trainer,
};
use gs_scene::{
    generate_dataset, init_from_point_cloud, DatasetConfig, InitConfig, SceneKind, SceneSpec,
};
use sim_device::{
    empirical_cdf, gpu_idle_rate_cdf, hardware_utilization, DeviceProfile, Lane, OpKind, GIB,
};

/// Scale factor note printed by every report: the synthetic scenes are
/// ~1/10⁴ of the paper's Gaussian counts; analytic experiments evaluate the
/// memory/performance model at full scale using sparsity measured on the
/// synthetic scenes.
pub const SCALE_NOTE: &str =
    "synthetic scenes at reduced scale; sparsity/locality measured on them, \
     memory & performance evaluated analytically at full paper scale";

/// Dataset size used when measuring scene profiles (kept modest so every
/// report runs in seconds on one CPU core).
pub fn profile_dataset_config() -> DatasetConfig {
    DatasetConfig {
        num_gaussians: 4_000,
        num_views: 256,
        width: 48,
        height: 36,
        seed: 2026,
    }
}

/// Generates the synthetic dataset for one paper scene.
pub fn scene_dataset(kind: SceneKind) -> gs_scene::Dataset {
    generate_dataset(&SceneSpec::of(kind), &profile_dataset_config())
}

/// Measures the [`SceneProfile`] of one paper scene under an ordering
/// strategy, substituting the paper's full resolution and batch size.
pub fn measured_profile(kind: SceneKind, ordering: OrderingStrategy) -> SceneProfile {
    let dataset = scene_dataset(kind);
    SceneProfile::measure(&dataset, ordering, 7)
}

/// Measures all five scene profiles.
pub fn all_profiles(ordering: OrderingStrategy) -> Vec<(SceneKind, SceneProfile)> {
    SceneKind::ALL
        .iter()
        .map(|&k| (k, measured_profile(k, ordering)))
        .collect()
}

/// The paper-reference scene profiles (sparsity and locality taken from the
/// paper's own reported numbers) used for paper-scale analytic experiments.
pub fn paper_profiles() -> Vec<(SceneKind, SceneProfile)> {
    SceneKind::ALL
        .iter()
        .map(|&k| (k, SceneProfile::paper_reference(k)))
        .collect()
}

/// Formats a simple aligned text table.
pub fn format_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("# {title}\n"));
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{:w$}", h, w = widths[i]))
        .collect();
    out.push_str(&header_line.join("  "));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths.get(i).copied().unwrap_or(0)))
            .collect();
        out.push_str(&line.join("  "));
        out.push('\n');
    }
    out
}

fn gib(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / GIB as f64)
}

/// Value at quantile `q` of an empirical CDF given as sorted
/// `(value, cumulative_fraction)` pairs (0 for an empty CDF).  Shared by the
/// table reports and the runtime JSON summaries so every figure uses the
/// same quantile convention.
pub(crate) fn cdf_quantile(cdf: &[(f64, f64)], q: f64) -> f64 {
    if cdf.is_empty() {
        return 0.0;
    }
    let idx = ((cdf.len() as f64 * q).ceil() as usize).clamp(1, cdf.len()) - 1;
    cdf[idx].0
}

fn millions(n: u64) -> String {
    format!("{:.1}", n as f64 / 1e6)
}

/// Table 2: Gaussian count and minimum training memory demand per scene.
pub fn report_table2_memory_demand() -> String {
    let rows: Vec<Vec<String>> = SceneSpec::all()
        .iter()
        .map(|s| {
            vec![
                s.kind.to_string(),
                format!("{}x{}", s.full_resolution.0, s.full_resolution.1),
                millions(s.full_gaussians),
                gib(s.full_memory_demand_bytes()),
            ]
        })
        .collect();
    format_table(
        "Table 2: memory demand of the evaluation scenes",
        &[
            "Scene",
            "Resolution",
            "# Gaussians (M)",
            "Model-state demand (GB)",
        ],
        &rows,
    )
}

/// Figure 5: empirical CDF of per-view sparsity ρ for every scene.
pub fn report_figure5_sparsity_cdf() -> String {
    let mut out = String::new();
    let quantiles = [0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
    let mut rows = Vec::new();
    for kind in SceneKind::ALL {
        let dataset = scene_dataset(kind);
        let rho = dataset.sparsity_profile();
        let cdf = empirical_cdf(&rho);
        let mut row = vec![kind.to_string()];
        for &q in &quantiles {
            row.push(format!("{:.4}", cdf_quantile(&cdf, q)));
        }
        let mean = rho.iter().sum::<f64>() / rho.len() as f64;
        row.push(format!("{mean:.4}"));
        rows.push(row);
    }
    out.push_str(&format_table(
        "Figure 5: per-view sparsity rho quantiles (fraction of Gaussians per view)",
        &["Scene", "p10", "p25", "p50", "p75", "p90", "max", "mean"],
        &rows,
    ));
    out.push_str(&format!("note: {SCALE_NOTE}\n"));
    out
}

/// Figure 8: maximum trainable model size before OOM, per system, testbed
/// and scene.
pub fn report_figure8_max_model_size() -> String {
    let mut out = String::new();
    let profiles = paper_profiles();
    for device in [DeviceProfile::rtx2080ti(), DeviceProfile::rtx4090()] {
        let mut rows = Vec::new();
        for (kind, scene) in &profiles {
            let mut row = vec![kind.to_string()];
            for system in SystemKind::ALL {
                let n = max_trainable_gaussians(system, &device, scene);
                row.push(millions(n));
            }
            rows.push(row);
        }
        out.push_str(&format_table(
            &format!(
                "Figure 8 ({}): max trainable model size (million Gaussians)",
                device.name
            ),
            &["Scene", "Baseline", "Enhanced", "Naive Offload", "CLM"],
            &rows,
        ));
        out.push('\n');
    }
    out
}

/// Figure 9: reconstruction quality (PSNR) versus model size on the
/// BigCity-like scene, trained for real with CLM at reduced scale.
pub fn report_figure9_quality_scaling() -> String {
    let spec = SceneSpec::of(SceneKind::BigCity);
    let dataset = generate_dataset(
        &spec,
        &DatasetConfig {
            num_gaussians: 700,
            num_views: 24,
            width: 48,
            height: 36,
            seed: 13,
        },
    );
    let targets = ground_truth_images(&dataset);
    let mut rows = Vec::new();
    for &model_size in &[50usize, 100, 200, 400] {
        let init = init_from_point_cloud(
            &dataset.ground_truth,
            &InitConfig {
                num_gaussians: model_size,
                // The initial splat size must be proportional to the scene
                // extent, as 3DGS does when initialising from a point cloud.
                initial_sigma: spec.extent * 0.03,
                initial_opacity: 0.4,
                seed: 3,
                ..Default::default()
            },
        );
        let mut trainer = Trainer::new(
            init,
            TrainConfig {
                system: SystemKind::Clm,
                batch_size: 8,
                ..Default::default()
            },
        );
        let mut last_loss = 0.0;
        for _ in 0..8 {
            let reports = trainer.train_epoch(&dataset, &targets);
            last_loss = reports.iter().map(|r| r.loss).sum::<f32>() / reports.len() as f32;
        }
        let psnr = trainer.evaluate_psnr(&dataset.cameras, &targets);
        rows.push(vec![
            model_size.to_string(),
            format!("{psnr:.2}"),
            format!("{last_loss:.4}"),
        ]);
    }
    let mut out = format_table(
        "Figure 9: PSNR vs model size (BigCity-like synthetic scene, CLM training)",
        &["Model size (Gaussians)", "PSNR (dB)", "final L1 loss"],
        &rows,
    );
    out.push_str(
        "note: reduced-scale functional training; the paper's claim is the upward trend\n",
    );
    out
}

/// Figure 10: GPU memory breakdown for Rubble and BigCity at the three
/// reference model sizes.
pub fn report_figure10_memory_breakdown() -> String {
    let mut out = String::new();
    let device = DeviceProfile::rtx4090();
    let cases = [
        (
            SceneKind::Rubble,
            vec![15_300_000u64, 30_400_000, 45_200_000],
        ),
        (
            SceneKind::BigCity,
            vec![15_300_000, 46_000_000, 102_200_000],
        ),
    ];
    for (kind, sizes) in cases {
        let scene = SceneProfile::paper_reference(kind);
        let mut rows = Vec::new();
        for &n in &sizes {
            for system in SystemKind::ALL {
                let est = gpu_memory_required(system, n, &scene);
                let fits = est.total() <= device.usable_gpu_memory();
                rows.push(vec![
                    millions(n),
                    system.to_string(),
                    gib(est.model_state),
                    gib(est.others()),
                    if fits {
                        gib(est.total())
                    } else {
                        "OOM".to_string()
                    },
                ]);
            }
        }
        out.push_str(&format_table(
            &format!("Figure 10 ({kind}, RTX 4090): GPU memory breakdown (GB)"),
            &[
                "Model size (M)",
                "System",
                "Model states",
                "Others",
                "Total",
            ],
            &rows,
        ));
        out.push('\n');
    }
    out
}

/// Figures 11 and 12: training throughput per scene and testbed, for a given
/// pair of systems and a rule for choosing the model size.
fn throughput_report(title: &str, systems: &[SystemKind], size_limited_by: SystemKind) -> String {
    let mut out = String::new();
    let profiles = paper_profiles();
    for device in [DeviceProfile::rtx2080ti(), DeviceProfile::rtx4090()] {
        let mut rows = Vec::new();
        for (kind, scene) in &profiles {
            let n = max_trainable_gaussians(size_limited_by, &device, scene);
            let mut row = vec![kind.to_string(), millions(n)];
            for &system in systems {
                let with_cache = system == SystemKind::Clm;
                let stats = synthetic_microbatch_stats(scene, n, with_cache);
                let sim = simulate_batch(system, &device, scene, n, &stats);
                row.push(format!("{:.1}", sim.throughput));
            }
            rows.push(row);
        }
        let names: Vec<String> = systems.iter().map(|s| s.to_string()).collect();
        let mut headers = vec!["Scene", "Model size (M)"];
        headers.extend(names.iter().map(String::as_str));
        out.push_str(&format_table(
            &format!("{title} ({})  [images/s]", device.name),
            &headers,
            &rows,
        ));
        out.push('\n');
    }
    out
}

/// Figure 11: CLM vs naive offloading throughput at the largest model size
/// naive offloading supports.
pub fn report_figure11_throughput_vs_naive() -> String {
    throughput_report(
        "Figure 11: CLM vs naive offloading throughput",
        &[SystemKind::NaiveOffload, SystemKind::Clm],
        SystemKind::NaiveOffload,
    )
}

/// Figure 12: CLM vs GPU-only baselines at the largest model size the
/// baseline supports.
pub fn report_figure12_throughput_vs_baseline() -> String {
    throughput_report(
        "Figure 12: CLM vs GPU-only baselines throughput",
        &[
            SystemKind::Baseline,
            SystemKind::EnhancedBaseline,
            SystemKind::Clm,
        ],
        SystemKind::Baseline,
    )
}

/// Figure 13: runtime decomposition of one batch for Rubble and BigCity on
/// the RTX 4090, CLM vs naive offloading, normalised to naive's total.
pub fn report_figure13_runtime_breakdown() -> String {
    let device = DeviceProfile::rtx4090();
    let mut rows = Vec::new();
    for kind in [SceneKind::Rubble, SceneKind::BigCity] {
        let scene = SceneProfile::paper_reference(kind);
        let n = max_trainable_gaussians(SystemKind::NaiveOffload, &device, &scene);
        let stats = synthetic_microbatch_stats(&scene, n, true);

        let naive = simulate_batch(SystemKind::NaiveOffload, &device, &scene, n, &stats);
        let naive_total = naive.timeline.makespan();
        let naive_comm = naive.timeline.time_by_kind(OpKind::LoadParams)
            + naive.timeline.time_by_kind(OpKind::StoreGrads);
        let naive_compute = naive.timeline.time_by_kind(OpKind::Forward)
            + naive.timeline.time_by_kind(OpKind::Backward);
        let naive_adam = naive.timeline.busy_time(Lane::CpuAdam);
        rows.push(vec![
            kind.to_string(),
            "Naive Offloading".into(),
            format!("{:.2}", naive_comm / naive_total),
            format!("{:.2}", naive_compute / naive_total),
            format!("{:.2}", naive_adam / naive_total),
            "0.00".into(),
            "1.00".into(),
        ]);

        let clm = simulate_batch(SystemKind::Clm, &device, &scene, n, &stats);
        let pipeline_end = clm
            .timeline
            .ops()
            .iter()
            .filter(|o| o.lane == Lane::GpuCompute || o.lane == Lane::GpuComm)
            .map(|o| o.end)
            .fold(0.0f64, f64::max);
        rows.push(vec![
            kind.to_string(),
            "CLM".into(),
            "-".into(),
            format!("{:.2}", pipeline_end / naive_total),
            format!("{:.2}", clm.adam_trailing_time / naive_total),
            format!("{:.2}", clm.scheduling_time / naive_total),
            format!("{:.2}", clm.timeline.makespan() / naive_total),
        ]);
    }
    format_table(
        "Figure 13: runtime decomposition (normalised to naive offloading total, RTX 4090)",
        &[
            "Scene",
            "System",
            "Communication",
            "Compute/pipeline",
            "Non-overlapped CPU Adam",
            "Scheduling",
            "Total",
        ],
        &rows,
    )
}

/// Figure 14: average CPU→GPU communication volume per training batch for
/// naive offloading, CLM without caching, and the four ordering strategies.
pub fn report_figure14_comm_volume() -> String {
    let device = DeviceProfile::rtx4090();
    let mut rows = Vec::new();
    for kind in SceneKind::ALL {
        let dataset = scene_dataset(kind);
        let sets = dataset.visibility_sets(&dataset.ground_truth);
        let spec = SceneSpec::of(kind);
        // Model size: what naive offloading supports on the 4090 (Figure 8b).
        let scene_ref = SceneProfile::paper_reference(kind);
        let n = max_trainable_gaussians(SystemKind::NaiveOffload, &device, &scene_ref);
        let per_gaussian_scale = n as f64 / dataset.ground_truth.len() as f64;

        let naive_bytes = n * 59 * 4;
        let batch = spec.batch_size.min(sets.len()).max(2);

        // Mean over batches of the measured fetch volume, scaled to the
        // full-scale Gaussian count.
        let mean_fetch = |strategy: Option<OrderingStrategy>| -> f64 {
            let mut totals = Vec::new();
            for (b_idx, chunk) in sets.chunks(batch).enumerate() {
                if chunk.len() < 2 {
                    continue;
                }
                let cams = &dataset.cameras[b_idx * batch..b_idx * batch + chunk.len()];
                let bytes = match strategy {
                    None => clm_core::batch_fetch_bytes_no_cache(chunk),
                    Some(s) => {
                        let order = clm_core::order_batch(s, cams, chunk, 7 + b_idx as u64);
                        clm_core::ordered_fetch_bytes(chunk, &order)
                    }
                };
                totals.push(bytes as f64 * per_gaussian_scale);
            }
            totals.iter().sum::<f64>() / totals.len().max(1) as f64
        };

        let mut row = vec![kind.to_string(), gib(naive_bytes)];
        row.push(format!("{:.1}", mean_fetch(None) / GIB as f64));
        for strategy in OrderingStrategy::ALL {
            row.push(format!("{:.1}", mean_fetch(Some(strategy)) / GIB as f64));
        }
        rows.push(row);
    }
    let mut out = format_table(
        "Figure 14: CPU->GPU communication volume per batch (GB, RTX 4090 model sizes)",
        &[
            "Scene",
            "Naive",
            "No Cache",
            "Random",
            "Camera",
            "GS Count",
            "TSP (CLM)",
        ],
        &rows,
    );
    out.push_str(&format!("note: {SCALE_NOTE}\n"));
    out
}

/// Table 5: training throughput and CPU Adam trailing time under the four
/// ordering strategies.
pub fn report_table5_ordering_strategies() -> String {
    let device = DeviceProfile::rtx4090();
    let mut thr_rows = Vec::new();
    let mut trail_rows = Vec::new();
    for kind in SceneKind::ALL {
        let dataset = scene_dataset(kind);
        let mut thr_row = vec![kind.to_string()];
        let mut trail_row = vec![kind.to_string()];
        for strategy in OrderingStrategy::ALL {
            let scene = SceneProfile::measure(&dataset, strategy, 7);
            let n = max_trainable_gaussians(SystemKind::NaiveOffload, &device, &scene);
            let stats = synthetic_microbatch_stats(&scene, n, true);
            let sim = simulate_batch(SystemKind::Clm, &device, &scene, n, &stats);
            thr_row.push(format!("{:.1}", sim.throughput));
            trail_row.push(format!("{:.1}", sim.adam_trailing_time * 1e3));
        }
        thr_rows.push(thr_row);
        trail_rows.push(trail_row);
    }
    let mut out = format_table(
        "Table 5a: CLM training throughput per ordering strategy (images/s, RTX 4090)",
        &["Scene", "Random", "Camera", "GS Count", "TSP"],
        &thr_rows,
    );
    out.push('\n');
    out.push_str(&format_table(
        "Table 5b: CPU Adam trailing time per ordering strategy (ms)",
        &["Scene", "Random", "Camera", "GS Count", "TSP"],
        &trail_rows,
    ));
    out
}

/// Figure 15: GPU idle-rate CDF summary (mean GPU utilisation and idle-rate
/// quartiles) for CLM vs naive offloading.
pub fn report_figure15_gpu_idle_cdf() -> String {
    let device = DeviceProfile::rtx4090();
    let mut rows = Vec::new();
    for kind in SceneKind::ALL {
        let scene = SceneProfile::paper_reference(kind);
        let n = max_trainable_gaussians(SystemKind::NaiveOffload, &device, &scene);
        let stats = synthetic_microbatch_stats(&scene, n, true);
        for system in [SystemKind::NaiveOffload, SystemKind::Clm] {
            let sim = simulate_batch(system, &device, &scene, n, &stats);
            let window = (sim.timeline.makespan() / 100.0).max(1e-6);
            let cdf = gpu_idle_rate_cdf(&sim.timeline, window);
            let util = sim_device::mean_gpu_utilization(&sim.timeline, window);
            rows.push(vec![
                kind.to_string(),
                system.to_string(),
                format!("{:.1}", util),
                format!("{:.0}", cdf_quantile(&cdf, 0.5)),
                format!("{:.0}", cdf_quantile(&cdf, 0.9)),
            ]);
        }
    }
    format_table(
        "Figure 15: GPU idle rate (mean SMs-active %, idle-rate p50/p90) on RTX 4090",
        &[
            "Scene",
            "System",
            "Mean GPU util (%)",
            "Idle rate p50 (%)",
            "Idle rate p90 (%)",
        ],
        &rows,
    )
}

/// Table 6: pinned host memory CLM uses at the maximum model size of each
/// testbed/scene.
pub fn report_table6_pinned_memory() -> String {
    let mut rows = Vec::new();
    let profiles = paper_profiles();
    for device in [DeviceProfile::rtx2080ti(), DeviceProfile::rtx4090()] {
        let mut row = vec![device.name.clone()];
        for (_, scene) in &profiles {
            let n = max_trainable_gaussians(SystemKind::Clm, &device, scene);
            row.push(gib(pinned_memory_required(n)));
        }
        rows.push(row);
    }
    format_table(
        "Table 6: pinned memory usage of CLM at max model size (GB)",
        &[
            "Testbed", "Bicycle", "Rubble", "Alameda", "Ithaca", "BigCity",
        ],
        &rows,
    )
}

/// Table 7: hardware utilisation of CLM vs naive offloading.
pub fn report_table7_hardware_utilization() -> String {
    let device = DeviceProfile::rtx4090();
    let mut rows = Vec::new();
    for kind in SceneKind::ALL {
        let scene = SceneProfile::paper_reference(kind);
        let n = max_trainable_gaussians(SystemKind::NaiveOffload, &device, &scene);
        let stats = synthetic_microbatch_stats(&scene, n, true);
        for system in [SystemKind::NaiveOffload, SystemKind::Clm] {
            let sim = simulate_batch(system, &device, &scene, n, &stats);
            let util = hardware_utilization(&sim.timeline, &device);
            rows.push(vec![
                kind.to_string(),
                system.to_string(),
                format!("{:.1}", util.cpu_util),
                format!("{:.1}", util.dram_read),
                format!("{:.1}", util.dram_write),
                format!("{:.1}", util.pcie_rx),
                format!("{:.1}", util.pcie_tx),
            ]);
        }
    }
    format_table(
        "Table 7: hardware utilisation (%), CLM vs naive offloading on RTX 4090",
        &[
            "Scene",
            "System",
            "CPU util",
            "DRAM read",
            "DRAM write",
            "PCIe RX",
            "PCIe TX",
        ],
        &rows,
    )
}

/// Every experiment, as `(id, generator)` pairs, in paper order.
pub fn all_reports() -> Vec<(&'static str, fn() -> String)> {
    vec![
        ("table2", report_table2_memory_demand as fn() -> String),
        ("figure5", report_figure5_sparsity_cdf),
        ("figure8", report_figure8_max_model_size),
        ("figure9", report_figure9_quality_scaling),
        ("figure10", report_figure10_memory_breakdown),
        ("figure11", report_figure11_throughput_vs_naive),
        ("figure12", report_figure12_throughput_vs_baseline),
        ("figure13", report_figure13_runtime_breakdown),
        ("figure14", report_figure14_comm_volume),
        ("table5", report_table5_ordering_strategies),
        ("figure15", report_figure15_gpu_idle_cdf),
        ("table6", report_table6_pinned_memory),
        ("table7", report_table7_hardware_utilization),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formatting_aligns_columns() {
        let t = format_table(
            "demo",
            &["a", "long-header"],
            &[
                vec!["x".into(), "1".into()],
                vec!["yyyy".into(), "2".into()],
            ],
        );
        assert!(t.contains("# demo"));
        assert!(t.lines().count() >= 4);
    }

    #[test]
    fn report_registry_is_complete() {
        let ids: Vec<&str> = all_reports().iter().map(|(id, _)| *id).collect();
        for expected in [
            "table2", "figure5", "figure8", "figure9", "figure10", "figure11", "figure12",
            "figure13", "figure14", "table5", "figure15", "table6", "table7",
        ] {
            assert!(ids.contains(&expected), "missing report {expected}");
        }
    }

    #[test]
    fn fast_reports_produce_output() {
        // Smoke-test the cheap reports (the expensive ones run in the
        // binaries and integration tests).
        for report in [
            report_table2_memory_demand(),
            report_figure8_max_model_size(),
        ] {
            assert!(report.len() > 100);
            assert!(report.contains("BigCity"));
        }
    }
}
