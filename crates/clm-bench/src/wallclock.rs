//! Wall-clock runtime benchmark: synchronous vs simulated vs threaded vs
//! sharded, with a serial-vs-parallel **compute dimension** on top.
//!
//! Every other artefact in this crate reports *simulated* device time; this
//! module is the repo's **measured** performance baseline.  It trains the
//! same scene from the same initial model with five execution strategies —
//!
//! 1. `synchronous` — `clm_core::Trainer::train_epoch`, every lane inline;
//! 2. `simulated` — `clm_runtime::PipelinedEngine`, lanes inline plus
//!    discrete-event costing (the numerics oracle);
//! 3. `threaded` — `clm_runtime::ThreadedBackend`, gathers and CPU Adam on
//!    real worker threads, render compute serial (`compute_threads = 1`);
//! 4. `threaded_parallel` — the same backend with the banded render
//!    compute fanned out over `compute_threads` workers;
//! 5. `sharded` — `clm_runtime::ShardedEngine` with `WallclockScale::devices`
//!    per-device lane groups on the shared simulated timeline (per-device
//!    lane-busy breakdown in the artefact);
//!
//! — verifies all five final models are **bit-identical** (thread counts
//! and shard counts are pure scheduling; `sharded_bit_identical` is the
//! flag CI's `shard-matrix` job gates on at devices ∈ {1, 2, 4}), and
//! reports wall-clock throughput, speedups, per-lane busy fractions and the
//! compute-lane serial/parallel speedup as a single-line JSON object
//! (written to `BENCH_runtime.json` by the `bench_runtime` binary).  On a
//! multi-core host the threaded backend should strictly out-run the single-threaded
//! strategies and the parallel compute lane should shrink with cores; on a
//! single core both degrade to roughly synchronous speed, which is why the
//! CI smoke gate is core-count-conditional (a strict `> 1×` win on ≥ 2
//! cores, a 0.9× coordination-overhead floor on one).

use clm_core::{
    ground_truth_images, DensifyConfig, DensifySchedule, SystemKind, TrainConfig, Trainer,
};
use clm_runtime::{
    ExecutionBackend, LaneBusy, PipelinedEngine, PrefetchPolicy, RuntimeConfig, ShardedEngine,
    ThreadedBackend, ThreadedConfig,
};
use gs_core::gaussian::GaussianModel;
use gs_render::Image;
use gs_scene::{
    generate_dataset, init_from_point_cloud, Dataset, DatasetConfig, InitConfig, SceneKind,
    SceneSpec,
};
use sim_device::DeviceProfile;
use std::time::Instant;

/// Workload of one benchmark run.
#[derive(Debug, Clone)]
pub struct WallclockScale {
    /// Label reported in the JSON (`"smoke"`, `"full"`, …).
    pub label: &'static str,
    /// Gaussians in the synthetic ground-truth scene.
    pub scene_gaussians: usize,
    /// Gaussians in the trained model.
    pub model_gaussians: usize,
    /// Number of posed views (each epoch trains all of them once).
    pub views: usize,
    /// Render resolution.
    pub width: u32,
    /// Render resolution.
    pub height: u32,
    /// Views per batch.
    pub batch_size: usize,
    /// Training epochs per backend.
    pub epochs: usize,
    /// Prefetch lookahead window.
    pub prefetch_window: usize,
    /// Band workers for the `threaded_parallel` compute dimension
    /// (0 = the host's autotuned, cgroup-aware parallelism).
    pub compute_threads: usize,
    /// Simulated devices for the `sharded` entry (CI's shard matrix runs
    /// 1, 2 and 4).
    pub devices: usize,
    /// Densify every this many batches (0 = fixed-size model).  The
    /// schedule is part of the trained trajectory, so every backend crosses
    /// the same boundaries — and the artefact records what the resizes cost
    /// each of them.
    pub densify_every: usize,
}

impl WallclockScale {
    /// Tiny configuration for CI smoke runs (a few seconds on one core).
    /// The 64-row height splits into four equal 16-pixel bands, so four
    /// compute workers get balanced work.
    pub fn smoke() -> Self {
        WallclockScale {
            label: "smoke",
            scene_gaussians: 1_000,
            model_gaussians: 420,
            views: 16,
            width: 80,
            height: 64,
            batch_size: 8,
            epochs: 3,
            prefetch_window: 2,
            compute_threads: 0,
            devices: 1,
            densify_every: 2,
        }
    }

    /// The default benchmark configuration.
    pub fn full() -> Self {
        WallclockScale {
            label: "full",
            scene_gaussians: 1_600,
            model_gaussians: 700,
            views: 24,
            width: 96,
            height: 80,
            batch_size: 8,
            epochs: 4,
            prefetch_window: 2,
            compute_threads: 0,
            devices: 1,
            densify_every: 2,
        }
    }

    /// Minimal configuration for unit tests.
    pub fn test() -> Self {
        WallclockScale {
            label: "test",
            scene_gaussians: 200,
            model_gaussians: 90,
            views: 8,
            width: 32,
            height: 24,
            batch_size: 4,
            epochs: 1,
            prefetch_window: 1,
            compute_threads: 2,
            devices: 2,
            densify_every: 1,
        }
    }

    /// The band-worker count the `threaded_parallel` run actually uses:
    /// the configured `compute_threads`, or the autotuned (cgroup-aware)
    /// default when 0.
    pub fn effective_compute_threads(&self) -> usize {
        if self.compute_threads > 0 {
            self.compute_threads
        } else {
            clm_runtime::tuned().knobs.compute_threads
        }
    }
}

/// One backend's measured run.
#[derive(Debug, Clone)]
pub struct BackendMeasurement {
    /// Backend identifier (`synchronous` / `simulated` / `threaded`).
    pub name: &'static str,
    /// Measured wall-clock seconds for the whole run.
    pub wall_seconds: f64,
    /// Images trained per wall-clock second.
    pub images_per_s: f64,
    /// Communication-lane busy seconds (measured for `threaded`, simulated
    /// device seconds for `simulated`, 0 for `synchronous`).
    pub comm_busy_s: f64,
    /// CPU-Adam-lane busy seconds (same conventions).
    pub adam_busy_s: f64,
    /// Compute-lane busy seconds (same conventions).
    pub compute_busy_s: f64,
    /// Denominator the lane busy *fractions* are reported against: the
    /// measured wall clock for `threaded`, the total **simulated makespan**
    /// for `simulated` (its lane times are simulated device seconds — they
    /// are not commensurable with host wall time), and 0 for `synchronous`
    /// (no lane accounting at all).
    pub lane_denominator_s: f64,
    /// Band workers driving the render compute lane (1 = serial).
    pub compute_threads: usize,
    /// Host cores detected when this entry ran (recorded per entry so
    /// artefacts aggregated across runners stay interpretable).
    pub host_cores: usize,
    /// Prefetch window used on each batch (empty when not applicable).
    pub windows: Vec<usize>,
    /// Per-device lane busy seconds summed over the run, indexed by device
    /// (`sharded` entry only; empty otherwise).  `scheduling` is 0 per
    /// device — the host scheduler is shared.
    pub device_lanes: Vec<LaneBusy>,
    /// Densification resize boundaries this backend crossed during the run.
    pub resize_events: u64,
    /// Post-resize wall-clock throughput over pre-resize throughput
    /// (images/s after the first boundary ÷ images/s before it; 0 when the
    /// run never resized or per-batch timings are unavailable).  Values
    /// below 1 are the cost of training the densified, larger model.
    pub post_resize_delta: f64,
}

impl BackendMeasurement {
    fn from_reports(
        name: &'static str,
        wall_seconds: f64,
        views: usize,
        lane_denominator_s: f64,
        compute_threads: usize,
        reports: &[clm_runtime::ExecutionReport],
    ) -> Self {
        let devices = reports
            .iter()
            .map(|r| r.device_lanes.len())
            .max()
            .unwrap_or(0);
        let mut device_lanes = vec![LaneBusy::default(); devices];
        for r in reports {
            for (dev, lanes) in r.device_lanes.iter().enumerate() {
                device_lanes[dev].compute += lanes.compute;
                device_lanes[dev].comm += lanes.comm;
                device_lanes[dev].adam += lanes.adam;
            }
        }
        let batch_walls: Vec<f64> = reports.iter().map(|r| r.wall_seconds).collect();
        let batch_views: Vec<usize> = reports.iter().map(|r| r.views).collect();
        let resized: Vec<bool> = reports.iter().map(|r| r.resize.is_some()).collect();
        let (resize_events, post_resize_delta) =
            resize_trajectory(&batch_walls, &batch_views, &resized);
        BackendMeasurement {
            name,
            wall_seconds,
            images_per_s: if wall_seconds > 0.0 {
                views as f64 / wall_seconds
            } else {
                0.0
            },
            comm_busy_s: reports.iter().map(|r| r.lanes.comm).sum(),
            adam_busy_s: reports.iter().map(|r| r.lanes.adam).sum(),
            compute_busy_s: reports.iter().map(|r| r.lanes.compute).sum(),
            lane_denominator_s,
            compute_threads,
            host_cores: detect_host_cores(),
            windows: reports.iter().map(|r| r.prefetch_window).collect(),
            device_lanes,
            resize_events,
            post_resize_delta,
        }
    }

    fn json(&self) -> String {
        let windows = self
            .windows
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let device_lanes = self
            .device_lanes
            .iter()
            .enumerate()
            .map(|(dev, l)| {
                format!(
                    "{{\"device\":{dev},\"compute_busy_s\":{:.6},\
                     \"comm_busy_s\":{:.6},\"adam_busy_s\":{:.6}}}",
                    l.compute, l.comm, l.adam,
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        // Six decimals on the lane seconds/fractions: the comm and Adam
        // lanes are microseconds-per-batch at bench scale, and three
        // decimals used to flatten them to a misleading 0.000.
        format!(
            "{{\"name\":\"{}\",\"wall_s\":{:.4},\"images_per_s\":{:.3},\
             \"comm_busy_s\":{:.6},\"adam_busy_s\":{:.6},\"compute_busy_s\":{:.6},\
             \"lane_denominator_s\":{:.4},\
             \"compute_threads\":{},\"host_cores\":{},\
             \"busy_fractions\":{{\"comm\":{:.6},\"adam\":{:.6},\"compute\":{:.6}}},\
             \"resize_events\":{},\"post_resize_throughput_delta\":{:.3},\
             \"windows\":[{}],\"device_lanes\":[{}]}}",
            self.name,
            self.wall_seconds,
            self.images_per_s,
            self.comm_busy_s,
            self.adam_busy_s,
            self.compute_busy_s,
            self.lane_denominator_s,
            self.compute_threads,
            self.host_cores,
            self.busy_fraction(self.comm_busy_s),
            self.busy_fraction(self.adam_busy_s),
            self.busy_fraction(self.compute_busy_s),
            self.resize_events,
            self.post_resize_delta,
            windows,
            device_lanes,
        )
    }

    fn busy_fraction(&self, lane_seconds: f64) -> f64 {
        if self.lane_denominator_s <= 0.0 {
            return 0.0;
        }
        // A sharded entry sums each lane class across its devices while the
        // denominator stays the one shared makespan, so the raw quotient
        // can exceed 1 (it used to report 1.32 at 2 devices).  Normalise to
        // the per-device mean so the fraction is a utilisation again.
        let devices = self.device_lanes.len().max(1) as f64;
        let fraction = lane_seconds / (self.lane_denominator_s * devices);
        debug_assert!(
            fraction <= 1.0 + 1e-9,
            "{}: busy fraction {fraction} exceeds 1 (lane {lane_seconds}s over {}s x {devices} devices)",
            self.name,
            self.lane_denominator_s,
        );
        fraction
    }
}

/// Complete result of one wall-clock benchmark run.
#[derive(Debug, Clone)]
pub struct WallclockBench {
    /// The workload that ran.
    pub scale: WallclockScale,
    /// Host cores available to the threaded backend (cgroup-effective).
    pub host_cores: usize,
    /// The probed host topology the run tuned itself to (the artefact's
    /// `host_topo` section).
    pub host_topo: sim_device::HostTopology,
    /// The startup calibration and the knob defaults it derived (the
    /// artefact's `autotune` section).  The run's actual knobs may differ
    /// where the scale overrides them.
    pub autotune: clm_runtime::Autotune,
    /// Band workers the `threaded_parallel` entry ran with.
    pub compute_threads: usize,
    /// Simulated devices the `sharded` entry ran with.
    pub devices: usize,
    /// Measurements in `[synchronous, simulated, threaded,
    /// threaded_parallel, sharded]` order.
    pub backends: Vec<BackendMeasurement>,
    /// Per-kernel throughput microbenchmarks (`adam_step`,
    /// `raster_forward`, `raster_backward`, `projection`), embedded so one
    /// artefact carries both end-to-end and per-kernel numbers.
    pub kernels: crate::kernels::KernelBench,
    /// Whether all five final models were bit-identical.
    pub numerics_match: bool,
    /// The shard-count invariance gate: whether the sharded engine's final
    /// model equalled the synchronous trainer's bit for bit at this device
    /// count.
    pub sharded_bit_identical: bool,
}

impl WallclockBench {
    /// The measurement of one backend by name.
    pub fn backend(&self, name: &str) -> &BackendMeasurement {
        self.backends
            .iter()
            .find(|b| b.name == name)
            .unwrap_or_else(|| panic!("no backend named {name}"))
    }

    /// Threaded wall-clock throughput over synchronous throughput.
    pub fn speedup_threaded_vs_sync(&self) -> f64 {
        ratio(
            self.backend("threaded").images_per_s,
            self.backend("synchronous").images_per_s,
        )
    }

    /// Threaded wall-clock throughput over the simulated engine's.
    pub fn speedup_threaded_vs_simulated(&self) -> f64 {
        ratio(
            self.backend("threaded").images_per_s,
            self.backend("simulated").images_per_s,
        )
    }

    /// Compute-lane throughput of the parallel run over the serial run:
    /// both trained the same images, so the ratio of their compute-lane
    /// busy seconds *is* the lane's throughput speedup.  This is the
    /// serial-vs-parallel compute dimension of the artefact.
    pub fn compute_speedup_parallel_vs_serial(&self) -> f64 {
        ratio(
            self.backend("threaded").compute_busy_s,
            self.backend("threaded_parallel").compute_busy_s,
        )
    }

    /// Parallel-compute wall-clock throughput over synchronous throughput.
    pub fn speedup_parallel_vs_sync(&self) -> f64 {
        ratio(
            self.backend("threaded_parallel").images_per_s,
            self.backend("synchronous").images_per_s,
        )
    }

    /// Caveat attached to the artefact when the host cannot actually
    /// deliver the run's parallelism: on one core the threaded entries
    /// time-slice, and under a cgroup quota smaller than the configured
    /// `compute_threads` the band workers oversubscribe.  `None` when the
    /// host backs the configuration (see [`perf_note_for`]).
    pub fn perf_note(&self) -> Option<String> {
        perf_note_for(self.host_cores, self.compute_threads)
    }

    /// Serialises the result as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let backends = self
            .backends
            .iter()
            .map(BackendMeasurement::json)
            .collect::<Vec<_>>()
            .join(",");
        let perf_note = match self.perf_note() {
            Some(note) => format!("\"{note}\""),
            None => "null".to_string(),
        };
        format!(
            "{{\"bench\":\"runtime_wallclock\",\"scale\":\"{}\",\"host_cores\":{},\
             \"perf_note\":{perf_note},\
             \"host_topo\":{},\"autotune\":{},\
             \"compute_threads\":{},\"devices\":{},\"densify_every\":{},\
             \"views_per_epoch\":{},\"epochs\":{},\"batch_size\":{},\"prefetch_window\":{},\
             \"model_gaussians\":{},\"resolution\":\"{}x{}\",\
             \"backends\":[{}],\
             \"kernels\":{},\
             \"speedup_threaded_vs_sync\":{:.3},\"speedup_threaded_vs_simulated\":{:.3},\
             \"speedup_parallel_vs_sync\":{:.3},\
             \"compute_speedup_parallel_vs_serial\":{:.3},\
             \"numerics_match\":{},\"sharded_bit_identical\":{}}}",
            self.scale.label,
            self.host_cores,
            self.host_topo.to_json(),
            self.autotune.to_json(),
            self.compute_threads,
            self.devices,
            self.scale.densify_every,
            self.scale.views,
            self.scale.epochs,
            self.scale.batch_size,
            self.scale.prefetch_window,
            self.scale.model_gaussians,
            self.scale.width,
            self.scale.height,
            backends,
            self.kernels.section_json(),
            self.speedup_threaded_vs_sync(),
            self.speedup_threaded_vs_simulated(),
            self.speedup_parallel_vs_sync(),
            self.compute_speedup_parallel_vs_serial(),
            self.numerics_match,
            self.sharded_bit_identical,
        )
    }
}

/// Detected host parallelism the bench sizes its worker lanes by: the
/// cgroup-effective core count, never below 1.
///
/// This used to read raw `available_parallelism()`, which ignores cgroup
/// CPU quotas — in a container limited to 2 CPUs on a 64-core runner the
/// bench spawned 64 band workers that time-sliced against each other and
/// the artefact recorded `host_cores: 64` for a 2-core budget.  Routing
/// through [`sim_device::HostTopology`] caps the count by the quota.
pub fn detect_host_cores() -> usize {
    sim_device::HostTopology::cached().effective_cores()
}

/// The perf caveat for a host that cannot deliver the parallelism a run
/// asked for, as a pure function so tests can feed mocked core counts.
///
/// Fires in two situations:
///
/// * `effective_cores == 1` — the threaded lanes time-slice instead of
///   overlapping, so every measured speedup under-represents multi-core
///   hardware;
/// * `compute_threads > effective_cores` — the run was configured (or a
///   stale cached knob asked) for more band workers than the cgroup quota
///   actually grants, so the parallel-compute lane oversubscribes.
///
/// `None` when the host can genuinely back the configured parallelism.
pub fn perf_note_for(effective_cores: usize, compute_threads: usize) -> Option<String> {
    if effective_cores == 1 {
        return Some(
            "single-core host: threaded lanes time-slice instead of overlapping; \
             measured speedups under-represent multi-core hardware"
                .to_string(),
        );
    }
    if compute_threads > effective_cores {
        return Some(format!(
            "cpu quota grants only {effective_cores} effective cores but \
             compute_threads={compute_threads}: oversubscribed band workers time-slice; \
             measured parallel-compute speedup under-represents an unthrottled host"
        ));
    }
    None
}

fn ratio(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

/// Summarises a run's densification trajectory from per-batch wall times:
/// how many resize boundaries were crossed, and post-resize throughput over
/// pre-resize throughput (split at the first boundary; 0 when either side
/// is empty).
fn resize_trajectory(walls: &[f64], views: &[usize], resized: &[bool]) -> (u64, f64) {
    let events = resized.iter().filter(|&&r| r).count() as u64;
    let delta = match resized.iter().position(|&r| r) {
        Some(k) if k > 0 && k < walls.len() => {
            let pre = ratio(
                views[..k].iter().sum::<usize>() as f64,
                walls[..k].iter().sum(),
            );
            let post = ratio(
                views[k..].iter().sum::<usize>() as f64,
                walls[k..].iter().sum(),
            );
            ratio(post, pre)
        }
        _ => 0.0,
    };
    (events, delta)
}

pub(crate) fn bench_scene(scale: &WallclockScale) -> (Dataset, Vec<Image>, GaussianModel) {
    let spec = SceneSpec::of(SceneKind::Rubble);
    let dataset = generate_dataset(
        &spec,
        &DatasetConfig {
            num_gaussians: scale.scene_gaussians,
            num_views: scale.views,
            width: scale.width,
            height: scale.height,
            seed: 29,
        },
    );
    let targets = ground_truth_images(&dataset);
    let init = init_from_point_cloud(
        &dataset.ground_truth,
        &InitConfig {
            num_gaussians: scale.model_gaussians,
            initial_sigma: spec.extent * 0.03,
            initial_opacity: 0.4,
            seed: 3,
            ..Default::default()
        },
    );
    (dataset, targets, init)
}

pub(crate) fn train_config(scale: &WallclockScale) -> TrainConfig {
    TrainConfig {
        system: SystemKind::Clm,
        batch_size: scale.batch_size,
        densify: (scale.densify_every > 0).then(|| DensifySchedule {
            every_batches: scale.densify_every,
            config: DensifyConfig {
                // Low gradient threshold so the model grows towards its cap
                // at the first boundary: densification cost shows up as a
                // measurable post-resize throughput delta.
                grad_threshold: 1.0e-5,
                max_gaussians: scale.model_gaussians + scale.model_gaussians / 8,
                ..Default::default()
            },
        }),
        ..Default::default()
    }
}

/// Runs the benchmark at the given scale.
pub fn run_wallclock_bench(scale: WallclockScale) -> WallclockBench {
    let (dataset, targets, init) = bench_scene(&scale);
    let model_len = init.len();
    let total_views = scale.views * scale.epochs;
    let compute_threads = scale.effective_compute_threads();

    // Warmup: one discarded epoch on a throwaway trainer, so first-run
    // costs (page faults, allocator growth, frequency ramp) are not charged
    // to whichever backend happens to be timed first.
    {
        let mut warm = Trainer::new(init.clone(), train_config(&scale));
        warm.train_epoch(&dataset, &targets);
    }

    // 1. Synchronous reference trainer, timed per batch so its resize
    // trajectory (boundary count, post-resize throughput delta) is measured
    // the same way as the runtime backends'.
    let mut sync = Trainer::new(init.clone(), train_config(&scale));
    let batch = scale.batch_size.max(1);
    let mut batch_walls = Vec::new();
    let mut batch_views = Vec::new();
    let mut batch_resized = Vec::new();
    let start = Instant::now();
    for _ in 0..scale.epochs {
        let mut view = 0;
        while view < dataset.cameras.len() {
            let end = (view + batch).min(dataset.cameras.len());
            // Detect the boundary from the counter delta — a usize read —
            // rather than pre-planning the event, which would charge the
            // sync baseline extra planning work the runtime backends'
            // measured regions don't pay.
            let resizes_before = sync.resize_events();
            let t = Instant::now();
            sync.train_batch(&dataset.cameras[view..end], &targets[view..end]);
            batch_walls.push(t.elapsed().as_secs_f64());
            batch_resized.push(sync.resize_events() > resizes_before);
            batch_views.push(end - view);
            view = end;
        }
    }
    let sync_wall = start.elapsed().as_secs_f64();
    let (sync_resizes, sync_delta) = resize_trajectory(&batch_walls, &batch_views, &batch_resized);
    let sync_measure = BackendMeasurement {
        name: "synchronous",
        wall_seconds: sync_wall,
        images_per_s: ratio(total_views as f64, sync_wall),
        comm_busy_s: 0.0,
        adam_busy_s: 0.0,
        compute_busy_s: 0.0,
        lane_denominator_s: 0.0,
        compute_threads: 1,
        host_cores: detect_host_cores(),
        windows: Vec::new(),
        device_lanes: Vec::new(),
        resize_events: sync_resizes,
        post_resize_delta: sync_delta,
    };

    // 2. Simulated (discrete-event) engine — paper-scale costing so its
    // *simulated* metrics stay in the bandwidth-bound regime, though only
    // its wall-clock time matters here.
    let mut simulated = PipelinedEngine::new(
        init.clone(),
        train_config(&scale),
        RuntimeConfig {
            device: DeviceProfile::rtx4090(),
            prefetch_window: scale.prefetch_window,
            policy: PrefetchPolicy::Fixed,
            cost_scale: 45_200_000.0 / model_len as f64,
            pixel_cost_scale: (1920.0 * 1080.0) / (scale.width as f64 * scale.height as f64),
            compute_threads: 0,
            band_height: 0,
            num_devices: 1,
            warm_start_ratio: None,
        },
    );
    let (sim_reports, sim_wall) = timed_epochs(&mut simulated, &dataset, &targets, scale.epochs);
    // The simulated backend's lane times are simulated device seconds, so
    // its busy fractions are reported against the simulated makespan.
    let sim_makespan: f64 = sim_reports.iter().filter_map(|r| r.sim_makespan).sum();
    let sim_measure = BackendMeasurement::from_reports(
        "simulated",
        sim_wall,
        total_views,
        sim_makespan,
        1,
        &sim_reports,
    );

    // 3. Threaded backend — real worker threads for comm + CPU Adam, the
    // render compute serial.
    let mut threaded = ThreadedBackend::new(
        init.clone(),
        train_config(&scale),
        ThreadedConfig {
            prefetch_window: scale.prefetch_window,
            ..Default::default()
        },
    );
    let (thr_reports, thr_wall) = timed_epochs(&mut threaded, &dataset, &targets, scale.epochs);
    let thr_measure = BackendMeasurement::from_reports(
        "threaded",
        thr_wall,
        total_views,
        thr_wall,
        1,
        &thr_reports,
    );

    // 4. Threaded backend with the banded compute lane fanned out — the
    // serial-vs-parallel compute dimension.
    let mut parallel = ThreadedBackend::new(
        init.clone(),
        train_config(&scale),
        ThreadedConfig {
            prefetch_window: scale.prefetch_window,
            compute_threads,
            ..Default::default()
        },
    );
    let (par_reports, par_wall) = timed_epochs(&mut parallel, &dataset, &targets, scale.epochs);
    let par_measure = BackendMeasurement::from_reports(
        "threaded_parallel",
        par_wall,
        total_views,
        par_wall,
        compute_threads,
        &par_reports,
    );

    // 5. Sharded engine — the scene split across `devices` simulated
    // per-device lane groups, paper-scale costing like the simulated
    // backend.  Its final model vs the synchronous trainer's is the
    // shard-count invariance gate CI's shard matrix runs at 1, 2 and 4
    // devices.
    let devices = scale.devices.max(1);
    let mut sharded = ShardedEngine::new(
        init,
        train_config(&scale),
        RuntimeConfig {
            device: DeviceProfile::rtx4090(),
            prefetch_window: scale.prefetch_window,
            policy: PrefetchPolicy::Fixed,
            cost_scale: 45_200_000.0 / model_len as f64,
            pixel_cost_scale: (1920.0 * 1080.0) / (scale.width as f64 * scale.height as f64),
            compute_threads: 0,
            band_height: 0,
            num_devices: devices,
            warm_start_ratio: None,
        },
        &dataset.cameras,
    );
    let (shard_reports, shard_wall) = timed_epochs(&mut sharded, &dataset, &targets, scale.epochs);
    let shard_makespan: f64 = shard_reports.iter().filter_map(|r| r.sim_makespan).sum();
    let shard_measure = BackendMeasurement::from_reports(
        "sharded",
        shard_wall,
        total_views,
        shard_makespan,
        1,
        &shard_reports,
    );

    let sharded_bit_identical = sync.model() == sharded.trainer().model();
    let numerics_match = sync.model() == simulated.trainer().model()
        && sync.model() == threaded.trainer().model()
        && sync.model() == parallel.trainer().model()
        && sharded_bit_identical;

    // Per-kernel throughput, matched to the end-to-end workload tier.
    let mut kernel_scale = match scale.label {
        "full" => crate::kernels::KernelScale::full(),
        "test" => crate::kernels::KernelScale::test(),
        _ => crate::kernels::KernelScale::smoke(),
    };
    kernel_scale.compute_threads = scale.compute_threads;
    let kernels = crate::kernels::run_kernel_bench(kernel_scale);

    WallclockBench {
        scale,
        host_cores: detect_host_cores(),
        host_topo: sim_device::HostTopology::cached().clone(),
        autotune: clm_runtime::tuned().clone(),
        compute_threads,
        devices,
        backends: vec![
            sync_measure,
            sim_measure,
            thr_measure,
            par_measure,
            shard_measure,
        ],
        kernels,
        numerics_match,
        sharded_bit_identical,
    }
}

fn timed_epochs<B: ExecutionBackend>(
    backend: &mut B,
    dataset: &Dataset,
    targets: &[Image],
    epochs: usize,
) -> (Vec<clm_runtime::ExecutionReport>, f64) {
    let start = Instant::now();
    let mut reports = Vec::new();
    for _ in 0..epochs {
        reports.extend(backend.execute_epoch(dataset, targets));
    }
    (reports, start.elapsed().as_secs_f64())
}

/// Cheap structural check that a benchmark artefact is a plausible
/// single-line JSON object with the keys the CI gate needs.  (The build is
/// dependency-free, so this is deliberately a shape check, not a parser.)
pub fn looks_like_bench_json(s: &str) -> bool {
    let t = s.trim();
    let depth_balanced = {
        let depth = t.chars().fold(0i64, |d, c| match c {
            '{' => d + 1,
            '}' => d - 1,
            _ => d,
        });
        depth == 0
    };
    !t.contains('\n')
        && t.starts_with('{')
        && t.ends_with('}')
        && depth_balanced
        && t.contains("\"bench\":\"runtime_wallclock\"")
        && t.contains("\"perf_note\":")
        && t.contains("\"host_topo\":{")
        && t.contains("\"autotune\":{\"calibration\":{")
        && t.contains("\"knobs\":{")
        && t.contains("\"fingerprint\":\"")
        && t.contains("\"speedup_threaded_vs_sync\":")
        && t.contains("\"compute_speedup_parallel_vs_serial\":")
        && t.contains("\"numerics_match\":")
        && t.contains("\"devices\":")
        && t.contains("\"name\":\"sharded\"")
        && t.contains("\"sharded_bit_identical\":")
        && t.contains("\"resize_events\":")
        && t.contains("\"post_resize_throughput_delta\":")
        && t.contains("\"kernels\":{")
        && crate::kernels::KERNEL_NAMES
            .iter()
            .all(|name| t.contains(&format!("\"{name}\":{{\"rows\":")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wallclock_bench_runs_and_serialises() {
        let bench = run_wallclock_bench(WallclockScale::test());
        assert!(
            bench.numerics_match,
            "all five backends must train identically"
        );
        assert!(bench.sharded_bit_identical);
        assert_eq!(bench.backends.len(), 5);
        for b in &bench.backends {
            assert!(b.wall_seconds > 0.0, "{}", b.name);
            assert!(b.images_per_s > 0.0, "{}", b.name);
            assert!(b.host_cores >= 1, "{}", b.name);
        }
        assert!(bench.speedup_threaded_vs_sync() > 0.0);
        assert!(bench.compute_speedup_parallel_vs_serial() > 0.0);
        assert_eq!(bench.backend("threaded").compute_threads, 1);
        assert_eq!(bench.backend("threaded_parallel").compute_threads, 2);
        let json = bench.to_json();
        assert!(looks_like_bench_json(&json), "malformed: {json}");
        // The embedded kernel section measured all four kernels.
        assert_eq!(bench.kernels.kernels.len(), 4);
        for name in crate::kernels::KERNEL_NAMES {
            assert!(bench.kernels.kernel(name).rows_per_s > 0.0, "{name}");
        }
        assert!(json.contains(&format!("\"kernels\":{}", bench.kernels.section_json())));
        assert!(json.contains("\"numerics_match\":true"));
        assert!(json.contains("\"sharded_bit_identical\":true"));
        // The single-core caveat is present exactly when the host cannot
        // overlap lanes (the test scale's 2 band workers fit any ≥ 2-core
        // budget, so the quota caveat cannot fire here).
        if bench.host_cores == 1 {
            assert!(json.contains("\"perf_note\":\"single-core host"));
        } else {
            assert!(json.contains("\"perf_note\":null"));
        }
        // The artefact records what the run tuned itself to: the probed
        // topology (with its tuning-record fingerprint) and the startup
        // calibration with its derived knob defaults.
        assert!(json.contains("\"host_topo\":{\"vendor\":"), "{json}");
        assert!(json.contains("\"autotune\":{\"calibration\":{"), "{json}");
        assert!(json.contains("\"fingerprint\":\""), "{json}");
        assert_eq!(bench.host_cores, bench.host_topo.effective_cores());
        assert!(bench.autotune.knobs.compute_threads >= 1);
        assert!(bench.autotune.calibration.adam_rows_per_s > 0.0);
        // Busy fractions are utilisations again — the sharded entry used to
        // report 1.32 by summing device lanes against one shared makespan.
        for b in &bench.backends {
            for lane_s in [b.comm_busy_s, b.adam_busy_s, b.compute_busy_s] {
                let f = b.busy_fraction(lane_s);
                assert!((0.0..=1.0).contains(&f), "{}: fraction {f}", b.name);
            }
        }
        // The threaded backends actually used their gather and Adam lanes
        // (the lane accounting these fields report used to flatline at 0).
        for name in ["threaded", "threaded_parallel"] {
            assert!(bench.backend(name).comm_busy_s > 0.0, "{name}");
            assert!(bench.backend(name).adam_busy_s > 0.0, "{name}");
            assert!(bench.backend(name).compute_busy_s > 0.0, "{name}");
        }
        // The sharded entry carries the per-device lane breakdown at the
        // test scale's 2 devices, and its summed lanes match the totals.
        assert_eq!(bench.devices, 2);
        let sharded = bench.backend("sharded");
        assert_eq!(sharded.device_lanes.len(), 2);
        for (dev, lanes) in sharded.device_lanes.iter().enumerate() {
            assert!(lanes.compute > 0.0, "device {dev}");
            assert!(lanes.comm > 0.0, "device {dev}");
            assert!(lanes.adam > 0.0, "device {dev}");
        }
        let summed: f64 = sharded.device_lanes.iter().map(|l| l.compute).sum();
        assert!((summed - sharded.compute_busy_s).abs() < 1e-9);
        assert!(json.contains("\"device_lanes\":[{\"device\":0,"));
        // Single-device entries carry no per-device breakdown.
        assert!(bench.backend("threaded").device_lanes.is_empty());
        // The test scale densifies every batch: all five backends cross the
        // same single boundary (2 batches -> resize before batch 2), and the
        // artefact records it.
        for b in &bench.backends {
            assert_eq!(b.resize_events, 1, "{}", b.name);
        }
        assert!(json.contains("\"resize_events\":1"));
        assert!(json.contains("\"densify_every\":1"));
        assert!(json.contains("\"post_resize_throughput_delta\":"));
        // Both sides of the boundary ran, so every backend has a measurable
        // post-resize throughput delta.
        for b in &bench.backends {
            assert!(
                b.post_resize_delta > 0.0,
                "{}: {}",
                b.name,
                b.post_resize_delta
            );
        }
    }

    #[test]
    fn resize_trajectory_splits_at_the_first_boundary() {
        // No boundary, or a boundary on the very first batch, yields no
        // delta (there is no pre-resize side to compare against).
        assert_eq!(
            resize_trajectory(&[1.0, 1.0], &[4, 4], &[false, false]),
            (0, 0.0)
        );
        let (events, delta) = resize_trajectory(&[1.0, 1.0], &[4, 4], &[true, false]);
        assert_eq!(events, 1);
        assert_eq!(delta, 0.0);
        // Two batches at 4 img/s, then two post-resize batches at 2 img/s:
        // the delta is exactly 0.5.
        let (events, delta) = resize_trajectory(
            &[1.0, 1.0, 2.0, 2.0],
            &[4, 4, 4, 4],
            &[false, false, true, false],
        );
        assert_eq!(events, 1);
        assert!((delta - 0.5).abs() < 1e-12, "{delta}");
    }

    #[test]
    fn bench_json_shape_check_rejects_junk() {
        assert!(!looks_like_bench_json(""));
        assert!(!looks_like_bench_json("{\"bench\":\"runtime_wallclock\""));
        assert!(!looks_like_bench_json(
            "{\"bench\":\"runtime_wallclock\"}\n{\"x\":1}"
        ));
        assert!(!looks_like_bench_json("{\"bench\":\"other\"}"));
        // The pre-compute-dimension shape (no serial-vs-parallel key) is
        // rejected too — the CI gate must not pass on stale artefacts.
        assert!(!looks_like_bench_json(
            "{\"bench\":\"runtime_wallclock\",\"speedup_threaded_vs_sync\":1.0,\
             \"numerics_match\":true}"
        ));
        // So is the pre-sharding shape (no devices / sharded entry /
        // invariance flag).
        assert!(!looks_like_bench_json(
            "{\"bench\":\"runtime_wallclock\",\"speedup_threaded_vs_sync\":1.0,\
             \"compute_speedup_parallel_vs_serial\":1.0,\"numerics_match\":true}"
        ));
        // And the pre-kernel-section shape: a current artefact must carry
        // per-kernel throughput for all four kernels.
        let mut no_kernels = run_kernel_free_fixture();
        assert!(!looks_like_bench_json(&no_kernels));
        no_kernels = no_kernels.replace(
            "\"kernels\":{}",
            "\"kernels\":{\"adam_step\":{\"rows\":1,\"wall_s\":0.1,\"rows_per_s\":10.0},\
             \"raster_forward\":{\"rows\":1,\"wall_s\":0.1,\"rows_per_s\":10.0},\
             \"raster_backward\":{\"rows\":1,\"wall_s\":0.1,\"rows_per_s\":10.0},\
             \"projection\":{\"rows\":1,\"wall_s\":0.1,\"rows_per_s\":10.0}}",
        );
        assert!(looks_like_bench_json(&no_kernels));
        // A pre-autotune artefact (no host_topo / autotune sections) is
        // stale: the gate must force it to be regenerated.
        let stale = no_kernels.replace("\"host_topo\":", "\"old_topo\":");
        assert!(!looks_like_bench_json(&stale));
        let stale = no_kernels.replace("\"autotune\":", "\"old_tune\":");
        assert!(!looks_like_bench_json(&stale));
    }

    #[test]
    fn perf_note_flags_single_core_and_quota_oversubscription() {
        // One effective core: the historical single-core caveat, verbatim
        // (downstream tooling greps for the prefix).
        let note = perf_note_for(1, 1).expect("single-core note");
        assert!(note.starts_with("single-core host"), "{note}");
        // A 2-core cgroup quota with 8 configured band workers used to
        // report no caveat at all — the check only looked at cores == 1.
        let note = perf_note_for(2, 8).expect("oversubscription note");
        assert!(note.contains("2 effective cores"), "{note}");
        assert!(note.contains("compute_threads=8"), "{note}");
        // A host that can back the configuration carries no caveat, even
        // with head-room to spare.
        assert_eq!(perf_note_for(4, 4), None);
        assert_eq!(perf_note_for(8, 2), None);
    }

    /// A structurally-complete artefact except for an empty `kernels`
    /// section — the stale shape the gate must reject.
    fn run_kernel_free_fixture() -> String {
        "{\"bench\":\"runtime_wallclock\",\"perf_note\":null,\
         \"host_topo\":{\"vendor\":\"generic\",\"effective_cores\":1,\
         \"fingerprint\":\"generic-1c1t-l2:512k-l3:0k-e1\"},\
         \"autotune\":{\"calibration\":{\"wall_ms\":1.0},\
         \"knobs\":{\"compute_threads\":1}},\"devices\":1,\
         \"speedup_threaded_vs_sync\":1.0,\"compute_speedup_parallel_vs_serial\":1.0,\
         \"numerics_match\":true,\"sharded_bit_identical\":true,\"resize_events\":0,\
         \"post_resize_throughput_delta\":0.0,\"name\":\"sharded\",\"kernels\":{}}"
            .to_string()
    }
}
