//! Runtime-driven figure summaries (bench-harness style).
//!
//! The throughput and idle-CDF artefacts (Figures 11, 12, 15, Table 7) are
//! exactly the ones that depend on *execution structure* — overlap, prefetch
//! and early finalisation — so they are produced by actually running the
//! trainers through `clm_runtime::PipelinedEngine` rather than by the
//! closed-form batch simulation.  Real reduced-scale scenes provide the
//! working sets; the engine's `cost_scale` lifts the timeline costing to
//! paper-scale Gaussian counts and resolution so the schedules sit in the
//! same bandwidth-bound regime as the paper's testbeds.
//!
//! Following the bench-harness idiom, every summary is a **single-line JSON
//! object** suitable for collection from stdout by an external harness.

use crate::cdf_quantile;
use clm_core::{ground_truth_images, SystemKind, TrainConfig};
use clm_runtime::{
    ExecutionBackend, IterationReport, PipelinedEngine, RuntimeConfig, ThreadedBackend,
    ThreadedConfig,
};
use gs_core::gaussian::GaussianModel;
use gs_render::Image;
use gs_scene::{
    generate_dataset, init_from_point_cloud, Dataset, DatasetConfig, InitConfig, SceneKind,
    SceneSpec,
};
use sim_device::{
    gpu_idle_rate_cdf, hardware_utilization, mean_gpu_utilization, DeviceProfile, Lane, OpKind,
};

/// Paper-scale Gaussian count the runtime schedules are costed at (the
/// Rubble model size naive offloading maxes out at on the RTX 4090,
/// Figure 10).
const PAPER_SCALE_GAUSSIANS: f64 = 45_200_000.0;

/// Paper rendering resolution (1080p) the pixel costs are lifted to.
const PAPER_SCALE_PIXELS: f64 = 1920.0 * 1080.0;

/// Views per batch in the runtime summaries.
const BATCH: usize = 8;

fn runtime_scene() -> (Dataset, Vec<Image>, GaussianModel) {
    let spec = SceneSpec::of(SceneKind::Rubble);
    let dataset = generate_dataset(
        &spec,
        &DatasetConfig {
            num_gaussians: 600,
            num_views: BATCH * 2,
            width: 48,
            height: 36,
            seed: 11,
        },
    );
    let targets = ground_truth_images(&dataset);
    let init = init_from_point_cloud(
        &dataset.ground_truth,
        &InitConfig {
            num_gaussians: 240,
            initial_sigma: spec.extent * 0.03,
            initial_opacity: 0.4,
            seed: 3,
            ..Default::default()
        },
    );
    (dataset, targets, init)
}

fn paper_scale_engine(init: GaussianModel, system: SystemKind, window: usize) -> PipelinedEngine {
    let cost_scale = PAPER_SCALE_GAUSSIANS / init.len() as f64;
    PipelinedEngine::new(
        init,
        TrainConfig {
            system,
            batch_size: BATCH,
            ..Default::default()
        },
        RuntimeConfig {
            device: DeviceProfile::rtx4090(),
            prefetch_window: window,
            cost_scale,
            pixel_cost_scale: PAPER_SCALE_PIXELS / (48.0 * 36.0),
            ..Default::default()
        },
    )
}

/// Runs one epoch (two batches) and returns the per-iteration reports.
fn run_system(
    dataset: &Dataset,
    targets: &[Image],
    init: &GaussianModel,
    system: SystemKind,
    window: usize,
) -> Vec<IterationReport> {
    let mut engine = paper_scale_engine(init.clone(), system, window);
    engine.run_epoch(dataset, targets)
}

/// Images per simulated second over a set of iteration reports.
fn throughput(reports: &[IterationReport]) -> f64 {
    let views: usize = reports.iter().map(|r| r.views).sum();
    let time: f64 = reports.iter().map(IterationReport::makespan).sum();
    if time <= 0.0 {
        0.0
    } else {
        views as f64 / time
    }
}

/// Figure 11 (runtime): CLM vs naive offloading training throughput.
pub fn runtime_summary_figure11() -> String {
    let (dataset, targets, init) = runtime_scene();
    let naive = run_system(&dataset, &targets, &init, SystemKind::NaiveOffload, 2);
    let clm = run_system(&dataset, &targets, &init, SystemKind::Clm, 2);
    let naive_tp = throughput(&naive);
    let clm_tp = throughput(&clm);
    format!(
        "{{\"bench\":\"figure11_throughput_vs_naive\",\"scene\":\"rubble-synthetic\",\
         \"device\":\"RTX 4090\",\"paper_scale_gaussians\":{},\
         \"naive_images_per_s\":{:.3},\"clm_images_per_s\":{:.3},\"clm_speedup\":{:.3}}}",
        PAPER_SCALE_GAUSSIANS as u64,
        naive_tp,
        clm_tp,
        if naive_tp > 0.0 {
            clm_tp / naive_tp
        } else {
            0.0
        },
    )
}

/// Figure 12 (runtime): CLM vs the GPU-only baselines' training throughput.
pub fn runtime_summary_figure12() -> String {
    let (dataset, targets, init) = runtime_scene();
    let baseline = throughput(&run_system(
        &dataset,
        &targets,
        &init,
        SystemKind::Baseline,
        2,
    ));
    let enhanced = throughput(&run_system(
        &dataset,
        &targets,
        &init,
        SystemKind::EnhancedBaseline,
        2,
    ));
    let clm = throughput(&run_system(&dataset, &targets, &init, SystemKind::Clm, 2));
    format!(
        "{{\"bench\":\"figure12_throughput_vs_baseline\",\"scene\":\"rubble-synthetic\",\
         \"device\":\"RTX 4090\",\"paper_scale_gaussians\":{},\
         \"baseline_images_per_s\":{:.3},\"enhanced_images_per_s\":{:.3},\
         \"clm_images_per_s\":{:.3},\"clm_vs_enhanced\":{:.3}}}",
        PAPER_SCALE_GAUSSIANS as u64,
        baseline,
        enhanced,
        clm,
        if enhanced > 0.0 { clm / enhanced } else { 0.0 },
    )
}

/// Figure 13 (runtime): per-lane runtime decomposition of CLM vs naive
/// offloading, derived from **executed** [`IterationReport`] timelines
/// (paper-scale costing) rather than the closed-form batch simulation, plus
/// a measured serial-vs-parallel compute-lane scaling section from the
/// threaded backend: wall-clock compute-lane busy seconds at 1, 2 and 4
/// band workers, which shrink as threads increase on a multi-core host.
pub fn runtime_summary_figure13() -> String {
    let (dataset, targets, init) = runtime_scene();

    // Simulated breakdown: sum the executed timelines of one epoch and
    // normalise every lane to naive offloading's total makespan, like the
    // paper's stacked bars.
    let breakdown = |system: SystemKind| -> (f64, f64, f64, f64, f64) {
        let reports = run_system(&dataset, &targets, &init, system, 2);
        let comm: f64 = reports
            .iter()
            .map(|r| {
                r.timeline.time_by_kind(OpKind::LoadParams)
                    + r.timeline.time_by_kind(OpKind::StoreGrads)
            })
            .sum();
        let compute: f64 = reports
            .iter()
            .map(|r| {
                r.timeline.time_by_kind(OpKind::Forward) + r.timeline.time_by_kind(OpKind::Backward)
            })
            .sum();
        let adam: f64 = reports
            .iter()
            .map(|r| r.timeline.busy_time(Lane::CpuAdam))
            .sum();
        let sched: f64 = reports
            .iter()
            .map(|r| r.timeline.busy_time(Lane::CpuScheduler))
            .sum();
        let makespan: f64 = reports.iter().map(IterationReport::makespan).sum();
        (comm, compute, adam, sched, makespan)
    };
    let (n_comm, n_compute, n_adam, n_sched, n_total) = breakdown(SystemKind::NaiveOffload);
    let (c_comm, c_compute, c_adam, c_sched, c_total) = breakdown(SystemKind::Clm);
    let norm = |x: f64| if n_total > 0.0 { x / n_total } else { 0.0 };

    // Measured compute-lane scaling: the same scene trained by the
    // threaded backend with 1, 2 and 4 band workers.  Pure scheduling, so
    // the numerics are identical; only the lane's busy seconds change.
    let compute_by_threads: Vec<(usize, f64)> = [1usize, 2, 4]
        .iter()
        .map(|&threads| {
            let mut backend = ThreadedBackend::new(
                init.clone(),
                TrainConfig {
                    system: SystemKind::Clm,
                    batch_size: BATCH,
                    ..Default::default()
                },
                ThreadedConfig {
                    prefetch_window: 2,
                    compute_threads: threads,
                    ..Default::default()
                },
            );
            let reports = backend.execute_epoch(&dataset, &targets);
            let busy: f64 = reports.iter().map(|r| r.lanes.compute).sum();
            (threads, busy)
        })
        .collect();
    let scaling = compute_by_threads
        .iter()
        .map(|(t, s)| format!("{{\"threads\":{t},\"compute_busy_s\":{s:.6}}}"))
        .collect::<Vec<_>>()
        .join(",");

    format!(
        "{{\"bench\":\"figure13_runtime_breakdown\",\"scene\":\"rubble-synthetic\",\
         \"device\":\"RTX 4090\",\"paper_scale_gaussians\":{},\
         \"normalised_to\":\"naive_total\",\
         \"naive\":{{\"comm\":{:.3},\"compute\":{:.3},\"adam\":{:.3},\
         \"scheduling\":{:.3},\"total\":{:.3}}},\
         \"clm\":{{\"comm\":{:.3},\"compute\":{:.3},\"adam\":{:.3},\
         \"scheduling\":{:.3},\"total\":{:.3}}},\
         \"clm_speedup\":{:.3},\
         \"host_cores\":{},\
         \"measured_compute_lane\":[{}]}}",
        PAPER_SCALE_GAUSSIANS as u64,
        norm(n_comm),
        norm(n_compute),
        norm(n_adam),
        norm(n_sched),
        norm(n_total),
        norm(c_comm),
        norm(c_compute),
        norm(c_adam),
        norm(c_sched),
        norm(c_total),
        if c_total > 0.0 {
            n_total / c_total
        } else {
            0.0
        },
        crate::wallclock::detect_host_cores(),
        scaling,
    )
}

/// Figure 15 (runtime): GPU idle-rate comparison between the pipelined CLM
/// schedule, the no-overlap (window 0) schedule and naive offloading.
pub fn runtime_summary_figure15() -> String {
    let (dataset, targets, init) = runtime_scene();
    let stats = |reports: Vec<IterationReport>| -> (f64, f64, f64, f64) {
        // Use the first iteration's timeline for the CDF (they are
        // structurally identical across iterations) and the mean idle
        // fraction across iterations for the headline number.
        let idle: f64 = reports
            .iter()
            .map(IterationReport::gpu_idle_fraction)
            .sum::<f64>()
            / reports.len() as f64;
        let timeline = &reports[0].timeline;
        let window = (timeline.makespan() / 100.0).max(1e-9);
        let cdf = gpu_idle_rate_cdf(timeline, window);
        (
            idle,
            mean_gpu_utilization(timeline, window),
            cdf_quantile(&cdf, 0.5),
            cdf_quantile(&cdf, 0.9),
        )
    };
    let (clm_idle, clm_util, clm_p50, clm_p90) =
        stats(run_system(&dataset, &targets, &init, SystemKind::Clm, 2));
    let (sync_idle, sync_util, _, _) =
        stats(run_system(&dataset, &targets, &init, SystemKind::Clm, 0));
    let (naive_idle, naive_util, naive_p50, naive_p90) = stats(run_system(
        &dataset,
        &targets,
        &init,
        SystemKind::NaiveOffload,
        2,
    ));
    format!(
        "{{\"bench\":\"figure15_gpu_idle_cdf\",\"scene\":\"rubble-synthetic\",\
         \"device\":\"RTX 4090\",\
         \"clm_idle_fraction\":{:.4},\"no_overlap_idle_fraction\":{:.4},\
         \"naive_idle_fraction\":{:.4},\
         \"clm_mean_gpu_util_pct\":{:.1},\"no_overlap_mean_gpu_util_pct\":{:.1},\
         \"naive_mean_gpu_util_pct\":{:.1},\
         \"clm_idle_p50_pct\":{:.1},\"clm_idle_p90_pct\":{:.1},\
         \"naive_idle_p50_pct\":{:.1},\"naive_idle_p90_pct\":{:.1},\
         \"overlap_reduces_idle\":{}}}",
        clm_idle,
        sync_idle,
        naive_idle,
        clm_util,
        sync_util,
        naive_util,
        clm_p50,
        clm_p90,
        naive_p50,
        naive_p90,
        clm_idle < sync_idle,
    )
}

/// Table 7 (runtime): Nsight-style hardware utilisation of CLM vs naive
/// offloading, derived from the executed timelines.
pub fn runtime_summary_table7() -> String {
    let (dataset, targets, init) = runtime_scene();
    let device = DeviceProfile::rtx4090();
    let util = |system: SystemKind| {
        let reports = run_system(&dataset, &targets, &init, system, 2);
        hardware_utilization(&reports[0].timeline, &device)
    };
    let naive = util(SystemKind::NaiveOffload);
    let clm = util(SystemKind::Clm);
    format!(
        "{{\"bench\":\"table7_hardware_utilization\",\"scene\":\"rubble-synthetic\",\
         \"device\":\"RTX 4090\",\
         \"naive\":{{\"cpu_util\":{:.1},\"dram_read\":{:.1},\"dram_write\":{:.1},\
         \"pcie_rx\":{:.1},\"pcie_tx\":{:.1}}},\
         \"clm\":{{\"cpu_util\":{:.1},\"dram_read\":{:.1},\"dram_write\":{:.1},\
         \"pcie_rx\":{:.1},\"pcie_tx\":{:.1}}}}}",
        naive.cpu_util,
        naive.dram_read,
        naive.dram_write,
        naive.pcie_rx,
        naive.pcie_tx,
        clm.cpu_util,
        clm.dram_read,
        clm.dram_write,
        clm.pcie_rx,
        clm.pcie_tx,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_single_json_line(s: &str) {
        assert!(!s.contains('\n'), "summary must be a single line");
        assert!(
            s.starts_with('{') && s.ends_with('}'),
            "summary must be a JSON object: {s}"
        );
        // Braces must balance (nested objects allowed).
        let depth = s.chars().fold(0i32, |d, c| match c {
            '{' => d + 1,
            '}' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0, "unbalanced braces in {s}");
    }

    #[test]
    fn figure15_summary_shows_overlap_reducing_idle() {
        let s = runtime_summary_figure15();
        assert_single_json_line(&s);
        assert!(
            s.contains("\"overlap_reduces_idle\":true"),
            "pipelined CLM must idle less than the no-overlap schedule: {s}"
        );
    }

    #[test]
    fn figure11_summary_shows_clm_beating_naive() {
        let s = runtime_summary_figure11();
        assert_single_json_line(&s);
        let speedup: f64 = s
            .split("\"clm_speedup\":")
            .nth(1)
            .and_then(|rest| rest.trim_end_matches('}').parse().ok())
            .expect("summary must contain clm_speedup");
        assert!(speedup > 1.0, "CLM must out-run naive offloading: {s}");
    }

    #[test]
    fn figure12_and_table7_summaries_are_single_json_lines() {
        assert_single_json_line(&runtime_summary_figure12());
        assert_single_json_line(&runtime_summary_table7());
    }

    #[test]
    fn figure13_summary_breaks_down_executed_runtime() {
        let s = runtime_summary_figure13();
        assert_single_json_line(&s);
        // Naive's own makespan normalised to itself is exactly 1.
        assert!(s.contains("\"normalised_to\":\"naive_total\""), "{s}");
        assert!(s.contains("\"total\":1.000"), "{s}");
        // The pipelined CLM schedule beats naive end-to-end.
        let speedup: f64 = s
            .split("\"clm_speedup\":")
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .and_then(|v| v.parse().ok())
            .expect("summary must contain clm_speedup");
        assert!(speedup > 1.0, "CLM must out-run naive offloading: {s}");
        // The measured compute-lane section has all three thread counts.
        for t in [1, 2, 4] {
            assert!(s.contains(&format!("{{\"threads\":{t},")), "{s}");
        }
    }
}
