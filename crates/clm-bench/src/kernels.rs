//! Per-kernel throughput microbenchmarks for the lane-staged hot paths.
//!
//! The wall-clock benchmark ([`crate::wallclock`]) measures whole training
//! runs, where scheduling, staging and coordination all blend into one
//! number.  This module isolates the four kernels the AoSoA layout work
//! targets and reports each one's **rows-per-second throughput** — the
//! number a data-layout regression moves directly:
//!
//! * `adam_step` — the shared lane-kernel Adam update
//!   ([`gs_optim::compute_packed_chunked`]) over packed work items; a row is
//!   one Gaussian's 59-parameter update.
//! * `raster_forward` — the banded forward rasteriser ([`gs_render::render`]);
//!   a row is one depth-sorted splat that survived projection.
//! * `raster_backward` — the banded backward pass
//!   ([`gs_render::render_backward`]); same row unit.
//! * `projection` — per-Gaussian EWA projection
//!   ([`gs_render::project_gaussian`]); a row is one candidate Gaussian.
//!
//! The artefact appears twice: standalone (`bench_kernels` →
//! `BENCH_kernels.json`) and embedded as the `kernels` section of
//! `BENCH_runtime.json`, so the CI gate can validate both from one schema.
//! Throughput floors are enforced by the `bench_kernels` binary only on
//! hosts with ≥ 2 cores — a loaded single-core runner time-slices the
//! chunked Adam path against its own workers, which makes floor numbers
//! meaningless there.

use crate::wallclock::{bench_scene, detect_host_cores, WallclockScale};
use gs_core::gaussian::GaussianModel;
use gs_core::PARAMS_PER_GAUSSIAN;
use gs_optim::{compute_packed_chunked, AdamConfig, AdamWorkItem};
use gs_render::{project_gaussian, render, render_backward, RenderOptions};
use gs_scene::Dataset;
use std::time::Instant;

/// Workload of one kernel-benchmark run.
#[derive(Debug, Clone)]
pub struct KernelScale {
    /// Label reported in the JSON (`"smoke"`, `"full"`, …).
    pub label: &'static str,
    /// Gaussians in the benchmarked model.
    pub gaussians: usize,
    /// Render resolution.
    pub width: u32,
    /// Render resolution.
    pub height: u32,
    /// Timed repetitions of the Adam step over the whole model.
    pub adam_iters: usize,
    /// Timed repetitions of the forward and backward render.
    pub render_iters: usize,
    /// Timed repetitions of projecting the whole model.
    pub projection_iters: usize,
    /// Workers for the chunked Adam and banded render paths
    /// (0 = auto-detect the host's available parallelism).
    pub compute_threads: usize,
}

impl KernelScale {
    /// Tiny configuration for CI smoke runs and unit tests.
    pub fn smoke() -> Self {
        KernelScale {
            label: "smoke",
            gaussians: 420,
            width: 80,
            height: 64,
            adam_iters: 40,
            render_iters: 6,
            projection_iters: 40,
            compute_threads: 0,
        }
    }

    /// The default benchmark configuration.
    pub fn full() -> Self {
        KernelScale {
            label: "full",
            gaussians: 1_400,
            width: 128,
            height: 96,
            adam_iters: 120,
            render_iters: 16,
            projection_iters: 120,
            compute_threads: 0,
        }
    }

    /// Minimal configuration for unit tests.
    pub fn test() -> Self {
        KernelScale {
            label: "test",
            gaussians: 80,
            width: 32,
            height: 24,
            adam_iters: 2,
            render_iters: 1,
            projection_iters: 2,
            compute_threads: 2,
        }
    }

    /// The worker count the chunked paths actually use.
    pub fn effective_compute_threads(&self) -> usize {
        if self.compute_threads > 0 {
            self.compute_threads
        } else {
            detect_host_cores()
        }
    }
}

/// One kernel's measured throughput.
#[derive(Debug, Clone)]
pub struct KernelMeasurement {
    /// Kernel identifier (`adam_step` / `raster_forward` / `raster_backward`
    /// / `projection`).
    pub name: &'static str,
    /// Rows processed across all timed iterations.
    pub rows: u64,
    /// Measured wall-clock seconds for all timed iterations.
    pub wall_seconds: f64,
    /// Rows processed per wall-clock second.
    pub rows_per_s: f64,
}

impl KernelMeasurement {
    fn json(&self) -> String {
        format!(
            "\"{}\":{{\"rows\":{},\"wall_s\":{:.6},\"rows_per_s\":{:.1}}}",
            self.name, self.rows, self.wall_seconds, self.rows_per_s,
        )
    }
}

/// Complete result of one kernel-benchmark run.
#[derive(Debug, Clone)]
pub struct KernelBench {
    /// The workload label that ran.
    pub label: &'static str,
    /// Host cores detected at run time.
    pub host_cores: usize,
    /// Workers the chunked paths ran with.
    pub compute_threads: usize,
    /// Measurements in `[adam_step, raster_forward, raster_backward,
    /// projection]` order.
    pub kernels: Vec<KernelMeasurement>,
}

/// Kernel names in artefact order.
pub const KERNEL_NAMES: [&str; 4] = [
    "adam_step",
    "raster_forward",
    "raster_backward",
    "projection",
];

impl KernelBench {
    /// The measurement of one kernel by name.
    pub fn kernel(&self, name: &str) -> &KernelMeasurement {
        self.kernels
            .iter()
            .find(|k| k.name == name)
            .unwrap_or_else(|| panic!("no kernel named {name}"))
    }

    /// The `{"adam_step":{...},...}` object embedded as the `kernels`
    /// section of `BENCH_runtime.json`.
    pub fn section_json(&self) -> String {
        let body = self
            .kernels
            .iter()
            .map(KernelMeasurement::json)
            .collect::<Vec<_>>()
            .join(",");
        format!("{{{body}}}")
    }

    /// Serialises the standalone artefact as a single-line JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"bench\":\"kernels\",\"scale\":\"{}\",\"host_cores\":{},\
             \"compute_threads\":{},\"kernels\":{}}}",
            self.label,
            self.host_cores,
            self.compute_threads,
            self.section_json(),
        )
    }
}

/// Builds the packed Adam workload: one work item per Gaussian, parameters
/// from the model, synthetic-but-varied gradients and warm moments, and
/// per-item step counters (sparse updates age rows unevenly, so the lane
/// kernel's per-lane bias corrections are on the measured path).
fn adam_items(model: &GaussianModel) -> Vec<AdamWorkItem> {
    (0..model.len())
        .map(|i| {
            let mut item = AdamWorkItem {
                index: i as u32,
                step: 1 + (i % 7) as u64,
                params: model.param_row(i),
                grad: [0.0; PARAMS_PER_GAUSSIAN],
                m: [0.0; PARAMS_PER_GAUSSIAN],
                v: [0.0; PARAMS_PER_GAUSSIAN],
            };
            for k in 0..PARAMS_PER_GAUSSIAN {
                let x = (i * PARAMS_PER_GAUSSIAN + k) as f32;
                item.grad[k] = 1.0e-3 * (x * 0.37 - 11.0);
                item.m[k] = 1.0e-4 * x;
                item.v[k] = 1.0e-6 * x;
            }
            item
        })
        .collect()
}

fn measurement(name: &'static str, rows: u64, wall_seconds: f64) -> KernelMeasurement {
    KernelMeasurement {
        name,
        rows,
        wall_seconds,
        rows_per_s: if wall_seconds > 0.0 {
            rows as f64 / wall_seconds
        } else {
            0.0
        },
    }
}

fn kernel_scene(scale: &KernelScale) -> (Dataset, GaussianModel) {
    let (dataset, _targets, init) = bench_scene(&WallclockScale {
        label: "kernels",
        scene_gaussians: scale.gaussians * 2,
        model_gaussians: scale.gaussians,
        views: 2,
        width: scale.width,
        height: scale.height,
        batch_size: 1,
        epochs: 1,
        prefetch_window: 0,
        compute_threads: scale.compute_threads,
        devices: 1,
        densify_every: 0,
    });
    (dataset, init)
}

/// Runs the four kernel microbenchmarks at the given scale.
pub fn run_kernel_bench(scale: KernelScale) -> KernelBench {
    let threads = scale.effective_compute_threads();
    let (dataset, model) = kernel_scene(&scale);
    let camera = &dataset.cameras[0];
    let config = AdamConfig::default();

    // adam_step — warm up once (untimed), then time the chunked path over
    // the whole model.  Items are updated in place across iterations, so
    // later steps run on evolved moments rather than replaying step 1.
    let mut items = adam_items(&model);
    compute_packed_chunked(&config, &mut items, threads);
    let start = Instant::now();
    for _ in 0..scale.adam_iters {
        compute_packed_chunked(&config, &mut items, threads);
    }
    let adam = measurement(
        "adam_step",
        (items.len() * scale.adam_iters) as u64,
        start.elapsed().as_secs_f64(),
    );

    // raster_forward — the banded lane-staged forward render; a row is one
    // splat that survived projection (the rows the tile loops walk).
    let options = RenderOptions {
        compute_threads: threads,
        ..Default::default()
    };
    let warm = render(&model, camera, &options);
    let splats = warm.aux.projected_count() as u64;
    let start = Instant::now();
    let mut out = warm;
    for _ in 0..scale.render_iters {
        out = render(&model, camera, &options);
    }
    let forward = measurement(
        "raster_forward",
        splats * scale.render_iters as u64,
        start.elapsed().as_secs_f64(),
    );

    // raster_backward — the banded backward pass over the same aux, driven
    // by a non-uniform image gradient so every band does real work.
    let d_image: Vec<[f32; 3]> = (0..(scale.width * scale.height) as usize)
        .map(|p| {
            let v = 1.0e-3 * ((p % 11) as f32 - 5.0);
            [v, -v, 0.5 * v]
        })
        .collect();
    render_backward(&model, camera, &out.aux, &d_image);
    let start = Instant::now();
    for _ in 0..scale.render_iters {
        render_backward(&model, camera, &out.aux, &d_image);
    }
    let backward = measurement(
        "raster_backward",
        splats * scale.render_iters as u64,
        start.elapsed().as_secs_f64(),
    );

    // projection — per-Gaussian EWA projection of the whole model; a row is
    // one candidate (culled or not: both exercise the kernel).
    for i in 0..model.len() {
        std::hint::black_box(project_gaussian(&model.get(i), i as u32, camera));
    }
    let start = Instant::now();
    for _ in 0..scale.projection_iters {
        for i in 0..model.len() {
            std::hint::black_box(project_gaussian(&model.get(i), i as u32, camera));
        }
    }
    let projection = measurement(
        "projection",
        (model.len() * scale.projection_iters) as u64,
        start.elapsed().as_secs_f64(),
    );

    KernelBench {
        label: scale.label,
        host_cores: detect_host_cores(),
        compute_threads: threads,
        kernels: vec![adam, forward, backward, projection],
    }
}

/// Cheap structural check that a standalone kernel artefact is a plausible
/// single-line JSON object with every per-kernel key.  (Dependency-free, so
/// a shape check rather than a parser — same convention as
/// [`crate::wallclock::looks_like_bench_json`].)
pub fn looks_like_kernel_json(s: &str) -> bool {
    let t = s.trim();
    !t.contains('\n')
        && t.starts_with('{')
        && t.ends_with('}')
        && t.contains("\"bench\":\"kernels\"")
        && t.contains("\"host_cores\":")
        && t.contains("\"kernels\":{")
        && KERNEL_NAMES.iter().all(|name| {
            t.contains(&format!("\"{name}\":{{\"rows\":"))
                && t.contains("\"rows_per_s\":")
                && t.contains("\"wall_s\":")
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_bench_runs_and_serialises() {
        let bench = run_kernel_bench(KernelScale::test());
        assert_eq!(bench.kernels.len(), 4);
        for name in KERNEL_NAMES {
            let k = bench.kernel(name);
            assert!(k.rows > 0, "{name}");
            assert!(k.wall_seconds > 0.0, "{name}");
            assert!(k.rows_per_s > 0.0, "{name}");
        }
        // Row accounting: the Adam step walks every Gaussian each iteration,
        // and both raster passes walk the same surviving-splat rows.
        assert_eq!(bench.kernel("adam_step").rows, 80 * 2);
        assert_eq!(
            bench.kernel("raster_forward").rows,
            bench.kernel("raster_backward").rows
        );
        assert_eq!(bench.kernel("projection").rows, 80 * 2);
        assert_eq!(bench.compute_threads, 2);
        let json = bench.to_json();
        assert!(looks_like_kernel_json(&json), "malformed: {json}");
        // The embeddable section is the `kernels` object of the standalone
        // artefact, byte for byte.
        assert!(json.ends_with(&format!("\"kernels\":{}}}", bench.section_json())));
    }

    #[test]
    fn kernel_json_shape_check_rejects_junk() {
        assert!(!looks_like_kernel_json(""));
        assert!(!looks_like_kernel_json("{\"bench\":\"kernels\"}"));
        assert!(!looks_like_kernel_json("{\"bench\":\"runtime_wallclock\"}"));
        // A section missing one kernel is rejected.
        assert!(!looks_like_kernel_json(
            "{\"bench\":\"kernels\",\"host_cores\":1,\"kernels\":{\
             \"adam_step\":{\"rows\":1,\"wall_s\":0.1,\"rows_per_s\":10.0}}}"
        ));
    }
}
