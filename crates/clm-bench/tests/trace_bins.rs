//! Robustness contract of the trace and chaos binaries: every I/O or decode
//! failure must be a diagnostic on stderr plus a non-zero exit code — never
//! a panic, never a silent success.  Exercised end-to-end against the built
//! binaries (Cargo exposes their paths via `CARGO_BIN_EXE_*`).

use std::path::PathBuf;
use std::process::{Command, Output};

fn run(bin: &str, args: &[&str], dir: &std::path::Path) -> Output {
    Command::new(bin)
        .args(args)
        .current_dir(dir)
        .output()
        .expect("binary spawns")
}

fn assert_clean_failure(out: &Output, what: &str) {
    assert!(
        !out.status.success(),
        "{what}: must exit non-zero, got {:?}\nstdout: {}\nstderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !stderr.trim().is_empty(),
        "{what}: a failure must carry a stderr diagnostic"
    );
    // A panic would print the "thread 'main' panicked" banner; the contract
    // is a clean diagnostic instead.
    assert!(
        !stderr.contains("panicked"),
        "{what}: binary panicked instead of failing cleanly:\n{stderr}"
    );
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clm_trace_bins_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn trace_binaries_fail_cleanly_without_arguments() {
    let dir = scratch_dir("noargs");
    for bin in [
        env!("CARGO_BIN_EXE_trace_replay"),
        env!("CARGO_BIN_EXE_trace_report"),
    ] {
        let out = run(bin, &[], &dir);
        assert_clean_failure(&out, &format!("{bin} with no arguments"));
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("usage:"),
            "missing-path failure should print usage"
        );
    }
}

#[test]
fn trace_binaries_fail_cleanly_on_missing_files() {
    let dir = scratch_dir("missing");
    for bin in [
        env!("CARGO_BIN_EXE_trace_replay"),
        env!("CARGO_BIN_EXE_trace_report"),
    ] {
        let out = run(bin, &["does_not_exist.clmtrace"], &dir);
        assert_clean_failure(&out, &format!("{bin} on a missing file"));
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("cannot read"),
            "I/O failure should name the unreadable path"
        );
    }
}

#[test]
fn trace_binaries_reject_corrupt_and_truncated_input() {
    let dir = scratch_dir("corrupt");

    // Record a real trace so the truncation test corrupts genuine bytes,
    // not a synthetic stand-in.
    let trace_path = dir.join("real.clmtrace");
    let out = run(
        env!("CARGO_BIN_EXE_trace_record"),
        &[
            "--scale",
            "test",
            "--out",
            trace_path.to_str().expect("utf-8 path"),
        ],
        &dir,
    );
    assert!(
        out.status.success(),
        "trace_record must succeed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let bytes = std::fs::read(&trace_path).expect("recorded trace exists");
    assert!(bytes.len() > 64, "recorded trace is implausibly small");

    // Truncated at every interesting depth: inside the magic, inside the
    // header, inside the event stream.
    for cut in [3, 16, bytes.len() / 2] {
        let cut_path = dir.join(format!("cut_{cut}.clmtrace"));
        std::fs::write(&cut_path, &bytes[..cut]).expect("write truncated");
        for bin in [
            env!("CARGO_BIN_EXE_trace_replay"),
            env!("CARGO_BIN_EXE_trace_report"),
        ] {
            let out = run(bin, &[cut_path.to_str().expect("utf-8 path")], &dir);
            assert_clean_failure(&out, &format!("{bin} on a trace truncated at {cut}"));
        }
    }

    // Corrupt magic: right length, wrong container.
    let garbage_path = dir.join("garbage.clmtrace");
    let mut garbage = bytes.clone();
    garbage[0] ^= 0xFF;
    std::fs::write(&garbage_path, &garbage).expect("write corrupt");
    for bin in [
        env!("CARGO_BIN_EXE_trace_replay"),
        env!("CARGO_BIN_EXE_trace_report"),
    ] {
        let out = run(bin, &[garbage_path.to_str().expect("utf-8 path")], &dir);
        assert_clean_failure(&out, &format!("{bin} on a corrupt magic"));
    }

    // Bad knob values fail before any file I/O.
    let out = run(
        env!("CARGO_BIN_EXE_trace_replay"),
        &[trace_path.to_str().expect("utf-8 path"), "--window", "lots"],
        &dir,
    );
    assert_clean_failure(&out, "trace_replay with a non-numeric --window");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_record_rejects_unknown_backend_and_scale() {
    let dir = scratch_dir("record_args");
    let out = run(
        env!("CARGO_BIN_EXE_trace_record"),
        &["--backend", "quantum"],
        &dir,
    );
    assert_clean_failure(&out, "trace_record with an unknown backend");
    let out = run(
        env!("CARGO_BIN_EXE_trace_record"),
        &["--scale", "galactic"],
        &dir,
    );
    assert_clean_failure(&out, "trace_record with an unknown scale");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_bench_fails_cleanly_on_unwritable_outputs() {
    let dir = scratch_dir("chaos_out");
    let out = run(
        env!("CARGO_BIN_EXE_chaos_bench"),
        &["--out", "no_such_dir/bench.json"],
        &dir,
    );
    assert_clean_failure(&out, "chaos_bench with an unwritable --out");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("cannot write"),
        "write failure should name the path"
    );
    std::fs::remove_dir_all(&dir).ok();
}
