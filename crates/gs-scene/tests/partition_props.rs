//! Property tests for the visibility-aware Gaussian partitioner.
//!
//! `partition_by_footprint` feeds the sharded runtime's ownership decisions,
//! so its invariants are load-bearing for the whole multi-device path:
//! every Gaussian must get exactly one owner (a lost or doubly-owned row
//! would corrupt the owner-sharded CPU Adam accounting), the assignment
//! must be deterministic (every shard-count run of a training job — and
//! every densification boundary's repartition — must agree), and the
//! greedy-LPT balance bound must hold for **arbitrary** visibility masks,
//! not just the well-behaved synthetic scenes the unit tests use.  Models
//! here are randomised point clouds: positions scatter in and out of the
//! camera frustums, so each case exercises a different random visibility
//! pattern.

use gs_core::camera::Camera;
use gs_core::gaussian::{Gaussian, GaussianModel};
use gs_core::math::Vec3;
use gs_scene::{
    generate_dataset, partition_by_footprint, projected_footprints, DatasetConfig, SceneKind,
    SceneSpec,
};
use proptest::prelude::*;

/// Deterministic camera rig shared by every case (the randomness lives in
/// the models, which scatter in and out of these frustums).
fn camera_rig() -> Vec<Camera> {
    generate_dataset(&SceneSpec::of(SceneKind::Bicycle), &DatasetConfig::tiny()).cameras
}

/// Builds a model from sampled rows: position, log-size and opacity per
/// Gaussian.  Positions range far enough to leave some Gaussians outside
/// every frustum (zero visibility) and some huge ones near cameras
/// (footprints that hit the per-view pixel clamp).
fn model_from_rows(rows: &[((f32, f32, f32), (f32, f32))]) -> GaussianModel {
    rows.iter()
        .map(|&((x, y, z), (log_sigma, opacity))| {
            Gaussian::isotropic(
                Vec3::new(x, y, z),
                log_sigma.exp(),
                [0.4, 0.5, 0.6],
                opacity,
            )
        })
        .collect()
}

proptest! {
    #[test]
    fn every_row_is_assigned_exactly_once(
        rows in proptest::collection::vec(
            ((-6.0f32..6.0, -4.0f32..4.0, -6.0f32..6.0), (-4.0f32..1.0, 0.05f32..0.95)),
            1..48,
        ),
        devices in 1usize..6,
    ) {
        let model = model_from_rows(&rows);
        let cameras = camera_rig();
        let partition = partition_by_footprint(&model, &cameras, devices);

        prop_assert_eq!(partition.len(), model.len());
        prop_assert_eq!(partition.num_devices(), devices);
        prop_assert_eq!(
            partition.device_counts().iter().sum::<usize>(),
            model.len(),
            "device counts must cover the model exactly"
        );
        // Totality + disjointness: the per-device sets tile the model, and
        // every owner index is in range.
        let mut covered = 0usize;
        for d in 0..devices {
            let set = partition.device_set(d);
            prop_assert_eq!(set.len(), partition.device_counts()[d]);
            for g in set.iter() {
                prop_assert_eq!(partition.owner_of(g), d);
            }
            covered += set.len();
        }
        prop_assert_eq!(covered, model.len());
        prop_assert!(partition.owners().iter().all(|&o| (o as usize) < devices));
    }

    #[test]
    fn assignment_is_deterministic_across_runs(
        rows in proptest::collection::vec(
            ((-6.0f32..6.0, -4.0f32..4.0, -6.0f32..6.0), (-4.0f32..1.0, 0.05f32..0.95)),
            1..40,
        ),
        devices in 1usize..6,
    ) {
        let model = model_from_rows(&rows);
        let cameras = camera_rig();
        let a = partition_by_footprint(&model, &cameras, devices);
        let b = partition_by_footprint(&model, &cameras, devices);
        prop_assert_eq!(a, b, "the partition must be a pure function of its inputs");
    }

    #[test]
    fn imbalance_stays_within_the_greedy_bound(
        rows in proptest::collection::vec(
            ((-6.0f32..6.0, -4.0f32..4.0, -6.0f32..6.0), (-4.0f32..1.0, 0.05f32..0.95)),
            1..48,
        ),
        devices in 2usize..6,
    ) {
        // Greedy least-loaded assignment guarantees max ≤ min + largest
        // item: when the heaviest device received its last Gaussian it was
        // the lightest, so it exceeds today's minimum by at most that
        // Gaussian's load.  This holds for every visibility mask — including
        // all-invisible models (unit floor) and clamped near-camera splats.
        let model = model_from_rows(&rows);
        let cameras = camera_rig();
        let loads = projected_footprints(&model, &cameras);
        let partition = partition_by_footprint(&model, &cameras, devices);

        prop_assert!(loads.iter().all(|&l| l >= 1.0), "unit footprint floor");
        let max_item = loads.iter().cloned().fold(0.0f64, f64::max);
        let max_dev = partition.device_footprints().iter().cloned().fold(0.0f64, f64::max);
        let min_dev = partition
            .device_footprints()
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        prop_assert!(
            max_dev <= min_dev + max_item + 1e-9,
            "greedy bound violated: max {max_dev}, min {min_dev}, largest item {max_item}"
        );
        // With more rows than devices the unit floor keeps every device
        // non-empty, so the max/min ratio is finite and bounded too.
        if model.len() >= devices {
            prop_assert!(partition.device_counts().iter().all(|&c| c > 0));
            prop_assert!(partition.load_imbalance().is_finite());
            prop_assert!(partition.load_imbalance() <= 1.0 + max_item / min_dev + 1e-9);
        }
    }
}
