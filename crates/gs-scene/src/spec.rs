//! Specifications of the five evaluation scenes used in the CLM paper
//! (Tables 2 and 3), together with the scale factors used to reproduce them
//! synthetically at laptop scale.

/// Which of the paper's evaluation scenes a dataset mimics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SceneKind {
    /// Mip-NeRF 360 "Bicycle": a compact yard scene at 4K.
    Bicycle,
    /// Mega-NeRF "Rubble": a large aerial capture at 4K.
    Rubble,
    /// Zip-NeRF "Alameda": a large indoor walkthrough at 2K.
    Alameda,
    /// Ithaca365: a long street drive at 1K.
    Ithaca,
    /// MatrixCity "BigCity": a city-scale aerial capture at 1080p.
    BigCity,
}

impl SceneKind {
    /// All scenes in the order the paper reports them.
    pub const ALL: [SceneKind; 5] = [
        SceneKind::Bicycle,
        SceneKind::Rubble,
        SceneKind::Alameda,
        SceneKind::Ithaca,
        SceneKind::BigCity,
    ];
}

impl std::fmt::Display for SceneKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SceneKind::Bicycle => "Bicycle",
            SceneKind::Rubble => "Rubble",
            SceneKind::Alameda => "Alameda",
            SceneKind::Ithaca => "Ithaca",
            SceneKind::BigCity => "BigCity",
        })
    }
}

/// The camera-trajectory topology of a scene; this is what determines its
/// sparsity distribution and spatial locality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trajectory {
    /// Cameras on a ring orbiting a compact centre (yard scenes).
    Orbit,
    /// Cameras on a regular grid above the scene looking down (aerial).
    AerialGrid,
    /// Cameras walking through connected rooms (indoor).
    IndoorWalk,
    /// Cameras driving along a long corridor (street).
    StreetDrive,
}

/// Full-scale characteristics of one paper scene plus the parameters the
/// synthetic generator needs.
#[derive(Debug, Clone, PartialEq)]
pub struct SceneSpec {
    /// Which scene this is.
    pub kind: SceneKind,
    /// Number of Gaussians the paper reports the scene needs (Table 2).
    pub full_gaussians: u64,
    /// Native image resolution (width, height) used in the paper.
    pub full_resolution: (u32, u32),
    /// Number of training images (Table 3).
    pub full_images: usize,
    /// Training batch size used in the paper (Table 3).
    pub batch_size: usize,
    /// Scene type label from Table 3.
    pub scene_type: &'static str,
    /// Camera-trajectory topology.
    pub trajectory: Trajectory,
    /// World-space extent of the synthetic stand-in (larger extent relative
    /// to the camera frustum volume ⇒ lower sparsity ρ).
    pub extent: f32,
}

impl SceneSpec {
    /// The specification of one paper scene.
    pub fn of(kind: SceneKind) -> Self {
        match kind {
            SceneKind::Bicycle => SceneSpec {
                kind,
                full_gaussians: 9_000_000,
                full_resolution: (3840, 2160),
                full_images: 200,
                batch_size: 4,
                scene_type: "Yard",
                trajectory: Trajectory::Orbit,
                extent: 20.0,
            },
            SceneKind::Rubble => SceneSpec {
                kind,
                full_gaussians: 40_000_000,
                full_resolution: (3840, 2160),
                full_images: 1600,
                batch_size: 8,
                scene_type: "Aerial",
                trajectory: Trajectory::AerialGrid,
                extent: 120.0,
            },
            SceneKind::Alameda => SceneSpec {
                kind,
                full_gaussians: 45_000_000,
                full_resolution: (2048, 1152),
                full_images: 1700,
                batch_size: 8,
                scene_type: "Indoor",
                trajectory: Trajectory::IndoorWalk,
                extent: 160.0,
            },
            SceneKind::Ithaca => SceneSpec {
                kind,
                full_gaussians: 70_000_000,
                full_resolution: (1024, 576),
                full_images: 8200,
                batch_size: 16,
                scene_type: "Street",
                trajectory: Trajectory::StreetDrive,
                extent: 400.0,
            },
            SceneKind::BigCity => SceneSpec {
                kind,
                full_gaussians: 100_000_000,
                full_resolution: (1920, 1080),
                full_images: 60000,
                batch_size: 64,
                scene_type: "Aerial",
                trajectory: Trajectory::AerialGrid,
                extent: 900.0,
            },
        }
    }

    /// Specifications of all five scenes.
    pub fn all() -> Vec<SceneSpec> {
        SceneKind::ALL.iter().map(|&k| SceneSpec::of(k)).collect()
    }

    /// Estimated full-scale training memory demand in bytes
    /// (model state only), reproducing Table 2's "Memory Demand" column.
    pub fn full_memory_demand_bytes(&self) -> u64 {
        self.full_gaussians * gs_core::training_bytes_per_gaussian() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_five_scenes_are_specified() {
        let specs = SceneSpec::all();
        assert_eq!(specs.len(), 5);
        // Gaussians counts grow from Bicycle to BigCity, as in Table 2.
        for w in specs.windows(2) {
            assert!(w[0].full_gaussians <= w[1].full_gaussians);
        }
        assert_eq!(specs[0].kind, SceneKind::Bicycle);
        assert_eq!(specs[4].kind, SceneKind::BigCity);
    }

    #[test]
    fn memory_demand_matches_table2_order_of_magnitude() {
        // Table 2: Bicycle ~10 GB, BigCity ~110 GB.  Our estimate only counts
        // model state (the dominant term), so it should land in the right
        // range: several GB for Bicycle, ~100 GB for BigCity.
        let bicycle = SceneSpec::of(SceneKind::Bicycle).full_memory_demand_bytes() as f64 / 1e9;
        let bigcity = SceneSpec::of(SceneKind::BigCity).full_memory_demand_bytes() as f64 / 1e9;
        assert!(bicycle > 5.0 && bicycle < 12.0, "bicycle {bicycle} GB");
        assert!(bigcity > 80.0 && bigcity < 120.0, "bigcity {bigcity} GB");
    }

    #[test]
    fn batch_sizes_match_table3() {
        assert_eq!(SceneSpec::of(SceneKind::Bicycle).batch_size, 4);
        assert_eq!(SceneSpec::of(SceneKind::Rubble).batch_size, 8);
        assert_eq!(SceneSpec::of(SceneKind::Alameda).batch_size, 8);
        assert_eq!(SceneSpec::of(SceneKind::Ithaca).batch_size, 16);
        assert_eq!(SceneSpec::of(SceneKind::BigCity).batch_size, 64);
    }

    #[test]
    fn display_names() {
        assert_eq!(SceneKind::BigCity.to_string(), "BigCity");
        assert_eq!(SceneKind::Ithaca.to_string(), "Ithaca");
    }
}
