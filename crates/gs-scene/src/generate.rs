//! Synthetic dataset generation.
//!
//! The paper's datasets (multi-gigabyte captured image sets) are not
//! available in this environment, so each scene is replaced by a synthetic
//! stand-in that reproduces the *structure* CLM's behaviour depends on: how
//! many Gaussians there are relative to the camera frustum volume (sparsity
//! ρ), how views cluster spatially (locality), the camera trajectory
//! topology and the image resolution.  The ground truth for training is the
//! generated Gaussian model itself, rendered with the same renderer the
//! trainer uses — a standard "self-reconstruction" setup that exercises the
//! full training pipeline end to end.

use crate::spec::{SceneSpec, Trajectory};
use gs_core::camera::{Camera, CameraIntrinsics};
use gs_core::gaussian::{Gaussian, GaussianModel};
use gs_core::math::Vec3;
use gs_core::visibility::VisibilitySet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Size parameters for a synthetic dataset (the reduced-scale counterpart of
/// the paper's full-scale numbers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetConfig {
    /// Number of ground-truth Gaussians to generate.
    pub num_gaussians: usize,
    /// Number of training views.
    pub num_views: usize,
    /// Rendered image width in pixels.
    pub width: u32,
    /// Rendered image height in pixels.
    pub height: u32,
    /// RNG seed so datasets are reproducible.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            num_gaussians: 2_000,
            num_views: 32,
            width: 64,
            height: 48,
            seed: 7,
        }
    }
}

impl DatasetConfig {
    /// A very small configuration for fast unit tests.
    pub fn tiny() -> Self {
        DatasetConfig {
            num_gaussians: 300,
            num_views: 12,
            width: 32,
            height: 24,
            seed: 11,
        }
    }
}

/// A synthetic posed-image dataset: the ground-truth scene model plus the
/// training cameras.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The scene this dataset mimics.
    pub spec: SceneSpec,
    /// Generation parameters.
    pub config: DatasetConfig,
    /// Ground-truth Gaussians (what training tries to reconstruct).
    pub ground_truth: GaussianModel,
    /// Training cameras, in trajectory order.
    pub cameras: Vec<Camera>,
}

impl Dataset {
    /// Number of training views.
    pub fn num_views(&self) -> usize {
        self.cameras.len()
    }

    /// Computes the visibility set of every view against `model`.
    pub fn visibility_sets(&self, model: &GaussianModel) -> Vec<VisibilitySet> {
        self.cameras
            .iter()
            .map(|cam| gs_core::cull_frustum(model, cam))
            .collect()
    }

    /// Per-view sparsity ρ_i against the ground-truth model (Figure 5).
    pub fn sparsity_profile(&self) -> Vec<f64> {
        self.cameras
            .iter()
            .map(|cam| gs_core::culling::sparsity(&self.ground_truth, cam))
            .collect()
    }

    /// The scale factor between this synthetic dataset and the paper's
    /// full-size scene (in Gaussian count).
    pub fn gaussian_scale_factor(&self) -> f64 {
        self.config.num_gaussians as f64 / self.spec.full_gaussians as f64
    }
}

/// Generates a synthetic dataset for `spec` at the size given by `config`.
///
/// # Panics
/// Panics if `config` requests zero Gaussians or zero views.
pub fn generate_dataset(spec: &SceneSpec, config: &DatasetConfig) -> Dataset {
    assert!(config.num_gaussians > 0, "need at least one gaussian");
    assert!(config.num_views > 0, "need at least one view");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let ground_truth = generate_gaussians(spec, config.num_gaussians, &mut rng);
    let cameras = generate_cameras(spec, config, &mut rng);
    Dataset {
        spec: spec.clone(),
        config: *config,
        ground_truth,
        cameras,
    }
}

fn random_color(rng: &mut StdRng) -> [f32; 3] {
    [
        rng.gen_range(0.05..0.95),
        rng.gen_range(0.05..0.95),
        rng.gen_range(0.05..0.95),
    ]
}

fn generate_gaussians(spec: &SceneSpec, count: usize, rng: &mut StdRng) -> GaussianModel {
    let e = spec.extent;
    let sigma = (e / (count as f32).cbrt()) * 0.18 + 0.02;
    let mut model = GaussianModel::with_capacity(count);
    for _ in 0..count {
        let position = match spec.trajectory {
            Trajectory::Orbit => {
                // A compact object cluster plus scattered ground points.
                if rng.gen_bool(0.6) {
                    Vec3::new(
                        rng.gen_range(-e * 0.15..e * 0.15),
                        rng.gen_range(-e * 0.1..e * 0.15),
                        rng.gen_range(-e * 0.15..e * 0.15),
                    )
                } else {
                    Vec3::new(
                        rng.gen_range(-e * 0.5..e * 0.5),
                        rng.gen_range(-e * 0.12..0.0),
                        rng.gen_range(-e * 0.5..e * 0.5),
                    )
                }
            }
            Trajectory::AerialGrid => {
                // Ground plane with building-like height clusters.
                let x = rng.gen_range(-e * 0.5..e * 0.5);
                let z = rng.gen_range(-e * 0.5..e * 0.5);
                let height = if rng.gen_bool(0.3) {
                    rng.gen_range(0.0..e * 0.05)
                } else {
                    rng.gen_range(0.0..e * 0.01)
                };
                Vec3::new(x, height, z)
            }
            Trajectory::IndoorWalk => {
                // Rooms strung along the x axis.
                let room = rng.gen_range(0..8) as f32;
                let room_center = -e * 0.5 + (room + 0.5) * e / 8.0;
                Vec3::new(
                    room_center + rng.gen_range(-e * 0.055..e * 0.055),
                    rng.gen_range(0.0..e * 0.03),
                    rng.gen_range(-e * 0.08..e * 0.08),
                )
            }
            Trajectory::StreetDrive => {
                // A long corridor along x with facades on both sides.
                Vec3::new(
                    rng.gen_range(-e * 0.5..e * 0.5),
                    rng.gen_range(0.0..e * 0.02),
                    rng.gen_range(-e * 0.03..e * 0.03),
                )
            }
        };
        let mut g = Gaussian::isotropic(
            position,
            sigma * rng.gen_range(0.5..1.8),
            random_color(rng),
            rng.gen_range(0.4..0.95),
        );
        // Mild anisotropy so covariance gradients are exercised.
        g.log_scale.x += rng.gen_range(-0.4..0.4);
        g.log_scale.z += rng.gen_range(-0.4..0.4);
        model.push(g);
    }
    model
}

fn generate_cameras(spec: &SceneSpec, config: &DatasetConfig, rng: &mut StdRng) -> Vec<Camera> {
    let e = spec.extent;
    let intrinsics = CameraIntrinsics::simple(config.width, config.height, 70.0_f32.to_radians());
    // Effective visibility range per trajectory type.  Indoor and street
    // captures are occlusion-limited (walls, facades) so a view only
    // reaches a short way down the corridor; this is what makes the real
    // Alameda / Ithaca datasets so sparse (Figure 5).
    let far_factor = match spec.trajectory {
        Trajectory::Orbit | Trajectory::AerialGrid => 2.0,
        Trajectory::IndoorWalk => 0.15,
        Trajectory::StreetDrive => 0.12,
    };
    let far = e * far_factor;
    let mut cameras = Vec::with_capacity(config.num_views);
    for i in 0..config.num_views {
        let t = i as f32 / config.num_views as f32;
        let camera = match spec.trajectory {
            Trajectory::Orbit => {
                let angle = t * std::f32::consts::TAU;
                let radius = e * 0.35;
                let eye = Vec3::new(
                    radius * angle.cos(),
                    e * 0.08 + rng.gen_range(-0.02..0.02) * e,
                    radius * angle.sin(),
                );
                Camera::look_at(eye, Vec3::ZERO, Vec3::Y, intrinsics)
            }
            Trajectory::AerialGrid => {
                // Boustrophedon (lawn-mower) grid over the scene.  The
                // flight altitude is capped so that city-scale captures see
                // a much smaller fraction of the scene than smaller aerial
                // captures, as in the real datasets.
                let cols = (config.num_views as f32).sqrt().ceil() as usize;
                let row = i / cols;
                let col = if row.is_multiple_of(2) {
                    i % cols
                } else {
                    cols - 1 - (i % cols)
                };
                let x = -e * 0.45 + (col as f32 + 0.5) * e * 0.9 / cols as f32;
                let z = -e * 0.45 + (row as f32 + 0.5) * e * 0.9 / cols as f32;
                let altitude = (e * 0.10).min(35.0);
                let eye = Vec3::new(x, altitude, z);
                let target = Vec3::new(x + rng.gen_range(-0.02..0.02) * e, 0.0, z + e * 0.04);
                Camera::look_at(eye, target, Vec3::Y, intrinsics)
            }
            Trajectory::IndoorWalk => {
                let x = -e * 0.45 + t * e * 0.9;
                let eye = Vec3::new(x, e * 0.012, rng.gen_range(-0.01..0.01) * e);
                // Look ahead, alternating a little to the sides.
                let side = if i % 3 == 0 { e * 0.05 } else { -e * 0.03 };
                let target = Vec3::new(x + e * 0.08, e * 0.012, side);
                Camera::look_at(eye, target, Vec3::Y, intrinsics)
            }
            Trajectory::StreetDrive => {
                let x = -e * 0.48 + t * e * 0.96;
                let eye = Vec3::new(x, e * 0.006, 0.0);
                let target = Vec3::new(x + e * 0.05, e * 0.005, 0.0);
                Camera::look_at(eye, target, Vec3::Y, intrinsics)
            }
        };
        cameras.push(camera.with_clip(0.05, far));
    }
    cameras
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SceneKind;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = SceneSpec::of(SceneKind::Bicycle);
        let cfg = DatasetConfig::tiny();
        let a = generate_dataset(&spec, &cfg);
        let b = generate_dataset(&spec, &cfg);
        assert_eq!(a.ground_truth, b.ground_truth);
        assert_eq!(a.cameras.len(), b.cameras.len());
        let different = generate_dataset(&spec, &DatasetConfig { seed: 99, ..cfg });
        assert_ne!(a.ground_truth, different.ground_truth);
    }

    #[test]
    fn dataset_has_requested_size() {
        let spec = SceneSpec::of(SceneKind::Rubble);
        let cfg = DatasetConfig {
            num_gaussians: 500,
            num_views: 20,
            width: 40,
            height: 30,
            seed: 3,
        };
        let ds = generate_dataset(&spec, &cfg);
        assert_eq!(ds.ground_truth.len(), 500);
        assert_eq!(ds.num_views(), 20);
        assert_eq!(ds.cameras[0].intrinsics.width, 40);
        assert!(ds.gaussian_scale_factor() < 1e-4);
    }

    #[test]
    fn every_view_sees_at_least_one_gaussian() {
        for kind in SceneKind::ALL {
            let spec = SceneSpec::of(kind);
            let ds = generate_dataset(&spec, &DatasetConfig::tiny());
            let sets = ds.visibility_sets(&ds.ground_truth);
            for (i, set) in sets.iter().enumerate() {
                assert!(
                    !set.is_empty(),
                    "{kind}: view {i} sees nothing — generator produced a useless view"
                );
            }
        }
    }

    #[test]
    fn larger_scenes_are_sparser() {
        // Figure 5's key property: the city-scale aerial scene has much
        // lower per-view sparsity than the compact yard scene.
        let cfg = DatasetConfig {
            num_gaussians: 3000,
            num_views: 24,
            width: 32,
            height: 24,
            seed: 5,
        };
        let mean = |kind: SceneKind| {
            let ds = generate_dataset(&SceneSpec::of(kind), &cfg);
            let profile = ds.sparsity_profile();
            profile.iter().sum::<f64>() / profile.len() as f64
        };
        let bicycle = mean(SceneKind::Bicycle);
        let bigcity = mean(SceneKind::BigCity);
        assert!(
            bicycle > 2.0 * bigcity,
            "expected Bicycle (rho={bicycle:.3}) to be much denser than BigCity (rho={bigcity:.3})"
        );
    }

    #[test]
    fn consecutive_views_share_gaussians() {
        // Spatial locality (§3): adjacent views on the trajectory must have
        // overlapping visibility sets, otherwise caching and TSP ordering
        // would be pointless.
        for kind in [SceneKind::Rubble, SceneKind::Ithaca, SceneKind::Alameda] {
            let ds = generate_dataset(&SceneSpec::of(kind), &DatasetConfig::default());
            let sets = ds.visibility_sets(&ds.ground_truth);
            let mut overlaps = 0usize;
            let mut pairs = 0usize;
            for w in sets.windows(2) {
                if !w[0].is_empty() && !w[1].is_empty() {
                    pairs += 1;
                    if w[0].intersection_len(&w[1]) > 0 {
                        overlaps += 1;
                    }
                }
            }
            assert!(
                overlaps as f64 >= 0.5 * pairs as f64,
                "{kind}: only {overlaps}/{pairs} consecutive view pairs overlap"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one gaussian")]
    fn zero_gaussians_rejected() {
        let spec = SceneSpec::of(SceneKind::Bicycle);
        let _ = generate_dataset(
            &spec,
            &DatasetConfig {
                num_gaussians: 0,
                ..DatasetConfig::tiny()
            },
        );
    }
}
