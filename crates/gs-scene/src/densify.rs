//! Adaptive densification and pruning (§2.1).
//!
//! 3DGS periodically clones / splits Gaussians in regions with large
//! reconstruction error (approximated by large positional gradients) and
//! prunes Gaussians whose opacity has collapsed.  CLM inherits this
//! mechanism unchanged; it matters to the reproduction because it is the
//! reason model size — and therefore memory demand — grows during training,
//! and because the resulting allocation churn drives the fragmentation
//! behaviour discussed in Appendix A.3.

use gs_core::gaussian::GaussianModel;
use gs_core::math::Vec3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Densification / pruning thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DensifyConfig {
    /// Positional-gradient norm above which a Gaussian is densified.
    pub grad_threshold: f32,
    /// Scale (world units) above which a densified Gaussian is split rather
    /// than cloned.
    pub split_scale_threshold: f32,
    /// Opacity below which a Gaussian is pruned.
    pub prune_opacity: f32,
    /// Hard cap on the model size after densification (0 = unlimited).
    pub max_gaussians: usize,
    /// RNG seed for split-offset sampling.
    pub seed: u64,
}

impl Default for DensifyConfig {
    fn default() -> Self {
        DensifyConfig {
            grad_threshold: 2.0e-4,
            split_scale_threshold: 0.05,
            prune_opacity: 0.01,
            max_gaussians: 0,
            seed: 17,
        }
    }
}

/// What one densification pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DensifyReport {
    /// Gaussians cloned (small, high-gradient).
    pub cloned: usize,
    /// Gaussians split in two (large, high-gradient).
    pub split: usize,
    /// Gaussians removed because their opacity collapsed.
    pub pruned: usize,
}

impl DensifyReport {
    /// Net change in model size.
    pub fn net_growth(&self) -> isize {
        (self.cloned + self.split) as isize - self.pruned as isize
    }
}

/// Factor a split shrinks both resulting Gaussians by (~60% of the original
/// size, as in the reference implementation).
const SPLIT_SHRINK: f32 = 0.6;

/// One planned densification action.  `source` is a **post-prune** row index;
/// every action appends exactly one new row to the model.
#[derive(Debug, Clone, PartialEq)]
pub enum ResizeAction {
    /// Append an exact copy of the source row (small, high-gradient
    /// Gaussian); optimisation separates the copies later.
    Clone {
        /// Post-prune index of the cloned Gaussian.
        source: u32,
    },
    /// Shrink the source row in place and append a sibling displaced by
    /// `offset` (large, high-gradient Gaussian).
    Split {
        /// Post-prune index of the split Gaussian.
        source: u32,
        /// World-space displacement of the appended sibling.
        offset: Vec3,
    },
}

impl ResizeAction {
    /// The post-prune row index the action reads (and, for a split,
    /// rewrites).
    pub fn source(&self) -> u32 {
        match self {
            ResizeAction::Clone { source } | ResizeAction::Split { source, .. } => *source,
        }
    }
}

/// A fully planned model resize: the prune set, the densification actions
/// and their deterministic application order.
///
/// The event is what a training runtime hands around at a densification
/// boundary: [`plan_resize`] computes it **without touching the model**, so
/// every execution backend (synchronous, pipelined, threaded, sharded) can
/// drain its in-flight lanes, apply the identical row edits via
/// [`apply_resize`], and resize its aligned per-row state (optimiser
/// moments, offloaded attribute rows, gradient-norm accumulators) through
/// [`remap_rows`](Self::remap_rows) — keeping the training trajectory
/// bit-identical across backends.
///
/// Ordering is canonical by construction: `pruned` is ascending, actions are
/// emitted in ascending source order, and each action appends exactly one
/// row, so the post-resize row numbering is a pure function of the event.
#[derive(Debug, Clone, PartialEq)]
pub struct ResizeEvent {
    /// Model size the event was planned against.
    pub old_len: usize,
    /// Sorted, deduplicated **pre-resize** indices removed by the prune
    /// phase.
    pub pruned: Vec<u32>,
    /// Densification actions in application (= append) order; sources are
    /// post-prune indices, strictly ascending.
    pub actions: Vec<ResizeAction>,
}

impl ResizeEvent {
    /// Model size after the event is applied.
    pub fn new_len(&self) -> usize {
        self.old_len - self.pruned.len() + self.actions.len()
    }

    /// Net change in model size.
    pub fn net_growth(&self) -> isize {
        self.actions.len() as isize - self.pruned.len() as isize
    }

    /// Whether applying the event would change nothing.
    pub fn is_noop(&self) -> bool {
        self.pruned.is_empty() && self.actions.is_empty()
    }

    /// Rows the event touches (pruned + appended + split-shrunk sources) —
    /// the work a runtime's resize step is costed on.
    pub fn rows_changed(&self) -> usize {
        self.pruned.len()
            + self.actions.len()
            + self
                .actions
                .iter()
                .filter(|a| matches!(a, ResizeAction::Split { .. }))
                .count()
    }

    /// Post-prune indices whose rows a split rewrites in place (ascending).
    pub fn split_sources(&self) -> Vec<u32> {
        self.actions
            .iter()
            .filter_map(|a| match a {
                ResizeAction::Split { source, .. } => Some(*source),
                ResizeAction::Clone { .. } => None,
            })
            .collect()
    }

    /// The counts of what the event does, in [`DensifyReport`] form.
    pub fn report(&self) -> DensifyReport {
        DensifyReport {
            cloned: self
                .actions
                .iter()
                .filter(|a| matches!(a, ResizeAction::Clone { .. }))
                .count(),
            split: self.split_sources().len(),
            pruned: self.pruned.len(),
        }
    }

    /// Remaps a per-row state vector aligned with the **pre-resize** model:
    /// pruned rows are removed order-preserving, and one `default` row is
    /// appended per densification action — the renumbering an aligned store
    /// must follow when it keeps survivor values across a resize.  (The
    /// optimiser applies the same rule internally via
    /// [`remove_rows_in_place`]; stores that *reset* at a boundary, like
    /// the trainer's gradient-norm accumulator, just re-zero instead.)
    ///
    /// # Panics
    /// Panics if `rows` does not match the planned `old_len`.
    pub fn remap_rows<T: Clone>(&self, rows: &mut Vec<T>, default: T) {
        assert_eq!(rows.len(), self.old_len, "rows not aligned with the plan");
        remove_rows_in_place(rows, &self.pruned);
        rows.resize(self.new_len(), default);
    }
}

/// Removes the rows at the given sorted indices from `rows` in place,
/// preserving the relative order of the survivors.
pub fn remove_rows_in_place<T>(rows: &mut Vec<T>, pruned: &[u32]) {
    if pruned.is_empty() {
        return;
    }
    let mut remove = vec![false; rows.len()];
    for &i in pruned {
        remove[i as usize] = true;
    }
    let mut flags = remove.iter();
    rows.retain(|_| !*flags.next().unwrap());
}

/// Plans one densify-and-prune pass over `model` without mutating it.
///
/// `position_grad_norms` must hold one accumulated positional-gradient norm
/// per Gaussian (the densification criterion used by the reference
/// implementation).  Planning is deterministic: the same model, norms and
/// config always produce the same event (split offsets come from the
/// config's seed).
///
/// # Panics
/// Panics if `position_grad_norms.len() != model.len()`.
pub fn plan_resize(
    model: &GaussianModel,
    position_grad_norms: &[f32],
    config: &DensifyConfig,
) -> ResizeEvent {
    assert_eq!(
        position_grad_norms.len(),
        model.len(),
        "need one gradient norm per gaussian"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);

    // 1. Prune low-opacity Gaussians first.
    let pruned: Vec<u32> = (0..model.len())
        .filter(|&i| model.get(i).opacity() < config.prune_opacity)
        .map(|i| i as u32)
        .collect();
    let survivors: Vec<u32> = (0..model.len() as u32)
        .filter(|i| pruned.binary_search(i).is_err())
        .collect();

    // 2. Densify high-gradient survivors, bounded by the size cap.  The
    //    loop visits survivors in ascending order and draws split offsets in
    //    that order, so the plan (and its RNG stream) is canonical.
    let budget = if config.max_gaussians == 0 {
        usize::MAX
    } else {
        config.max_gaussians.saturating_sub(survivors.len())
    };
    let mut actions = Vec::new();
    for (post_idx, &pre_idx) in survivors.iter().enumerate() {
        if actions.len() >= budget {
            break;
        }
        if position_grad_norms[pre_idx as usize] <= config.grad_threshold {
            continue;
        }
        let g = model.get(pre_idx as usize);
        let max_scale = g.scale().max_component();
        if max_scale > config.split_scale_threshold {
            let offset = Vec3::new(
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            )
            .normalized()
                * max_scale
                * 0.5;
            actions.push(ResizeAction::Split {
                source: post_idx as u32,
                offset,
            });
        } else {
            actions.push(ResizeAction::Clone {
                source: post_idx as u32,
            });
        }
    }

    ResizeEvent {
        old_len: model.len(),
        pruned,
        actions,
    }
}

/// Applies a planned [`ResizeEvent`] to `model`: prunes, then executes the
/// densification actions in order.  Pruning never reorders surviving rows,
/// and appended rows land in action order, so two models resized by the same
/// event stay row-for-row identical.
///
/// # Panics
/// Panics if the event was planned against a different model size.
pub fn apply_resize(model: &mut GaussianModel, event: &ResizeEvent) -> DensifyReport {
    assert_eq!(
        model.len(),
        event.old_len,
        "resize event planned against a different model size"
    );
    model.remove_indices(&event.pruned);
    for action in &event.actions {
        match action {
            ResizeAction::Clone { source } => {
                model.push(model.get(*source as usize));
            }
            ResizeAction::Split { source, offset } => {
                let mut shrunk = model.get(*source as usize);
                shrunk.log_scale += Vec3::splat(SPLIT_SHRINK.ln());
                let mut sibling = shrunk.clone();
                sibling.position += *offset;
                model.set(*source as usize, shrunk);
                model.push(sibling);
            }
        }
    }
    debug_assert_eq!(model.len(), event.new_len());
    event.report()
}

/// Runs one densify-and-prune pass over `model`: [`plan_resize`] followed by
/// [`apply_resize`].
///
/// `position_grad_norms` must hold one accumulated positional-gradient norm
/// per Gaussian (the densification criterion used by the reference
/// implementation).
///
/// # Panics
/// Panics if `position_grad_norms.len() != model.len()`.
pub fn densify_and_prune(
    model: &mut GaussianModel,
    position_grad_norms: &[f32],
    config: &DensifyConfig,
) -> DensifyReport {
    let event = plan_resize(model, position_grad_norms, config);
    apply_resize(model, &event)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_core::gaussian::Gaussian;

    fn model_with(scales: &[f32], opacities: &[f32]) -> GaussianModel {
        scales
            .iter()
            .zip(opacities)
            .enumerate()
            .map(|(i, (&s, &o))| Gaussian::isotropic(Vec3::new(i as f32, 0.0, 0.0), s, [0.5; 3], o))
            .collect()
    }

    #[test]
    fn high_gradient_small_gaussian_is_cloned() {
        let mut model = model_with(&[0.01], &[0.8]);
        let report = densify_and_prune(&mut model, &[1.0], &DensifyConfig::default());
        assert_eq!(report.cloned, 1);
        assert_eq!(report.split, 0);
        assert_eq!(model.len(), 2);
    }

    #[test]
    fn high_gradient_large_gaussian_is_split_and_shrunk() {
        let mut model = model_with(&[0.5], &[0.8]);
        let original_scale = model.get(0).scale().max_component();
        let report = densify_and_prune(&mut model, &[1.0], &DensifyConfig::default());
        assert_eq!(report.split, 1);
        assert_eq!(model.len(), 2);
        assert!(model.get(0).scale().max_component() < original_scale);
        assert!(model.get(1).scale().max_component() < original_scale);
        assert_ne!(model.get(0).position, model.get(1).position);
    }

    #[test]
    fn low_gradient_gaussians_are_left_alone() {
        let mut model = model_with(&[0.01, 0.5], &[0.8, 0.8]);
        let report = densify_and_prune(&mut model, &[0.0, 0.0], &DensifyConfig::default());
        assert_eq!(report, DensifyReport::default());
        assert_eq!(model.len(), 2);
    }

    #[test]
    fn transparent_gaussians_are_pruned() {
        let mut model = model_with(&[0.01, 0.01, 0.01], &[0.8, 0.001, 0.8]);
        let report = densify_and_prune(&mut model, &[0.0, 0.0, 0.0], &DensifyConfig::default());
        assert_eq!(report.pruned, 1);
        assert_eq!(model.len(), 2);
        assert_eq!(report.net_growth(), -1);
    }

    #[test]
    fn max_gaussians_caps_growth() {
        let mut model = model_with(&[0.01; 5], &[0.8; 5]);
        let config = DensifyConfig {
            max_gaussians: 7,
            ..Default::default()
        };
        let report = densify_and_prune(&mut model, &[1.0; 5], &config);
        assert_eq!(model.len(), 7);
        assert_eq!(report.cloned + report.split, 2);
    }

    #[test]
    #[should_panic(expected = "one gradient norm per gaussian")]
    fn mismatched_norms_panic() {
        let mut model = model_with(&[0.01], &[0.8]);
        let _ = densify_and_prune(&mut model, &[1.0, 2.0], &DensifyConfig::default());
    }

    /// A model whose rows are distinguishable by position, with a mix of
    /// prunable (transparent), clonable (small + high-grad) and splittable
    /// (large + high-grad) Gaussians.
    fn mixed_model() -> (GaussianModel, Vec<f32>) {
        let scales = [0.01, 0.5, 0.01, 0.02, 0.6, 0.01, 0.03, 0.01];
        let opacities = [0.8, 0.001, 0.7, 0.002, 0.9, 0.6, 0.001, 0.5];
        let norms = vec![1.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0];
        (model_with(&scales, &opacities), norms)
    }

    #[test]
    fn plan_and_apply_reproduce_densify_and_prune_exactly() {
        // The plan/apply split is a pure refactor of the one-shot pass: the
        // same model, norms and seed must produce bit-identical results
        // through both paths.
        let (reference_model, norms) = mixed_model();
        let config = DensifyConfig {
            max_gaussians: 10,
            ..Default::default()
        };

        let mut one_shot = reference_model.clone();
        let report_one_shot = densify_and_prune(&mut one_shot, &norms, &config);

        let mut planned = reference_model.clone();
        let event = plan_resize(&planned, &norms, &config);
        let report_planned = apply_resize(&mut planned, &event);

        assert_eq!(one_shot, planned);
        assert_eq!(report_one_shot, report_planned);
        assert_eq!(event.new_len(), planned.len());
        assert_eq!(event.old_len, reference_model.len());
    }

    #[test]
    fn planning_is_deterministic_and_does_not_touch_the_model() {
        let (model, norms) = mixed_model();
        let before = model.clone();
        let config = DensifyConfig::default();
        let a = plan_resize(&model, &norms, &config);
        let b = plan_resize(&model, &norms, &config);
        assert_eq!(a, b, "same inputs must plan the same event");
        assert_eq!(model, before, "planning is read-only");
        // Canonical ordering: ascending prune set, ascending action sources.
        assert!(a.pruned.windows(2).all(|w| w[0] < w[1]));
        assert!(a.actions.windows(2).all(|w| w[0].source() < w[1].source()));
    }

    #[test]
    fn pruning_never_reorders_surviving_rows() {
        // Row-index stability: every surviving pre-resize row keeps its
        // relative order (and, minus split shrinks, its contents) in the
        // post-resize model — the invariant all aligned per-row state
        // (optimiser moments, offloaded rows) relies on.
        let (model, norms) = mixed_model();
        let config = DensifyConfig::default();
        let event = plan_resize(&model, &norms, &config);
        assert!(!event.pruned.is_empty(), "scenario must exercise pruning");

        let mut resized = model.clone();
        apply_resize(&mut resized, &event);

        let survivors: Vec<u32> = (0..model.len() as u32)
            .filter(|i| !event.pruned.contains(i))
            .collect();
        let split_sources = event.split_sources();
        for (post, &pre) in survivors.iter().enumerate() {
            let original = model.get(pre as usize);
            let now = resized.get(post);
            assert_eq!(
                now.position, original.position,
                "survivor {pre} moved to a different row"
            );
            if !split_sources.contains(&(post as u32)) {
                assert_eq!(now, original, "non-split survivor {pre} changed");
            }
        }
    }

    #[test]
    fn net_growth_matches_param_row_count_delta() {
        let (mut model, norms) = mixed_model();
        let before_rows = model.len();
        let config = DensifyConfig {
            max_gaussians: 9,
            ..Default::default()
        };
        let event = plan_resize(&model, &norms, &config);
        let report = apply_resize(&mut model, &event);
        assert_eq!(
            report.net_growth(),
            model.len() as isize - before_rows as isize,
            "net_growth must equal the param_row count delta"
        );
        assert_eq!(report.net_growth(), event.net_growth());
        assert_eq!(event.new_len(), model.len());
    }

    #[test]
    fn remap_rows_follows_the_model_renumbering() {
        let (model, norms) = mixed_model();
        let config = DensifyConfig::default();
        let event = plan_resize(&model, &norms, &config);
        // State vector tagged with each row's pre-resize index.
        let mut state: Vec<i64> = (0..model.len() as i64).collect();
        event.remap_rows(&mut state, -1);
        assert_eq!(state.len(), event.new_len());
        let survivors: Vec<i64> = (0..model.len() as i64)
            .filter(|i| !event.pruned.contains(&(*i as u32)))
            .collect();
        assert_eq!(&state[..survivors.len()], &survivors[..]);
        assert!(state[survivors.len()..].iter().all(|&s| s == -1));
    }

    #[test]
    fn noop_event_round_trips() {
        let (model, _) = mixed_model();
        let norms = vec![0.0; model.len()];
        let config = DensifyConfig {
            prune_opacity: 0.0,
            ..Default::default()
        };
        let event = plan_resize(&model, &norms, &config);
        assert!(event.is_noop());
        assert_eq!(event.rows_changed(), 0);
        let mut copy = model.clone();
        apply_resize(&mut copy, &event);
        assert_eq!(copy, model);
    }
}
