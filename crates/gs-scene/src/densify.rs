//! Adaptive densification and pruning (§2.1).
//!
//! 3DGS periodically clones / splits Gaussians in regions with large
//! reconstruction error (approximated by large positional gradients) and
//! prunes Gaussians whose opacity has collapsed.  CLM inherits this
//! mechanism unchanged; it matters to the reproduction because it is the
//! reason model size — and therefore memory demand — grows during training,
//! and because the resulting allocation churn drives the fragmentation
//! behaviour discussed in Appendix A.3.

use gs_core::gaussian::GaussianModel;
use gs_core::math::Vec3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Densification / pruning thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DensifyConfig {
    /// Positional-gradient norm above which a Gaussian is densified.
    pub grad_threshold: f32,
    /// Scale (world units) above which a densified Gaussian is split rather
    /// than cloned.
    pub split_scale_threshold: f32,
    /// Opacity below which a Gaussian is pruned.
    pub prune_opacity: f32,
    /// Hard cap on the model size after densification (0 = unlimited).
    pub max_gaussians: usize,
    /// RNG seed for split-offset sampling.
    pub seed: u64,
}

impl Default for DensifyConfig {
    fn default() -> Self {
        DensifyConfig {
            grad_threshold: 2.0e-4,
            split_scale_threshold: 0.05,
            prune_opacity: 0.01,
            max_gaussians: 0,
            seed: 17,
        }
    }
}

/// What one densification pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DensifyReport {
    /// Gaussians cloned (small, high-gradient).
    pub cloned: usize,
    /// Gaussians split in two (large, high-gradient).
    pub split: usize,
    /// Gaussians removed because their opacity collapsed.
    pub pruned: usize,
}

impl DensifyReport {
    /// Net change in model size.
    pub fn net_growth(&self) -> isize {
        (self.cloned + self.split) as isize - self.pruned as isize
    }
}

/// Runs one densify-and-prune pass over `model`.
///
/// `position_grad_norms` must hold one accumulated positional-gradient norm
/// per Gaussian (the densification criterion used by the reference
/// implementation).
///
/// # Panics
/// Panics if `position_grad_norms.len() != model.len()`.
pub fn densify_and_prune(
    model: &mut GaussianModel,
    position_grad_norms: &[f32],
    config: &DensifyConfig,
) -> DensifyReport {
    assert_eq!(
        position_grad_norms.len(),
        model.len(),
        "need one gradient norm per gaussian"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut report = DensifyReport::default();

    // 1. Prune low-opacity Gaussians first.
    let prune: Vec<u32> = (0..model.len())
        .filter(|&i| model.get(i).opacity() < config.prune_opacity)
        .map(|i| i as u32)
        .collect();
    // Gradient norms must stay aligned with the surviving Gaussians.
    let mut surviving_norms: Vec<f32> = position_grad_norms
        .iter()
        .enumerate()
        .filter(|(i, _)| !prune.contains(&(*i as u32)))
        .map(|(_, &n)| n)
        .collect();
    report.pruned = model.remove_indices(&prune);

    // 2. Densify high-gradient Gaussians.
    let budget = if config.max_gaussians == 0 {
        usize::MAX
    } else {
        config.max_gaussians.saturating_sub(model.len())
    };
    let mut added = 0usize;
    let original_len = model.len();
    for i in 0..original_len {
        if added >= budget {
            break;
        }
        if surviving_norms[i] <= config.grad_threshold {
            continue;
        }
        let g = model.get(i);
        let max_scale = g.scale().max_component();
        if max_scale > config.split_scale_threshold {
            // Split: shrink the original and add a sibling offset along a
            // random direction, both at ~60% of the original size.
            let mut shrunk = g.clone();
            shrunk.log_scale += Vec3::splat((0.6f32).ln());
            let offset = Vec3::new(
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            )
            .normalized()
                * max_scale
                * 0.5;
            let mut sibling = shrunk.clone();
            sibling.position += offset;
            model.set(i, shrunk);
            model.push(sibling);
            report.split += 1;
        } else {
            // Clone in place; optimisation separates the copies later.
            model.push(g);
            report.cloned += 1;
        }
        added += 1;
    }
    // Keep the norm bookkeeping length consistent for callers that reuse it.
    surviving_norms.resize(model.len(), 0.0);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_core::gaussian::Gaussian;

    fn model_with(scales: &[f32], opacities: &[f32]) -> GaussianModel {
        scales
            .iter()
            .zip(opacities)
            .enumerate()
            .map(|(i, (&s, &o))| Gaussian::isotropic(Vec3::new(i as f32, 0.0, 0.0), s, [0.5; 3], o))
            .collect()
    }

    #[test]
    fn high_gradient_small_gaussian_is_cloned() {
        let mut model = model_with(&[0.01], &[0.8]);
        let report = densify_and_prune(&mut model, &[1.0], &DensifyConfig::default());
        assert_eq!(report.cloned, 1);
        assert_eq!(report.split, 0);
        assert_eq!(model.len(), 2);
    }

    #[test]
    fn high_gradient_large_gaussian_is_split_and_shrunk() {
        let mut model = model_with(&[0.5], &[0.8]);
        let original_scale = model.get(0).scale().max_component();
        let report = densify_and_prune(&mut model, &[1.0], &DensifyConfig::default());
        assert_eq!(report.split, 1);
        assert_eq!(model.len(), 2);
        assert!(model.get(0).scale().max_component() < original_scale);
        assert!(model.get(1).scale().max_component() < original_scale);
        assert_ne!(model.get(0).position, model.get(1).position);
    }

    #[test]
    fn low_gradient_gaussians_are_left_alone() {
        let mut model = model_with(&[0.01, 0.5], &[0.8, 0.8]);
        let report = densify_and_prune(&mut model, &[0.0, 0.0], &DensifyConfig::default());
        assert_eq!(report, DensifyReport::default());
        assert_eq!(model.len(), 2);
    }

    #[test]
    fn transparent_gaussians_are_pruned() {
        let mut model = model_with(&[0.01, 0.01, 0.01], &[0.8, 0.001, 0.8]);
        let report = densify_and_prune(&mut model, &[0.0, 0.0, 0.0], &DensifyConfig::default());
        assert_eq!(report.pruned, 1);
        assert_eq!(model.len(), 2);
        assert_eq!(report.net_growth(), -1);
    }

    #[test]
    fn max_gaussians_caps_growth() {
        let mut model = model_with(&[0.01; 5], &[0.8; 5]);
        let config = DensifyConfig {
            max_gaussians: 7,
            ..Default::default()
        };
        let report = densify_and_prune(&mut model, &[1.0; 5], &config);
        assert_eq!(model.len(), 7);
        assert_eq!(report.cloned + report.split, 2);
    }

    #[test]
    #[should_panic(expected = "one gradient norm per gaussian")]
    fn mismatched_norms_panic() {
        let mut model = model_with(&[0.01], &[0.8]);
        let _ = densify_and_prune(&mut model, &[1.0, 2.0], &DensifyConfig::default());
    }
}
