//! Training-model initialisation.
//!
//! Real 3DGS pipelines initialise the Gaussians from a COLMAP
//! structure-from-motion point cloud (§2.1).  COLMAP and the captured images
//! are not available here, so [`init_from_point_cloud`] plays that role: it
//! subsamples / oversamples the ground-truth positions with noise (a stand-in
//! for a sparse SfM reconstruction of the scene geometry) and assigns neutral
//! colours and opacities, which training must then refine.

use gs_core::gaussian::{Gaussian, GaussianModel};
use gs_core::math::Vec3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic point-cloud initialisation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InitConfig {
    /// Number of Gaussians the training model starts with.
    pub num_gaussians: usize,
    /// Standard deviation of the positional noise added to sampled points,
    /// as a fraction of the scene extent.
    pub position_noise: f32,
    /// Initial isotropic scale of every Gaussian.
    pub initial_sigma: f32,
    /// Initial opacity of every Gaussian.
    pub initial_opacity: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for InitConfig {
    fn default() -> Self {
        InitConfig {
            num_gaussians: 1_000,
            position_noise: 0.01,
            initial_sigma: 0.2,
            initial_opacity: 0.3,
            seed: 42,
        }
    }
}

/// Builds an initial training model by sampling (with replacement) from the
/// positions of `reference` — the stand-in for a COLMAP point cloud — and
/// perturbing them.
///
/// # Panics
/// Panics if `reference` is empty or `config.num_gaussians` is zero.
pub fn init_from_point_cloud(reference: &GaussianModel, config: &InitConfig) -> GaussianModel {
    assert!(
        !reference.is_empty(),
        "reference point cloud must not be empty"
    );
    assert!(config.num_gaussians > 0, "need at least one gaussian");
    let (min, max) = reference
        .bounding_box()
        .expect("non-empty model has a bounding box");
    let extent = (max - min).length().max(1e-3);
    let noise = config.position_noise * extent;

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut model = GaussianModel::with_capacity(config.num_gaussians);
    for _ in 0..config.num_gaussians {
        let src = rng.gen_range(0..reference.len());
        let base = reference.positions()[src];
        let position = base
            + Vec3::new(
                rng.gen_range(-noise..noise),
                rng.gen_range(-noise..noise),
                rng.gen_range(-noise..noise),
            );
        // Neutral grey initial colour; training recovers the appearance.
        model.push(Gaussian::isotropic(
            position,
            config.initial_sigma * rng.gen_range(0.7..1.3),
            [0.5, 0.5, 0.5],
            config.initial_opacity,
        ));
    }
    model
}

/// Builds an initial model of uniformly random Gaussians inside the bounding
/// box of `reference` (the "random initialisation" fallback mentioned in
/// §2.1).
///
/// # Panics
/// Panics if `reference` is empty or `config.num_gaussians` is zero.
pub fn init_random(reference: &GaussianModel, config: &InitConfig) -> GaussianModel {
    assert!(!reference.is_empty(), "reference model must not be empty");
    assert!(config.num_gaussians > 0, "need at least one gaussian");
    let (min, max) = reference
        .bounding_box()
        .expect("non-empty model has a bounding box");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut model = GaussianModel::with_capacity(config.num_gaussians);
    for _ in 0..config.num_gaussians {
        let position = Vec3::new(
            rng.gen_range(min.x..=max.x),
            rng.gen_range(min.y..=max.y),
            rng.gen_range(min.z..=max.z),
        );
        model.push(Gaussian::isotropic(
            position,
            config.initial_sigma,
            [0.5, 0.5, 0.5],
            config.initial_opacity,
        ));
    }
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_dataset, DatasetConfig};
    use crate::spec::{SceneKind, SceneSpec};

    fn reference() -> GaussianModel {
        generate_dataset(&SceneSpec::of(SceneKind::Bicycle), &DatasetConfig::tiny()).ground_truth
    }

    #[test]
    fn point_cloud_init_stays_near_reference_geometry() {
        let reference = reference();
        let (min, max) = reference.bounding_box().unwrap();
        let init = init_from_point_cloud(
            &reference,
            &InitConfig {
                num_gaussians: 200,
                ..Default::default()
            },
        );
        assert_eq!(init.len(), 200);
        let slack = (max - min).length() * 0.05;
        for &p in init.positions() {
            assert!(p.x >= min.x - slack && p.x <= max.x + slack);
            assert!(p.y >= min.y - slack && p.y <= max.y + slack);
            assert!(p.z >= min.z - slack && p.z <= max.z + slack);
        }
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        let reference = reference();
        let cfg = InitConfig::default();
        assert_eq!(
            init_from_point_cloud(&reference, &cfg),
            init_from_point_cloud(&reference, &cfg)
        );
        let other = InitConfig { seed: 1, ..cfg };
        assert_ne!(
            init_from_point_cloud(&reference, &cfg),
            init_from_point_cloud(&reference, &other)
        );
    }

    #[test]
    fn random_init_fills_bounding_box() {
        let reference = reference();
        let init = init_random(
            &reference,
            &InitConfig {
                num_gaussians: 300,
                ..Default::default()
            },
        );
        assert_eq!(init.len(), 300);
        let (rmin, rmax) = reference.bounding_box().unwrap();
        let (imin, imax) = init.bounding_box().unwrap();
        assert!(imin.x >= rmin.x - 1e-3 && imax.x <= rmax.x + 1e-3);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_reference_rejected() {
        let _ = init_from_point_cloud(&GaussianModel::new(), &InitConfig::default());
    }
}
