//! Visibility-aware Gaussian partitioning for multi-device (sharded)
//! training.
//!
//! A sharded runtime keeps each device's slice of the offloaded parameter
//! store in that device's pinned host pool, so *which* device owns a
//! Gaussian decides which communication lane pays for its gathers, gradient
//! stores and CPU Adam updates.  Assigning Gaussians round-robin would
//! balance counts but not work: a handful of large foreground splats can
//! dominate a scene's render and optimiser cost.  [`partition_by_footprint`]
//! therefore balances the **projected-footprint load** — for every Gaussian,
//! the summed screen-space area (in pixels) it covers across the views that
//! actually see it:
//!
//! ```text
//! load(g) = 1 + Σ_{views v with g ∈ cull(v)} min(π · radius(g, v)², pixels(v))
//! ```
//!
//! The `1` floor keeps never-visible Gaussians from having zero load (they
//! still cost Adam updates and host memory), which also bounds the
//! max-to-min device-load ratio the tests gate on; the per-view clamp to
//! the image area keeps near-camera splats — whose 3σ radius can exceed
//! the screen — from dominating the distribution (a splat never rasterises
//! more pixels than the view has).
//!
//! # Invariants
//!
//! * **Deterministic** — the assignment depends only on the model, the
//!   cameras and the device count (greedy LPT with index tie-breaks; no RNG,
//!   no hashing), so every shard-count run of a training job sees the same
//!   partition.
//! * **Total** — every Gaussian gets exactly one owner; the per-device sets
//!   returned by [`GaussianPartition::device_set`] are disjoint and cover
//!   the model.
//! * **Balanced** — greedy longest-processing-time assignment keeps the
//!   heaviest device within `4/3` of the optimum, and with the unit floor
//!   the max/min footprint ratio stays small for any realistic scene (the
//!   sharded runtime's tests bound it).
//! * **Pure scheduling** — ownership never changes what is computed, only
//!   which simulated lane is charged; the sharded engine's training
//!   trajectory is bit-identical to the single-device trainer's for every
//!   device count.

use gs_core::camera::Camera;
use gs_core::cull_frustum;
use gs_core::gaussian::GaussianModel;
use gs_core::VisibilitySet;
use gs_render::project_gaussian;

/// An assignment of every Gaussian in a model to one of `num_devices`
/// simulated devices, produced by [`partition_by_footprint`].
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianPartition {
    /// `owner[g]` = device owning Gaussian `g`.
    owner: Vec<u32>,
    num_devices: usize,
    /// Summed projected-footprint load assigned to each device.
    device_footprint: Vec<f64>,
    /// Number of Gaussians assigned to each device.
    device_counts: Vec<usize>,
}

impl GaussianPartition {
    /// The trivial partition: every Gaussian on device 0 with unit loads.
    pub fn single_device(num_gaussians: usize) -> Self {
        GaussianPartition {
            owner: vec![0; num_gaussians],
            num_devices: 1,
            device_footprint: vec![num_gaussians as f64],
            device_counts: vec![num_gaussians],
        }
    }

    /// Number of devices the partition targets.
    pub fn num_devices(&self) -> usize {
        self.num_devices
    }

    /// Number of Gaussians covered by the partition.
    pub fn len(&self) -> usize {
        self.owner.len()
    }

    /// Whether the partition covers no Gaussians.
    pub fn is_empty(&self) -> bool {
        self.owner.is_empty()
    }

    /// The owning device of Gaussian `g`.
    ///
    /// # Panics
    /// Panics if `g` is out of range.
    pub fn owner_of(&self, g: u32) -> usize {
        self.owner[g as usize] as usize
    }

    /// Per-Gaussian owner table.
    pub fn owners(&self) -> &[u32] {
        &self.owner
    }

    /// Summed projected-footprint load per device.
    pub fn device_footprints(&self) -> &[f64] {
        &self.device_footprint
    }

    /// Number of Gaussians per device.
    pub fn device_counts(&self) -> &[usize] {
        &self.device_counts
    }

    /// The set of Gaussians owned by `device`.
    pub fn device_set(&self, device: usize) -> VisibilitySet {
        VisibilitySet::from_sorted(
            self.owner
                .iter()
                .enumerate()
                .filter(|(_, &d)| d as usize == device)
                .map(|(g, _)| g as u32)
                .collect(),
        )
    }

    /// Splits a sorted index slice into one sorted per-device slice
    /// (ownership order preserved): `split(s)[d]` holds the elements of `s`
    /// owned by device `d`.
    pub fn split_indices(&self, indices: &[u32]) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.num_devices];
        for &g in indices {
            out[self.owner_of(g)].push(g);
        }
        out
    }

    /// Number of elements of `indices` owned by each device.
    pub fn split_counts(&self, indices: &[u32]) -> Vec<usize> {
        let mut out = vec![0usize; self.num_devices];
        for &g in indices {
            out[self.owner_of(g)] += 1;
        }
        out
    }

    /// Load balance of the partition as the max/min device-footprint ratio
    /// (1.0 = perfectly balanced; `f64::INFINITY` if a device got zero
    /// load, which the unit footprint floor prevents whenever every device
    /// owns at least one Gaussian).
    pub fn load_imbalance(&self) -> f64 {
        let max = self.device_footprint.iter().cloned().fold(0.0, f64::max);
        let min = self
            .device_footprint
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        if min <= 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }
}

/// Projected-footprint load of every Gaussian:
/// `1 + Σ min(π·radius², view pixels)` over the views whose culling set
/// contains it.  The radius is the rasteriser's own screen-space splat
/// radius, so the load is proportional to the pixel work the renderer will
/// spend on the Gaussian; the per-view clamp bounds near-camera splats by
/// the screen they actually cover.
pub fn projected_footprints(model: &GaussianModel, cameras: &[Camera]) -> Vec<f64> {
    let mut load = vec![1.0f64; model.len()];
    for camera in cameras {
        let view_pixels = camera.intrinsics.pixel_count() as f64;
        // Visibility-aware: only the views that survive frustum culling
        // contribute, mirroring what the trainer will actually render.
        for g in cull_frustum(model, camera).iter() {
            if let Some((projected, _)) = project_gaussian(&model.get(g as usize), g, camera) {
                let r = projected.radius as f64;
                load[g as usize] += (std::f64::consts::PI * r * r).min(view_pixels);
            }
        }
    }
    load
}

/// Partitions a model's Gaussians across `num_devices` simulated devices,
/// balancing the projected-footprint load of [`projected_footprints`].
///
/// Greedy longest-processing-time assignment: Gaussians are visited in
/// decreasing load order (ties broken by index) and each goes to the
/// currently lightest device (ties broken by device id) — deterministic and
/// within 4/3 of the optimal makespan.
///
/// # Panics
/// Panics if `num_devices` is 0 or exceeds the `u8` device-index range (256
/// devices).
pub fn partition_by_footprint(
    model: &GaussianModel,
    cameras: &[Camera],
    num_devices: usize,
) -> GaussianPartition {
    assert!(num_devices >= 1, "num_devices must be at least 1");
    assert!(
        num_devices <= u8::MAX as usize + 1,
        "num_devices must fit a u8 device index"
    );
    let load = projected_footprints(model, cameras);
    if num_devices == 1 {
        return GaussianPartition {
            owner: vec![0; model.len()],
            num_devices: 1,
            device_footprint: vec![load.iter().sum()],
            device_counts: vec![model.len()],
        };
    }

    let mut order: Vec<u32> = (0..model.len() as u32).collect();
    // Decreasing load, index ascending on ties: `sort_by` is stable, so the
    // index order survives equal loads.
    order.sort_by(|&a, &b| {
        load[b as usize]
            .partial_cmp(&load[a as usize])
            .expect("footprint loads are finite")
    });

    let mut owner = vec![0u32; model.len()];
    let mut device_footprint = vec![0.0f64; num_devices];
    let mut device_counts = vec![0usize; num_devices];
    for g in order {
        let lightest = device_footprint
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("loads are finite"))
            .map(|(d, _)| d)
            .expect("at least one device");
        owner[g as usize] = lightest as u32;
        device_footprint[lightest] += load[g as usize];
        device_counts[lightest] += 1;
    }

    GaussianPartition {
        owner,
        num_devices,
        device_footprint,
        device_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_dataset, init_from_point_cloud, DatasetConfig, InitConfig};
    use crate::{SceneKind, SceneSpec};

    fn test_scene() -> (GaussianModel, Vec<Camera>) {
        let dataset = generate_dataset(&SceneSpec::of(SceneKind::Bicycle), &DatasetConfig::tiny());
        let model = init_from_point_cloud(
            &dataset.ground_truth,
            &InitConfig {
                num_gaussians: 200,
                ..Default::default()
            },
        );
        (model, dataset.cameras)
    }

    #[test]
    fn footprints_have_unit_floor_and_visibility_signal() {
        let (model, cameras) = test_scene();
        let load = projected_footprints(&model, &cameras);
        assert_eq!(load.len(), model.len());
        assert!(load.iter().all(|&l| l >= 1.0), "unit floor");
        assert!(
            load.iter().any(|&l| l > 1.0),
            "visible Gaussians must accumulate projected area"
        );
    }

    #[test]
    fn partition_is_total_and_disjoint() {
        let (model, cameras) = test_scene();
        for devices in [1usize, 2, 3, 4] {
            let p = partition_by_footprint(&model, &cameras, devices);
            assert_eq!(p.num_devices(), devices);
            assert_eq!(p.len(), model.len());
            assert_eq!(p.device_counts().iter().sum::<usize>(), model.len());
            let mut covered = 0;
            for d in 0..devices {
                let set = p.device_set(d);
                assert_eq!(set.len(), p.device_counts()[d]);
                for g in set.iter() {
                    assert_eq!(p.owner_of(g), d);
                }
                covered += set.len();
            }
            assert_eq!(covered, model.len());
        }
    }

    #[test]
    fn partition_balances_footprint_load() {
        let (model, cameras) = test_scene();
        for devices in [2usize, 4] {
            let p = partition_by_footprint(&model, &cameras, devices);
            assert!(
                p.load_imbalance() < 1.5,
                "{devices} devices: imbalance {} (loads {:?})",
                p.load_imbalance(),
                p.device_footprints()
            );
            assert!(p.device_counts().iter().all(|&c| c > 0));
        }
    }

    #[test]
    fn partition_is_deterministic() {
        let (model, cameras) = test_scene();
        let a = partition_by_footprint(&model, &cameras, 4);
        let b = partition_by_footprint(&model, &cameras, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn split_helpers_respect_ownership() {
        let (model, cameras) = test_scene();
        let p = partition_by_footprint(&model, &cameras, 2);
        let all: Vec<u32> = (0..model.len() as u32).collect();
        let split = p.split_indices(&all);
        assert_eq!(split.len(), 2);
        assert_eq!(split[0].len() + split[1].len(), all.len());
        assert_eq!(
            p.split_counts(&all),
            vec![split[0].len(), split[1].len()],
            "counts agree with the materialised split"
        );
        for (d, part) in split.iter().enumerate() {
            assert!(part.windows(2).all(|w| w[0] < w[1]), "sorted per device");
            assert!(part.iter().all(|&g| p.owner_of(g) == d));
        }
    }

    #[test]
    fn single_device_partition_is_trivial() {
        let p = GaussianPartition::single_device(5);
        assert_eq!(p.num_devices(), 1);
        assert_eq!(p.owner_of(4), 0);
        assert_eq!(p.load_imbalance(), 1.0);
        assert_eq!(p.device_set(0).len(), 5);
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic(expected = "num_devices must be at least 1")]
    fn zero_devices_panics() {
        let (model, cameras) = test_scene();
        let _ = partition_by_footprint(&model, &cameras, 0);
    }
}
