//! Synthetic evaluation scenes for the CLM reproduction.
//!
//! The CLM paper evaluates on five captured datasets (Bicycle, Rubble,
//! Alameda, Ithaca365 and MatrixCity BigCity) that are not available in this
//! environment.  This crate generates synthetic stand-ins whose *structure*
//! matches each scene: the relative Gaussian count, image resolution, camera
//! trajectory topology (orbit / aerial grid / indoor walk / street drive),
//! and therefore the sparsity distribution (Figure 5) and spatial locality
//! that CLM's offloading strategy exploits.  It also provides the
//! point-cloud initialisation and adaptive densification / pruning that the
//! training loop needs.
//!
//! # Example
//!
//! ```
//! use gs_scene::{generate_dataset, DatasetConfig, SceneKind, SceneSpec};
//!
//! let spec = SceneSpec::of(SceneKind::BigCity);
//! let dataset = generate_dataset(&spec, &DatasetConfig::tiny());
//! assert_eq!(dataset.ground_truth.len(), DatasetConfig::tiny().num_gaussians);
//! // Per-view sparsity: the fraction of Gaussians each view touches.
//! let rho = dataset.sparsity_profile();
//! assert_eq!(rho.len(), dataset.num_views());
//! ```

pub mod densify;
pub mod generate;
pub mod init;
pub mod partition;
pub mod spec;

pub use densify::{
    apply_resize, densify_and_prune, plan_resize, remove_rows_in_place, DensifyConfig,
    DensifyReport, ResizeAction, ResizeEvent,
};
pub use generate::{generate_dataset, Dataset, DatasetConfig};
pub use init::{init_from_point_cloud, init_random, InitConfig};
pub use partition::{partition_by_footprint, projected_footprints, GaussianPartition};
pub use spec::{SceneKind, SceneSpec, Trajectory};
