//! Lane-count sweep for the shared Adam kernel.
//!
//! Every optimiser path in the workspace bottoms out in
//! `adam_update_lanes::<L>`; the bit-identity story of the whole runtime
//! rests on lane grouping being *pure scheduling*.  These tests pin that
//! down: a scalar reference update (written independently, one row at a
//! time, in plain textbook form) must agree bit-for-bit with the lane
//! kernel at every lane width `L ∈ {1, 2, 4, 8}`, for arbitrary rows,
//! ragged tails included, and across repeated steps where the moments feed
//! back into themselves.

use gs_core::PARAMS_PER_GAUSSIAN;
use gs_optim::{compute_packed_lanes, AdamConfig, AdamWorkItem};
use proptest::prelude::*;

/// Scalar reference: the textbook Kingma & Ba update applied to one work
/// item, parameter by parameter, mirroring the kernel's expression shapes
/// (same literals, same association) without any lane staging.
fn adam_reference(config: &AdamConfig, item: &mut AdamWorkItem) {
    let lr = config.lr_table();
    let t = item.step as f32;
    let bias1 = 1.0 - config.beta1.powf(t);
    let bias2 = 1.0 - config.beta2.powf(t);
    for k in 0..PARAMS_PER_GAUSSIAN {
        let g = item.grad[k];
        item.m[k] = config.beta1 * item.m[k] + (1.0 - config.beta1) * g;
        item.v[k] = config.beta2 * item.v[k] + (1.0 - config.beta2) * g * g;
        let m_hat = item.m[k] / bias1;
        let v_hat = item.v[k] / bias2;
        item.params[k] -= lr[k] * m_hat / (v_hat.sqrt() + config.eps);
    }
}

/// Builds `n` work items with varied parameters, gradients, warm moments
/// and *per-item step counters* (sparse updates age Gaussians unevenly, so
/// the per-lane bias corrections must be exercised with distinct steps).
fn items_from_seeds(seeds: &[(f32, f32)]) -> Vec<AdamWorkItem> {
    seeds
        .iter()
        .enumerate()
        .map(|(i, &(a, b))| {
            let mut item = AdamWorkItem {
                index: i as u32,
                step: 1 + (i as u64 % 7),
                params: [0.0; PARAMS_PER_GAUSSIAN],
                grad: [0.0; PARAMS_PER_GAUSSIAN],
                m: [0.0; PARAMS_PER_GAUSSIAN],
                v: [0.0; PARAMS_PER_GAUSSIAN],
            };
            for k in 0..PARAMS_PER_GAUSSIAN {
                let kf = k as f32;
                item.params[k] = a + 0.1 * kf;
                item.grad[k] = b * (kf - 29.0) * 0.05;
                item.m[k] = 0.01 * a * kf;
                // v must be non-negative (it is a running mean of squares).
                item.v[k] = (0.02 * b * kf).abs();
            }
            item
        })
        .collect()
}

fn assert_items_bit_identical(a: &[AdamWorkItem], b: &[AdamWorkItem], label: &str) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.step, y.step, "{label}: item {i} step");
        for k in 0..PARAMS_PER_GAUSSIAN {
            assert_eq!(
                x.params[k].to_bits(),
                y.params[k].to_bits(),
                "{label}: item {i} param {k}"
            );
            assert_eq!(
                x.m[k].to_bits(),
                y.m[k].to_bits(),
                "{label}: item {i} m {k}"
            );
            assert_eq!(
                x.v[k].to_bits(),
                y.v[k].to_bits(),
                "{label}: item {i} v {k}"
            );
        }
    }
}

proptest! {
    #[test]
    fn lane_widths_match_scalar_reference(
        seeds in proptest::collection::vec((-2.0f32..2.0, -1.0f32..1.0), 1..28),
    ) {
        let base = items_from_seeds(&seeds);
        let config = AdamConfig::default();
        let mut reference = base.clone();
        for item in &mut reference {
            adam_reference(&config, item);
        }
        for lanes in [1usize, 2, 4, 8] {
            let mut items = base.clone();
            match lanes {
                1 => compute_packed_lanes::<1>(&config, &mut items),
                2 => compute_packed_lanes::<2>(&config, &mut items),
                4 => compute_packed_lanes::<4>(&config, &mut items),
                _ => compute_packed_lanes::<8>(&config, &mut items),
            }
            assert_items_bit_identical(&items, &reference, &format!("L={lanes}"));
        }
    }

    #[test]
    fn repeated_steps_stay_bit_identical_across_widths(
        seeds in proptest::collection::vec((-2.0f32..2.0, -1.0f32..1.0), 1..12),
    ) {
        // Moments feed back into themselves: any divergence compounds, so
        // three chained steps catch drift a single step might mask.
        let config = AdamConfig::uniform(1e-2);
        let mut wide = items_from_seeds(&seeds);
        let mut narrow = wide.clone();
        for _ in 0..3 {
            compute_packed_lanes::<8>(&config, &mut wide);
            compute_packed_lanes::<2>(&config, &mut narrow);
            for item in wide.iter_mut().chain(narrow.iter_mut()) {
                item.step += 1;
            }
        }
        assert_items_bit_identical(&wide, &narrow, "L=8 vs L=2 after 3 steps");
    }
}

#[test]
fn ragged_tail_padding_is_inert() {
    // 5 items at L=8: three padding lanes ride through the kernel.  Their
    // presence must not perturb the active lanes, and the kernel must not
    // write outside the slice (checked implicitly by the length).
    let seeds: Vec<(f32, f32)> = (0..5).map(|i| (0.3 * i as f32 - 0.7, 0.4)).collect();
    let mut items = items_from_seeds(&seeds);
    let mut reference = items.clone();
    let config = AdamConfig::default();
    for item in &mut reference {
        adam_reference(&config, item);
    }
    compute_packed_lanes::<8>(&config, &mut items);
    assert_items_bit_identical(&items, &reference, "ragged tail");
}
