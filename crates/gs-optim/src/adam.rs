//! Adam optimiser for Gaussian models.
//!
//! 3DGS training keeps two Adam moment estimates per parameter (the reason a
//! Gaussian's training state is 4× its parameter count, §2.2).  CLM runs the
//! Adam update for offloaded Gaussians on a dedicated CPU thread, and — key
//! to the overlapped-CPU-Adam optimisation (§4.2.2) — is able to update any
//! *subset* of Gaussians as soon as their gradients are final.  The
//! [`GaussianAdam`] optimiser therefore exposes both a dense step and a
//! subset step, with per-Gaussian step counts so both paths produce
//! identical results.

use crate::gradients::GradientBuffer;
use gs_core::gaussian::{GaussianModel, SH_FLOATS};
use gs_core::math::{Quat, Vec3};

/// Adam hyper-parameters, with the per-attribute learning rates used by the
/// reference 3DGS implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamConfig {
    /// Learning rate for positions.
    pub lr_position: f32,
    /// Learning rate for log-scales.
    pub lr_scale: f32,
    /// Learning rate for rotations.
    pub lr_rotation: f32,
    /// Learning rate for SH coefficients.
    pub lr_sh: f32,
    /// Learning rate for opacity logits.
    pub lr_opacity: f32,
    /// First-moment decay rate.
    pub beta1: f32,
    /// Second-moment decay rate.
    pub beta2: f32,
    /// Numerical-stability constant.
    pub eps: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr_position: 1.6e-4,
            lr_scale: 5.0e-3,
            lr_rotation: 1.0e-3,
            lr_sh: 2.5e-3,
            lr_opacity: 5.0e-2,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1.0e-15,
        }
    }
}

impl AdamConfig {
    /// A configuration with a single learning rate for every attribute,
    /// convenient for unit tests and toy problems.
    pub fn uniform(lr: f32) -> Self {
        AdamConfig {
            lr_position: lr,
            lr_scale: lr,
            lr_rotation: lr,
            lr_sh: lr,
            lr_opacity: lr,
            ..Default::default()
        }
    }
}

/// Per-Gaussian Adam state (first and second moments for all 59 parameters
/// plus a per-Gaussian step counter).
#[derive(Debug, Clone, Default)]
struct MomentRow {
    m_position: Vec3,
    v_position: Vec3,
    m_scale: Vec3,
    v_scale: Vec3,
    m_rotation: [f32; 4],
    v_rotation: [f32; 4],
    m_sh: Vec<f32>,
    v_sh: Vec<f32>,
    m_opacity: f32,
    v_opacity: f32,
    step: u64,
}

impl MomentRow {
    fn new() -> Self {
        MomentRow {
            m_sh: vec![0.0; SH_FLOATS],
            v_sh: vec![0.0; SH_FLOATS],
            ..Default::default()
        }
    }
}

/// Adam optimiser whose state is shaped like a [`GaussianModel`].
///
/// The state grows lazily: Gaussians created by densification get fresh
/// moments the first time they are updated.
#[derive(Debug, Clone)]
pub struct GaussianAdam {
    config: AdamConfig,
    rows: Vec<MomentRow>,
}

impl GaussianAdam {
    /// Creates an optimiser for a model that currently has `len` Gaussians.
    pub fn new(len: usize, config: AdamConfig) -> Self {
        GaussianAdam {
            config,
            rows: (0..len).map(|_| MomentRow::new()).collect(),
        }
    }

    /// The hyper-parameters.
    pub fn config(&self) -> &AdamConfig {
        &self.config
    }

    /// Number of Gaussians with optimiser state.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the optimiser holds no state.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Bytes of optimiser state (two moments per parameter), matching the
    /// paper's accounting.
    pub fn state_bytes(&self) -> usize {
        self.rows.len() * 59 * 2 * 4
    }

    /// Ensures state exists for `len` Gaussians (used after densification).
    pub fn resize(&mut self, len: usize) {
        while self.rows.len() < len {
            self.rows.push(MomentRow::new());
        }
        self.rows.truncate(len);
    }

    /// Applies one Adam step to **every** Gaussian using the gradients in
    /// `grads` (Gaussians without gradients receive a zero gradient, which
    /// still decays their moments — this matches dense GPU Adam).
    pub fn step_dense(&mut self, model: &mut GaussianModel, grads: &GradientBuffer) {
        assert_eq!(model.len(), grads.len(), "gradient buffer size mismatch");
        self.resize(model.len());
        let indices: Vec<u32> = (0..model.len() as u32).collect();
        self.step_indices(model, grads, &indices);
    }

    /// Applies one Adam step only to the Gaussians in `indices`
    /// (the sparse "CPU Adam" path, §5.4).  Other Gaussians are untouched.
    ///
    /// # Panics
    /// Panics if an index is out of bounds or the gradient buffer does not
    /// match the model size.
    pub fn step_subset(
        &mut self,
        model: &mut GaussianModel,
        grads: &GradientBuffer,
        indices: &[u32],
    ) {
        assert_eq!(model.len(), grads.len(), "gradient buffer size mismatch");
        self.resize(model.len());
        self.step_indices(model, grads, indices);
    }

    fn step_indices(&mut self, model: &mut GaussianModel, grads: &GradientBuffer, indices: &[u32]) {
        let c = self.config.clone();
        for &idx in indices {
            let i = idx as usize;
            assert!(i < model.len(), "gaussian index {i} out of bounds");
            let row = &mut self.rows[i];
            row.step += 1;
            let t = row.step as f32;
            let bias1 = 1.0 - c.beta1.powf(t);
            let bias2 = 1.0 - c.beta2.powf(t);

            let g = grads.row(idx);

            // Positions.
            let p = &mut model.positions_mut()[i];
            adam_update_vec3(
                p,
                g.d_position,
                &mut row.m_position,
                &mut row.v_position,
                c.lr_position,
                &c,
                bias1,
                bias2,
            );
            // Log-scales.
            let s = &mut model.log_scales_mut()[i];
            adam_update_vec3(
                s,
                g.d_log_scale,
                &mut row.m_scale,
                &mut row.v_scale,
                c.lr_scale,
                &c,
                bias1,
                bias2,
            );
            // Rotations.
            let q = &mut model.rotations_mut()[i];
            let mut q_arr = q.to_array();
            for k in 0..4 {
                adam_update_scalar(
                    &mut q_arr[k],
                    g.d_rotation[k],
                    &mut row.m_rotation[k],
                    &mut row.v_rotation[k],
                    c.lr_rotation,
                    &c,
                    bias1,
                    bias2,
                );
            }
            *q = Quat::from(q_arr);
            // SH coefficients.
            let sh_offset = i * SH_FLOATS;
            for k in 0..SH_FLOATS {
                let param = &mut model.sh_mut()[sh_offset + k];
                adam_update_scalar(
                    param,
                    g.d_sh[k],
                    &mut row.m_sh[k],
                    &mut row.v_sh[k],
                    c.lr_sh,
                    &c,
                    bias1,
                    bias2,
                );
            }
            // Opacity.
            let o = &mut model.opacity_logits_mut()[i];
            adam_update_scalar(
                o,
                g.d_opacity_logit,
                &mut row.m_opacity,
                &mut row.v_opacity,
                c.lr_opacity,
                &c,
                bias1,
                bias2,
            );
        }
    }

    /// Number of Adam steps Gaussian `index` has received so far.
    pub fn step_count(&self, index: u32) -> u64 {
        self.rows.get(index as usize).map(|r| r.step).unwrap_or(0)
    }
}

fn adam_update_scalar(
    param: &mut f32,
    grad: f32,
    m: &mut f32,
    v: &mut f32,
    lr: f32,
    c: &AdamConfig,
    bias1: f32,
    bias2: f32,
) {
    *m = c.beta1 * *m + (1.0 - c.beta1) * grad;
    *v = c.beta2 * *v + (1.0 - c.beta2) * grad * grad;
    let m_hat = *m / bias1;
    let v_hat = *v / bias2;
    *param -= lr * m_hat / (v_hat.sqrt() + c.eps);
}

#[allow(clippy::too_many_arguments)]
fn adam_update_vec3(
    param: &mut Vec3,
    grad: Vec3,
    m: &mut Vec3,
    v: &mut Vec3,
    lr: f32,
    c: &AdamConfig,
    bias1: f32,
    bias2: f32,
) {
    adam_update_scalar(
        &mut param.x,
        grad.x,
        &mut m.x,
        &mut v.x,
        lr,
        c,
        bias1,
        bias2,
    );
    adam_update_scalar(
        &mut param.y,
        grad.y,
        &mut m.y,
        &mut v.y,
        lr,
        c,
        bias1,
        bias2,
    );
    adam_update_scalar(
        &mut param.z,
        grad.z,
        &mut m.z,
        &mut v.z,
        lr,
        c,
        bias1,
        bias2,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_core::gaussian::Gaussian;
    use gs_render::GaussianGradients;

    fn model_of(n: usize) -> GaussianModel {
        (0..n)
            .map(|i| Gaussian::isotropic(Vec3::new(i as f32, 0.0, 5.0), 0.3, [0.5; 3], 0.7))
            .collect()
    }

    fn grad_with_position(d: Vec3) -> GaussianGradients {
        GaussianGradients {
            d_position: d,
            ..Default::default()
        }
    }

    /// Reference scalar Adam, transcribed directly from the paper's cited
    /// Adam formulation (Kingma & Ba).
    fn reference_adam(param0: f32, grads: &[f32], lr: f32) -> f32 {
        let (beta1, beta2, eps) = (0.9f32, 0.999f32, 1.0e-15f32);
        let (mut m, mut v, mut p) = (0.0f32, 0.0f32, param0);
        for (t, &g) in grads.iter().enumerate() {
            let t = (t + 1) as f32;
            m = beta1 * m + (1.0 - beta1) * g;
            v = beta2 * v + (1.0 - beta2) * g * g;
            let m_hat = m / (1.0 - beta1.powf(t));
            let v_hat = v / (1.0 - beta2.powf(t));
            p -= lr * m_hat / (v_hat.sqrt() + eps);
        }
        p
    }

    #[test]
    fn dense_step_matches_reference_adam() {
        let mut model = model_of(1);
        let p0 = model.positions()[0].x;
        let mut opt = GaussianAdam::new(1, AdamConfig::uniform(0.01));
        let grad_sequence = [0.5f32, -0.2, 0.8, 0.1];
        for &g in &grad_sequence {
            let mut buf = GradientBuffer::new(1);
            buf.add(0, &grad_with_position(Vec3::new(g, 0.0, 0.0)));
            opt.step_dense(&mut model, &buf);
        }
        let expected = reference_adam(p0, &grad_sequence, 0.01);
        let actual = model.positions()[0].x;
        assert!((actual - expected).abs() < 1e-6, "{actual} vs {expected}");
        assert_eq!(opt.step_count(0), 4);
    }

    #[test]
    fn subset_step_only_touches_listed_gaussians() {
        let mut model = model_of(3);
        let before = model.clone();
        let mut opt = GaussianAdam::new(3, AdamConfig::default());
        let mut buf = GradientBuffer::new(3);
        for i in 0..3 {
            buf.add(i, &grad_with_position(Vec3::new(1.0, 1.0, 1.0)));
        }
        opt.step_subset(&mut model, &buf, &[1]);
        assert_eq!(model.positions()[0], before.positions()[0]);
        assert_ne!(model.positions()[1], before.positions()[1]);
        assert_eq!(model.positions()[2], before.positions()[2]);
        assert_eq!(opt.step_count(0), 0);
        assert_eq!(opt.step_count(1), 1);
    }

    #[test]
    fn disjoint_subset_steps_equal_one_dense_step() {
        // Updating {0,1} and then {2,3} with the same gradient buffer must
        // give exactly the same result as one dense step over all four —
        // this is the invariant overlapped CPU Adam relies on (§4.2.2).
        let grads = {
            let mut buf = GradientBuffer::new(4);
            for i in 0..4 {
                buf.add(
                    i,
                    &grad_with_position(Vec3::new(0.3 * (i as f32 + 1.0), -0.1, 0.2)),
                );
            }
            buf
        };

        let mut model_a = model_of(4);
        let mut opt_a = GaussianAdam::new(4, AdamConfig::default());
        opt_a.step_subset(&mut model_a, &grads, &[0, 1]);
        opt_a.step_subset(&mut model_a, &grads, &[2, 3]);

        let mut model_b = model_of(4);
        let mut opt_b = GaussianAdam::new(4, AdamConfig::default());
        opt_b.step_dense(&mut model_b, &grads);

        assert_eq!(model_a, model_b);
    }

    #[test]
    fn adam_descends_a_simple_quadratic() {
        // Minimise (x - 2)^2 via its gradient 2(x - 2) on the opacity logit.
        let mut model = model_of(1);
        model.opacity_logits_mut()[0] = -3.0;
        let mut opt = GaussianAdam::new(1, AdamConfig::uniform(0.05));
        for _ in 0..800 {
            let x = model.opacity_logits()[0];
            let mut buf = GradientBuffer::new(1);
            buf.add(
                0,
                &GaussianGradients {
                    d_opacity_logit: 2.0 * (x - 2.0),
                    ..Default::default()
                },
            );
            opt.step_dense(&mut model, &buf);
        }
        assert!(
            (model.opacity_logits()[0] - 2.0).abs() < 0.05,
            "converged to {}",
            model.opacity_logits()[0]
        );
    }

    #[test]
    fn resize_preserves_existing_state() {
        let mut model = model_of(2);
        let mut opt = GaussianAdam::new(2, AdamConfig::default());
        let mut buf = GradientBuffer::new(2);
        buf.add(0, &grad_with_position(Vec3::X));
        opt.step_dense(&mut model, &buf);
        assert_eq!(opt.step_count(0), 1);
        opt.resize(5);
        assert_eq!(opt.len(), 5);
        assert_eq!(opt.step_count(0), 1, "existing state preserved");
        assert_eq!(opt.step_count(4), 0);
    }

    #[test]
    fn state_bytes_accounting() {
        let opt = GaussianAdam::new(100, AdamConfig::default());
        // Two moments per parameter: 59 * 2 * 4 bytes per Gaussian.
        assert_eq!(opt.state_bytes(), 100 * 472);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_subset_panics() {
        let mut model = model_of(2);
        let mut opt = GaussianAdam::new(2, AdamConfig::default());
        let buf = GradientBuffer::new(2);
        opt.step_subset(&mut model, &buf, &[5]);
    }
}
