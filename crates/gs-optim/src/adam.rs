//! Adam optimiser for Gaussian models.
//!
//! 3DGS training keeps two Adam moment estimates per parameter (the reason a
//! Gaussian's training state is 4× its parameter count, §2.2).  CLM runs the
//! Adam update for offloaded Gaussians on a dedicated CPU thread, and — key
//! to the overlapped-CPU-Adam optimisation (§4.2.2) — is able to update any
//! *subset* of Gaussians as soon as their gradients are final.
//!
//! Every update path funnels through one scalar kernel
//! (`adam_update_row`) over the flat 59-float parameter row layout of
//! [`GaussianModel::param_row`], so the three drivers are bit-identical by
//! construction:
//!
//! * [`GaussianAdam::step_dense`] / [`GaussianAdam::step_subset`] — the
//!   in-place sequential path the synchronous trainer uses;
//! * [`GaussianAdam::pack_subset`] → [`compute_packed`] →
//!   [`GaussianAdam::apply_packed`] — the shippable path: work items are
//!   plain `memcpy`able rows, so a dedicated CPU Adam worker thread can run
//!   the expensive math while the main thread keeps rendering, and the
//!   results are merged back with cheap copies;
//! * [`compute_packed_chunked`] — the parallel-chunk path: the packed items
//!   are split across scoped threads so the CPU Adam lane scales with
//!   cores.

use crate::gradients::GradientBuffer;
use gs_core::gaussian::{GaussianModel, SH_FLOATS};
use gs_core::PARAMS_PER_GAUSSIAN;

/// Adam hyper-parameters, with the per-attribute learning rates used by the
/// reference 3DGS implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamConfig {
    /// Learning rate for positions.
    pub lr_position: f32,
    /// Learning rate for log-scales.
    pub lr_scale: f32,
    /// Learning rate for rotations.
    pub lr_rotation: f32,
    /// Learning rate for SH coefficients.
    pub lr_sh: f32,
    /// Learning rate for opacity logits.
    pub lr_opacity: f32,
    /// First-moment decay rate.
    pub beta1: f32,
    /// Second-moment decay rate.
    pub beta2: f32,
    /// Numerical-stability constant.
    pub eps: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr_position: 1.6e-4,
            lr_scale: 5.0e-3,
            lr_rotation: 1.0e-3,
            lr_sh: 2.5e-3,
            lr_opacity: 5.0e-2,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1.0e-15,
        }
    }
}

impl AdamConfig {
    /// A configuration with a single learning rate for every attribute,
    /// convenient for unit tests and toy problems.
    pub fn uniform(lr: f32) -> Self {
        AdamConfig {
            lr_position: lr,
            lr_scale: lr,
            lr_rotation: lr,
            lr_sh: lr,
            lr_opacity: lr,
            ..Default::default()
        }
    }

    /// Learning rate of flat parameter `k` in the
    /// [`param_row`](GaussianModel::param_row) layout.
    #[inline]
    fn lr_of(&self, k: usize) -> f32 {
        match k {
            0..=2 => self.lr_position,
            3..=5 => self.lr_scale,
            6..=9 => self.lr_rotation,
            k if k < 10 + SH_FLOATS => self.lr_sh,
            _ => self.lr_opacity,
        }
    }
}

/// Per-Gaussian Adam state: first and second moments for all 59 parameters
/// (flat, in [`param_row`](GaussianModel::param_row) layout) plus a
/// per-Gaussian step counter.  Flat fixed-size arrays keep each row a single
/// allocation-free `memcpy`, which is what lets the packed path ship rows
/// between threads cheaply.
#[derive(Debug, Clone)]
struct MomentRow {
    m: [f32; PARAMS_PER_GAUSSIAN],
    v: [f32; PARAMS_PER_GAUSSIAN],
    step: u64,
}

impl MomentRow {
    fn new() -> Self {
        MomentRow {
            m: [0.0; PARAMS_PER_GAUSSIAN],
            v: [0.0; PARAMS_PER_GAUSSIAN],
            step: 0,
        }
    }
}

/// One Gaussian's exported Adam state — the checkpointable view of a moment
/// row.  Same flat layout as the internal state, so export → restore is a
/// pure copy and restored optimisers continue bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamRowState {
    /// First-moment row, in [`param_row`](GaussianModel::param_row) layout.
    pub m: [f32; PARAMS_PER_GAUSSIAN],
    /// Second-moment row.
    pub v: [f32; PARAMS_PER_GAUSSIAN],
    /// Per-Gaussian step counter.
    pub step: u64,
}

/// One Gaussian's worth of Adam work, fully self-contained so it can be
/// computed on any thread: the parameter row, its gradient, the moment
/// estimates and the step counter (already incremented for this update).
///
/// Produced by [`GaussianAdam::pack_subset`], transformed in place by
/// [`compute_packed`] / [`compute_packed_chunked`], and merged back by
/// [`GaussianAdam::apply_packed`].
#[derive(Debug, Clone)]
pub struct AdamWorkItem {
    /// Index of the Gaussian this row belongs to.
    pub index: u32,
    /// Step count of this update (1-based, already incremented).
    pub step: u64,
    /// Parameter row (updated in place by the compute pass).
    pub params: [f32; PARAMS_PER_GAUSSIAN],
    /// Accumulated gradient row.
    pub grad: [f32; PARAMS_PER_GAUSSIAN],
    /// First-moment row (updated in place).
    pub m: [f32; PARAMS_PER_GAUSSIAN],
    /// Second-moment row (updated in place).
    pub v: [f32; PARAMS_PER_GAUSSIAN],
}

/// The Adam update of one flat parameter row.  **Every** optimiser path in
/// this crate runs exactly this function, which is what makes the
/// sequential, packed and chunked drivers bit-identical.
#[inline]
fn adam_update_row(
    config: &AdamConfig,
    step: u64,
    params: &mut [f32; PARAMS_PER_GAUSSIAN],
    grad: &[f32; PARAMS_PER_GAUSSIAN],
    m: &mut [f32; PARAMS_PER_GAUSSIAN],
    v: &mut [f32; PARAMS_PER_GAUSSIAN],
) {
    let t = step as f32;
    let bias1 = 1.0 - config.beta1.powf(t);
    let bias2 = 1.0 - config.beta2.powf(t);
    for k in 0..PARAMS_PER_GAUSSIAN {
        let g = grad[k];
        m[k] = config.beta1 * m[k] + (1.0 - config.beta1) * g;
        v[k] = config.beta2 * v[k] + (1.0 - config.beta2) * g * g;
        let m_hat = m[k] / bias1;
        let v_hat = v[k] / bias2;
        params[k] -= config.lr_of(k) * m_hat / (v_hat.sqrt() + config.eps);
    }
}

/// Runs the Adam kernel over every packed work item (single-threaded).
pub fn compute_packed(config: &AdamConfig, items: &mut [AdamWorkItem]) {
    for item in items {
        adam_update_row(
            config,
            item.step,
            &mut item.params,
            &item.grad,
            &mut item.m,
            &mut item.v,
        );
    }
}

/// Runs the Adam kernel over the packed work items split across up to
/// `threads` scoped worker threads.  Each item is independent, so the result
/// is bit-identical to [`compute_packed`] regardless of the thread count.
pub fn compute_packed_chunked(config: &AdamConfig, items: &mut [AdamWorkItem], threads: usize) {
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        compute_packed(config, items);
        return;
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for slice in items.chunks_mut(chunk) {
            scope.spawn(move || compute_packed(config, slice));
        }
    });
}

/// Flattens a [`GradientBuffer`] row into the
/// [`param_row`](GaussianModel::param_row) layout.
fn flat_grad(grads: &GradientBuffer, index: u32) -> [f32; PARAMS_PER_GAUSSIAN] {
    let g = grads.row(index);
    let mut row = [0.0f32; PARAMS_PER_GAUSSIAN];
    row[0..3].copy_from_slice(&g.d_position.to_array());
    row[3..6].copy_from_slice(&g.d_log_scale.to_array());
    row[6..10].copy_from_slice(&g.d_rotation);
    row[10..10 + SH_FLOATS].copy_from_slice(&g.d_sh);
    row[PARAMS_PER_GAUSSIAN - 1] = g.d_opacity_logit;
    row
}

/// Adam optimiser whose state is shaped like a [`GaussianModel`].
///
/// The state grows lazily: Gaussians created by densification get fresh
/// moments the first time they are updated.
#[derive(Debug, Clone)]
pub struct GaussianAdam {
    config: AdamConfig,
    rows: Vec<MomentRow>,
}

impl GaussianAdam {
    /// Creates an optimiser for a model that currently has `len` Gaussians.
    pub fn new(len: usize, config: AdamConfig) -> Self {
        GaussianAdam {
            config,
            rows: (0..len).map(|_| MomentRow::new()).collect(),
        }
    }

    /// The hyper-parameters.
    pub fn config(&self) -> &AdamConfig {
        &self.config
    }

    /// Number of Gaussians with optimiser state.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the optimiser holds no state.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Bytes of optimiser state (two moments per parameter), matching the
    /// paper's accounting.
    pub fn state_bytes(&self) -> usize {
        self.rows.len() * PARAMS_PER_GAUSSIAN * 2 * 4
    }

    /// Ensures state exists for `len` Gaussians (used after densification).
    pub fn resize(&mut self, len: usize) {
        self.rows.resize_with(len, MomentRow::new);
    }

    /// Resizes the optimiser state for a densification boundary, following
    /// the paper's heuristic: pruned rows are dropped, surviving rows keep
    /// their moments and step counts (a clone/split continues the original's
    /// trajectory), and the appended rows start from fresh zero moments —
    /// exactly the state a lazily-grown optimiser would give them.
    ///
    /// `pruned` must be sorted pre-resize indices; `new_len` is the model
    /// size after the resize.
    ///
    /// # Panics
    /// Panics if a pruned index is out of bounds of the current state.
    pub fn apply_resize(&mut self, pruned: &[u32], new_len: usize) {
        if !pruned.is_empty() {
            let mut remove = vec![false; self.rows.len()];
            for &i in pruned {
                let i = i as usize;
                assert!(i < remove.len(), "pruned index {i} out of bounds");
                remove[i] = true;
            }
            let mut flags = remove.iter();
            self.rows.retain(|_| !*flags.next().unwrap());
        }
        self.resize(new_len);
    }

    /// Applies one Adam step to **every** Gaussian using the gradients in
    /// `grads` (Gaussians without gradients receive a zero gradient, which
    /// still decays their moments — this matches dense GPU Adam).
    pub fn step_dense(&mut self, model: &mut GaussianModel, grads: &GradientBuffer) {
        assert_eq!(model.len(), grads.len(), "gradient buffer size mismatch");
        self.resize(model.len());
        let indices: Vec<u32> = (0..model.len() as u32).collect();
        self.step_indices(model, grads, &indices);
    }

    /// Applies one Adam step only to the Gaussians in `indices`
    /// (the sparse "CPU Adam" path, §5.4).  Other Gaussians are untouched.
    ///
    /// # Panics
    /// Panics if an index is out of bounds or the gradient buffer does not
    /// match the model size.
    pub fn step_subset(
        &mut self,
        model: &mut GaussianModel,
        grads: &GradientBuffer,
        indices: &[u32],
    ) {
        assert_eq!(model.len(), grads.len(), "gradient buffer size mismatch");
        self.resize(model.len());
        self.step_indices(model, grads, indices);
    }

    /// Like [`step_subset`](Self::step_subset) but running the per-row
    /// kernels across up to `threads` scoped worker threads (the
    /// parallel-chunk CPU Adam path).  Bit-identical to the sequential step
    /// for any thread count, since every row is independent.
    pub fn step_subset_parallel(
        &mut self,
        model: &mut GaussianModel,
        grads: &GradientBuffer,
        indices: &[u32],
        threads: usize,
    ) {
        assert_eq!(model.len(), grads.len(), "gradient buffer size mismatch");
        let mut items = self.pack_subset(model, grads, indices);
        compute_packed_chunked(&self.config, &mut items, threads);
        self.apply_packed(model, &items);
    }

    fn step_indices(&mut self, model: &mut GaussianModel, grads: &GradientBuffer, indices: &[u32]) {
        for &idx in indices {
            let i = idx as usize;
            assert!(i < model.len(), "gaussian index {i} out of bounds");
            let row = &mut self.rows[i];
            row.step += 1;
            let mut params = model.param_row(i);
            let grad = flat_grad(grads, idx);
            adam_update_row(
                &self.config,
                row.step,
                &mut params,
                &grad,
                &mut row.m,
                &mut row.v,
            );
            model.set_param_row(i, &params);
        }
    }

    /// Packs the Adam work of `indices` into self-contained
    /// [`AdamWorkItem`]s without touching the model or the optimiser state —
    /// only cheap copies.  Gaussians beyond the current state length get
    /// fresh (zero) moments, exactly as the in-place path would create them.
    ///
    /// # Panics
    /// Panics if an index is out of bounds of the model or the gradient
    /// buffer does not match the model size.
    pub fn pack_subset(
        &self,
        model: &GaussianModel,
        grads: &GradientBuffer,
        indices: &[u32],
    ) -> Vec<AdamWorkItem> {
        assert_eq!(model.len(), grads.len(), "gradient buffer size mismatch");
        indices
            .iter()
            .map(|&idx| {
                let i = idx as usize;
                assert!(i < model.len(), "gaussian index {i} out of bounds");
                let (m, v, step) = match self.rows.get(i) {
                    Some(row) => (row.m, row.v, row.step),
                    None => ([0.0; PARAMS_PER_GAUSSIAN], [0.0; PARAMS_PER_GAUSSIAN], 0),
                };
                AdamWorkItem {
                    index: idx,
                    step: step + 1,
                    params: model.param_row(i),
                    grad: flat_grad(grads, idx),
                    m,
                    v,
                }
            })
            .collect()
    }

    /// Merges computed work items back into the model and the optimiser
    /// state (pure copies — all math happened in the compute pass).
    ///
    /// # Panics
    /// Panics if an item's index is out of bounds of the model.
    pub fn apply_packed(&mut self, model: &mut GaussianModel, items: &[AdamWorkItem]) {
        self.resize(model.len());
        for item in items {
            let i = item.index as usize;
            assert!(i < model.len(), "gaussian index {i} out of bounds");
            model.set_param_row(i, &item.params);
            let row = &mut self.rows[i];
            row.m = item.m;
            row.v = item.v;
            row.step = item.step;
        }
    }

    /// Number of Adam steps Gaussian `index` has received so far.
    pub fn step_count(&self, index: u32) -> u64 {
        self.rows.get(index as usize).map(|r| r.step).unwrap_or(0)
    }

    /// Exports every moment row for checkpointing (pure copies).
    pub fn export_rows(&self) -> Vec<AdamRowState> {
        self.rows
            .iter()
            .map(|r| AdamRowState {
                m: r.m,
                v: r.v,
                step: r.step,
            })
            .collect()
    }

    /// Rebuilds an optimiser from exported rows; the inverse of
    /// [`export_rows`](Self::export_rows).
    pub fn from_rows(config: AdamConfig, rows: Vec<AdamRowState>) -> Self {
        GaussianAdam {
            config,
            rows: rows
                .into_iter()
                .map(|r| MomentRow {
                    m: r.m,
                    v: r.v,
                    step: r.step,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_core::gaussian::Gaussian;
    use gs_core::math::Vec3;
    use gs_render::GaussianGradients;

    fn model_of(n: usize) -> GaussianModel {
        (0..n)
            .map(|i| Gaussian::isotropic(Vec3::new(i as f32, 0.0, 5.0), 0.3, [0.5; 3], 0.7))
            .collect()
    }

    fn grad_with_position(d: Vec3) -> GaussianGradients {
        GaussianGradients {
            d_position: d,
            ..Default::default()
        }
    }

    /// Reference scalar Adam, transcribed directly from the paper's cited
    /// Adam formulation (Kingma & Ba).
    fn reference_adam(param0: f32, grads: &[f32], lr: f32) -> f32 {
        let (beta1, beta2, eps) = (0.9f32, 0.999f32, 1.0e-15f32);
        let (mut m, mut v, mut p) = (0.0f32, 0.0f32, param0);
        for (t, &g) in grads.iter().enumerate() {
            let t = (t + 1) as f32;
            m = beta1 * m + (1.0 - beta1) * g;
            v = beta2 * v + (1.0 - beta2) * g * g;
            let m_hat = m / (1.0 - beta1.powf(t));
            let v_hat = v / (1.0 - beta2.powf(t));
            p -= lr * m_hat / (v_hat.sqrt() + eps);
        }
        p
    }

    /// A richly-varied gradient buffer touching every attribute group.
    fn varied_grads(n: usize) -> GradientBuffer {
        let mut buf = GradientBuffer::new(n);
        for i in 0..n {
            let f = i as f32 + 1.0;
            let mut d_sh = [0.0f32; SH_FLOATS];
            for (k, c) in d_sh.iter_mut().enumerate() {
                *c = 0.01 * f * (k as f32 - 20.0);
            }
            buf.add(
                i as u32,
                &GaussianGradients {
                    d_position: Vec3::new(0.3 * f, -0.1, 0.2 * f),
                    d_log_scale: Vec3::new(-0.05, 0.02 * f, 0.0),
                    d_rotation: [0.01 * f, -0.02, 0.03, 0.04 * f],
                    d_sh,
                    d_opacity_logit: 0.5 - 0.1 * f,
                },
            );
        }
        buf
    }

    #[test]
    fn dense_step_matches_reference_adam() {
        let mut model = model_of(1);
        let p0 = model.positions()[0].x;
        let mut opt = GaussianAdam::new(1, AdamConfig::uniform(0.01));
        let grad_sequence = [0.5f32, -0.2, 0.8, 0.1];
        for &g in &grad_sequence {
            let mut buf = GradientBuffer::new(1);
            buf.add(0, &grad_with_position(Vec3::new(g, 0.0, 0.0)));
            opt.step_dense(&mut model, &buf);
        }
        let expected = reference_adam(p0, &grad_sequence, 0.01);
        let actual = model.positions()[0].x;
        assert!((actual - expected).abs() < 1e-6, "{actual} vs {expected}");
        assert_eq!(opt.step_count(0), 4);
    }

    #[test]
    fn subset_step_only_touches_listed_gaussians() {
        let mut model = model_of(3);
        let before = model.clone();
        let mut opt = GaussianAdam::new(3, AdamConfig::default());
        let mut buf = GradientBuffer::new(3);
        for i in 0..3 {
            buf.add(i, &grad_with_position(Vec3::new(1.0, 1.0, 1.0)));
        }
        opt.step_subset(&mut model, &buf, &[1]);
        assert_eq!(model.positions()[0], before.positions()[0]);
        assert_ne!(model.positions()[1], before.positions()[1]);
        assert_eq!(model.positions()[2], before.positions()[2]);
        assert_eq!(opt.step_count(0), 0);
        assert_eq!(opt.step_count(1), 1);
    }

    #[test]
    fn disjoint_subset_steps_equal_one_dense_step() {
        // Updating {0,1} and then {2,3} with the same gradient buffer must
        // give exactly the same result as one dense step over all four —
        // this is the invariant overlapped CPU Adam relies on (§4.2.2).
        let grads = varied_grads(4);

        let mut model_a = model_of(4);
        let mut opt_a = GaussianAdam::new(4, AdamConfig::default());
        opt_a.step_subset(&mut model_a, &grads, &[0, 1]);
        opt_a.step_subset(&mut model_a, &grads, &[2, 3]);

        let mut model_b = model_of(4);
        let mut opt_b = GaussianAdam::new(4, AdamConfig::default());
        opt_b.step_dense(&mut model_b, &grads);

        assert_eq!(model_a, model_b);
    }

    #[test]
    fn packed_path_is_bit_identical_to_in_place_step() {
        // The shippable pack → compute → apply path must be exactly the
        // sequential step: same parameters, same moments, same step counts.
        let grads = varied_grads(6);
        let indices = [0u32, 2, 3, 5];

        let mut model_seq = model_of(6);
        let mut opt_seq = GaussianAdam::new(6, AdamConfig::default());
        // Pre-age two rows so packed steps start from non-zero moments.
        opt_seq.step_subset(&mut model_seq, &grads, &[2, 5]);

        let mut model_packed = model_seq.clone();
        let mut opt_packed = opt_seq.clone();

        opt_seq.step_subset(&mut model_seq, &grads, &indices);

        let mut items = opt_packed.pack_subset(&model_packed, &grads, &indices);
        compute_packed(opt_packed.config(), &mut items);
        opt_packed.apply_packed(&mut model_packed, &items);

        assert_eq!(model_seq, model_packed);
        for idx in indices {
            assert_eq!(opt_seq.step_count(idx), opt_packed.step_count(idx));
        }
        // One more sequential step on both keeps them in lockstep (moments
        // were merged back exactly).
        opt_seq.step_subset(&mut model_seq, &grads, &indices);
        opt_packed.step_subset(&mut model_packed, &grads, &indices);
        assert_eq!(model_seq, model_packed);
    }

    #[test]
    fn chunked_compute_is_identical_for_any_thread_count() {
        let grads = varied_grads(17);
        let indices: Vec<u32> = (0..17).collect();
        let reference = {
            let mut model = model_of(17);
            let mut opt = GaussianAdam::new(17, AdamConfig::default());
            opt.step_subset(&mut model, &grads, &indices);
            model
        };
        for threads in [1usize, 2, 3, 8, 64] {
            let mut model = model_of(17);
            let mut opt = GaussianAdam::new(17, AdamConfig::default());
            opt.step_subset_parallel(&mut model, &grads, &indices, threads);
            assert_eq!(model, reference, "threads = {threads}");
        }
    }

    #[test]
    fn pack_subset_handles_unsized_state_like_resize_would() {
        // Packing rows past the optimiser's current length must behave like
        // the in-place path (which resizes first): fresh zero moments.
        let grads = varied_grads(4);
        let mut model_a = model_of(4);
        let mut opt_a = GaussianAdam::new(2, AdamConfig::default());
        let mut items = opt_a.pack_subset(&model_a, &grads, &[1, 3]);
        compute_packed(opt_a.config(), &mut items);
        opt_a.apply_packed(&mut model_a, &items);

        let mut model_b = model_of(4);
        let mut opt_b = GaussianAdam::new(2, AdamConfig::default());
        opt_b.step_subset(&mut model_b, &grads, &[1, 3]);

        assert_eq!(model_a, model_b);
        assert_eq!(opt_a.step_count(3), 1);
    }

    #[test]
    fn adam_descends_a_simple_quadratic() {
        // Minimise (x - 2)^2 via its gradient 2(x - 2) on the opacity logit.
        let mut model = model_of(1);
        model.opacity_logits_mut()[0] = -3.0;
        let mut opt = GaussianAdam::new(1, AdamConfig::uniform(0.05));
        for _ in 0..800 {
            let x = model.opacity_logits()[0];
            let mut buf = GradientBuffer::new(1);
            buf.add(
                0,
                &GaussianGradients {
                    d_opacity_logit: 2.0 * (x - 2.0),
                    ..Default::default()
                },
            );
            opt.step_dense(&mut model, &buf);
        }
        assert!(
            (model.opacity_logits()[0] - 2.0).abs() < 0.05,
            "converged to {}",
            model.opacity_logits()[0]
        );
    }

    #[test]
    fn apply_resize_compacts_pruned_rows_and_zeroes_new_ones() {
        // Age rows 0..4 by distinct step counts so compaction is observable.
        let mut model = model_of(4);
        let mut opt = GaussianAdam::new(4, AdamConfig::default());
        let grads = varied_grads(4);
        opt.step_dense(&mut model, &grads);
        opt.step_subset(&mut model, &grads, &[2, 3]);
        opt.step_subset(&mut model, &grads, &[3]);
        assert_eq!(
            (0..4).map(|i| opt.step_count(i)).collect::<Vec<_>>(),
            vec![1, 1, 2, 3]
        );

        // Prune rows 0 and 2, then grow to 5: survivors {1, 3} slide to
        // rows {0, 1} with their step counts intact; rows 2..5 are fresh.
        opt.apply_resize(&[0, 2], 5);
        assert_eq!(opt.len(), 5);
        assert_eq!(opt.step_count(0), 1, "old row 1 kept its state");
        assert_eq!(opt.step_count(1), 3, "old row 3 kept its state");
        for i in 2..5 {
            assert_eq!(opt.step_count(i), 0, "appended row {i} starts fresh");
        }
    }

    #[test]
    fn apply_resize_survivors_step_like_never_resized() {
        // A survivor's moments must be byte-identical to an optimiser that
        // never went through a resize: further steps on both must agree.
        let grads = varied_grads(3);
        let mut model_resized = model_of(3);
        let mut opt_resized = GaussianAdam::new(3, AdamConfig::default());
        opt_resized.step_dense(&mut model_resized, &grads);

        // A parallel world that only ever held row 1, fed the same gradient.
        let mut model_plain: GaussianModel = std::iter::once(model_of(3).get(1)).collect();
        let mut opt_plain = GaussianAdam::new(1, AdamConfig::default());
        let mut buf = GradientBuffer::new(1);
        buf.add(0, &grads.row(1));
        opt_plain.step_dense(&mut model_plain, &buf);

        // Prune rows 0 and 2; the survivor slides to row 0.
        opt_resized.apply_resize(&[0, 2], 1);
        let mut model_after: GaussianModel = std::iter::once(model_resized.get(1)).collect();
        assert_eq!(model_after, model_plain);
        opt_resized.step_dense(&mut model_after, &buf);
        opt_plain.step_dense(&mut model_plain, &buf);
        assert_eq!(model_after, model_plain, "survivor state must not drift");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn apply_resize_rejects_out_of_range_prunes() {
        let mut opt = GaussianAdam::new(2, AdamConfig::default());
        opt.apply_resize(&[7], 2);
    }

    #[test]
    fn resize_preserves_existing_state() {
        let mut model = model_of(2);
        let mut opt = GaussianAdam::new(2, AdamConfig::default());
        let mut buf = GradientBuffer::new(2);
        buf.add(0, &grad_with_position(Vec3::X));
        opt.step_dense(&mut model, &buf);
        assert_eq!(opt.step_count(0), 1);
        opt.resize(5);
        assert_eq!(opt.len(), 5);
        assert_eq!(opt.step_count(0), 1, "existing state preserved");
        assert_eq!(opt.step_count(4), 0);
    }

    #[test]
    fn state_bytes_accounting() {
        let opt = GaussianAdam::new(100, AdamConfig::default());
        // Two moments per parameter: 59 * 2 * 4 bytes per Gaussian.
        assert_eq!(opt.state_bytes(), 100 * 472);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_subset_panics() {
        let mut model = model_of(2);
        let mut opt = GaussianAdam::new(2, AdamConfig::default());
        let buf = GradientBuffer::new(2);
        opt.step_subset(&mut model, &buf, &[5]);
    }
}
